"""Voting-exchange payload ablation: O(attributes) vs O(top-k).

The three exact exchange strategies ship every attribute's interval
statistics through the per-level collectives, so their payloads grow
linearly with attribute count f. The PV-Tree-style ``exchange="voting"``
strategy first all-to-all broadcasts one (attribute, gini) ballot of
``vote_top_k`` rows per rank, elects at most ``2*top_k`` candidates, and
restricts the attribute-partitioned exchange to those — O(k) payloads
regardless of f. This bench fits wide synthetic blob datasets
(f ∈ {16, 64} numeric attributes) under all four strategies with tracing
on, measures the **actual stats-phase collective bytes** from the trace
byte accounting (not model estimates), and writes ``BENCH_voting.json``.

Run standalone (CI smoke uses ``--quick``)::

    PYTHONPATH=src python benchmarks/bench_voting.py [--quick]

Exits non-zero if voting at k=8 fails to cut the exchanged stats bytes
at least 2x vs ``exchange="attribute"`` at f=64, or if voting with
k >= f is not bit-identical to the attribute strategy.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.bench.harness import scaled_models  # noqa: E402
from repro.bench.reporting import format_table  # noqa: E402
from repro.cluster import Cluster  # noqa: E402
from repro.cluster.trace import assert_schedules_match  # noqa: E402
from repro.clouds import CloudsConfig, accuracy  # noqa: E402
from repro.core import DistributedDataset, PClouds, PCloudsConfig  # noqa: E402
from repro.data.synthetic import blob_schema, make_blobs  # noqa: E402
from repro.dnc.cost import exchange_stats_bytes  # noqa: E402

EXACT = ("attribute", "distributed", "allreduce")

FULL_WIDTHS = (16, 64)
FULL_RANKS = (4, 8)
FULL_RECORDS = 3_000
QUICK_WIDTHS = (64,)
QUICK_RANKS = (2,)
QUICK_RECORDS = 1_200

Q_ROOT = 60
TOP_K = 8  # the acceptance point: k=8 vs f=64


def run_point(
    f: int,
    p: int,
    n: int,
    scale: float,
    *,
    exchange: str,
    top_k: int = TOP_K,
) -> dict:
    """One traced fit; stats bytes come from the trace accounting."""
    schema = blob_schema(n_numeric=f, n_categorical=0, n_classes=2)
    _, cols, labels = make_blobs(n, schema, separation=2.0, noise=0.05, seed=7)
    net, disk, compute = scaled_models(scale)
    cluster = Cluster(p, network=net, disk=disk, compute=compute, seed=0)
    dataset = DistributedDataset.create(cluster, schema, cols, labels, seed=1)
    pc = PClouds(
        PCloudsConfig(
            clouds=CloudsConfig(
                method="sse", q_root=Q_ROOT, sample_size=4 * Q_ROOT,
                min_node=16, purity=0.999,
            ),
            exchange=exchange,
            vote_top_k=top_k,
        )
    )
    res = pc.fit(dataset, seed=2, trace=True)
    assert_schedules_match(res.tracers)
    report = res.trace_report()
    rollup = report.exchange_rollup()
    return {
        "exchange": exchange,
        "top_k": top_k if exchange == "voting" else None,
        "elapsed": res.elapsed,
        "stats_bytes": report.exchange_bytes(),
        "stats_collectives": sum(r.count for r in rollup),
        "stats_bytes_by_level": {r.name: r.sent for r in rollup},
        "accuracy": float(accuracy(labels, res.tree.predict(cols))),
        "n_nodes": res.tree.n_nodes,
        "_tree": res.tree.to_dict(),  # stripped before serialization
    }


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument(
        "--quick", action="store_true",
        help="small grid for the CI smoke job",
    )
    ap.add_argument(
        "--out", default="BENCH_voting.json", help="output JSON path"
    )
    ap.add_argument("--scale", type=float, default=200.0)
    args = ap.parse_args(argv)

    widths = QUICK_WIDTHS if args.quick else FULL_WIDTHS
    ranks = QUICK_RANKS if args.quick else FULL_RANKS
    n = QUICK_RECORDS if args.quick else FULL_RECORDS

    points = []
    failures = []
    for f in widths:
        for p in ranks:
            runs = {
                s: run_point(f, p, n, args.scale, exchange=s) for s in EXACT
            }
            runs[f"voting_k{TOP_K}"] = run_point(
                f, p, n, args.scale, exchange="voting", top_k=TOP_K
            )
            runs["voting_exact"] = run_point(
                f, p, n, args.scale, exchange="voting", top_k=f
            )
            trees = {name: r.pop("_tree") for name, r in runs.items()}

            identical = trees["voting_exact"] == trees["attribute"]
            reduction = (
                runs["attribute"]["stats_bytes"]
                / max(runs[f"voting_k{TOP_K}"]["stats_bytes"], 1)
            )
            # cross-check against the closed-form payload model
            predicted = {
                s: exchange_stats_bytes(
                    "voting" if s.startswith("voting") else s,
                    q=Q_ROOT, c=2, f=f, p=p,
                    top_k=f if s == "voting_exact" else TOP_K,
                )
                for s in runs
            }
            point = {
                "f": f,
                "n_ranks": p,
                "n_records": n,
                "top_k": TOP_K,
                "identical_k_ge_f": identical,
                "reduction_vs_attribute": reduction,
                "accuracy_delta_k8": (
                    runs[f"voting_k{TOP_K}"]["accuracy"]
                    - runs["attribute"]["accuracy"]
                ),
                "predicted_root_bytes": predicted,
                "runs": runs,
            }
            points.append(point)
            where = f"f={f} p={p}"
            if not identical:
                failures.append(
                    f"{where}: voting k={f} (k>=f) tree differs from "
                    "the attribute strategy"
                )
            if f == 64 and reduction < 2.0:
                failures.append(
                    f"{where}: voting k={TOP_K} cut stats bytes only "
                    f"{reduction:.2f}x vs attribute (need >= 2x)"
                )

    print("Voting exchange: per-level stats payload, traced bytes")
    rows = [
        [
            str(pt["f"]),
            str(pt["n_ranks"]),
            f"{pt['runs']['attribute']['stats_bytes'] / 1024:.1f}",
            f"{pt['runs']['allreduce']['stats_bytes'] / 1024:.1f}",
            f"{pt['runs'][f'voting_k{TOP_K}']['stats_bytes'] / 1024:.1f}",
            f"{pt['reduction_vs_attribute']:.2f}x",
            f"{pt['accuracy_delta_k8']:+.4f}",
            "yes" if pt["identical_k_ge_f"] else "NO",
        ]
        for pt in points
    ]
    print(
        format_table(
            [
                "f", "p", "KiB attribute", "KiB allreduce",
                f"KiB voting k={TOP_K}", "reduction", "acc delta",
                "k>=f identical",
            ],
            rows,
        )
    )

    payload = {
        "benchmark": "voting",
        "quick": bool(args.quick),
        "scale": args.scale,
        "q_root": Q_ROOT,
        "top_k": TOP_K,
        "widths": list(widths),
        "ranks": list(ranks),
        "n_records": n,
        "points": points,
        "ok": not failures,
        "failures": failures,
    }
    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")
    if failures:
        for msg in failures:
            print(f"FAIL: {msg}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
