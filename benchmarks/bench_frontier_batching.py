"""Frontier-batching ablation: level-batched vs per-node collectives.

The level-batched pipeline (``frontier_batching="level"``) fuses every
large node of one breadth-first frontier level into a constant number of
collectives — one stats alltoall, one k-way boundary election, one alive
allgather, one member alltoall, one k-way interior election, one stacked
left-count allreduce — while the per-node baseline pays that set per
*node*, i.e. linearly in the frontier width, with ``alpha*log p`` startup
charged per collective. This bench measures simulated elapsed time and
collective counts for both modes over p ∈ {2, 4, 8, 16} and two data
sizes (deeper trees), verifies the trees are bit-identical, and writes
``BENCH_frontier_batching.json``.

Run standalone (CI smoke uses ``--quick``)::

    PYTHONPATH=src python benchmarks/bench_frontier_batching.py [--quick]

Exits non-zero if the batched path issues more collectives than the
per-node path at any grid point, if any tree differs, or if batching is
not strictly faster in simulated time.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.bench.harness import ExperimentConfig, run_pclouds  # noqa: E402
from repro.bench.reporting import format_table  # noqa: E402

#: paper data sizes at 1:200 record scale (same grid as the Fig. 1 bench)
FULL_SIZES = {"3.6M": 18_000, "7.2M": 36_000}
FULL_RANKS = [2, 4, 8, 16]
QUICK_SIZES = {"0.6M": 3_000}
QUICK_RANKS = [2, 4]


def run_point(n_records: int, p: int, batching: str, scale: float) -> dict:
    cfg = ExperimentConfig(
        n_records=n_records, n_ranks=p, scale=scale, seed=0,
        frontier_batching=batching,
    )
    res = run_pclouds(cfg)
    return {
        "elapsed": res.elapsed,
        "collectives": res.run.stats.per_rank[0].collectives,
        "bytes_sent": int(res.run.stats.total.bytes_sent),
        "n_large_nodes": res.n_large_nodes,
        "depth": res.tree.depth,
        "_tree": res.tree.to_dict(),  # stripped before serialization
    }


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument(
        "--quick", action="store_true",
        help="small grid for the CI smoke job",
    )
    ap.add_argument(
        "--out", default="BENCH_frontier_batching.json",
        help="output JSON path",
    )
    ap.add_argument("--scale", type=float, default=200.0)
    args = ap.parse_args(argv)

    sizes = QUICK_SIZES if args.quick else FULL_SIZES
    ranks = QUICK_RANKS if args.quick else FULL_RANKS

    points = []
    failures = []
    for label, n in sizes.items():
        for p in ranks:
            level = run_point(n, p, "level", args.scale)
            per_node = run_point(n, p, "per_node", args.scale)
            identical = level.pop("_tree") == per_node.pop("_tree")
            point = {
                "dataset": label,
                "n_records": n,
                "n_ranks": p,
                "level": level,
                "per_node": per_node,
                "identical_trees": identical,
                "collectives_saved": (
                    per_node["collectives"] - level["collectives"]
                ),
                "elapsed_ratio": per_node["elapsed"] / level["elapsed"],
            }
            points.append(point)
            where = f"{label} p={p}"
            if not identical:
                failures.append(f"{where}: trees differ between modes")
            if level["collectives"] > per_node["collectives"]:
                failures.append(
                    f"{where}: batched path issued more collectives "
                    f"({level['collectives']} > {per_node['collectives']})"
                )
            if level["elapsed"] >= per_node["elapsed"]:
                failures.append(
                    f"{where}: batched path not strictly faster "
                    f"({level['elapsed']:.4f} >= {per_node['elapsed']:.4f})"
                )

    print("Frontier batching: level-batched vs per-node collectives")
    rows = [
        [
            pt["dataset"],
            str(pt["n_ranks"]),
            str(pt["level"]["depth"]),
            str(pt["per_node"]["collectives"]),
            str(pt["level"]["collectives"]),
            f"{pt['per_node']['elapsed']:.2f}",
            f"{pt['level']['elapsed']:.2f}",
            f"{pt['elapsed_ratio']:.3f}x",
            "yes" if pt["identical_trees"] else "NO",
        ]
        for pt in points
    ]
    print(
        format_table(
            [
                "data", "p", "depth", "coll/node", "coll/level",
                "t/node", "t/level", "speedup", "same tree",
            ],
            rows,
        )
    )

    payload = {
        "benchmark": "frontier_batching",
        "quick": bool(args.quick),
        "scale": args.scale,
        "ranks": ranks,
        "sizes": sizes,
        "points": points,
        "ok": not failures,
        "failures": failures,
    }
    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")
    if failures:
        for f in failures:
            print(f"FAIL: {f}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
