"""Section 4/6 claim — CLOUDS' accuracy and compactness stay the same or
comparable to SPRINT's, with far lower computational requirements.

Regenerates the comparison: CLOUDS-SS, CLOUDS-SSE, the exact SPRINT
baseline and the direct oracle on Quest functions, reporting holdout
accuracy and pruned tree size, plus the split-evaluation work each
method does at the root (the quantity CLOUDS slashes).
"""

import numpy as np
import pytest

from repro.bench.reporting import format_table
from repro.clouds import (
    CloudsBuilder,
    CloudsConfig,
    SliqBuilder,
    SprintBuilder,
    StoppingRule,
    accuracy,
    fit_direct,
    mdl_prune,
    train_test_split,
)
from repro.data import generate_quest, quest_schema

FUNCTIONS = [1, 2, 5, 7]
N_RECORDS = 12_000


def _fit_all(function: int):
    schema = quest_schema()
    cols, labels = generate_quest(N_RECORDS, function=function, seed=3, noise=0.05)
    tr_c, tr_y, te_c, te_y = train_test_split(cols, labels, 0.25, seed=4)
    stop = StoppingRule(min_node=16)
    out = {}
    for name, tree in (
        ("clouds-ss", CloudsBuilder(
            schema, CloudsConfig(method="ss", q_root=250, sample_size=1500,
                                 min_node=16)).fit_arrays(tr_c, tr_y, seed=5)),
        ("clouds-sse", CloudsBuilder(
            schema, CloudsConfig(method="sse", q_root=250, sample_size=1500,
                                 min_node=16)).fit_arrays(tr_c, tr_y, seed=5)),
        ("sprint", SprintBuilder(schema, stop).fit(tr_c, tr_y)),
        ("sliq", SliqBuilder(schema, stop).fit(tr_c, tr_y)),
        ("direct", fit_direct(schema, tr_c, tr_y, stop)),
    ):
        mdl_prune(tree)
        out[name] = (accuracy(te_y, tree.predict(te_c)), tree.n_nodes)
    return out


@pytest.mark.benchmark(group="accuracy")
def test_accuracy_and_compactness(benchmark):
    def run():
        return {fn: _fit_all(fn) for fn in FUNCTIONS}

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for fn, by_method in results.items():
        for method, (acc, nodes) in by_method.items():
            rows.append([f"F{fn}", method, acc, nodes])
    print("\nCLOUDS vs exact baselines (holdout accuracy, pruned size)")
    print(format_table(["function", "method", "test accuracy", "nodes"], rows))
    print("paper: CLOUDS accuracy/compactness same or comparable to SPRINT")

    for fn, by_method in results.items():
        exact_acc = by_method["sprint"][0]
        for m in ("clouds-ss", "clouds-sse"):
            assert by_method[m][0] >= exact_acc - 0.02, (fn, m)
        # SSE at least matches SS
        assert by_method["clouds-sse"][0] >= by_method["clouds-ss"][0] - 0.02
        # sprint == sliq == direct (three implementations of the exact
        # algorithm, converging through the shared split total order)
        assert by_method["sprint"][0] == pytest.approx(by_method["direct"][0])
        assert by_method["sliq"][0] == pytest.approx(by_method["direct"][0])
        assert by_method["sliq"][1] == by_method["direct"][1]
    benchmark.extra_info["accuracy"] = {
        f"F{fn}": {m: round(v[0], 4) for m, v in r.items()}
        for fn, r in results.items()
    }


@pytest.mark.benchmark(group="accuracy")
def test_root_split_work(benchmark):
    """CLOUDS evaluates the gini at ~q interval boundaries (plus the few
    surviving alive points); the exact methods evaluate it at every
    distinct value of every numeric attribute."""
    from repro.clouds.builder import find_split_from_arrays, node_boundaries
    from repro.clouds.sse import determine_alive_intervals, member_mask
    from repro.clouds.nodestats import stats_from_arrays
    from repro.clouds.ss import find_split_ss

    schema = quest_schema()
    cols, labels = generate_quest(N_RECORDS, function=2, seed=6, noise=0.05)

    def run():
        q = 250
        bounds = node_boundaries(schema, {k: v[:1500] for k, v in cols.items()}, q)
        stats = stats_from_arrays(schema, cols, labels, bounds)
        split = find_split_ss(stats, schema)
        alive = determine_alive_intervals(stats, schema, split.gini)
        clouds_points = sum(len(b) for b in bounds.values()) + sum(
            iv.count for iv in alive
        )
        exact_points = sum(
            len(np.unique(cols[a.name])) for a in schema.numeric
        )
        return clouds_points, exact_points

    clouds_points, exact_points = benchmark.pedantic(run, rounds=1, iterations=1)
    print(
        f"\nsplit points evaluated at the root: CLOUDS/SSE ~{clouds_points:,} "
        f"vs exact {exact_points:,} "
        f"({exact_points / clouds_points:.1f}x reduction)"
    )
    assert clouds_points < exact_points / 2
