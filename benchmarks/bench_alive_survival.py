"""Section 5.1.2 — the survival ratio.

SSE's second pass touches only alive intervals; the fraction of records
it touches (the survival ratio) controls its cost. The ratio falls as
intervals get finer (more, tighter lower bounds) — the knob the paper's
q=10,000 setting turns. This bench regenerates survival ratio vs q at
the root of the Quest workload.
"""

import pytest

from repro.bench.reporting import format_series, format_table
from repro.clouds.builder import node_boundaries
from repro.clouds.nodestats import stats_from_arrays
from repro.clouds.ss import find_split_ss
from repro.clouds.sse import determine_alive_intervals, survival_ratio
from repro.data import generate_quest, quest_schema

QS = [10, 25, 50, 100, 200, 400]


@pytest.mark.benchmark(group="survival")
def test_survival_ratio_vs_q(benchmark):
    schema = quest_schema()
    cols, labels = generate_quest(20_000, function=2, seed=10, noise=0.05)
    sample = {k: v[:4000] for k, v in cols.items()}

    def run():
        out = []
        for q in QS:
            bounds = node_boundaries(schema, sample, q)
            stats = stats_from_arrays(schema, cols, labels, bounds)
            split = find_split_ss(stats, schema)
            alive = determine_alive_intervals(stats, schema, split.gini)
            out.append(
                (q, len(alive), survival_ratio(alive, stats.n), split.gini)
            )
        return out

    series = benchmark.pedantic(run, rounds=1, iterations=1)

    print("\nSurvival ratio vs interval count (root node, 20k records)")
    print(format_table(
        ["q", "alive intervals", "survival ratio", "gini_min"],
        series,
    ))
    print(format_series("survival", [s[0] for s in series], [s[2] for s in series]))
    print("paper: SSE 'effectively reduces the search space'; q=10,000 at "
          "the root keeps the ratio small")

    ratios = [s[2] for s in series]
    # finer intervals survive less
    assert ratios[-1] < ratios[0]
    assert ratios[-1] < 0.25
    # gini_min improves (weakly) with finer boundaries
    ginis = [s[3] for s in series]
    assert ginis[-1] <= ginis[0] + 1e-9
    benchmark.extra_info["ratios"] = dict(zip(QS, (round(r, 4) for r in ratios)))
