"""Table 1 — time complexity of the collective communication primitives
on a cut-through routed hypercube.

Regenerates the table by measuring the *simulated* cost of each primitive
executed by real SPMD programs over a sweep of message sizes and machine
sizes, and checks the measured costs follow the Table-1 scaling laws:

    all-to-all broadcast   O(alpha log p + beta m (p-1))
    gather                 O(alpha log p + beta m p)
    global combine         O(alpha log p + beta m)
    prefix sum             O(alpha log p + beta m)
"""

import numpy as np
import pytest

from repro.bench.reporting import format_table
from repro.cluster import Cluster, NetworkModel

ALPHA, BETA = 1e-4, 1e-8
SIZES_BYTES = [1 << 10, 1 << 14, 1 << 18]
RANKS = [2, 4, 8, 16, 32]


def _measure(p: int, nbytes: int) -> dict[str, float]:
    """Simulated comm time of each primitive for one (p, m) point."""
    cluster = Cluster(p, network=NetworkModel(alpha=ALPHA, beta=BETA), seed=0)
    payload = np.zeros(nbytes // 8, dtype=np.float64)

    def prog(ctx):
        out = {}
        for name, op in (
            ("all-to-all bcast", lambda: ctx.comm.allgather(payload)),
            ("gather", lambda: ctx.comm.gather(payload, root=0)),
            ("global combine", lambda: ctx.comm.allreduce(payload)),
            ("prefix sum", lambda: ctx.comm.scan(payload)),
        ):
            before = ctx.stats.comm_time
            op()
            out[name] = ctx.stats.comm_time - before
        return out

    return cluster.run(prog).results[0]


@pytest.mark.benchmark(group="table1")
def test_table1_primitives(benchmark):
    rows = []
    results: dict[tuple[int, int], dict[str, float]] = {}

    def run():
        for p in RANKS:
            for m in SIZES_BYTES:
                results[(p, m)] = _measure(p, m)
        return results

    benchmark.pedantic(run, rounds=1, iterations=1)

    for p in RANKS:
        for m in SIZES_BYTES:
            r = results[(p, m)]
            rows.append(
                [p, m >> 10, *(r[k] * 1e3 for k in (
                    "all-to-all bcast", "gather", "global combine", "prefix sum"
                ))]
            )
    print()
    print(
        format_table(
            ["p", "m (KiB)", "a2a bcast (ms)", "gather (ms)",
             "combine (ms)", "prefix (ms)"],
            rows,
            title="Table 1: collective primitive costs (simulated, "
            f"alpha={ALPHA}, beta={BETA})",
        )
    )

    # scaling-law assertions at fixed p=16
    p, m = 16, 1 << 18
    r = results[(p, m)]
    assert r["all-to-all bcast"] == pytest.approx(
        ALPHA * 4 + BETA * m * (p - 1), rel=1e-6
    )
    assert r["gather"] == pytest.approx(ALPHA * 4 + BETA * m * p, rel=1e-6)
    assert r["global combine"] == pytest.approx(ALPHA * 4 + BETA * m, rel=1e-6)
    assert r["prefix sum"] == pytest.approx(ALPHA * 4 + BETA * m, rel=1e-6)
    # combine's bandwidth term is p-independent; bcast's is not
    assert (
        results[(32, m)]["global combine"] - results[(2, m)]["global combine"]
        == pytest.approx(4 * ALPHA, rel=1e-6)
    )
    assert results[(32, m)]["all-to-all bcast"] > results[(2, m)]["all-to-all bcast"] * 4
    benchmark.extra_info["points"] = len(results)
