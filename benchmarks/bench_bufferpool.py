"""Buffer-pool ablation: cache + overlapped prefetch vs direct I/O.

The per-rank buffer pool (``buffer_pool="lru"``) retains streamed chunks
in an LRU cache drawn from its own memory budget, so the SSE member pass
and the partition pass of a node whose columns fit the pool re-read from
memory instead of disk; ``"lru+prefetch"`` additionally issues the read
of chunk i+1 while chunk i computes, hiding transfer time the consumer
would otherwise wait for. This bench measures simulated elapsed time,
bytes read and pool counters for the three modes over p ∈ {2, 4, 8} at a
streaming-heavy memory ratio, verifies the trees are bit-identical, and
writes ``BENCH_bufferpool.json``.

Run standalone (CI smoke uses ``--quick``)::

    PYTHONPATH=src python benchmarks/bench_bufferpool.py [--quick]

Exits non-zero if any tree differs across modes, if the cache does not
strictly reduce bytes read, if prefetch slows the fit down, or if any
rank's pool overruns its memory budget.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.bench.harness import ExperimentConfig, build_cluster  # noqa: E402
from repro.bench.reporting import format_table  # noqa: E402
from repro.clouds import CloudsConfig  # noqa: E402
from repro.core import DistributedDataset, PClouds, PCloudsConfig  # noqa: E402
from repro.data import generate_quest, quest_schema  # noqa: E402

MODES = ("off", "lru", "lru+prefetch")
FULL_SIZES = {"3.6M": 18_000, "7.2M": 36_000}
FULL_RANKS = [2, 4, 8]
QUICK_SIZES = {"0.6M": 3_000}
QUICK_RANKS = [2]

#: small enough that the frontier streams for several levels, large
#: enough that those nodes fit the 4x pool — the regime the pool targets
MEMORY_RATIO = 0.25


def run_point(n_records: int, p: int, mode: str, scale: float) -> dict:
    cfg = ExperimentConfig(
        n_records=n_records, n_ranks=p, scale=scale, seed=0,
        memory_ratio=MEMORY_RATIO, buffer_pool=mode,
    )
    schema = quest_schema()
    cols, labels = generate_quest(
        cfg.n_records, cfg.function, seed=cfg.seed, noise=cfg.noise
    )
    cluster = build_cluster(cfg, schema.row_nbytes())
    dataset = DistributedDataset.create(
        cluster, schema, cols, labels, seed=cfg.seed + 1
    )
    pc = PClouds(
        PCloudsConfig(
            clouds=CloudsConfig(
                method=cfg.method,
                q_root=cfg.resolved_q_root(),
                sample_size=cfg.resolved_sample(),
                min_node=cfg.min_node,
                purity=cfg.purity,
            ),
            q_switch=cfg.q_switch,
        )
    )
    res = pc.fit(dataset, seed=cfg.seed + 2)
    ctxs = dataset.contexts
    out = {
        "elapsed": res.elapsed,
        "bytes_read": int(sum(c.stats.bytes_read for c in ctxs)),
        "overlap_saved": float(
            sum(c.stats.io_overlap_saved for c in ctxs)
        ),
        "budget_ok": True,
        "_tree": res.tree.to_dict(),  # stripped before serialization
    }
    if mode != "off":
        pools = [c.disk.pool for c in ctxs]
        out.update(
            hits=int(sum(p_.stats.hits for p_ in pools)),
            misses=int(sum(p_.stats.misses for p_ in pools)),
            evictions=int(sum(p_.stats.evictions for p_ in pools)),
            prefetch_issued=int(
                sum(p_.stats.prefetch_issued for p_ in pools)
            ),
            prefetch_useful=int(
                sum(p_.stats.prefetch_useful for p_ in pools)
            ),
            budget_ok=all(
                c.pool_budget.high_water <= c.pool_budget.limit
                for c in ctxs
            ),
        )
    return out


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument(
        "--quick", action="store_true",
        help="small grid for the CI smoke job",
    )
    ap.add_argument(
        "--out", default="BENCH_bufferpool.json", help="output JSON path"
    )
    ap.add_argument("--scale", type=float, default=200.0)
    args = ap.parse_args(argv)

    sizes = QUICK_SIZES if args.quick else FULL_SIZES
    ranks = QUICK_RANKS if args.quick else FULL_RANKS

    points = []
    failures = []
    for label, n in sizes.items():
        for p in ranks:
            results = {m: run_point(n, p, m, args.scale) for m in MODES}
            trees = {m: r.pop("_tree") for m, r in results.items()}
            identical = all(trees[m] == trees["off"] for m in MODES)
            point = {
                "dataset": label,
                "n_records": n,
                "n_ranks": p,
                "identical_trees": identical,
                "read_reduction": (
                    results["off"]["bytes_read"]
                    / results["lru"]["bytes_read"]
                ),
                "elapsed_gain": (
                    results["off"]["elapsed"]
                    / results["lru+prefetch"]["elapsed"]
                ),
                **{m: results[m] for m in MODES},
            }
            points.append(point)
            where = f"{label} p={p}"
            if not identical:
                failures.append(f"{where}: trees differ between modes")
            if results["lru"]["bytes_read"] >= results["off"]["bytes_read"]:
                failures.append(
                    f"{where}: cache did not reduce bytes read "
                    f"({results['lru']['bytes_read']} >= "
                    f"{results['off']['bytes_read']})"
                )
            if (
                results["lru+prefetch"]["elapsed"]
                > results["lru"]["elapsed"]
            ):
                failures.append(
                    f"{where}: prefetch slowed the fit "
                    f"({results['lru+prefetch']['elapsed']:.4f} > "
                    f"{results['lru']['elapsed']:.4f})"
                )
            for m in ("lru", "lru+prefetch"):
                if not results[m]["budget_ok"]:
                    failures.append(
                        f"{where}: pool overran its budget in mode {m}"
                    )

    print("Buffer pool: cache + overlapped prefetch vs direct I/O")
    rows = [
        [
            pt["dataset"],
            str(pt["n_ranks"]),
            f"{pt['off']['bytes_read'] / 2**20:.1f}",
            f"{pt['lru']['bytes_read'] / 2**20:.1f}",
            f"{pt['read_reduction']:.2f}x",
            f"{pt['off']['elapsed']:.2f}",
            f"{pt['lru+prefetch']['elapsed']:.2f}",
            f"{pt['elapsed_gain']:.3f}x",
            f"{pt['lru+prefetch']['overlap_saved']:.3f}",
            "yes" if pt["identical_trees"] else "NO",
        ]
        for pt in points
    ]
    print(
        format_table(
            [
                "data", "p", "MiB read off", "MiB read lru", "reduction",
                "t off", "t lru+pf", "gain", "overlap s", "same tree",
            ],
            rows,
        )
    )

    payload = {
        "benchmark": "bufferpool",
        "quick": bool(args.quick),
        "scale": args.scale,
        "memory_ratio": MEMORY_RATIO,
        "ranks": ranks,
        "sizes": sizes,
        "points": points,
        "ok": not failures,
        "failures": failures,
    }
    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")
    if failures:
        for f in failures:
            print(f"FAIL: {f}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
