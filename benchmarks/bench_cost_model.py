"""Analytic cost model vs simulation (DESIGN.md §5 cross-validation).

The paper reasons about the Section-3 techniques analytically; the
simulator executes them. This bench puts the closed-form predictions of
:class:`repro.dnc.DncCostModel` next to the simulator's measurements —
the rankings must agree and the magnitudes stay within one decade, which
validates both the formulas and the simulator. It also prints the
compute-independent task-parallel variant, which exists only analytically
(the paper describes it but also never implemented it).
"""

import pytest

from repro.bench.harness import scaled_models
from repro.bench.reporting import format_table
from repro.cluster import Cluster
from repro.dnc import DncCostModel, SyntheticDnc, TreeShape, run_strategy

N = 40_000
P = 8
MEM = 16 * 1024
LEAF = 128


@pytest.mark.benchmark(group="cost-model")
def test_analytic_vs_simulated(benchmark):
    net, disk, compute = scaled_models(100.0)
    model = DncCostModel(network=net, disk=disk, compute=compute, n_ranks=P)
    shape = TreeShape(n_records=N, leaf_records=LEAF)
    problem = SyntheticDnc(leaf_records=LEAF, split_ratio=0.5)

    def run():
        predicted = {
            "data": model.data_parallel(shape, MEM),
            "concatenated": model.concatenated(shape, MEM),
            "task": model.task_parallel_compute_dependent(shape),
            "mixed": model.mixed(shape, switch_records=N // (2 * P),
                                 memory_limit=MEM),
        }
        measured = {}
        for strat in predicted:
            cluster = Cluster(
                P, network=net, disk=disk, compute=compute,
                memory_limit=MEM, seed=0,
            )
            measured[strat] = run_strategy(cluster, problem, N, strat, seed=3).elapsed
        return predicted, measured

    predicted, measured = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        [s, predicted[s], measured[s], predicted[s] / measured[s]]
        for s in predicted
    ]
    rows.append(
        [
            "task (compute-indep I/O)",
            DncCostModel(
                network=net, disk=disk, compute=compute, n_ranks=P
            ).task_parallel_compute_independent(
                TreeShape(n_records=N, leaf_records=LEAF)
            ),
            float("nan"),
            float("nan"),
        ]
    )
    print("\nAnalytic predictions vs simulated measurements "
          f"({N:,} records, p={P}, {MEM >> 10} KiB/proc)")
    print(format_table(
        ["strategy", "predicted (s)", "simulated (s)", "ratio"], rows
    ))

    # rankings agree on the paper's headline comparison
    assert (predicted["data"] < predicted["concatenated"]) == (
        measured["data"] < measured["concatenated"]
    )
    # magnitudes within one decade for every strategy
    for s in measured:
        assert 0.1 < predicted[s] / measured[s] < 10.0, s
    benchmark.extra_info["ratios"] = {
        s: round(predicted[s] / measured[s], 2) for s in measured
    }
