"""Section 3 — comparison of the parallel out-of-core divide-and-conquer
techniques.

The paper argues (without a figure) that for large external-memory
problems data parallelism beats concatenated parallelism — concatenated
parallelism shares main memory across the tasks solved together, causing
extra I/O — while task parallelism wins at fine grain where per-task
synchronisation dominates, motivating the mixed approach pCLOUDS uses.
This bench makes those claims measurable on the synthetic D&C workload.
"""

import pytest

from repro.bench.harness import scaled_models
from repro.bench.reporting import format_table
from repro.cluster import Cluster
from repro.dnc import STRATEGIES, SyntheticDnc, run_strategy


def make_cluster(p=8, memory_kib=16):
    net, disk, compute = scaled_models(100.0)
    return Cluster(
        p, network=net, disk=disk, compute=compute,
        memory_limit=memory_kib * 1024, seed=0,
    )


@pytest.mark.benchmark(group="section3")
def test_strategy_comparison(benchmark):
    problem = SyntheticDnc(leaf_records=128, split_ratio=0.5, work_per_record=2.0)

    def run():
        return {
            s: run_strategy(make_cluster(), problem, 40_000, s, seed=3)
            for s in STRATEGIES
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    print("\nSection 3: strategies on an out-of-core D&C problem "
          "(40k records, p=8, 16 KiB memory/proc)")
    print(
        format_table(
            ["strategy", "sim time (s)", "tasks", "depth",
             "bytes read", "bytes sent", "collectives"],
            [results[s].row() for s in STRATEGIES],
        )
    )

    data, conc = results["data"], results["concatenated"]
    task, mixed = results["task"], results["mixed"]
    # identical trees
    shapes = {(r.outcome.n_tasks, r.outcome.n_leaves, r.outcome.max_depth)
              for r in results.values()}
    assert len(shapes) == 1
    # the paper's claim: data parallelism beats concatenated out-of-core
    assert data.elapsed < conc.elapsed
    assert data.bytes_read < conc.bytes_read
    # concatenated's one advantage: spooled communication startups
    assert conc.collectives < data.collectives
    # task parallelism pays redistribution traffic
    assert task.bytes_sent > data.bytes_sent
    # mixed combines the good halves: best or near-best overall
    assert mixed.elapsed <= min(data.elapsed, conc.elapsed)
    benchmark.extra_info["elapsed"] = {
        s: round(r.elapsed, 2) for s, r in results.items()
    }


@pytest.mark.benchmark(group="section3")
def test_skew_sensitivity(benchmark):
    """Task parallelism degrades on skewed trees (subgroup sizes cannot
    track a lopsided cost split); mixed parallelism stays robust."""

    def run():
        out = {}
        for ratio in (0.5, 0.85):
            problem = SyntheticDnc(leaf_records=128, split_ratio=ratio)
            out[ratio] = {
                s: run_strategy(make_cluster(), problem, 30_000, s, seed=4)
                for s in ("data", "task", "mixed")
            }
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for ratio, by_strat in results.items():
        for s, r in by_strat.items():
            rows.append([ratio, s, r.elapsed, r.outcome.max_depth])
    print()
    print(format_table(["split ratio", "strategy", "sim time (s)", "depth"], rows))

    balanced, skewed = results[0.5], results[0.85]
    # skew hurts task parallelism far more than mixed
    task_penalty = skewed["task"].elapsed / balanced["task"].elapsed
    mixed_penalty = skewed["mixed"].elapsed / balanced["mixed"].elapsed
    assert task_penalty > mixed_penalty
    assert skewed["mixed"].elapsed < skewed["task"].elapsed
