"""Shared machinery for the benchmark suite.

The paper's Figures 1-3 are all views of one (data size × machine size)
grid of pCLOUDS runs; `grid` caches each point so the three figure
benches don't re-run identical experiments. Record counts are 1:200 of
the paper's (18k..36k for 3.6M..7.2M) with every per-record cost scaled
by 200, so simulated-time *ratios* land in the paper's regime; see
bench harness docs and DESIGN.md for the scaling argument.
"""

from __future__ import annotations

import os

import pytest

from repro.bench.harness import ExperimentConfig, run_pclouds

#: set REPRO_BENCH_TRACE=1 to run every grid point under full event
#: tracing and print its phase-attributed time and traffic timelines
TRACE = os.environ.get("REPRO_BENCH_TRACE", "") not in ("", "0")

#: 1:SCALE record-count scale-down of the paper's 3.6M-7.2M experiments
SCALE = 200.0

#: paper data sizes (3.6, 4.8, 6.0, 7.2 million) at 1:SCALE
SIZES = {
    "3.6M": 18_000,
    "4.8M": 24_000,
    "6.0M": 30_000,
    "7.2M": 36_000,
}

RANKS = [1, 2, 4, 8, 16]


class PCloudsGrid:
    """Lazily-computed cache of pCLOUDS runs keyed by (n_records, p)."""

    def __init__(self) -> None:
        self._cache: dict[tuple[int, int], object] = {}

    def run(self, n_records: int, p: int):
        key = (n_records, p)
        if key not in self._cache:
            res = run_pclouds(
                ExperimentConfig(
                    n_records=n_records, n_ranks=p, scale=SCALE, seed=0
                ),
                trace=TRACE,
            )
            if TRACE:
                from repro.bench.timeline import (
                    render_comm_phase_bars,
                    render_phase_bars,
                )

                print(f"\n-- traced grid point: {n_records:,} records, p={p} --")
                print(render_phase_bars(res.run.phase_times))
                print(render_comm_phase_bars(res.tracers))
            self._cache[key] = res
        return self._cache[key]

    def elapsed(self, n_records: int, p: int) -> float:
        return self.run(n_records, p).elapsed

    def speedup(self, n_records: int, p: int) -> float:
        return self.elapsed(n_records, 1) / self.elapsed(n_records, p)


@pytest.fixture(scope="session")
def grid() -> PCloudsGrid:
    return PCloudsGrid()
