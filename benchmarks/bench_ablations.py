"""Ablations of pCLOUDS' design choices (DESIGN.md §5).

* statistics exchange: the paper's replication/attribute-based approach
  vs naive full replication via one global combine;
* the mixed-parallelism switch threshold q_switch (the paper used 10 and
  left the optimal criterion as an open question — this sweep shows the
  regime it sits in);
* in-core vs forced-streaming access for large nodes (what the memory
  limit buys).
"""

import pytest

from repro.bench.harness import ExperimentConfig, build_cluster, run_pclouds
from repro.bench.reporting import format_table
from repro.clouds import CloudsConfig
from repro.core import DistributedDataset, PClouds, PCloudsConfig
from repro.data import generate_quest, quest_schema

N = 18_000
SCALE = 200.0


def _run(q_switch=10, exchange="attribute", memory_ratio=None, p=8):
    kwargs = {}
    if memory_ratio is not None:
        kwargs["memory_ratio"] = memory_ratio
    return run_pclouds(
        ExperimentConfig(
            n_records=N, n_ranks=p, scale=SCALE, q_switch=q_switch,
            exchange=exchange, seed=0, **kwargs,
        )
    )


@pytest.mark.benchmark(group="ablation")
def test_exchange_methods(benchmark):
    def run():
        return {
            ex: _run(exchange=ex)
            for ex in ("attribute", "distributed", "allreduce")
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        [ex, r.elapsed, r.run.stats.total.compute_time,
         r.run.stats.total.bytes_sent >> 10, r.run.stats.total.collectives]
        for ex, r in results.items()
    ]
    print("\nAblation: interval-statistics exchange (p=8)")
    print(format_table(
        ["exchange", "sim time (s)", "total compute (s)",
         "KiB sent", "collectives"],
        rows,
    ))

    attr, naive = results["attribute"], results["allreduce"]
    dist = results["distributed"]
    # identical classifier whichever way the statistics travel
    assert attr.tree.to_dict() == naive.tree.to_dict()
    assert attr.tree.to_dict() == dist.tree.to_dict()
    # attribute-based owners do the sweep once instead of p times
    assert attr.run.stats.total.compute_time < naive.run.stats.total.compute_time
    benchmark.extra_info["elapsed"] = {
        ex: round(r.elapsed, 2) for ex, r in results.items()
    }


@pytest.mark.benchmark(group="ablation")
def test_switch_threshold_sweep(benchmark):
    switches = [2, 5, 10, 40, 160, "auto"]

    def run():
        return {qs: _run(q_switch=qs) for qs in switches}

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        [qs, r.elapsed, r.n_large_nodes, r.n_small_tasks]
        for qs, r in results.items()
    ]
    print("\nAblation: mixed-parallelism switch threshold (p=8)")
    print(format_table(
        ["q_switch", "sim time (s)", "large nodes", "small tasks"], rows
    ))
    print("paper: used q_switch=10 and left the concrete switching "
          "criterion open; 'auto' is this repo's analytic criterion "
          "(repro.core.switching)")

    # classifier quality is threshold-independent (structure can differ
    # only at extreme thresholds, where tiny large-nodes run interval
    # sampling on nearly-empty sample fragments)
    from repro.clouds import accuracy
    from repro.data import generate_quest

    cols, labels = generate_quest(N, function=2, seed=0, noise=0.05)
    accs = {
        qs: accuracy(labels, r.tree.predict(cols)) for qs, r in results.items()
    }
    assert max(accs.values()) - min(accs.values()) < 0.02, accs
    # mid-range thresholds produce the identical classifier
    assert results[5].tree.to_dict() == results[10].tree.to_dict()
    # lower thresholds keep more large nodes
    fixed = [qs for qs in switches if isinstance(qs, int)]
    larges = [results[qs].n_large_nodes for qs in fixed]
    assert all(a >= b for a, b in zip(larges, larges[1:]))
    # switching almost-never (2) pays per-task collectives on tiny nodes
    assert results[10].elapsed <= results[2].elapsed * 1.05
    # the analytic criterion at least matches the paper's fixed 10 and
    # lands within 25% of the best threshold in the sweep
    best = min(results[qs].elapsed for qs in fixed)
    assert results["auto"].elapsed <= results[10].elapsed * 1.02
    assert results["auto"].elapsed <= best * 1.25
    benchmark.extra_info["elapsed"] = {
        str(qs): round(r.elapsed, 2) for qs, r in results.items()
    }


@pytest.mark.benchmark(group="ablation")
def test_memory_limit_effect(benchmark):
    """What per-processor memory buys: in-core large-node processing
    skips the re-reads of the SSE and partition passes."""
    ratios = {
        "paper (1MB/6M)": None,  # harness default: the paper's ratio
        "4x paper": 4 * 2**20 / (6e6 * 64),
        "tiny (1/4 paper)": 0.25 * 2**20 / (6e6 * 64),
    }

    def run():
        return {label: _run(memory_ratio=r) for label, r in ratios.items()}

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        [label, r.elapsed, r.run.stats.total.bytes_read >> 20]
        for label, r in results.items()
    ]
    print("\nAblation: per-processor memory limit (p=8)")
    print(format_table(["memory", "sim time (s)", "MiB read"], rows))

    assert (
        results["4x paper"].run.stats.total.bytes_read
        <= results["paper (1MB/6M)"].run.stats.total.bytes_read
        <= results["tiny (1/4 paper)"].run.stats.total.bytes_read
    )
    # residency never changes the classifier
    trees = {k: r.tree.to_dict() for k, r in results.items()}
    assert len({str(t) for t in trees.values()}) == 1
