"""Section 4.1 — SS vs SSE on the out-of-core sequential classifier.

SS derives the splitter in one pass over the data; SSE adds a second
pass restricted to alive intervals and in exchange finds strictly better
(usually exact) splitters. This bench regenerates the trade-off: I/O
volume per method, split quality, and the resulting tree quality.
"""

import pytest

from repro.bench.reporting import format_table
from repro.cluster.clock import SimClock
from repro.cluster.diskmodel import DiskModel
from repro.cluster.stats import RankStats
from repro.clouds import (
    CloudsBuilder,
    CloudsConfig,
    accuracy,
    mdl_prune,
    train_test_split,
)
from repro.data import generate_quest, quest_schema
from repro.ooc import ColumnSet, InMemoryBackend, LocalDisk


def _fit_ooc(method: str, tr_c, tr_y):
    schema = quest_schema()
    disk = LocalDisk(DiskModel(), SimClock(), RankStats(), InMemoryBackend())
    cs = ColumnSet.from_arrays(disk, schema, tr_c, tr_y, batch_rows=2048)
    cfg = CloudsConfig(method=method, q_root=200, sample_size=1200, min_node=16)
    tree = CloudsBuilder(schema, cfg).fit_columnset(cs, seed=7)
    return tree, disk.stats


@pytest.mark.benchmark(group="ss-vs-sse")
def test_ss_vs_sse(benchmark):
    cols, labels = generate_quest(10_000, function=2, seed=8, noise=0.05)
    tr_c, tr_y, te_c, te_y = train_test_split(cols, labels, 0.25, seed=9)

    def run():
        out = {}
        for method in ("ss", "sse"):
            tree, stats = _fit_ooc(method, tr_c, tr_y)
            acc_raw = accuracy(te_y, tree.predict(te_c))
            mdl_prune(tree)
            out[method] = {
                "bytes_read": stats.bytes_read,
                "io_time": stats.io_time,
                "accuracy": accuracy(te_y, tree.predict(te_c)),
                "accuracy_unpruned": acc_raw,
                "nodes": tree.n_nodes,
            }
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        [m, r["bytes_read"] >> 20, r["io_time"], r["accuracy_unpruned"],
         r["accuracy"], r["nodes"]]
        for m, r in results.items()
    ]
    print("\nSS vs SSE (sequential out-of-core CLOUDS, 7.5k train records)")
    print(format_table(
        ["method", "MiB read", "sim I/O time (s)", "accuracy",
         "pruned accuracy", "pruned nodes"],
        rows,
    ))
    print("paper: SSE is the more robust/scalable method; it may take an "
          "extra partial pass but effectively narrows the search space")

    ss, sse = results["ss"], results["sse"]
    # SSE reads more (the alive pass) but its splits are at least as good
    # (compare unpruned accuracy — split quality is what SSE refines;
    # post-pruning numbers add MDL's own variance on top)
    assert sse["bytes_read"] >= ss["bytes_read"]
    assert sse["accuracy_unpruned"] >= ss["accuracy_unpruned"] - 0.005
    assert sse["accuracy"] >= ss["accuracy"] - 0.03
    # the alive pass is restricted: nowhere near doubling the I/O of SS
    assert sse["bytes_read"] < 2.0 * ss["bytes_read"]
    benchmark.extra_info["results"] = {
        m: {k: (round(v, 4) if isinstance(v, float) else v) for k, v in r.items()}
        for m, r in results.items()
    }
