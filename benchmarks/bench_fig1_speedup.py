"""Figure 1 — speedup characteristics of pCLOUDS.

The paper plots speedup vs number of processors for 3.6, 4.8, 6.0 and
7.2 million training records on the 16-node SP2 and reports (a) near-
linear speedup, (b) speedup improving with data size, and (c) occasional
superlinearity at small p from aggregate memory/disk bandwidth. This
bench regenerates the four curves at 1:200 record scale with all
per-record costs scaled to match (see benchmarks/conftest.py) and checks
those three shape properties.
"""

import pytest

from repro.bench.reporting import format_series, format_table

from conftest import RANKS, SIZES


@pytest.mark.benchmark(group="fig1")
def test_fig1_speedup(benchmark, grid):
    def run():
        return {
            label: [grid.speedup(n, p) for p in RANKS]
            for label, n in SIZES.items()
        }

    curves = benchmark.pedantic(run, rounds=1, iterations=1)

    print("\nFigure 1: speedup vs processors (paper-scale labels)")
    rows = [
        [f"{label} records", *(f"{s:.2f}" for s in curves[label])]
        for label in SIZES
    ]
    print(format_table(["data set", *(f"p={p}" for p in RANKS)], rows))
    for label in SIZES:
        print(format_series(label, RANKS, curves[label]))
    print(
        "paper: near-linear speedup, improving with data size; "
        "~10-12x at p=16 for the larger sets"
    )

    for label, n in SIZES.items():
        s = curves[label]
        # speedup grows monotonically with p for every data size
        assert all(b > a for a, b in zip(s, s[1:])), (label, s)
        # and is substantial at p=16
        assert s[-1] > 6.0, (label, s)
    # sizeup flavour of Fig 1: more data, better speedup at p=16
    assert curves["7.2M"][-1] > curves["3.6M"][-1]
    benchmark.extra_info["speedup_p16"] = {
        k: round(v[-1], 2) for k, v in curves.items()
    }


@pytest.mark.benchmark(group="fig1")
def test_fig1_superlinear_with_aggregate_memory(benchmark):
    """The paper observes superlinear speedup at small p, attributed to
    cache effects and 'the gain in I/O bandwidth with data being
    distributed across multiple disks'. The mechanism needs the memory
    limit to bind at p=1 and relax in aggregate: with a per-processor
    memory of 1/10 of the training set, two processors hold 1/5 of it —
    enough extra residency to beat 2x."""
    from repro.bench.harness import ExperimentConfig, run_pclouds

    def run():
        times = {}
        for p in (1, 2, 4):
            cfg = ExperimentConfig(
                n_records=18_000, n_ranks=p, scale=200.0,
                memory_ratio=0.1, seed=0,
            )
            times[p] = run_pclouds(cfg).elapsed
        return times

    times = benchmark.pedantic(run, rounds=1, iterations=1)
    s2 = times[1] / times[2]
    s4 = times[1] / times[4]
    print(f"\nsuperlinear check (memory = data/10): speedup p=2: {s2:.3f}, "
          f"p=4: {s4:.3f}")
    print("paper: superlinear speedup observed in some cases on 4 processors")
    assert s2 > 2.0  # superlinear at p=2
    assert s4 > 3.2
    benchmark.extra_info["speedups"] = {"p2": round(s2, 3), "p4": round(s4, 3)}
