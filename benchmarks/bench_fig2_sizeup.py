"""Figure 2 — sizeup characteristics of pCLOUDS.

The paper plots speedup vs number of records for p = 4, 8 and 16 and
reports that the gain with data size is marginal at 4 and 8 processors
(speedup already near the maximum) but appreciable at 16 processors,
because computation grows with data size while the count-matrix /
split-point communication does not. This bench regenerates the three
series and checks that shape.
"""

import pytest

from repro.bench.reporting import format_series, format_table

from conftest import SIZES

SIZEUP_RANKS = [4, 8, 16]


@pytest.mark.benchmark(group="fig2")
def test_fig2_sizeup(benchmark, grid):
    def run():
        return {
            p: [grid.speedup(n, p) for n in SIZES.values()]
            for p in SIZEUP_RANKS
        }

    curves = benchmark.pedantic(run, rounds=1, iterations=1)

    print("\nFigure 2: speedup vs records (paper-scale labels)")
    rows = [
        [f"p={p}", *(f"{s:.2f}" for s in curves[p])] for p in SIZEUP_RANKS
    ]
    print(format_table(["machine", *SIZES.keys()], rows))
    for p in SIZEUP_RANKS:
        print(format_series(f"{p} processors", list(SIZES.keys()), curves[p]))
    print(
        "paper: marginal sizeup gain at p=4,8 (already near maximum); "
        "appreciable gain at p=16"
    )

    gain = {p: curves[p][-1] - curves[p][0] for p in SIZEUP_RANKS}
    # p=16 gains the most from growing data
    assert gain[16] > gain[4]
    assert gain[16] > 0.5
    # p=4 is already close to its maximum at the smallest size
    assert curves[4][0] > 3.0
    benchmark.extra_info["sizeup_gain"] = {k: round(v, 2) for k, v in gain.items()}
