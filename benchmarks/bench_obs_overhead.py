"""Instrumentation overhead gate: metered vs unmetered wall time.

The live metrics registry (:mod:`repro.obs`) promises to be cheap enough
to leave on: per-rank shards with plain dict updates, byte accounting
read off :class:`~repro.cluster.stats.RankStats` deltas instead of
payload re-walks, and zero work on the unmetered path (a single
``if ctx.observers:`` test per driver hook). This bench measures real
wall-clock time of the same fit with ``metrics=False`` and
``metrics=True``. Shared CI runners make single timings noisy (±10%
observed), so the estimator is the **median ratio over temporally
adjacent (plain, metered) pairs**: pairing cancels slow host-load
drift, the median discards contention spikes. The bench also verifies
the trees are bit-identical and the simulated elapsed times equal
(instrumentation must never advance the simulated clocks).

Run standalone (CI smoke uses ``--quick``)::

    PYTHONPATH=src python benchmarks/bench_obs_overhead.py [--quick]

Exits non-zero if metered wall time exceeds unmetered by more than
``--max-overhead`` (default 5%), if the trees differ, or if the
simulated elapsed time changes. A point over the threshold is
re-measured up to twice with more pairs, keeping the lowest median —
noise only inflates the estimate, a real regression survives every
retry.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.bench.harness import ExperimentConfig, run_pclouds  # noqa: E402
from repro.bench.reporting import format_table  # noqa: E402

FULL_POINTS = [(18_000, 8), (36_000, 8)]
QUICK_POINTS = [(6_000, 4)]


def time_point(cfg: ExperimentConfig, repeats: int) -> tuple[dict, dict, float]:
    """Run ``repeats`` adjacent (plain, metered) pairs; the overhead
    estimate is the median of the per-pair wall-time ratios. Also
    returns the per-mode artifacts for the identical-output checks
    (from the last run of each mode)."""
    ratios = []
    best = {False: float("inf"), True: float("inf")}
    res = {}
    for _ in range(repeats):
        wall = {}
        for metrics in (False, True):
            t0 = time.perf_counter()
            res[metrics] = run_pclouds(cfg, metrics=metrics)
            wall[metrics] = time.perf_counter() - t0
            best[metrics] = min(best[metrics], wall[metrics])
        ratios.append(wall[True] / wall[False])
    plain, metered = (
        {
            "wall_s": best[m],
            "elapsed": res[m].elapsed,
            "_tree": res[m].tree.to_dict(),  # stripped before serialization
        }
        for m in (False, True)
    )
    return plain, metered, statistics.median(ratios) - 1.0


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument(
        "--quick", action="store_true",
        help="small grid for the CI smoke job",
    )
    ap.add_argument(
        "--repeats", type=int, default=5,
        help="number of (plain, metered) timing pairs per grid point",
    )
    ap.add_argument(
        "--max-overhead", type=float, default=0.05,
        help="fail if (metered - plain) / plain exceeds this fraction",
    )
    ap.add_argument(
        "--out", default="BENCH_obs_overhead.json",
        help="output JSON path",
    )
    ap.add_argument("--scale", type=float, default=200.0)
    args = ap.parse_args(argv)

    grid = QUICK_POINTS if args.quick else FULL_POINTS

    points = []
    failures = []
    for n, p in grid:
        cfg = ExperimentConfig(n_records=n, n_ranks=p, scale=args.scale, seed=0)
        # warm-up pass so imports / numpy first-call costs are not
        # charged to whichever mode happens to run first
        run_pclouds(cfg)
        plain, metered, overhead = time_point(cfg, args.repeats)
        for retry in range(2):
            if overhead <= args.max_overhead:
                break
            # re-measure with more pairs and keep the lowest median:
            # host-load noise only ever *adds* time, so of several
            # estimates of the same deterministic workload the lowest is
            # the least contaminated; a real regression inflates all of
            # them
            print(
                f"n={n} p={p}: overhead {overhead:.1%} over threshold, "
                f"re-measuring with {2 * args.repeats} pairs "
                f"(retry {retry + 1}/2)"
            )
            plain, metered, remeasured = time_point(cfg, 2 * args.repeats)
            overhead = min(overhead, remeasured)
        identical = plain.pop("_tree") == metered.pop("_tree")
        point = {
            "n_records": n,
            "n_ranks": p,
            "plain": plain,
            "metered": metered,
            "identical_trees": identical,
            "overhead": overhead,
        }
        points.append(point)
        where = f"n={n} p={p}"
        if not identical:
            failures.append(f"{where}: trees differ with metrics enabled")
        if metered["elapsed"] != plain["elapsed"]:
            failures.append(
                f"{where}: simulated elapsed changed "
                f"({metered['elapsed']!r} != {plain['elapsed']!r})"
            )
        if overhead > args.max_overhead:
            failures.append(
                f"{where}: instrumentation overhead {overhead:.1%} exceeds "
                f"{args.max_overhead:.0%}"
            )

    print(
        "Metrics instrumentation overhead "
        "(median ratio over %d interleaved pairs; times are best-of)" % args.repeats
    )
    rows = [
        [
            str(pt["n_records"]),
            str(pt["n_ranks"]),
            f"{pt['plain']['wall_s']:.3f}",
            f"{pt['metered']['wall_s']:.3f}",
            f"{pt['overhead']:+.1%}",
            "yes" if pt["identical_trees"] else "NO",
        ]
        for pt in points
    ]
    print(
        format_table(
            ["records", "p", "plain(s)", "metered(s)", "overhead", "same tree"],
            rows,
        )
    )

    payload = {
        "benchmark": "obs_overhead",
        "quick": bool(args.quick),
        "repeats": args.repeats,
        "max_overhead": args.max_overhead,
        "scale": args.scale,
        "points": points,
        "ok": not failures,
        "failures": failures,
    }
    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")
    if failures:
        for f in failures:
            print(f"FAIL: {f}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
