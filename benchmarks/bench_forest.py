"""Forest regime sweep: shared chunk cache payoff and the scheduling
crossover.

Trains B bagged trees over ONE distributed spool (per-tree multiplicity
masks, no data duplication) at every feasible group count G — G=1 is the
paper's data-parallel regime (B sequential waves over the full machine),
G=min(B,p) is tree-parallel (disjoint rank groups fit concurrently),
anything between is hybrid. Two acceptance gates:

* **cross-tree read reduction**: at B=4 tree-parallel with the default
  forest pool (sized to hold the shared base spool), concurrent trees
  must serve each other's chunks well enough that total disk reads drop
  >= 1.5x versus ``buffer_pool="off"``;
* **measured crossover**: the winning group count must flip somewhere in
  the B x pool_ratio sweep (no single G dominates every point), and the
  sweep records where the cost model's ``auto`` pick agrees.

Every point also checks member bit-identity: the forest fitted at any G
must equal the forest fitted at G=1 tree for tree (CLOUDS-SSE splits are
functions of the global record multiset, so the schedule must not leak
into the model).

Run standalone (CI smoke uses ``--quick``)::

    PYTHONPATH=src python benchmarks/bench_forest.py [--quick]

Writes ``BENCH_forest.json``; exits non-zero if any gate fails.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.bench.harness import (  # noqa: E402
    ForestExperimentConfig,
    run_forest,
    scaled_models,
)
from repro.bench.reporting import format_table  # noqa: E402
from repro.data import quest_schema  # noqa: E402
from repro.dnc import DncCostModel, TreeShape  # noqa: E402
from repro.forest import candidate_groups, resolve_n_groups  # noqa: E402

P = 4
READ_REDUCTION_FLOOR = 1.5

#: None = the forest default (pool auto-sized to the tree-parallel
#: working set); explicit ratios ablate smaller caches
FULL_SIZES = {"0.24M": 2_400}
FULL_TREES = [2, 4, 8]
FULL_RATIOS = [8.0, None]
QUICK_SIZES = {"0.12M": 1_200}
QUICK_TREES = [2, 4]
QUICK_RATIOS = [None]


def ratio_label(ratio: float | None) -> str:
    return "fit" if ratio is None else f"{ratio:g}"


def regime_for(g: int, cands: list[int]) -> str:
    if g == 1:
        return "data"
    if g == cands[-1]:
        return "tree"
    return "hybrid"


def make_config(n: int, b: int, ratio: float | None, g: int, cands: list[int],
                scale: float, pool: str = "lru+prefetch") -> ForestExperimentConfig:
    regime = regime_for(g, cands)
    return ForestExperimentConfig(
        n_records=n, n_ranks=P, scale=scale, seed=0,
        n_trees=b, regime=regime,
        n_groups=g if regime == "hybrid" else None,
        pool_ratio=ratio, buffer_pool=pool,
    )


def modeled_pick(cfg: ForestExperimentConfig) -> int:
    """The cost model's ``auto`` choice for this point, computed exactly
    as the trainer computes it (no fit needed)."""
    schema = quest_schema()
    row = schema.row_nbytes()
    net, disk, compute = scaled_models(cfg.scale)
    model = DncCostModel(network=net, disk=disk, compute=compute, n_ranks=P)
    shape = TreeShape(
        n_records=cfg.n_records,
        leaf_records=cfg.min_node,
        record_nbytes=row,
    )
    limit = cfg.memory_limit_bytes(row)
    stats = len(schema.names) * cfg.resolved_q_root() * schema.n_classes * 8
    g, _ = resolve_n_groups(
        "auto", n_ranks=P, n_trees=cfg.n_trees, model=model, shape=shape,
        memory_limit=limit, pool_bytes=cfg.pool_nbytes(row),
        stats_nbytes=stats,
    )
    return g


def run_point(cfg: ForestExperimentConfig) -> dict:
    res = run_forest(cfg)
    return {
        "elapsed": res.elapsed,
        "n_groups": res.n_groups,
        "n_waves": res.n_waves,
        "disk_read_bytes": int(sum(res.disk_read_bytes)),
        "cross_tree": res.cross_tree,
        # structural part only: per-tree meta records the schedule
        # (n_groups), which legitimately differs between regimes
        "_trees": [t.to_dict()["root"] for t in res.forest.trees],
    }


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument(
        "--quick", action="store_true",
        help="small grid for the CI smoke job",
    )
    ap.add_argument("--out", default="BENCH_forest.json", help="output JSON path")
    ap.add_argument("--scale", type=float, default=100.0)
    args = ap.parse_args(argv)

    sizes = QUICK_SIZES if args.quick else FULL_SIZES
    trees = QUICK_TREES if args.quick else FULL_TREES
    ratios = QUICK_RATIOS if args.quick else FULL_RATIOS

    points = []
    failures = []
    winners = []  # measured winning group count per (size, B, ratio)
    reductions = {}  # size label -> read reduction at the gate point

    for label, n in sizes.items():
        for b in trees:
            cands = candidate_groups(P, b)
            for ratio in ratios:
                by_g = {}
                for g in cands:
                    cfg = make_config(n, b, ratio, g, cands, args.scale)
                    by_g[g] = run_point(cfg)

                # member bit-identity across every schedule of this point
                ref = by_g[cands[0]].pop("_trees")
                identical = True
                for g in cands[1:]:
                    if by_g[g].pop("_trees") != ref:
                        identical = False
                if not identical:
                    failures.append(
                        f"{label} B={b} ratio={ratio_label(ratio)}: "
                        f"forests differ across group counts"
                    )

                winner = min(by_g, key=lambda g: by_g[g]["elapsed"])
                modeled = modeled_pick(
                    make_config(n, b, ratio, cands[-1], cands, args.scale)
                )
                winners.append(winner)
                point = {
                    "dataset": label,
                    "n_records": n,
                    "n_trees": b,
                    "pool_ratio": ratio_label(ratio),
                    "winner_g": winner,
                    "modeled_g": modeled,
                    "model_agrees": modeled == winner,
                    "identical_forests": identical,
                    "by_group": {str(g): by_g[g] for g in cands},
                }

                # the cross-tree gate: B=4 tree-parallel, default pool
                if b == 4 and ratio is None:
                    g_tree = cands[-1]
                    off = run_point(
                        make_config(n, b, ratio, g_tree, cands, args.scale,
                                    pool="off")
                    )
                    if off.pop("_trees") != ref:
                        failures.append(
                            f"{label} B={b}: pool-off forest differs"
                        )
                    reduction = (
                        off["disk_read_bytes"]
                        / by_g[g_tree]["disk_read_bytes"]
                    )
                    reductions[label] = reduction
                    point["pool_off"] = off
                    point["read_reduction"] = reduction
                    if reduction < READ_REDUCTION_FLOOR:
                        failures.append(
                            f"{label} B=4 tree-parallel: cross-tree read "
                            f"reduction {reduction:.2f}x below the "
                            f"{READ_REDUCTION_FLOOR}x floor"
                        )
                points.append(point)

    if len(set(winners)) < 2:
        failures.append(
            f"no regime crossover: group count {winners[0] if winners else '?'} "
            f"won every point of the B x pool_ratio sweep"
        )

    print("Forest: regime sweep over one shared out-of-core spool")
    rows = []
    for pt in points:
        per_g = ", ".join(
            f"G={g}: {r['elapsed']:.1f}s" for g, r in pt["by_group"].items()
        )
        rows.append([
            pt["dataset"],
            str(pt["n_trees"]),
            pt["pool_ratio"],
            per_g,
            str(pt["winner_g"]),
            str(pt["modeled_g"]),
            f"{pt['read_reduction']:.2f}x" if "read_reduction" in pt else "-",
            "yes" if pt["identical_forests"] else "NO",
        ])
    print(format_table(
        ["data", "B", "pool", "elapsed by group count", "win G",
         "model G", "read redux", "same forest"],
        rows,
    ))

    payload = {
        "benchmark": "forest",
        "quick": bool(args.quick),
        "scale": args.scale,
        "n_ranks": P,
        "read_reduction_floor": READ_REDUCTION_FLOOR,
        "sizes": sizes,
        "trees": trees,
        "pool_ratios": [ratio_label(r) for r in ratios],
        "points": points,
        "winner_groups": sorted(set(winners)),
        "min_cross_tree_read_reduction": (
            min(reductions.values()) if reductions else 0.0
        ),
        "ok": not failures,
        "failures": failures,
    }
    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")
    if failures:
        for f in failures:
            print(f"FAIL: {f}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
