"""Figure 3 — scaleup characteristics of pCLOUDS.

The paper fixes the per-processor data density (0.2-0.6 million records
per processor) and plots parallel runtime vs machine size: ideally flat,
in practice a mild near-linear increase because idle processors are not
regrouped during the delayed task-parallel phase (and collective
latencies grow with log p). This bench regenerates three density curves
at 1:200 scale and checks (a) runtime grows only mildly with p — far
slower than the 16x work growth — and (b) higher densities sit strictly
above lower ones.
"""

import pytest

from repro.bench.harness import ExperimentConfig, run_pclouds
from repro.bench.reporting import format_series, format_table

from conftest import SCALE

#: records per processor: paper's 0.2M/0.4M/0.6M at 1:SCALE
DENSITIES = {"0.2M/proc": 1000, "0.4M/proc": 2000, "0.6M/proc": 3000}
RANKS = [1, 2, 4, 8, 16]


@pytest.mark.benchmark(group="fig3")
def test_fig3_scaleup(benchmark):
    def run():
        curves = {}
        for label, per_proc in DENSITIES.items():
            curves[label] = [
                run_pclouds(
                    ExperimentConfig(
                        n_records=per_proc * p, n_ranks=p, scale=SCALE, seed=0
                    )
                ).elapsed
                for p in RANKS
            ]
        return curves

    curves = benchmark.pedantic(run, rounds=1, iterations=1)

    print("\nFigure 3: parallel runtime vs processors at fixed density")
    rows = [
        [label, *(f"{t:.1f}" for t in curves[label])] for label in DENSITIES
    ]
    print(format_table(["density", *(f"p={p}" for p in RANKS)], rows))
    for label in DENSITIES:
        print(format_series(label, RANKS, curves[label]))
    print(
        "paper: near-linear mild increase in runtime with p "
        "(no processor regrouping in the task-parallel phase)"
    )

    for label, series in curves.items():
        # scaleup: total work grows 16x from p=1 to p=16; runtime must
        # grow far less (ideal flat; the paper shows a mild increase, and
        # our slope is a little steeper because the 1:200 record scale
        # keeps per-node latencies constant while node sizes shrink —
        # see EXPERIMENTS.md)
        assert series[-1] < series[0] * 6.0, (label, series)
        # and the increase is monotone, as in the paper's figure
        assert all(b >= a for a, b in zip(series, series[1:])), (label, series)
    # higher densities cost more at every machine size
    for p_idx in range(len(RANKS)):
        assert (
            curves["0.6M/proc"][p_idx]
            > curves["0.4M/proc"][p_idx]
            > curves["0.2M/proc"][p_idx]
        )
    # denser curves amortise the fixed overheads better: their relative
    # runtime growth is the smallest
    growth = {k: v[-1] / v[0] for k, v in curves.items()}
    assert growth["0.6M/proc"] < growth["0.2M/proc"]
    benchmark.extra_info["runtime_growth_p16_over_p1"] = {
        k: round(v[-1] / v[0], 2) for k, v in curves.items()
    }
