"""Serving-path benchmark: compiled batch engine vs reference prediction.

Three read paths over the same fitted tree and the same Quest record
stream:

* **per-record reference** — ``DecisionTree.predict`` called one record
  at a time, the shape a naive serving loop would have (measured on a
  subsample and extrapolated; it is orders of magnitude too slow to run
  over the full stream);
* **vectorized reference** — ``DecisionTree.predict`` on the whole
  batch (the training-side evaluation path);
* **compiled batch engine** — ``CompiledTree.predict_batch`` through
  :class:`repro.serve.ServeEngine` with the replay driver, which also
  yields exact p50/p99 batch latency via the ``repro_serve_*`` metrics.

Writes ``BENCH_serve.json``. Exits non-zero if the compiled engine's
labels differ from the reference anywhere on the stream, or if the
compiled engine is not at least ``MIN_SPEEDUP``× the per-record
reference in records/sec.

Run standalone (CI smoke uses ``--quick``)::

    PYTHONPATH=src python benchmarks/bench_serve.py [--quick]
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.bench.reporting import format_table  # noqa: E402
from repro.clouds import StoppingRule, fit_direct  # noqa: E402
from repro.data import generate_quest, quest_schema  # noqa: E402
from repro.obs import HealthThresholds  # noqa: E402
from repro.serve import (  # noqa: E402
    ReplayConfig,
    ServeEngine,
    replay,
    request_batches,
)

#: the acceptance floor: compiled batch engine vs per-record reference
MIN_SPEEDUP = 10.0

#: records the per-record baseline actually walks (extrapolated after)
BASELINE_SAMPLE = 2_000

FULL = {"train": 20_000, "serve": 2_000_000, "batches": [1024, 4096, 16384]}
QUICK = {"train": 6_000, "serve": 300_000, "batches": [4096]}


def per_record_records_per_sec(tree, columns, n_sample: int) -> float:
    """Reference predict driven one record at a time."""
    singles = [
        {k: v[i : i + 1] for k, v in columns.items()} for i in range(n_sample)
    ]
    t0 = time.perf_counter()
    for s in singles:
        tree.predict(s)
    return n_sample / (time.perf_counter() - t0)


def vectorized_records_per_sec(tree, columns, n: int) -> tuple[float, np.ndarray]:
    t0 = time.perf_counter()
    out = tree.predict(columns)
    return n / (time.perf_counter() - t0), out


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument(
        "--quick", action="store_true",
        help="small grid for the CI smoke job",
    )
    ap.add_argument("--out", default="BENCH_serve.json", help="output JSON path")
    ap.add_argument("--seed", type=int, default=0)
    args = ap.parse_args(argv)

    grid = QUICK if args.quick else FULL
    schema = quest_schema()
    train_cols, train_labels = generate_quest(
        grid["train"], function=2, seed=args.seed, noise=0.02
    )
    tree = fit_direct(schema, train_cols, train_labels, StoppingRule(min_node=8))
    compiled = tree.compile()

    serve_cols, _ = generate_quest(
        grid["serve"], function=2, seed=args.seed + 1, noise=0.02
    )
    n = grid["serve"]

    base_rps = per_record_records_per_sec(
        tree, serve_cols, min(BASELINE_SAMPLE, n)
    )
    vec_rps, ref_labels = vectorized_records_per_sec(tree, serve_cols, n)

    points = []
    failures = []
    for batch_size in grid["batches"]:
        engine = ServeEngine(compiled)
        config = ReplayConfig(
            n_records=n, batch_size=batch_size, seed=args.seed + 1, noise=0.02
        )
        # generous latency ceiling: CI runners are noisy; identity and
        # speedup are the gates, the health alerts are informational
        report = replay(engine, config, HealthThresholds(serve_p99_seconds=1.0))

        batches, _ = request_batches(config)
        got = np.concatenate([compiled.predict_batch(b) for b in batches])
        identical = bool(np.array_equal(got, ref_labels))
        speedup = report.records_per_sec / base_rps
        # the apples-to-apples serving comparison: the reference walker
        # fed the same batch stream
        t0 = time.perf_counter()
        for b in batches:
            tree.predict(b)
        ref_batched_rps = n / (time.perf_counter() - t0)
        point = {
            "batch_size": batch_size,
            "identical_labels": identical,
            "per_record_rps": base_rps,
            "vectorized_rps": vec_rps,
            "ref_batched_rps": ref_batched_rps,
            "compiled_rps": report.records_per_sec,
            "speedup_vs_per_record": speedup,
            "speedup_vs_ref_batched": report.records_per_sec / ref_batched_rps,
            "speedup_vs_vectorized": report.records_per_sec / vec_rps,
            "replay": report.to_dict(),
        }
        points.append(point)
        where = f"batch={batch_size}"
        if not identical:
            failures.append(f"{where}: compiled labels differ from reference")
        if speedup < MIN_SPEEDUP:
            failures.append(
                f"{where}: speedup {speedup:.1f}x below the "
                f"{MIN_SPEEDUP:g}x floor"
            )

    print(
        f"Serving path: {tree.n_nodes}-node tree (depth {tree.depth}), "
        f"{n:,} Quest records"
    )
    print(
        f"per-record reference: {base_rps:,.0f} records/sec  |  "
        f"vectorized reference: {vec_rps:,.0f} records/sec"
    )
    rows = [
        [
            str(pt["batch_size"]),
            f"{pt['compiled_rps']:,.0f}",
            f"{pt['speedup_vs_per_record']:.0f}x",
            f"{pt['speedup_vs_ref_batched']:.2f}x",
            f"{pt['replay']['latency_ms']['p50']:.3f}",
            f"{pt['replay']['latency_ms']['p99']:.3f}",
            "yes" if pt["identical_labels"] else "NO",
        ]
        for pt in points
    ]
    print(
        format_table(
            [
                "batch", "records/sec", "vs per-rec", "vs ref@batch",
                "p50 ms", "p99 ms", "identical",
            ],
            rows,
        )
    )

    payload = {
        "benchmark": "serve",
        "quick": bool(args.quick),
        "model": {
            "n_nodes": tree.n_nodes,
            "n_leaves": tree.n_leaves,
            "depth": tree.depth,
            "table_bytes": compiled.nbytes,
            "train_records": grid["train"],
        },
        "serve_records": n,
        "baseline_sample": min(BASELINE_SAMPLE, n),
        "min_speedup": MIN_SPEEDUP,
        "points": points,
        "ok": not failures,
        "failures": failures,
    }
    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")
    if failures:
        for f in failures:
            print(f"FAIL: {f}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
