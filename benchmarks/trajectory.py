"""Benchmark trajectory: aggregate every ``BENCH_*.json`` into one
schema-validated ``BENCH_trajectory.json`` with a regression gate.

Each bench already writes a structured payload (see the ``bench_*``
scripts); this tool reduces every payload to a single *headline metric*
(the number the PR that introduced the bench argued from), stamps the
commit and timestamp, and compares each headline against the recorded
baseline in ``benchmarks/baselines.json``. A headline that degrades by
more than the allowed percentage fails the gate — the perf story from
the optimisation PRs becomes a machine-checked time series instead of
prose in CHANGES.md.

Baselines are recorded from ``--quick`` runs (what CI executes); the
gate only fires when the payload's ``quick`` flag matches the recorded
baseline's, so a local full-size run never trips a smoke threshold.

Usage::

    PYTHONPATH=src python benchmarks/trajectory.py \
        [--dir .] [--out BENCH_trajectory.json] \
        [--baselines benchmarks/baselines.json] [--max-regression-pct 25]

Exit status 1 when any headline regressed past the threshold. A bench's
own ``ok: false`` travels through as the ``bench_ok`` annotation but is
not re-enforced here — that bench's CI job already reports it.
"""

from __future__ import annotations

import argparse
import datetime
import glob
import json
import os
import subprocess
import sys

SCHEMA_VERSION = 1

#: payload["benchmark"] -> (metric name, direction, extractor).
#: direction "higher" = bigger is better; "lower" = smaller is better.
#: Extractors take the whole payload and reduce to the *worst* point so
#: the gate watches the weakest case, not a lucky average.
HEADLINES = {
    "frontier_batching": (
        "min_elapsed_ratio",
        "higher",
        lambda p: min(pt["elapsed_ratio"] for pt in p["points"]),
    ),
    "bufferpool": (
        "min_read_reduction",
        "higher",
        lambda p: min(pt["read_reduction"] for pt in p["points"]),
    ),
    "voting": (
        "min_reduction_vs_attribute",
        "higher",
        lambda p: min(pt["reduction_vs_attribute"] for pt in p["points"]),
    ),
    "serve": (
        "min_speedup_vs_per_record",
        "higher",
        lambda p: min(pt["speedup_vs_per_record"] for pt in p["points"]),
    ),
    "obs_overhead": (
        "max_overhead",
        "lower",
        lambda p: max(pt["overhead"] for pt in p["points"]),
    ),
    "forest": (
        "min_cross_tree_read_reduction",
        "higher",
        lambda p: float(p["min_cross_tree_read_reduction"]),
    ),
}


def _commit() -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True, text=True, timeout=10,
            cwd=os.path.dirname(os.path.abspath(__file__)),
        )
        if out.returncode == 0:
            return out.stdout.strip()
    except OSError:  # pragma: no cover - no git on PATH
        pass
    return "unknown"


def headline_entry(payload: dict) -> dict | None:
    """Reduce one bench payload to its trajectory entry (None when the
    bench has no registered headline)."""
    bench = payload.get("benchmark")
    spec = HEADLINES.get(bench)
    if spec is None or not payload.get("points"):
        return None
    metric, direction, extract = spec
    return {
        "bench": bench,
        "metric": metric,
        "direction": direction,
        "value": float(extract(payload)),
        "quick": bool(payload.get("quick", False)),
        "bench_ok": bool(payload.get("ok", True)),
    }


def change_pct(entry: dict, baseline: float) -> float:
    """Signed degradation percentage vs. the baseline: positive means
    the headline got *worse* in its direction."""
    if baseline == 0:
        return 0.0
    delta = (entry["value"] - baseline) / abs(baseline) * 100.0
    return -delta if entry["direction"] == "higher" else delta


def gate(entries: list[dict], baselines: dict, max_pct: float) -> list[str]:
    """Apply baselines; mutates entries in place with ``baseline``,
    ``change_pct`` and ``regressed``; returns failure messages.

    Only *headline regressions vs. the recorded baseline* fail the
    gate — a bench's internal ``ok: false`` is already enforced by that
    bench's own CI job and travels here as the ``bench_ok`` annotation,
    so the trajectory stays a pure time-series check and does not
    double-report known bench failures."""
    failures = []
    for e in entries:
        base = baselines.get(e["bench"])
        if base is None or bool(base.get("quick", False)) != e["quick"]:
            e["regressed"] = False
            continue  # no comparable baseline recorded
        e["baseline"] = float(base["value"])
        pct = change_pct(e, e["baseline"])
        e["change_pct"] = pct
        e["regressed"] = pct > max_pct
        if e["regressed"]:
            worse = "below" if e["direction"] == "higher" else "above"
            failures.append(
                f"{e['bench']}: {e['metric']} = {e['value']:.4g} is "
                f"{pct:.1f}% {worse} baseline {e['baseline']:.4g} "
                f"(allowed {max_pct:g}%)"
            )
    return failures


def _validate(payload: dict) -> None:
    """Hand-rolled schema check (no jsonschema dependency): the shape CI
    consumers — and the next PR's dashboards — may rely on."""
    assert payload["schema_version"] == SCHEMA_VERSION
    assert isinstance(payload["commit"], str)
    assert isinstance(payload["timestamp"], str)
    assert isinstance(payload["entries"], list)
    for e in payload["entries"]:
        assert isinstance(e["bench"], str)
        assert isinstance(e["metric"], str)
        assert e["direction"] in ("higher", "lower")
        assert isinstance(e["value"], float)
        assert isinstance(e["quick"], bool)
        assert isinstance(e["regressed"], bool)
        if "baseline" in e:
            assert isinstance(e["baseline"], float)
            assert isinstance(e["change_pct"], float)


def build_trajectory(
    bench_dir: str, baselines: dict, max_pct: float
) -> tuple[dict, list[str]]:
    entries = []
    skipped = []
    for path in sorted(glob.glob(os.path.join(bench_dir, "BENCH_*.json"))):
        if os.path.basename(path) == "BENCH_trajectory.json":
            continue
        try:
            with open(path) as fh:
                bench_payload = json.load(fh)
        except (OSError, json.JSONDecodeError):
            # a crashed bench can leave an empty or truncated payload
            # behind; skip it rather than killing the whole aggregation
            skipped.append(os.path.basename(path) + " (unreadable)")
            continue
        if not isinstance(bench_payload, dict):
            skipped.append(os.path.basename(path) + " (unreadable)")
            continue
        entry = headline_entry(bench_payload)
        if entry is None:
            skipped.append(os.path.basename(path))
            continue
        entries.append(entry)
    failures = gate(entries, baselines, max_pct)
    payload = {
        "benchmark": "trajectory",
        "schema_version": SCHEMA_VERSION,
        "commit": _commit(),
        "timestamp": datetime.datetime.now(datetime.timezone.utc).isoformat(),
        "max_regression_pct": max_pct,
        "entries": entries,
        "skipped": skipped,
        "ok": not failures,
        "failures": failures,
    }
    _validate(payload)
    return payload, failures


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument(
        "--dir", default=".", help="directory holding the BENCH_*.json files"
    )
    ap.add_argument("--out", default="BENCH_trajectory.json")
    ap.add_argument(
        "--baselines",
        default=os.path.join(os.path.dirname(__file__), "baselines.json"),
        help="recorded headline baselines",
    )
    ap.add_argument(
        "--max-regression-pct", type=float, default=25.0,
        help="fail when a headline degrades more than this vs. baseline",
    )
    args = ap.parse_args(argv)

    baselines = {}
    if os.path.exists(args.baselines):
        with open(args.baselines) as fh:
            baselines = json.load(fh).get("headlines", {})
    payload, failures = build_trajectory(
        args.dir, baselines, args.max_regression_pct
    )

    with open(args.out, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    print(f"wrote {args.out} ({len(payload['entries'])} headline(s), "
          f"commit {payload['commit'][:12]})")
    for e in payload["entries"]:
        vs = ""
        if "baseline" in e:
            vs = (f"  vs baseline {e['baseline']:.4g} "
                  f"({e['change_pct']:+.1f}% worse)"
                  if e["change_pct"] >= 0 else
                  f"  vs baseline {e['baseline']:.4g} "
                  f"({-e['change_pct']:.1f}% better)")
        print(f"  {e['bench']:20s} {e['metric']:28s} {e['value']:.4g}{vs}")
    if payload["skipped"]:
        print(f"  (no headline registered for: "
              f"{', '.join(payload['skipped'])})")
    if failures:
        for msg in failures:
            print(f"REGRESSION: {msg}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
