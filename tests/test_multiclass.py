"""Multi-class and unusual-schema coverage: the code paths the two-class
Quest workload never touches (2^c SSE corners, multi-class categorical
subsets, >2-class confusion matrices, categorical-only schemas)."""

import numpy as np
import pytest

from repro.clouds import (
    CloudsBuilder,
    CloudsConfig,
    SliqBuilder,
    SprintBuilder,
    StoppingRule,
    accuracy,
    confusion_matrix,
    fit_direct,
    mdl_prune,
    validate_tree,
)
from repro.core import DistributedDataset, PClouds, PCloudsConfig, parallel_evaluate
from repro.data import make_schema
from repro.data.synthetic import blob_schema, make_blobs

from conftest import make_cluster


@pytest.fixture(scope="module")
def blobs4():
    return make_blobs(
        3000, blob_schema(n_numeric=3, n_categorical=2, cardinality=4,
                          n_classes=4),
        separation=2.5, noise=0.02, seed=9,
    )


class TestMakeBlobs:
    def test_shapes_and_ranges(self, blobs4):
        schema, cols, labels = blobs4
        assert schema.validate_columns(cols, labels) == 3000
        assert set(np.unique(labels)) == {0, 1, 2, 3}

    def test_separation_orders_means(self):
        schema, cols, labels = make_blobs(4000, separation=5.0, seed=1)
        means = [cols["x0"][labels == k].mean() for k in range(schema.n_classes)]
        assert all(b > a for a, b in zip(means, means[1:]))

    def test_categoricals_correlate_with_class(self, blobs4):
        _, cols, labels = blobs4
        agree = np.mean(cols["c0"] == (labels % 4))
        assert agree > 0.6

    def test_validation(self):
        with pytest.raises(ValueError):
            make_blobs(-1)
        with pytest.raises(ValueError):
            make_blobs(10, noise=2.0)


class TestMulticlassSequential:
    def test_direct_learns_blobs(self, blobs4):
        schema, cols, labels = blobs4
        tree = fit_direct(schema, cols, labels, StoppingRule(min_node=16))
        validate_tree(tree)
        assert accuracy(labels, tree.predict(cols)) > 0.9

    def test_exact_baselines_agree_multiclass(self, blobs4):
        schema, cols, labels = blobs4
        stop = StoppingRule(min_node=32)
        direct = fit_direct(schema, cols, labels, stop)
        sprint = SprintBuilder(schema, stop).fit(cols, labels)
        sliq = SliqBuilder(schema, stop).fit(cols, labels)
        np.testing.assert_array_equal(direct.predict(cols), sprint.predict(cols))
        np.testing.assert_array_equal(direct.predict(cols), sliq.predict(cols))

    def test_clouds_sse_multiclass(self, blobs4):
        schema, cols, labels = blobs4
        tree = CloudsBuilder(
            schema, CloudsConfig(method="sse", q_root=60, sample_size=600,
                                 min_node=16)
        ).fit_arrays(cols, labels, seed=2)
        validate_tree(tree)
        assert accuracy(labels, tree.predict(cols)) > 0.88

    def test_confusion_matrix_4_classes(self, blobs4):
        schema, cols, labels = blobs4
        tree = fit_direct(schema, cols, labels, StoppingRule(min_node=16))
        m = confusion_matrix(labels, tree.predict(cols), 4)
        assert m.shape == (4, 4)
        assert m.sum() == len(labels)
        assert np.trace(m) > 0.9 * len(labels)

    def test_mdl_pruning_multiclass(self, blobs4):
        schema, cols, labels = blobs4
        tree = fit_direct(schema, cols, labels, StoppingRule(min_node=2))
        _, removed = mdl_prune(tree)
        assert removed >= 0
        validate_tree(tree)


class TestMulticlassParallel:
    def test_pclouds_multiclass_matches_single_rank(self, blobs4):
        schema, cols, labels = blobs4
        trees = {}
        for p in (1, 4):
            cluster = make_cluster(p)
            ds = DistributedDataset.create(cluster, schema, cols, labels, seed=1)
            res = PClouds(
                PCloudsConfig(
                    clouds=CloudsConfig(q_root=60, sample_size=600, min_node=16)
                )
            ).fit(ds, seed=2)
            validate_tree(res.tree)
            trees[p] = res.tree
        # meta records n_ranks (provenance, not structure): compare roots
        assert trees[1].to_dict()["root"] == trees[4].to_dict()["root"]
        assert accuracy(labels, trees[4].predict(cols)) > 0.88

    def test_parallel_evaluate_multiclass(self, blobs4):
        schema, cols, labels = blobs4
        tree = fit_direct(schema, cols, labels, StoppingRule(min_node=16))
        cluster = make_cluster(3)
        ds = DistributedDataset.create(cluster, schema, cols, labels, seed=3)
        ev = parallel_evaluate(ds, tree)
        assert ev.confusion.shape == (4, 4)
        assert ev.accuracy == pytest.approx(accuracy(labels, tree.predict(cols)))
        assert len(ev.per_class_recall()) == 4


class TestUnusualSchemas:
    def test_categorical_only_schema(self):
        schema = make_schema([], {"c0": 5, "c1": 3}, n_classes=2)
        rng = np.random.default_rng(4)
        cols = {
            "c0": rng.integers(0, 5, 800).astype(np.int32),
            "c1": rng.integers(0, 3, 800).astype(np.int32),
        }
        labels = ((cols["c0"] >= 2) ^ (cols["c1"] == 1)).astype(np.int32)
        tree = fit_direct(schema, cols, labels, StoppingRule(min_node=4))
        assert accuracy(labels, tree.predict(cols)) == 1.0

    def test_pclouds_categorical_only(self):
        schema = make_schema([], {"c0": 6}, n_classes=2)
        rng = np.random.default_rng(5)
        cols = {"c0": rng.integers(0, 6, 1000).astype(np.int32)}
        labels = (cols["c0"] % 2).astype(np.int32)
        cluster = make_cluster(3)
        ds = DistributedDataset.create(cluster, schema, cols, labels, seed=1)
        res = PClouds(
            PCloudsConfig(clouds=CloudsConfig(q_root=10, sample_size=50))
        ).fit(ds)
        validate_tree(res.tree)
        assert accuracy(labels, res.tree.predict(cols)) == 1.0

    def test_numeric_only_schema(self):
        schema = make_schema(["x", "y"], {}, n_classes=3)
        _, cols, labels = make_blobs(
            1000,
            make_schema(["x", "y"], {}, n_classes=3),
            separation=4.0,
            seed=6,
        )
        tree = fit_direct(schema, cols, labels, StoppingRule(min_node=8))
        assert accuracy(labels, tree.predict(cols)) > 0.95

    def test_single_attribute(self):
        schema = make_schema(["x"], {}, n_classes=2)
        rng = np.random.default_rng(7)
        cols = {"x": rng.normal(size=500)}
        labels = (cols["x"] > 0.2).astype(np.int32)
        tree = fit_direct(schema, cols, labels, StoppingRule(min_node=2))
        assert accuracy(labels, tree.predict(cols)) == 1.0
        assert tree.root.split.attribute == "x"
