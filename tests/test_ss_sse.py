"""SS and SSE split derivation: boundary sweeps, alive intervals,
survival ratios, and the SSE-refines-SS relationship."""

import numpy as np
import pytest

from repro.clouds.builder import find_split_from_arrays, node_boundaries, CloudsConfig
from repro.clouds.direct import find_split_direct
from repro.clouds.intervals import boundaries_from_sample
from repro.clouds.nodestats import stats_from_arrays
from repro.clouds.splits import NUMERIC_SPLIT
from repro.clouds.ss import best_boundary_split, find_split_ss
from repro.clouds.sse import (
    determine_alive_intervals,
    evaluate_alive_interval,
    member_mask,
    refine_with_alive,
    survival_ratio,
)
from repro.data import generate_quest, quest_schema


@pytest.fixture(scope="module")
def node():
    schema = quest_schema()
    cols, labels = generate_quest(3000, function=2, seed=21, noise=0.02)
    bounds = {
        a.name: boundaries_from_sample(cols[a.name][:600], 40)
        for a in schema.numeric
    }
    stats = stats_from_arrays(schema, cols, labels, bounds)
    return schema, cols, labels, bounds, stats


class TestSS:
    def test_boundary_split_is_best_boundary(self, node):
        schema, cols, labels, bounds, stats = node
        split = best_boundary_split("salary", stats)
        # function 2 makes salary highly informative: a real split exists
        assert split is not None and split.kind == NUMERIC_SPLIT
        assert split.threshold in bounds["salary"]
        # its gini can never beat the exact (all points, all attributes) optimum
        exact = find_split_direct(schema, cols, labels)
        assert split.gini >= exact.gini - 1e-12

    def test_find_split_ss_covers_all_attributes(self, node):
        schema, cols, labels, bounds, stats = node
        split = find_split_ss(stats, schema)
        assert split is not None
        per_attr = [best_boundary_split(a.name, stats) for a in schema.numeric]
        best_num = min(s.gini for s in per_attr if s is not None)
        assert split.gini <= best_num + 1e-12

    def test_no_boundaries_no_numeric_split(self, node):
        schema, cols, labels, _, _ = node
        empty_bounds = {a.name: np.empty(0) for a in schema.numeric}
        stats = stats_from_arrays(schema, cols, labels, empty_bounds)
        assert best_boundary_split("salary", stats) is None
        # categorical splits still exist
        assert find_split_ss(stats, schema) is not None


class TestAliveIntervals:
    def test_alive_bounds_hold(self, node):
        schema, cols, labels, bounds, stats = node
        gini_min = find_split_ss(stats, schema).gini
        alive = determine_alive_intervals(stats, schema, gini_min)
        assert alive, "function-2 data must produce alive intervals at q=40"
        for iv in alive:
            assert iv.gini_est < gini_min
            assert iv.count >= 2
            assert iv.lo < iv.hi

    def test_member_mask_matches_interval_population(self, node):
        schema, cols, labels, bounds, stats = node
        gini_min = find_split_ss(stats, schema).gini
        for iv in determine_alive_intervals(stats, schema, gini_min):
            mask = member_mask(cols[iv.attribute], iv)
            assert int(mask.sum()) == iv.count

    def test_left_cum_matches_data(self, node):
        schema, cols, labels, bounds, stats = node
        gini_min = find_split_ss(stats, schema).gini
        for iv in determine_alive_intervals(stats, schema, gini_min)[:5]:
            left_mask = cols[iv.attribute] <= iv.lo
            expect = np.bincount(labels[left_mask], minlength=2)
            np.testing.assert_array_equal(iv.left_cum, expect)

    def test_survival_ratio_definition(self, node):
        schema, cols, labels, bounds, stats = node
        gini_min = find_split_ss(stats, schema).gini
        alive = determine_alive_intervals(stats, schema, gini_min)
        r = survival_ratio(alive, stats.n)
        assert 0.0 < r <= 1.0
        assert r == pytest.approx(sum(iv.count for iv in alive) / stats.n)

    def test_survival_shrinks_with_finer_intervals(self):
        schema = quest_schema()
        cols, labels = generate_quest(4000, function=2, seed=33, noise=0.02)
        ratios = []
        for q in (10, 40, 160):
            bounds = {
                a.name: boundaries_from_sample(cols[a.name][:1000], q)
                for a in schema.numeric
            }
            stats = stats_from_arrays(schema, cols, labels, bounds)
            gini_min = find_split_ss(stats, schema).gini
            alive = determine_alive_intervals(stats, schema, gini_min)
            ratios.append(survival_ratio(alive, stats.n))
        assert ratios[0] > ratios[-1]

    def test_empty_when_boundary_is_optimal(self, node):
        schema, cols, labels, bounds, stats = node
        # threshold 0: nothing estimates below it
        assert determine_alive_intervals(stats, schema, 0.0) == []

    def test_evaluate_alive_interval_scopes_to_node(self, node):
        schema, cols, labels, bounds, stats = node
        gini_min = find_split_ss(stats, schema).gini
        alive = determine_alive_intervals(stats, schema, gini_min)
        iv = max(alive, key=lambda v: v.count)
        mask = member_mask(cols[iv.attribute], iv)
        split = evaluate_alive_interval(
            iv, cols[iv.attribute][mask], labels[mask], stats.total, 2
        )
        assert split is not None
        assert iv.lo < split.threshold <= iv.hi
        # interior evaluation can only respect the lower bound
        assert split.gini >= iv.gini_est - 1e-9


class TestSseRefinement:
    def test_sse_never_worse_than_ss(self):
        schema = quest_schema()
        cols, labels = generate_quest(2500, function=2, seed=44, noise=0.05)
        cfg_ss = CloudsConfig(method="ss", q_root=50, sample_size=800)
        cfg_sse = CloudsConfig(method="sse", q_root=50, sample_size=800)
        bounds = node_boundaries(schema, {k: v[:800] for k, v in cols.items()}, 50)
        s_ss, _, r_ss = find_split_from_arrays(schema, cols, labels, bounds, cfg_ss)
        s_sse, _, r_sse = find_split_from_arrays(schema, cols, labels, bounds, cfg_sse)
        assert s_sse.gini <= s_ss.gini + 1e-12
        assert r_ss == 0.0 and r_sse >= 0.0

    def test_sse_finds_exact_best_numeric(self):
        # the exact optimum lies strictly inside an interval; SSE must
        # recover it because gini_est is a true lower bound
        schema = quest_schema()
        cols, labels = generate_quest(2000, function=2, seed=55, noise=0.0)
        cfg = CloudsConfig(method="sse", q_root=20, sample_size=300)
        bounds = node_boundaries(
            schema, {k: v[:300] for k, v in cols.items()}, 20
        )
        split, _, _ = find_split_from_arrays(schema, cols, labels, bounds, cfg)
        exact = find_split_direct(schema, cols, labels)
        assert split.gini == pytest.approx(exact.gini, abs=1e-10)

    def test_refine_with_alive_picks_minimum(self):
        from repro.clouds.splits import Split

        a = Split("x", NUMERIC_SPLIT, gini=0.3, threshold=1.0)
        b = Split("y", NUMERIC_SPLIT, gini=0.2, threshold=2.0)
        assert refine_with_alive(a, [None, b]) is b
        assert refine_with_alive(a, []) is a
        assert refine_with_alive(None, [b]) is b
