"""The generic divide-and-conquer strategies of Section 3."""

import numpy as np
import pytest

from repro.bench.harness import scaled_models
from repro.cluster import Cluster
from repro.dnc import (
    STRATEGIES,
    SyntheticDnc,
    make_executor,
    run_strategy,
    synthetic_payload,
)

from conftest import make_cluster


def ooc_cluster(p, memory_kib=32, seed=0):
    net, disk, compute = scaled_models(100.0)
    return Cluster(
        p, network=net, disk=disk, compute=compute,
        memory_limit=memory_kib * 1024, seed=seed, timeout=60.0,
    )


class TestProblem:
    def test_summary_combine_associative(self):
        prob = SyntheticDnc()
        rng = np.random.default_rng(0)
        a, b, c = (prob.summarize(rng.random(50)) for _ in range(3))
        left = prob.combine(prob.combine(a, b), c)
        right = prob.combine(a, prob.combine(b, c))
        assert left == right

    def test_combined_summary_equals_whole(self):
        prob = SyntheticDnc()
        data = synthetic_payload(1000, seed=1)
        whole = prob.summarize(data)
        parts = prob.combine(prob.summarize(data[:400]), prob.summarize(data[400:]))
        assert whole == parts

    def test_splitter_respects_ratio(self):
        prob = SyntheticDnc(split_ratio=0.25)
        data = synthetic_payload(100_000, seed=2)
        s = prob.splitter_from_summary(prob.summarize(data), 0)
        frac = float((data <= s).mean())
        assert abs(frac - 0.25) < 0.02

    def test_empty_summary(self):
        prob = SyntheticDnc()
        assert prob.summarize(np.empty(0))[0] == 0
        assert prob.splitter_from_summary((0, np.inf, -np.inf), 0) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            SyntheticDnc(split_ratio=0.0)
        with pytest.raises(ValueError):
            SyntheticDnc(leaf_records=0)

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError):
            make_executor("quantum")


class TestStrategyEquivalence:
    """Every technique must build the same divide-and-conquer tree."""

    @pytest.fixture(scope="class")
    def outcomes(self):
        prob = SyntheticDnc(leaf_records=128, split_ratio=0.5)
        out = {}
        for strat in STRATEGIES:
            res = run_strategy(ooc_cluster(4), prob, 8000, strat, seed=7)
            out[strat] = res
        return out

    def test_identical_tree_statistics(self, outcomes):
        shapes = {
            s: (r.outcome.n_tasks, r.outcome.n_leaves, r.outcome.max_depth)
            for s, r in outcomes.items()
        }
        assert len(set(shapes.values())) == 1, shapes

    def test_binary_tree_identity(self, outcomes):
        o = outcomes["data"].outcome
        assert o.n_tasks - o.n_leaves + 1 == o.n_leaves

    def test_balanced_depth(self, outcomes):
        o = outcomes["data"].outcome
        # 8000 records, leaves at 128, even splits: depth ~ log2(8000/128)=6
        assert 5 <= o.max_depth <= 8

    def test_all_elapsed_positive(self, outcomes):
        assert all(r.elapsed > 0 for r in outcomes.values())


class TestSectionThreeClaims:
    def test_data_beats_concatenated_out_of_core(self):
        """Section 3.3: concatenated parallelism shares memory across the
        level's tasks, forcing out-of-core passes that data parallelism
        avoids once individual tasks fit; its I/O and time are larger."""
        prob = SyntheticDnc(leaf_records=128)
        # memory below the root fragment (24 KB/rank) but above deep-task
        # sizes: data parallelism goes in-core as tasks shrink, while the
        # concatenated level always aggregates to the root size
        data = run_strategy(ooc_cluster(4, memory_kib=8), prob, 12000, "data", seed=1)
        conc = run_strategy(
            ooc_cluster(4, memory_kib=8), prob, 12000, "concatenated", seed=1
        )
        assert data.bytes_read < conc.bytes_read
        assert data.elapsed < conc.elapsed

    def test_concatenated_saves_message_startups(self):
        prob = SyntheticDnc(leaf_records=128)
        data = run_strategy(ooc_cluster(4), prob, 12000, "data", seed=1)
        conc = run_strategy(ooc_cluster(4), prob, 12000, "concatenated", seed=1)
        assert conc.collectives < data.collectives

    def test_task_parallelism_moves_data(self):
        prob = SyntheticDnc(leaf_records=256)
        data = run_strategy(ooc_cluster(4), prob, 8000, "data", seed=2)
        task = run_strategy(ooc_cluster(4), prob, 8000, "task", seed=2)
        # compute-dependent parallel I/O: redistribution traffic
        assert task.bytes_sent > data.bytes_sent

    def test_strategies_speed_up_with_processors(self):
        prob = SyntheticDnc(leaf_records=256, work_per_record=4.0)
        for strat in ("data", "mixed"):
            t1 = run_strategy(ooc_cluster(1), prob, 8000, strat, seed=3).elapsed
            t4 = run_strategy(ooc_cluster(4), prob, 8000, strat, seed=3).elapsed
            assert t4 < t1, strat

    def test_mixed_beats_pure_data_at_fine_grain(self):
        """Section 3.5: once tasks are small, per-task collectives dominate
        pure data parallelism; deferring small tasks wins."""
        prob = SyntheticDnc(leaf_records=32)
        data = run_strategy(ooc_cluster(8), prob, 8000, "data", seed=4)
        mixed = run_strategy(ooc_cluster(8), prob, 8000, "mixed", seed=4)
        assert mixed.elapsed < data.elapsed

    def test_result_row_shape(self):
        prob = SyntheticDnc(leaf_records=512)
        res = run_strategy(ooc_cluster(2), prob, 2000, "data", seed=5)
        row = res.row()
        assert row[0] == "data" and len(row) == 7


class TestSkewedTrees:
    @pytest.mark.parametrize("ratio", [0.3, 0.7])
    def test_skew_preserved_across_strategies(self, ratio):
        prob = SyntheticDnc(leaf_records=256, split_ratio=ratio)
        depths = set()
        for strat in ("data", "task"):
            res = run_strategy(ooc_cluster(4), prob, 6000, strat, seed=6)
            depths.add(res.outcome.max_depth)
        assert len(depths) == 1

    def test_skewed_deeper_than_balanced(self):
        balanced = run_strategy(
            ooc_cluster(2), SyntheticDnc(leaf_records=128, split_ratio=0.5),
            8000, "data", seed=8,
        )
        skewed = run_strategy(
            ooc_cluster(2), SyntheticDnc(leaf_records=128, split_ratio=0.85),
            8000, "data", seed=8,
        )
        assert skewed.outcome.max_depth > balanced.outcome.max_depth
