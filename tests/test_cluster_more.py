"""Remaining cluster-layer behaviours: run statistics surfaces, network
edge parameters, and backend wiring through the machine."""

import numpy as np
import pytest

from repro.cluster import Cluster, NetworkModel
from repro.ooc import FileBackend, OocArray

from conftest import make_cluster


class TestRunStatsSurface:
    def test_comm_and_io_times_accumulate_separately(self):
        c = make_cluster(2)

        def prog(ctx):
            ctx.comm.allgather(np.zeros(1000))
            ctx.disk.charge_read(1 << 16)
            ctx.charge_compute(ops=10_000)
            s = ctx.stats
            return s.comm_time > 0, s.io_time > 0, s.compute_time > 0

        assert all(all(r) for r in c.run(prog).results)

    def test_collective_count_matches_calls(self):
        c = make_cluster(3)

        def prog(ctx):
            for _ in range(5):
                ctx.comm.barrier()
            return ctx.stats.collectives

        assert c.run(prog).results == [5, 5, 5]

    def test_imbalance_reflects_skewed_compute(self):
        c = make_cluster(4)

        def prog(ctx):
            ctx.charge_compute(ops=(ctx.rank + 1) * 1_000_000)

        run = c.run(prog)
        assert run.stats.imbalance("compute_time") == pytest.approx(1.6)


class TestNetworkEdges:
    def test_zero_latency_network(self):
        c = Cluster(2, network=NetworkModel(alpha=0.0, beta=0.0), seed=0)

        def prog(ctx):
            ctx.comm.allgather(np.zeros(1 << 16))
            return ctx.stats.comm_time

        assert c.run(prog).results == [0.0, 0.0]

    def test_high_latency_dominates_elapsed(self):
        slow = Cluster(4, network=NetworkModel(alpha=1.0, beta=0.0), seed=0)

        def prog(ctx):
            ctx.comm.barrier()
            ctx.comm.barrier()

        run = slow.run(prog)
        # two combines at alpha=1s, log2(4)=2 stages each
        assert run.elapsed == pytest.approx(4.0)


class TestBackendWiring:
    def test_backend_factory_one_per_rank(self, tmp_path):
        made = []

        def factory():
            b = FileBackend(str(tmp_path / f"r{len(made)}"))
            made.append(b)
            return b

        c = Cluster(3, backend_factory=factory, seed=0)

        def prog(ctx):
            f = OocArray(ctx.disk, np.float64)
            f.append(np.full(4, float(ctx.rank)))
            return float(f.read_all().sum())

        out = c.run(prog).results
        assert out == [0.0, 4.0, 8.0]
        assert len(made) == 3
        # each rank's chunks went to its own spool
        assert all(b.chunks_created == 1 for b in made)

    def test_default_backend_isolated_per_rank(self):
        c = make_cluster(2)

        def prog(ctx):
            f = OocArray(ctx.disk, np.float64, name="x")
            f.append(np.array([float(ctx.rank)]))
            ctx.comm.barrier()
            return float(f.read_all()[0])

        assert c.run(prog).results == [0.0, 1.0]
