"""Regression pins: small, fast, fully deterministic configurations whose
exact outputs are frozen. A change to the cost models, the split
machinery or the SPMD drivers that alters any pinned value is either a
bug or a deliberate change that must update this file (and
EXPERIMENTS.md's narrative if it shifts the reproduced shapes)."""

import numpy as np
import pytest

from repro.bench.harness import scaled_models
from repro.clouds import CloudsBuilder, CloudsConfig, fit_direct, StoppingRule
from repro.cluster import Cluster
from repro.data import generate_quest, quest_schema

from conftest import make_cluster


class TestCostModelPins:
    def test_table1_point_values(self):
        net, disk, compute = scaled_models(100.0)
        assert net.p2p(1 << 20) == pytest.approx(40e-6 + (1 << 20) * 100 / 35e6)
        assert disk.access(1 << 20) == pytest.approx(0.01 + (1 << 20) / 8e4)
        assert compute.cost(1e6) == pytest.approx(0.75)

    def test_collective_costs_at_p16(self):
        net, _, _ = scaled_models(1.0)
        m = 8192
        assert net.all_to_all_broadcast(m, 16) == pytest.approx(
            40e-6 * 4 + m * 15 / 35e6
        )
        assert net.global_combine(m, 16) == pytest.approx(40e-6 * 4 + m / 35e6)


class TestSplitPins:
    """The root split of the canonical workload is a stable landmark."""

    def test_direct_root_split_function2(self, schema):
        cols, labels = generate_quest(4000, function=2, seed=13, noise=0.0)
        tree = fit_direct(schema, cols, labels, StoppingRule(min_node=16))
        root = tree.root.split
        # function 2's dominant axis at the root is the salary=125k edge
        assert root.attribute == "salary"
        assert 120_000 < root.threshold < 130_000

    def test_clouds_sse_equals_direct_at_root(self, schema):
        from repro.clouds.builder import find_split_from_arrays, node_boundaries
        from repro.clouds.direct import find_split_direct

        cols, labels = generate_quest(4000, function=2, seed=13, noise=0.0)
        bounds = node_boundaries(schema, {k: v[:800] for k, v in cols.items()}, 50)
        sse, _, _ = find_split_from_arrays(
            schema, cols, labels, bounds, CloudsConfig(method="sse", q_root=50)
        )
        exact = find_split_direct(schema, cols, labels)
        assert sse.attribute == exact.attribute
        assert sse.gini == pytest.approx(exact.gini, abs=1e-12)
        assert sse.threshold == pytest.approx(exact.threshold)


class TestSimulatedTimePins:
    def test_tiny_pclouds_elapsed_frozen(self):
        """Exact simulated elapsed time of a tiny fixed configuration.
        This will move whenever any cost-charging site changes — that is
        the point. Update deliberately."""
        from repro.core import DistributedDataset, PClouds, PCloudsConfig

        schema = quest_schema()
        cols, labels = generate_quest(1000, function=2, seed=3, noise=0.02)
        cluster = make_cluster(2)
        ds = DistributedDataset.create(cluster, schema, cols, labels, seed=4)
        res = PClouds(
            PCloudsConfig(
                clouds=CloudsConfig(q_root=20, sample_size=100, min_node=32)
            )
        ).fit(ds, seed=5)
        a = res.elapsed
        # identical second run (fresh dataset): bitwise equal
        cluster2 = make_cluster(2)
        ds2 = DistributedDataset.create(cluster2, schema, cols, labels, seed=4)
        b = PClouds(
            PCloudsConfig(
                clouds=CloudsConfig(q_root=20, sample_size=100, min_node=32)
            )
        ).fit(ds2, seed=5).elapsed
        assert a == b
        assert 0.1 < a < 100.0  # coarse envelope so gross regressions trip

    def test_sort_io_volume_exact(self):
        """External sort transfer volume: run formation reads+writes N,
        each merge level reads+writes N."""
        from repro.cluster.clock import SimClock
        from repro.cluster.diskmodel import DiskModel
        from repro.cluster.stats import RankStats
        from repro.ooc import InMemoryBackend, LocalDisk, OocArray
        from repro.ooc.extsort import external_sort

        disk = LocalDisk(DiskModel(), SimClock(), RankStats(), InMemoryBackend())
        data = np.random.default_rng(0).random(4096)
        f = OocArray(disk, np.float64)
        f.append(data)
        w0, r0 = disk.stats.bytes_written, disk.stats.bytes_read
        # 8 runs of 512, fan-in 8: exactly one merge level
        external_sort(f, run_records=512, fan_in=8)
        nbytes = data.nbytes
        assert disk.stats.bytes_written - w0 == 2 * nbytes  # runs + output
        assert disk.stats.bytes_read - r0 == 2 * nbytes  # source + runs


class TestSpeedupEnvelopePins:
    def test_small_speedup_point(self):
        """p=4 speedup of a fixed small experiment stays in a narrow
        envelope — the canary for scaling-behaviour regressions."""
        from repro.bench.harness import ExperimentConfig, run_pclouds

        t = {}
        for p in (1, 4):
            t[p] = run_pclouds(
                ExperimentConfig(
                    n_records=6000, n_ranks=p, scale=200.0, seed=0
                )
            ).elapsed
        speedup = t[1] / t[4]
        assert 2.2 < speedup < 4.3
