"""The MPI-like communicator: collectives, point-to-point, clock
synchronisation, failure semantics, and communicator splitting."""

import numpy as np
import pytest

from repro.cluster import (
    Cluster,
    CommMismatchError,
    DeadlockError,
    SpmdProgramError,
    payload_nbytes,
)

from conftest import make_cluster


class TestPayloadNbytes:
    def test_none_is_zero(self):
        assert payload_nbytes(None) == 0

    def test_numpy_uses_nbytes(self):
        assert payload_nbytes(np.zeros(10, dtype=np.float64)) == 80

    def test_scalars_one_word(self):
        assert payload_nbytes(3) == 8
        assert payload_nbytes(2.5) == 8
        assert payload_nbytes(True) == 8

    def test_bytes_and_str(self):
        assert payload_nbytes(b"abcd") == 4
        assert payload_nbytes("hé") == 3  # utf-8 length

    def test_containers_sum_items(self):
        assert payload_nbytes([1, 2.0]) == 8 + 16
        assert payload_nbytes({"k": np.zeros(2)}) == 8 + 1 + 16

    def test_opaque_falls_back_to_pickle(self):
        assert payload_nbytes(frozenset({1, 2, 3})) > 0


class TestCollectives:
    def test_allgather_orders_by_rank(self, cluster4):
        run = cluster4.run(lambda ctx: ctx.comm.allgather(ctx.rank * 10))
        assert run.results == [[0, 10, 20, 30]] * 4

    def test_bcast_from_nonzero_root(self, cluster4):
        def prog(ctx):
            return ctx.comm.bcast("hello" if ctx.rank == 2 else None, root=2)

        assert cluster4.run(prog).results == ["hello"] * 4

    def test_gather_only_root_receives(self, cluster4):
        run = cluster4.run(lambda ctx: ctx.comm.gather(ctx.rank, root=1))
        assert run.results[1] == [0, 1, 2, 3]
        assert run.results[0] is None and run.results[3] is None

    def test_allreduce_sum_numpy(self, cluster4):
        def prog(ctx):
            return ctx.comm.allreduce(np.full(3, ctx.rank, dtype=np.int64))

        out = cluster4.run(prog).results
        for r in out:
            np.testing.assert_array_equal(r, np.full(3, 6))

    def test_allreduce_min_max(self, cluster4):
        run = cluster4.run(lambda ctx: (ctx.comm.allreduce(ctx.rank, "min"),
                                        ctx.comm.allreduce(ctx.rank, "max")))
        assert run.results == [(0, 3)] * 4

    def test_allreduce_custom_op(self, cluster4):
        def prog(ctx):
            return ctx.comm.allreduce({"v": ctx.rank}, op=lambda a, b: {"v": a["v"] + b["v"]})

        assert cluster4.run(prog).results == [{"v": 6}] * 4

    def test_allreduce_unknown_op_rejected(self, cluster4):
        with pytest.raises(SpmdProgramError):
            cluster4.run(lambda ctx: ctx.comm.allreduce(1, op="median"))

    def test_reduce_root_only(self, cluster4):
        run = cluster4.run(lambda ctx: ctx.comm.reduce(ctx.rank + 1, "sum", root=3))
        assert run.results == [None, None, None, 10]

    def test_scan_inclusive_prefix(self, cluster4):
        run = cluster4.run(lambda ctx: ctx.comm.scan(ctx.rank + 1))
        assert run.results == [1, 3, 6, 10]

    def test_minloc_elects_lowest_value(self, cluster4):
        def prog(ctx):
            vals = [5.0, 2.0, 9.0, 2.0]
            return ctx.comm.allreduce_minloc(vals[ctx.rank], f"payload{ctx.rank}")

        out = cluster4.run(prog).results
        # tie between ranks 1 and 3 broken toward the lower rank
        assert out == [(2.0, "payload1", 1)] * 4

    def test_minloc_with_inf_values(self, cluster4):
        def prog(ctx):
            v = float("inf") if ctx.rank != 2 else 1.0
            return ctx.comm.allreduce_minloc(v, ctx.rank)

        assert cluster4.run(prog).results == [(1.0, 2, 2)] * 4

    def test_alltoall_transposes(self, cluster4):
        def prog(ctx):
            return ctx.comm.alltoall([f"{ctx.rank}->{d}" for d in range(ctx.size)])

        out = cluster4.run(prog).results
        assert out[2] == ["0->2", "1->2", "2->2", "3->2"]

    def test_alltoall_wrong_length_rejected(self, cluster4):
        with pytest.raises(SpmdProgramError):
            cluster4.run(lambda ctx: ctx.comm.alltoall([0, 1]))

    def test_barrier_synchronises_clocks(self, cluster4):
        def prog(ctx):
            ctx.clock.advance(float(ctx.rank))  # ranks arrive at 0..3
            ctx.comm.barrier()
            return ctx.clock.now

        out = cluster4.run(prog).results
        assert len(set(out)) == 1  # everyone leaves at the same instant
        assert out[0] > 3.0  # after the slowest arrival plus the cost

    def test_collective_charges_comm_time(self, cluster4):
        run = cluster4.run(lambda ctx: ctx.comm.allgather(np.zeros(1000)))
        assert all(s.comm_time > 0 for s in run.stats.per_rank)
        assert all(s.collectives == 1 for s in run.stats.per_rank)

    def test_idle_time_recorded_for_early_arrivals(self, cluster4):
        def prog(ctx):
            if ctx.rank == 0:
                ctx.clock.advance(5.0)
            ctx.comm.barrier()
            return ctx.stats.idle_time

        out = cluster4.run(prog).results
        assert out[0] == pytest.approx(0.0)
        assert all(v == pytest.approx(5.0) for v in out[1:])

    def test_divergent_collectives_raise_mismatch(self, cluster4):
        def prog(ctx):
            if ctx.rank == 0:
                ctx.comm.allgather(1)
            else:
                ctx.comm.barrier()

        with pytest.raises(SpmdProgramError) as e:
            cluster4.run(prog)
        assert isinstance(e.value.cause, CommMismatchError)

    def test_single_rank_collectives_trivial(self):
        c = make_cluster(1)

        def prog(ctx):
            assert ctx.comm.allgather("x") == ["x"]
            assert ctx.comm.allreduce(5) == 5
            assert ctx.comm.scan(3) == 3
            assert ctx.comm.alltoall(["self"]) == ["self"]
            assert ctx.comm.allreduce_minloc(1.0, "p") == (1.0, "p", 0)
            return True

        assert c.run(prog).results == [True]


class TestPointToPoint:
    def test_send_recv_roundtrip(self, cluster4):
        def prog(ctx):
            if ctx.rank == 0:
                ctx.comm.send({"data": 42}, dst=3, tag=5)
                return None
            if ctx.rank == 3:
                return ctx.comm.recv(src=0, tag=5)

        assert cluster4.run(prog).results[3] == {"data": 42}

    def test_messages_fifo_per_channel(self, cluster4):
        def prog(ctx):
            if ctx.rank == 0:
                for i in range(5):
                    ctx.comm.send(i, dst=1)
            elif ctx.rank == 1:
                return [ctx.comm.recv(src=0) for _ in range(5)]

        assert cluster4.run(prog).results[1] == [0, 1, 2, 3, 4]

    def test_recv_clock_waits_for_arrival(self, cluster4):
        def prog(ctx):
            if ctx.rank == 0:
                ctx.clock.advance(10.0)
                ctx.comm.send("late", dst=1)
            elif ctx.rank == 1:
                ctx.comm.recv(src=0)
                return ctx.clock.now

        assert cluster4.run(prog).results[1] > 10.0

    def test_recv_timeout_raises_deadlock(self):
        c = make_cluster(2, timeout=0.2)

        def prog(ctx):
            if ctx.rank == 1:
                ctx.comm.recv(src=0)  # nobody ever sends

        with pytest.raises(SpmdProgramError) as e:
            c.run(prog)
        assert isinstance(e.value.cause, DeadlockError)

    def test_bad_destination_rejected(self, cluster4):
        with pytest.raises(SpmdProgramError):
            cluster4.run(lambda ctx: ctx.comm.send(1, dst=99))

    def test_send_charges_sender(self, cluster4):
        def prog(ctx):
            if ctx.rank == 0:
                ctx.comm.send(np.zeros(1 << 16), dst=1)
            elif ctx.rank == 1:
                ctx.comm.recv(src=0)

        run = cluster4.run(prog)
        assert run.stats.per_rank[0].messages_sent == 1
        assert run.stats.per_rank[0].bytes_sent == (1 << 16) * 8
        assert run.stats.per_rank[1].bytes_received == (1 << 16) * 8


class TestSplit:
    def test_split_groups_and_ranks(self, cluster4):
        def prog(ctx):
            sub = ctx.comm.split(ctx.rank % 2)
            return (sub.size, sub.rank, sub.parent_ranks)

        out = cluster4.run(prog).results
        assert out[0] == (2, 0, [0, 2])
        assert out[2] == (2, 1, [0, 2])
        assert out[1] == (2, 0, [1, 3])

    def test_split_collectives_stay_in_group(self, cluster4):
        def prog(ctx):
            sub = ctx.comm.split(0 if ctx.rank < 3 else 1)
            return sub.allreduce(ctx.rank)

        out = cluster4.run(prog).results
        assert out == [3, 3, 3, 3][0:3] + [3]  # group {0,1,2} sums to 3; {3} alone

    def test_nested_split(self, cluster4):
        def prog(ctx):
            sub = ctx.comm.split(ctx.rank // 2)
            subsub = sub.split(sub.rank)
            return (sub.size, subsub.size)

        assert cluster4.run(prog).results == [(2, 1)] * 4

    def test_singleton_groups(self, cluster4):
        def prog(ctx):
            sub = ctx.comm.split(ctx.rank)  # everyone alone
            return sub.allgather(ctx.rank)

        assert cluster4.run(prog).results == [[0], [1], [2], [3]]
