"""Property-based tests on trees, pruning and serialisation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clouds import (
    DecisionTree,
    MdlPruneConfig,
    Split,
    StoppingRule,
    TreeNode,
    fit_direct,
    gini_importance,
    mdl_prune,
    validate_tree,
)
from repro.data import make_schema

SCHEMA = make_schema(["x", "y"], {"c": 3}, n_classes=2)


@st.composite
def random_trees(draw, max_depth=4):
    """Random valid decision trees over SCHEMA, built top-down with
    consistent class counts."""

    counter = [0]

    def node(depth, counts):
        nid = counter[0]
        counter[0] += 1
        t = TreeNode(node_id=nid, depth=depth, class_counts=np.asarray(counts))
        n = int(np.sum(counts))
        if depth >= max_depth or n < 2 or draw(st.booleans()):
            return t
        left0 = draw(st.integers(0, int(counts[0])))
        left1 = draw(st.integers(0, int(counts[1])))
        if (left0 + left1) in (0, n):
            return t
        kind = draw(st.sampled_from(["numeric", "categorical"]))
        if kind == "numeric":
            t.split = Split(
                attribute=draw(st.sampled_from(["x", "y"])),
                kind="numeric",
                gini=draw(st.floats(0, 0.5)),
                threshold=draw(st.floats(-100, 100, width=16)),
            )
        else:
            codes = draw(
                st.sets(st.integers(0, 2), min_size=1, max_size=2)
            )
            t.split = Split(
                attribute="c",
                kind="categorical",
                gini=draw(st.floats(0, 0.5)),
                left_codes=frozenset(codes),
            )
        t.left = node(depth + 1, [left0, left1])
        t.right = node(depth + 1, [counts[0] - left0, counts[1] - left1])
        return t

    total = [draw(st.integers(1, 40)), draw(st.integers(1, 40))]
    return DecisionTree(root=node(0, total), schema=SCHEMA)


@given(random_trees())
@settings(max_examples=60, deadline=None)
def test_random_trees_are_valid(tree):
    validate_tree(tree)


@given(random_trees())
@settings(max_examples=60, deadline=None)
def test_serialisation_roundtrip_preserves_structure(tree):
    clone = DecisionTree.from_dict(tree.to_dict(), SCHEMA)
    validate_tree(clone)
    assert clone.n_nodes == tree.n_nodes
    assert clone.to_dict() == tree.to_dict()


@given(random_trees(), st.integers(0, 100))
@settings(max_examples=40, deadline=None)
def test_roundtrip_preserves_predictions(tree, seed):
    rng = np.random.default_rng(seed)
    cols = {
        "x": rng.normal(size=20) * 100,
        "y": rng.normal(size=20) * 100,
        "c": rng.integers(0, 3, 20).astype(np.int32),
    }
    clone = DecisionTree.from_dict(tree.to_dict(), SCHEMA)
    np.testing.assert_array_equal(tree.predict(cols), clone.predict(cols))


@given(random_trees(), st.floats(0.1, 10.0))
@settings(max_examples=50, deadline=None)
def test_mdl_pruning_properties(tree, bits):
    """Pruning never grows the tree, preserves validity, and is
    idempotent."""
    n0 = tree.n_nodes
    cfg = MdlPruneConfig(structure_bits=bits)
    _, removed1 = mdl_prune(tree, cfg)
    assert removed1 >= 0
    assert tree.n_nodes == n0 - removed1
    validate_tree(tree)
    _, removed2 = mdl_prune(tree, cfg)
    assert removed2 == 0  # idempotent


@given(random_trees())
@settings(max_examples=40, deadline=None)
def test_importance_well_formed(tree):
    imp = gini_importance(tree)
    assert set(imp) == {"x", "y", "c"}
    assert all(v >= 0 for v in imp.values())
    total = sum(imp.values())
    assert total == pytest.approx(1.0) or total == 0.0


@given(
    st.integers(30, 200),
    st.integers(0, 1000),
    st.floats(0.0, 0.3),
)
@settings(max_examples=20, deadline=None)
def test_fitted_trees_partition_any_dataset(n, seed, noise):
    """End-to-end property: for any random dataset, the fitted tree's
    leaves partition the records and predictions are consistent with the
    routing."""
    rng = np.random.default_rng(seed)
    cols = {
        "x": rng.normal(size=n),
        "y": rng.random(n),
        "c": rng.integers(0, 3, n).astype(np.int32),
    }
    labels = ((cols["x"] > 0) ^ (rng.random(n) < noise)).astype(np.int32)
    tree = fit_direct(SCHEMA, cols, labels, StoppingRule(min_node=5))
    validate_tree(tree)
    leaves = [node for node in tree.iter_nodes() if node.is_leaf]
    assert sum(node.n for node in leaves) == n
    preds = tree.predict(cols)
    # routing property: applying the root split manually agrees
    if not tree.root.is_leaf:
        mask = tree.root.split.goes_left(cols[tree.root.split.attribute])
        left_preds = tree.predict({k: v[mask] for k, v in cols.items()})
        np.testing.assert_array_equal(preds[mask], left_preds)
