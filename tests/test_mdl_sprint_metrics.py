"""MDL pruning, the SPRINT baseline, and evaluation metrics."""

import numpy as np
import pytest

from repro.clouds.direct import StoppingRule, fit_direct
from repro.clouds.mdl import MdlPruneConfig, leaf_cost, mdl_prune, split_cost
from repro.clouds.metrics import (
    accuracy,
    confusion_matrix,
    error_rate,
    evaluate_tree,
    train_test_split,
)
from repro.clouds.sprint import AttributeList, SprintBuilder
from repro.clouds.tree import validate_tree
from repro.data import generate_quest, quest_schema


class TestMdl:
    @pytest.fixture
    def noisy_tree(self, schema):
        cols, labels = generate_quest(3000, function=2, seed=77, noise=0.1)
        return fit_direct(schema, cols, labels, StoppingRule(min_node=2)), cols, labels

    def test_pruning_shrinks_noisy_trees(self, noisy_tree):
        tree, _, _ = noisy_tree
        n0 = tree.n_nodes
        _, removed = mdl_prune(tree)
        assert removed > 0
        assert tree.n_nodes == n0 - removed
        validate_tree(tree)

    def test_pruned_tree_not_much_worse_on_holdout(self, schema):
        cols, labels = generate_quest(6000, function=2, seed=78, noise=0.1)
        tr_c, tr_y, te_c, te_y = train_test_split(cols, labels, 0.3, seed=1)
        tree = fit_direct(schema, tr_c, tr_y, StoppingRule(min_node=2))
        acc_full = accuracy(te_y, tree.predict(te_c))
        mdl_prune(tree)
        acc_pruned = accuracy(te_y, tree.predict(te_c))
        assert acc_pruned >= acc_full - 0.03

    def test_pure_tree_untouched_structure_quality(self, schema, quest_clean):
        cols, labels = quest_clean
        tree = fit_direct(schema, cols, labels, StoppingRule(min_node=32))
        acc0 = accuracy(labels, tree.predict(cols))
        mdl_prune(tree)
        assert accuracy(labels, tree.predict(cols)) >= acc0 - 0.02

    def test_aggressive_structure_bits_prune_more(self, schema):
        cols, labels = generate_quest(2000, function=2, seed=79, noise=0.1)
        t1 = fit_direct(schema, cols, labels)
        t2 = fit_direct(schema, cols, labels)
        _, r1 = mdl_prune(t1, MdlPruneConfig(structure_bits=0.5))
        _, r2 = mdl_prune(t2, MdlPruneConfig(structure_bits=50.0))
        assert r2 >= r1

    def test_leaf_cost_increases_with_errors(self):
        assert leaf_cost(np.array([10, 5])) > leaf_cost(np.array([15, 0]))

    def test_leaf_cost_empty(self):
        assert leaf_cost(np.array([0, 0])) == 0.0

    def test_split_cost_counts_categorical_mask(self, schema):
        from repro.clouds.splits import Split
        from repro.clouds.tree import TreeNode

        node = TreeNode(0, 0, np.array([50, 50]))
        node.split = Split("car", "categorical", gini=0.1, left_codes=frozenset({1}))
        cost_cat = split_cost(node, schema)
        node.split = Split("age", "numeric", gini=0.1, threshold=30.0)
        cost_num = split_cost(node, schema)
        assert cost_cat > cost_num  # 20 mask bits vs log2(100)


class TestSprint:
    def test_matches_direct_oracle(self, schema, quest_small):
        cols, labels = quest_small
        stop = StoppingRule(min_node=16)
        sprint = SprintBuilder(schema, stop).fit(cols, labels)
        direct = fit_direct(schema, cols, labels, stop)
        validate_tree(sprint)
        # identical split decisions ⇒ identical predictions and shape
        np.testing.assert_array_equal(sprint.predict(cols), direct.predict(cols))
        assert sprint.n_nodes == direct.n_nodes
        assert sprint.depth == direct.depth

    def test_attribute_lists_stay_sorted(self, schema, quest_small):
        cols, labels = quest_small
        builder = SprintBuilder(schema, StoppingRule(min_node=500))
        tree = builder.fit(cols, labels)
        assert tree.n_nodes >= 1  # smoke: construction completed

    def test_attribute_list_filter_stable(self):
        al = AttributeList(
            values=np.array([1.0, 2.0, 3.0, 4.0]),
            labels=np.array([0, 1, 0, 1]),
            rids=np.array([7, 3, 5, 1]),
        )
        keep = np.zeros(8, dtype=bool)
        keep[[3, 1]] = True
        out = al.filter(keep)
        np.testing.assert_array_equal(out.values, [2.0, 4.0])  # order preserved
        np.testing.assert_array_equal(out.rids, [3, 1])

    def test_single_class_gives_single_leaf(self, schema, quest_small):
        cols, _ = quest_small
        labels = np.zeros(len(cols["age"]), dtype=np.int32)
        tree = SprintBuilder(schema).fit(cols, labels)
        assert tree.root.is_leaf


class TestMetrics:
    def test_accuracy_basics(self):
        assert accuracy(np.array([1, 0, 1]), np.array([1, 0, 0])) == pytest.approx(2 / 3)
        assert accuracy(np.empty(0), np.empty(0)) == 1.0
        assert error_rate(np.array([1]), np.array([0])) == 1.0

    def test_accuracy_shape_mismatch(self):
        with pytest.raises(ValueError):
            accuracy(np.zeros(2), np.zeros(3))

    def test_confusion_matrix(self):
        m = confusion_matrix(np.array([0, 0, 1, 1]), np.array([0, 1, 1, 1]), 2)
        np.testing.assert_array_equal(m, [[1, 1], [0, 2]])
        assert m.sum() == 4

    def test_train_test_split_partitions(self, quest_small):
        cols, labels = quest_small
        tr_c, tr_y, te_c, te_y = train_test_split(cols, labels, 0.25, seed=3)
        assert len(tr_y) + len(te_y) == len(labels)
        assert len(te_y) == pytest.approx(0.25 * len(labels), abs=1)

    def test_train_test_split_validates_fraction(self, quest_small):
        cols, labels = quest_small
        with pytest.raises(ValueError):
            train_test_split(cols, labels, 0.0)

    def test_evaluate_tree(self, schema, quest_small):
        cols, labels = quest_small
        tree = fit_direct(schema, cols, labels, StoppingRule(min_node=64))
        q = evaluate_tree(tree, cols, labels)
        assert 0.8 < q.accuracy <= 1.0
        assert q.n_leaves <= q.n_nodes
        assert q.depth >= 1
