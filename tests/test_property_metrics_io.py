"""Property tests for metrics and CSV I/O."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.clouds.metrics import accuracy, confusion_matrix, error_rate
from repro.data import make_schema, read_csv, write_csv


labels_pairs = st.integers(10, 200).flatmap(
    lambda n: st.tuples(
        hnp.arrays(np.int64, n, elements=st.integers(0, 3)),
        hnp.arrays(np.int64, n, elements=st.integers(0, 3)),
    )
)


@given(labels_pairs)
def test_accuracy_error_complement(pair):
    y, p = pair
    assert accuracy(y, p) + error_rate(y, p) == pytest.approx(1.0)


@given(labels_pairs)
def test_confusion_diagonal_is_accuracy(pair):
    y, p = pair
    m = confusion_matrix(y, p, 4)
    assert m.sum() == len(y)
    assert np.trace(m) / len(y) == pytest.approx(accuracy(y, p))


@given(labels_pairs)
def test_confusion_row_sums_are_class_counts(pair):
    y, p = pair
    m = confusion_matrix(y, p, 4)
    np.testing.assert_array_equal(m.sum(axis=1), np.bincount(y, minlength=4))
    np.testing.assert_array_equal(m.sum(axis=0), np.bincount(p, minlength=4))


@given(
    st.integers(2, 50).flatmap(
        lambda n: st.tuples(
            hnp.arrays(
                np.float64, n,
                elements=st.floats(-1e6, 1e6, width=32).filter(
                    lambda x: x == x  # no NaN
                ),
            ),
            hnp.arrays(np.int64, n, elements=st.integers(0, 2)),
            hnp.arrays(np.int64, n, elements=st.integers(0, 1)),
        )
    )
)
@settings(max_examples=30, deadline=None)
def test_csv_roundtrip_any_data(tmp_path_factory, arrs):
    values, codes, labels = arrs
    if len(np.unique(labels)) < 2:
        labels = labels.copy()
        labels[0] = 1 - labels[0]
    schema = make_schema(["v"], {"k": 3}, n_classes=2)
    cols = {"v": values, "k": codes.astype(np.int32)}
    path = str(tmp_path_factory.mktemp("csv") / "d.csv")
    write_csv(path, schema, cols, labels.astype(np.int32))
    schema2, cols2, labels2, codec = read_csv(
        path, label_column="label", categorical_columns={"k"}
    )
    # float repr() roundtrips float64 exactly
    np.testing.assert_array_equal(cols2["v"], values)
    # codes survive through the first-appearance mapping
    decoded = np.array(
        [int(list(codec.categorical["k"].keys())[c]) for c in cols2["k"]]
    )
    np.testing.assert_array_equal(decoded, codes)
    # labels decode back to the originals
    orig = np.array([int(v) for v in codec.decode_labels(labels2)])
    np.testing.assert_array_equal(orig, labels)
