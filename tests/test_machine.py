"""The SPMD launcher: determinism, failure propagation, context reuse."""

import numpy as np
import pytest

from repro.cluster import Cluster, SpmdProgramError

from conftest import make_cluster


def test_run_returns_per_rank_results(cluster4):
    run = cluster4.run(lambda ctx: ctx.rank**2)
    assert run.results == [0, 1, 4, 9]
    assert run.result == 0


def test_elapsed_is_max_rank_clock(cluster4):
    def prog(ctx):
        ctx.clock.advance(float(ctx.rank))

    assert cluster4.run(prog).elapsed == pytest.approx(3.0)


def test_cluster_requires_positive_ranks():
    with pytest.raises(ValueError):
        Cluster(0)


def test_failure_propagates_with_rank(cluster4):
    def prog(ctx):
        if ctx.rank == 2:
            raise RuntimeError("boom")
        ctx.comm.barrier()

    with pytest.raises(SpmdProgramError) as e:
        cluster4.run(prog)
    assert e.value.rank == 2
    assert isinstance(e.value.cause, RuntimeError)


def test_failure_before_collective_does_not_hang(cluster4):
    def prog(ctx):
        if ctx.rank == 0:
            raise ValueError("early")
        ctx.comm.allgather(ctx.rank)
        ctx.comm.allgather(ctx.rank)

    with pytest.raises(SpmdProgramError):
        cluster4.run(prog)


def test_simulated_time_is_deterministic(cluster4):
    def prog(ctx):
        for _ in range(5):
            ctx.comm.allgather(np.zeros(100))
            ctx.charge_compute(ops=1000 * (ctx.rank + 1))
            ctx.disk.charge_read(4096)
        return ctx.clock.now

    a = Cluster(4, seed=1).run(prog)
    b = Cluster(4, seed=1).run(prog)
    assert a.results == b.results
    assert a.elapsed == b.elapsed


def test_contexts_reusable_across_runs():
    c = make_cluster(2)
    ctxs = c.make_contexts()

    def write(ctx):
        from repro.ooc import OocArray

        f = OocArray(ctx.disk, np.float64, name="keep")
        f.append(np.arange(4, dtype=np.float64) + ctx.rank)
        return f

    run1 = c.run(write, contexts=ctxs)
    files = run1.results

    def read(ctx):
        return files[ctx.rank].read_all().sum()

    run2 = c.run(read, contexts=ctxs)
    assert run2.results == [pytest.approx(6.0), pytest.approx(10.0)]


def test_reset_clocks_between_runs():
    c = make_cluster(2)
    ctxs = c.make_contexts()
    c.run(lambda ctx: ctx.clock.advance(10.0), contexts=ctxs)
    run = c.run(lambda ctx: ctx.clock.now, contexts=ctxs, reset_clocks=True)
    assert run.results == [0.0, 0.0]


def test_no_reset_keeps_clocks():
    c = make_cluster(2)
    ctxs = c.make_contexts()
    c.run(lambda ctx: ctx.clock.advance(10.0), contexts=ctxs)
    run = c.run(lambda ctx: ctx.clock.now, contexts=ctxs, reset_clocks=False)
    assert run.results == [10.0, 10.0]


def test_context_list_size_mismatch_rejected():
    c = make_cluster(2)
    ctxs = make_cluster(3).make_contexts()
    with pytest.raises(ValueError):
        c.run(lambda ctx: None, contexts=ctxs)


def test_rank_rngs_differ_but_are_seeded():
    c = make_cluster(4, seed=9)
    draws1 = c.run(lambda ctx: float(ctx.rng.random())).results
    draws2 = Cluster(4, seed=9).run(lambda ctx: float(ctx.rng.random())).results
    assert draws1 == draws2  # same seed, same streams
    assert len(set(draws1)) == 4  # distinct per rank


def test_charge_compute_accumulates_stats(cluster4):
    def prog(ctx):
        ctx.charge_compute(ops=1_000_000)
        ctx.charge_compute(seconds=0.5)
        ctx.charge_sort(1024)
        return ctx.stats.compute_time

    out = cluster4.run(prog).results
    expected = 1_000_000 * cluster4.compute.seconds_per_op + 0.5 + cluster4.compute.sort(1024)
    assert out[0] == pytest.approx(expected)


def test_memory_limit_reaches_contexts():
    c = make_cluster(2, memory_limit=1234)
    out = c.run(lambda ctx: ctx.memory.limit).results
    assert out == [1234, 1234]


def test_phase_times_surface_in_run():
    c = make_cluster(2)

    def prog(ctx):
        ctx.timer.start("work")
        ctx.clock.advance(2.0)
        ctx.timer.stop()

    run = c.run(prog)
    assert run.phase_times[0]["work"] == pytest.approx(2.0)


def test_args_and_kwargs_forwarded(cluster4):
    def prog(ctx, a, b=0):
        return a + b + ctx.rank

    assert cluster4.run(prog, 10, b=5).results == [15, 16, 17, 18]
