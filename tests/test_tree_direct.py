"""Decision-tree structure, the direct builder, and tree invariants."""

import numpy as np
import pytest

from repro.clouds.direct import StoppingRule, find_split_direct, fit_direct
from repro.clouds.metrics import accuracy
from repro.clouds.splits import Split
from repro.clouds.tree import (
    DecisionTree,
    TreeNode,
    decode_node,
    encode_node,
    validate_tree,
)
from repro.data import generate_quest, quest_schema


class TestStoppingRule:
    def test_min_node(self):
        r = StoppingRule(min_node=10)
        assert r.is_leaf(np.array([4, 5]), depth=0)
        assert not r.is_leaf(np.array([6, 5]), depth=0)

    def test_max_depth(self):
        r = StoppingRule(max_depth=3)
        assert r.is_leaf(np.array([50, 50]), depth=3)
        assert not r.is_leaf(np.array([50, 50]), depth=2)

    def test_purity(self):
        r = StoppingRule(purity=0.9)
        assert r.is_leaf(np.array([95, 5]), depth=0)
        assert not r.is_leaf(np.array([80, 20]), depth=0)

    def test_tiny_nodes_always_leaves(self):
        assert StoppingRule(min_node=1).is_leaf(np.array([1, 0]), depth=0)


class TestFindSplitDirect:
    def test_picks_globally_best_attribute(self, schema, quest_clean):
        cols, labels = quest_clean
        split = find_split_direct(schema, cols, labels)
        # function 2 depends on age and salary only
        assert split.attribute in ("age", "salary")

    def test_pure_labels_still_return_split_or_none(self, schema, quest_clean):
        cols, _ = quest_clean
        labels = np.zeros(len(cols["age"]), dtype=np.int32)
        split = find_split_direct(schema, cols, labels)
        # all-pure data: any split has gini 0 == parent; callers reject it
        if split is not None:
            assert split.gini == pytest.approx(0.0)


class TestFitDirect:
    @pytest.fixture(scope="class")
    def fitted(self, schema, quest_clean):
        cols, labels = quest_clean
        tree = fit_direct(schema, cols, labels, StoppingRule(min_node=8))
        return tree, cols, labels

    def test_invariants(self, fitted):
        tree, _, _ = fitted
        validate_tree(tree)

    def test_perfectly_fits_training_data(self, fitted):
        tree, cols, labels = fitted
        # noise-free separable data, min_node=8 leaves little impurity
        assert accuracy(labels, tree.predict(cols)) > 0.99

    def test_leaf_counts_partition_root(self, fitted):
        tree, _, labels = fitted
        leaf_total = sum(n.n for n in tree.iter_nodes() if n.is_leaf)
        assert leaf_total == len(labels)

    def test_depth_and_sizes(self, fitted):
        tree, _, _ = fitted
        assert tree.n_nodes == tree.n_leaves * 2 - 1  # binary tree identity
        assert tree.depth >= 2

    def test_prediction_follows_splits(self, fitted):
        tree, cols, _ = fitted
        root = tree.root
        mask = root.split.goes_left(cols[root.split.attribute])
        preds = tree.predict(cols)
        left_preds = tree.predict({k: v[mask] for k, v in cols.items()})
        np.testing.assert_array_equal(preds[mask], left_preds)

    def test_predict_empty(self, fitted, schema):
        tree, cols, _ = fitted
        out = tree.predict({k: v[:0] for k, v in cols.items()})
        assert out.shape == (0,)

    def test_max_depth_respected(self, schema, quest_clean):
        cols, labels = quest_clean
        tree = fit_direct(schema, cols, labels, StoppingRule(max_depth=4))
        assert tree.depth <= 4


class TestTreeStructure:
    def make_leaf(self, nid=0, counts=(3, 1), depth=0):
        return TreeNode(
            node_id=nid, depth=depth, class_counts=np.array(counts, dtype=np.int64)
        )

    def test_leaf_properties(self):
        leaf = self.make_leaf()
        assert leaf.is_leaf and leaf.label == 0 and leaf.n == 4 and leaf.errors == 1

    def test_to_leaf_collapses(self):
        node = self.make_leaf()
        node.split = Split("age", "numeric", gini=0.1, threshold=40.0)
        node.left = self.make_leaf(1, depth=1)
        node.right = self.make_leaf(2, depth=1)
        node.to_leaf()
        assert node.is_leaf and node.left is None

    def test_encode_decode_roundtrip(self, schema, quest_clean):
        cols, labels = quest_clean
        tree = fit_direct(schema, cols, labels, StoppingRule(min_node=64))
        clone = DecisionTree.from_dict(tree.to_dict(), schema)
        np.testing.assert_array_equal(tree.predict(cols), clone.predict(cols))
        assert clone.n_nodes == tree.n_nodes

    def test_encode_preserves_categorical_splits(self):
        node = self.make_leaf()
        node.split = Split("car", "categorical", gini=0.2, left_codes=frozenset({1, 5}))
        node.left = self.make_leaf(1, depth=1, counts=(2, 0))
        node.right = self.make_leaf(2, depth=1, counts=(1, 1))
        back = decode_node(encode_node(node))
        assert back.split.left_codes == frozenset({1, 5})

    def test_validate_catches_bad_counts(self):
        root = self.make_leaf(0, counts=(4, 4))
        root.split = Split("age", "numeric", gini=0.1, threshold=40.0)
        root.left = self.make_leaf(1, counts=(1, 0), depth=1)
        root.right = self.make_leaf(2, counts=(1, 1), depth=1)
        tree = DecisionTree(root=root, schema=quest_schema())
        with pytest.raises(AssertionError):
            validate_tree(tree)

    def test_validate_catches_duplicate_ids(self):
        root = self.make_leaf(0, counts=(2, 2))
        root.split = Split("age", "numeric", gini=0.1, threshold=40.0)
        root.left = self.make_leaf(7, counts=(1, 1), depth=1)
        root.right = self.make_leaf(7, counts=(1, 1), depth=1)
        with pytest.raises(AssertionError):
            validate_tree(DecisionTree(root=root, schema=quest_schema()))

    def test_validate_catches_kind_mismatch(self):
        root = self.make_leaf(0, counts=(2, 2))
        root.split = Split("car", "numeric", gini=0.1, threshold=3.0)
        root.left = self.make_leaf(1, counts=(1, 1), depth=1)
        root.right = self.make_leaf(2, counts=(1, 1), depth=1)
        with pytest.raises(AssertionError):
            validate_tree(DecisionTree(root=root, schema=quest_schema()))

    def test_describe_renders(self, schema, quest_small):
        cols, labels = quest_small
        tree = fit_direct(schema, cols, labels, StoppingRule(min_node=256))
        text = tree.describe(max_depth=2)
        assert "leaf" in text or "<=" in text


class TestSplitType:
    def test_numeric_requires_threshold(self):
        with pytest.raises(ValueError):
            Split("age", "numeric", gini=0.1)

    def test_categorical_requires_codes(self):
        with pytest.raises(ValueError):
            Split("car", "categorical", gini=0.1)

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            Split("x", "fuzzy", gini=0.1, threshold=1.0)

    def test_goes_left_numeric_inclusive(self):
        s = Split("age", "numeric", gini=0.0, threshold=40.0)
        np.testing.assert_array_equal(
            s.goes_left(np.array([39.0, 40.0, 41.0])), [True, True, False]
        )

    def test_goes_left_categorical(self):
        s = Split("car", "categorical", gini=0.0, left_codes=frozenset({2, 4}))
        np.testing.assert_array_equal(
            s.goes_left(np.array([1, 2, 3, 4], dtype=np.int32)),
            [False, True, False, True],
        )

    def test_describe(self):
        s = Split("age", "numeric", gini=0.0, threshold=40.0)
        assert "age" in s.describe()
