"""Causal critical-path profiler: the exact-length invariant, straggler
attribution, prefetch-overlap reconciliation, what-if bounds against the
Table-1 closed forms, flow events, and the benchmark trajectory gate."""

import json

import pytest

from repro.bench.harness import ExperimentConfig, run_pclouds, scaled_models
from repro.cluster.faults import FaultPlan, SlowRank
from repro.cluster.tracereport import TraceReport, to_chrome_trace
from repro.dnc.cost import collective_cost, startup_cost
from repro.obs.critpath import (
    CATEGORIES,
    CritPathError,
    build_critical_path,
    collective_groups,
    critpath_alerts,
    match_p2p,
    record_critpath_metrics,
)
from repro.obs.health import HealthMonitor, HealthThresholds
from repro.obs.registry import MetricsRegistry
from repro.obs.whatif import (
    Scenario,
    evaluate,
    evaluate_all,
    standard_scenarios,
    voting_payload_ratio,
)


def fit(seed=3, n_records=1200, n_ranks=4, **kw):
    cfg = ExperimentConfig(
        n_records=n_records, n_ranks=n_ranks, seed=seed, **kw
    )
    res = run_pclouds(cfg, trace=True)
    return cfg, res


def path_of(cfg, res):
    network = scaled_models(cfg.scale)[0]
    return build_critical_path(res.tracers, network, elapsed=res.elapsed)


# -- the tentpole invariant ---------------------------------------------------

# exchanges × SS/SSE × frontier batching × buffer-pool modes × seeds,
# curated to cover every axis value at least twice without running the
# full cross product
GRID = [
    dict(exchange="attribute", buffer_pool="off", seed=0),
    dict(exchange="attribute", method="ss", buffer_pool="lru", seed=1),
    dict(exchange="distributed", buffer_pool="lru+prefetch", seed=2),
    dict(exchange="distributed", frontier_batching="per_node", seed=3),
    dict(exchange="allreduce", buffer_pool="lru", seed=4),
    dict(exchange="allreduce", method="ss",
         frontier_batching="per_node", seed=5),
    dict(exchange="voting", vote_top_k=4, buffer_pool="off", seed=6),
    dict(exchange="voting", vote_top_k=4,
         buffer_pool="lru+prefetch", seed=7),
    dict(method="ss", buffer_pool="lru+prefetch",
         frontier_batching="per_node", seed=8),
    dict(buffer_pool="lru+prefetch", pool_ratio=1.0,
         n_records=4000, n_ranks=2, seed=9),
]


@pytest.mark.parametrize("kw", GRID, ids=lambda kw: "-".join(
    f"{k}={v}" for k, v in kw.items()))
def test_path_length_equals_elapsed_exactly(kw):
    cfg, res = fit(**kw)
    path = path_of(cfg, res)
    assert path.length == res.elapsed  # bitwise, not approx
    assert path.elapsed == res.elapsed
    # segments tile [0, elapsed] contiguously and in causal order
    assert path.segments[0].t_start == 0.0
    assert path.segments[-1].t_end == res.elapsed
    for a, b in zip(path.segments, path.segments[1:]):
        assert a.t_end == b.t_start
    assert set(s.category for s in path.segments) <= set(CATEGORIES)
    # issue-time prefetch slices never appear on the path
    assert all(s.op != "prefetch" for s in path.segments)


def test_straggler_moves_path_onto_slow_rank(schema, quest_small):
    from repro.core.dataset import DistributedDataset
    from repro.core.pclouds import PClouds

    def build(plan=None):
        cfg = ExperimentConfig(n_records=2000, n_ranks=4, seed=3)
        from repro.bench.harness import build_cluster

        cluster = build_cluster(cfg, schema.row_nbytes())
        cols, labels = quest_small
        dataset = DistributedDataset.create(
            cluster, schema, cols, labels, seed=cfg.seed + 1
        )
        res = PClouds().fit(dataset, seed=cfg.seed + 2, trace=True,
                            faults=plan)
        return build_critical_path(
            res.tracers, scaled_models(cfg.scale)[0], elapsed=res.elapsed
        )

    base = build()
    slow = build(FaultPlan.of("straggler", SlowRank(2, factor=4.0)))
    base_share = base.rank_share().get(2, 0.0) / base.length
    slow_share = slow.rank_share().get(2, 0.0) / slow.length
    # the 4x-slowed rank takes over (almost all of) the path
    assert slow_share > 0.9 > base_share
    assert slow.length == slow.elapsed  # invariant holds under faults too


def test_stale_elapsed_rejected():
    cfg, res = fit(seed=0, n_records=800, n_ranks=2)
    with pytest.raises(CritPathError):
        build_critical_path(
            res.tracers, scaled_models(cfg.scale)[0],
            elapsed=res.elapsed / 2,
        )


# -- prefetch overlap reconciliation (satellite 3) ----------------------------


@pytest.fixture(scope="module")
def prefetch_run():
    return fit(seed=9, n_records=4000, n_ranks=2,
               buffer_pool="lru+prefetch", pool_ratio=1.0)


def test_overlap_saved_reconciles_per_rank(prefetch_run):
    cfg, res = prefetch_run
    total = 0.0
    for t, s in zip(res.tracers, res.run.stats.per_rank):
        ev_saved = sum(e.saved for e in t.events if e.op == "prefetch_wait")
        assert ev_saved == s.io_overlap_saved  # bit-identical per rank
        total += s.io_overlap_saved
    assert total > 0.0  # the config actually overlapped something
    # ... and the per-level roll-up carries the same total
    rows = TraceReport(res.tracers).level_rollup()
    assert sum(r.overlap_saved for r in rows) == pytest.approx(total, rel=0, abs=1e-12)


def test_hidden_overlap_never_on_the_path(prefetch_run):
    cfg, res = prefetch_run
    path = path_of(cfg, res)
    assert path.length == res.elapsed
    # a prefetch_wait segment on the path costs only its residual wait —
    # the event's span — never the rated transfer it hid
    by_id = {}
    for t in res.tracers:
        for e in t.events:
            if e.op == "prefetch_wait":
                by_id[(t.rank, e.t_start, e.t_end)] = e
    for s in path.segments:
        if s.op == "prefetch_wait":
            e = by_id[(s.rank, s.t_start, s.t_end)]
            assert s.duration == e.t_end - e.t_start
            assert s.duration <= e.saved + s.duration  # wait excludes saved


# -- blocked-wait metering (satellite 1) --------------------------------------


def test_blocked_field_captures_sync_slack():
    cfg, res = fit(seed=4)
    for t, s in zip(res.tracers, res.run.stats.per_rank):
        blocked = sum(e.blocked for e in t.events if e.kind == "comm")
        assert blocked <= s.idle_time + 1e-12
        assert blocked >= 0.0
    # byte accounting unchanged: traced totals == RankStats, bit for bit
    for t, s in zip(res.tracers, res.run.stats.per_rank):
        sent = sum(e.sent for e in t.comm_events())
        recv = sum(e.received for e in t.comm_events())
        assert sent == s.bytes_sent
        assert recv == s.bytes_received


# -- what-if engine -----------------------------------------------------------


@pytest.fixture(scope="module")
def traced_run():
    return fit(seed=3, n_records=1500)


def test_disk_free_estimate_is_exactly_nondisk_path(traced_run):
    cfg, res = traced_run
    path = path_of(cfg, res)
    est = evaluate(path, Scenario("disk_free", disk_scale=0.0))
    cats = path.by_category()
    nondisk = path.length - cats["disk_read"] - cats["disk_write"]
    assert est.estimate == pytest.approx(nondisk, rel=0, abs=1e-9)
    assert est.baseline == path.length
    assert est.speedup >= 1.0


def test_path_collectives_agree_with_table1_closed_forms(traced_run):
    """Fault-free runs charge collectives exactly their Table-1 cost, so
    every collective interval the path can traverse equals the closed
    form — the documented tolerance for the what-if re-pricing is float
    noise, not a model gap."""
    from repro.obs.critpath import _collective_m, _timeline

    cfg, res = traced_run
    network = scaled_models(cfg.scale)[0]
    timelines = [_timeline(t, 0) for t in res.tracers]
    groups = collective_groups(timelines)
    seen = set()
    checked = 0
    for evs in timelines:
        for e in evs:
            g = groups.get(id(e))
            if g is None or id(g[0][1]) in seen:
                continue
            seen.add(id(g[0][1]))
            if e.op == "split":  # nested allgather carries the cost
                continue
            t_sync = max(ev.t_start for _, ev in g)
            observed = e.t_end - t_sync
            p = len(g)
            if e.op == "alltoall":
                predicted = collective_cost(
                    network, e.op, p=p,
                    out_bytes=float(e.sent), in_bytes=float(e.received),
                )
            else:
                predicted = collective_cost(
                    network, e.op, p=p, m=_collective_m(e.op, g, e)
                )
            assert observed == pytest.approx(predicted, rel=1e-9)
            checked += 1
    assert checked > 10


def test_zero_startup_removes_exactly_the_startup_category(traced_run):
    cfg, res = traced_run
    path = path_of(cfg, res)
    est = evaluate(path, Scenario("zs", startup_scale=0.0))
    assert est.saved == pytest.approx(
        path.by_category()["comm_startup"], rel=0, abs=1e-12
    )


def test_balanced_scenario_bounded_by_busy_surplus(traced_run):
    cfg, res = traced_run
    path = path_of(cfg, res)
    est = evaluate(path, Scenario("bal", balanced=True))
    busy = [e - b for e, b in zip(path.rank_end, path.rank_blocked)]
    surplus = max(busy) - sum(busy) / len(busy)
    assert est.saved == pytest.approx(surplus, rel=1e-12)
    assert 0.0 <= est.estimate <= est.baseline


def test_standard_scenarios_and_voting_ratio(traced_run):
    cfg, res = traced_run
    path = path_of(cfg, res)
    ratio = voting_payload_ratio(q=400, c=2, f=64, p=8, top_k=8)
    assert 0.0 < ratio < 1.0  # voting genuinely shrinks wide payloads
    ests = evaluate_all(path, standard_scenarios(ratio))
    names = [e.scenario.name for e in ests]
    assert names == ["disk_free", "zero_startup", "balanced",
                     "voting_payload"]
    for e in ests:
        assert 0.0 <= e.estimate <= e.baseline + 1e-12
        d = e.to_dict()
        assert d["speedup_bound"] >= 1.0


# -- surfacing: metrics, health, report ---------------------------------------


def test_critpath_metrics_gauges(traced_run):
    cfg, res = traced_run
    path = path_of(cfg, res)
    reg = MetricsRegistry()
    record_critpath_metrics(reg, path)
    record_critpath_metrics(reg, path)  # idempotent re-register
    snap = reg.snapshot()["metrics"]
    fam = {m["name"]: m for m in snap}
    assert "repro_critpath_seconds" in fam
    assert "repro_critpath_share" in fam
    elapsed = fam["repro_critpath_elapsed_seconds"]
    (sample,) = elapsed["samples"]
    assert sample["value"] == path.length


def test_dominant_share_alert_and_monitor(traced_run):
    cfg, res = traced_run
    path = path_of(cfg, res)
    cat, share = path.dominant()
    # tight threshold fires, loose stays silent
    tight = HealthThresholds(critpath_dominant_share=share / 2)
    loose = HealthThresholds(critpath_dominant_share=0.999)
    assert critpath_alerts(path, loose) == []
    (alert,) = critpath_alerts(path, tight)
    assert alert.indicator == "critpath_share"
    assert alert.op == cat
    assert alert.value == share
    monitor = HealthMonitor(cfg.n_ranks, scaled_models(cfg.scale)[0],
                            thresholds=tight)
    got = monitor.evaluate_critical_path(path)
    assert monitor.alerts == got == [alert]


def test_render_critpath_markdown(traced_run):
    from repro.obs.report import render_critpath_markdown

    cfg, res = traced_run
    path = path_of(cfg, res)
    ests = evaluate_all(path, standard_scenarios())
    md = render_critpath_markdown(
        path, estimates=ests, alerts=critpath_alerts(path),
        meta={"exchange": cfg.exchange},
    )
    assert "## Where the time went" in md
    assert "disk_free" in md
    assert "-bound**" in md


def test_trace_report_render_includes_critical_path(traced_run):
    cfg, res = traced_run
    txt = TraceReport(res.tracers).render()
    assert "== critical path" in txt
    assert "hidden(s)" in txt  # per-level overlap column


# -- Chrome-trace flow events (satellite 2) -----------------------------------


def test_flow_events_present_and_deterministic(traced_run):
    cfg, res = traced_run
    path = path_of(cfg, res)
    d1 = to_chrome_trace(res.tracers, path)
    d2 = to_chrome_trace(res.tracers, path)
    assert d1 == d2
    flows = [e for e in d1["traceEvents"] if e["ph"] in ("s", "f")]
    assert flows
    starts = {e["id"] for e in flows if e["ph"] == "s"}
    finishes = {e["id"] for e in flows if e["ph"] == "f"}
    assert starts == finishes  # every arrow has both ends
    cats = {e["cat"] for e in flows}
    assert "flow" in cats
    assert "critpath" in cats  # the overlay rode along
    # the existing slice export is untouched by the flows
    xs = [e for e in d1["traceEvents"] if e["ph"] == "X"]
    assert xs == [e for e in to_chrome_trace(res.tracers)["traceEvents"]
                  if e["ph"] == "X"]


def test_collective_groups_and_p2p_matching(traced_run):
    from repro.obs.critpath import _timeline

    cfg, res = traced_run
    timelines = [_timeline(t, 0) for t in res.tracers]
    groups = collective_groups(timelines)
    # every participant of a group maps to the same group object
    for evs in timelines:
        for e in evs:
            g = groups.get(id(e))
            if g is not None:
                assert any(ev is e for _, ev in g)
    matches = match_p2p(timelines)
    for recv_id, m in matches.items():
        if m is not None:
            rank, se = m
            assert se.op in ("send", "isend")


# -- benchmark trajectory gate ------------------------------------------------


def _write_bench(tmp_path, name, payload):
    (tmp_path / name).write_text(json.dumps(payload))


def _voting_payload(reduction, *, quick=True, ok=True):
    return {
        "benchmark": "voting",
        "quick": quick,
        "ok": ok,
        "failures": [],
        "points": [
            {"reduction_vs_attribute": reduction},
            {"reduction_vs_attribute": reduction + 1.0},
        ],
    }


def test_trajectory_aggregates_and_passes(tmp_path):
    import sys

    sys.path.insert(0, "benchmarks")
    try:
        import trajectory
    finally:
        sys.path.pop(0)
    _write_bench(tmp_path, "BENCH_voting.json", _voting_payload(4.0))
    # internal bench failure annotates but does not fail the gate (the
    # bench's own CI job reports it); only baseline regressions gate
    _write_bench(tmp_path, "BENCH_frontier_batching.json", {
        "benchmark": "frontier_batching", "quick": True, "ok": False,
        "failures": ["x"], "points": [{"elapsed_ratio": 0.9}],
    })
    _write_bench(tmp_path, "BENCH_obs_overhead.json", {
        "benchmark": "obs_overhead", "quick": True, "ok": True,
        "failures": [], "points": [{"overhead": 0.01}, {"overhead": 0.02}],
    })
    baselines = {
        "voting": {"value": 4.0, "quick": True},
        "obs_overhead": {"value": 0.02, "quick": True},
    }
    payload, failures = trajectory.build_trajectory(
        str(tmp_path), baselines, 25.0
    )
    assert failures == []
    assert payload["ok"] is True
    assert payload["schema_version"] == 1
    by_bench = {e["bench"]: e for e in payload["entries"]}
    # worst-point reduction: min over points
    assert by_bench["voting"]["value"] == 4.0
    assert by_bench["obs_overhead"]["value"] == 0.02
    assert by_bench["frontier_batching"]["bench_ok"] is False
    assert not any(e["regressed"] for e in payload["entries"])


def test_trajectory_gate_fails_on_injected_slowdown(tmp_path):
    import sys

    sys.path.insert(0, "benchmarks")
    try:
        import trajectory
    finally:
        sys.path.pop(0)
    # headline degraded 50% below the recorded baseline
    _write_bench(tmp_path, "BENCH_voting.json", _voting_payload(2.0))
    baselines = {"voting": {"value": 4.0, "quick": True}}
    payload, failures = trajectory.build_trajectory(
        str(tmp_path), baselines, 25.0
    )
    assert len(failures) == 1
    assert payload["ok"] is False
    (entry,) = payload["entries"]
    assert entry["regressed"] is True
    assert entry["change_pct"] == pytest.approx(50.0)
    # a full-size run never trips a quick baseline
    _write_bench(tmp_path, "BENCH_voting.json",
                 _voting_payload(2.0, quick=False))
    payload, failures = trajectory.build_trajectory(
        str(tmp_path), baselines, 25.0
    )
    assert failures == []
    # lower-is-better direction: overhead above baseline fails
    _write_bench(tmp_path, "BENCH_voting.json", _voting_payload(4.0))
    _write_bench(tmp_path, "BENCH_obs_overhead.json", {
        "benchmark": "obs_overhead", "quick": True, "ok": True,
        "failures": [], "points": [{"overhead": 0.10}],
    })
    payload, failures = trajectory.build_trajectory(
        str(tmp_path),
        {"voting": {"value": 4.0, "quick": True},
         "obs_overhead": {"value": 0.02, "quick": True}},
        25.0,
    )
    assert any("obs_overhead" in f for f in failures)


def test_trajectory_cli_writes_schema_valid_json(tmp_path, monkeypatch):
    import sys

    sys.path.insert(0, "benchmarks")
    try:
        import trajectory
    finally:
        sys.path.pop(0)
    _write_bench(tmp_path, "BENCH_voting.json", _voting_payload(4.0))
    out = tmp_path / "BENCH_trajectory.json"
    rc = trajectory.main([
        "--dir", str(tmp_path), "--out", str(out),
        "--baselines", str(tmp_path / "nonexistent.json"),
    ])
    assert rc == 0
    payload = json.loads(out.read_text())
    trajectory._validate(payload)
    assert payload["entries"][0]["bench"] == "voting"


# -- CLI ----------------------------------------------------------------------


def test_cli_critpath_smoke(tmp_path, capsys):
    from repro.cli import main

    json_out = tmp_path / "cp.json"
    trace_out = tmp_path / "cp_trace.json"
    rc = main([
        "critpath", "--records", "800", "--ranks", "2", "--seed", "1",
        "--what-if", "--strict",
        "--json-out", str(json_out), "--out", str(trace_out),
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "Critical path" in out
    assert "What-if" in out
    payload = json.loads(json_out.read_text())
    cp = payload["critical_path"]
    assert cp["path_seconds"] == cp["elapsed_seconds"]
    assert abs(sum(c["seconds"] for c in cp["by_category"].values())
               - cp["path_seconds"]) < 1e-9
    assert payload["what_if"]
    trace = json.loads(trace_out.read_text())
    assert any(e["ph"] == "s" for e in trace["traceEvents"])
