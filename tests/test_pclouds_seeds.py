"""Seed robustness: pCLOUDS must produce valid, accurate trees for any
seeding of the generator, the distribution and the sampling — and its
invariants must hold across all of them."""

import numpy as np
import pytest

from repro.clouds import CloudsConfig, accuracy, validate_tree
from repro.core import DistributedDataset, PClouds, PCloudsConfig
from repro.data import generate_quest, quest_schema

from conftest import make_cluster


@pytest.mark.parametrize("seed", [0, 17, 101, 4242])
def test_any_seed_builds_valid_accurate_tree(seed):
    schema = quest_schema()
    cols, labels = generate_quest(
        1500, function=1 + seed % 7, seed=seed, noise=0.03
    )
    cluster = make_cluster(3, seed=seed)
    ds = DistributedDataset.create(cluster, schema, cols, labels, seed=seed + 1)
    res = PClouds(
        PCloudsConfig(
            clouds=CloudsConfig(q_root=40, sample_size=300, min_node=16)
        )
    ).fit(ds, seed=seed + 2)
    validate_tree(res.tree)
    leaves = [n for n in res.tree.iter_nodes() if n.is_leaf]
    assert sum(n.n for n in leaves) == len(labels)
    assert accuracy(labels, res.tree.predict(cols)) > 0.8


def test_different_sample_seeds_give_different_but_close_trees():
    """The pre-drawn sample is the only stochastic ingredient; different
    sampling seeds may move interval boundaries, but quality holds."""
    schema = quest_schema()
    cols, labels = generate_quest(3000, function=2, seed=5, noise=0.03)
    accs = []
    for fit_seed in (1, 2, 3):
        cluster = make_cluster(2, seed=0)
        ds = DistributedDataset.create(cluster, schema, cols, labels, seed=9)
        res = PClouds(
            PCloudsConfig(clouds=CloudsConfig(q_root=50, sample_size=400,
                                              min_node=16))
        ).fit(ds, seed=fit_seed)
        accs.append(accuracy(labels, res.tree.predict(cols)))
    assert max(accs) - min(accs) < 0.05
    assert min(accs) > 0.85


def test_distribution_seed_changes_fragments_not_results_quality():
    schema = quest_schema()
    cols, labels = generate_quest(2000, function=2, seed=6, noise=0.02)
    trees = []
    for dist_seed in (11, 22):
        cluster = make_cluster(4, seed=0)
        ds = DistributedDataset.create(
            cluster, schema, cols, labels, seed=dist_seed
        )
        res = PClouds(
            PCloudsConfig(clouds=CloudsConfig(q_root=40, sample_size=300,
                                              min_node=16))
        ).fit(ds, seed=7)
        trees.append(res.tree)
    # fragments differ, so the replicated sample differs; boundary splits
    # may shift, but both trees classify equally well
    a = accuracy(labels, trees[0].predict(cols))
    b = accuracy(labels, trees[1].predict(cols))
    assert abs(a - b) < 0.05
