"""Feature importance, cross-validation, reduced-error pruning."""

import numpy as np
import pytest

from repro.clouds import (
    CloudsBuilder,
    CloudsConfig,
    StoppingRule,
    accuracy,
    cross_validate,
    fit_direct,
    gini_importance,
    permutation_importance,
    reduced_error_prune,
    validate_tree,
)
from repro.data import generate_quest, quest_schema


@pytest.fixture(scope="module")
def fitted(schema):
    cols, labels = generate_quest(4000, function=2, seed=51, noise=0.02)
    tree = fit_direct(schema, cols, labels, StoppingRule(min_node=16))
    return tree, cols, labels


class TestGiniImportance:
    def test_function2_driven_by_age_and_salary(self, fitted):
        tree, _, _ = fitted
        imp = gini_importance(tree)
        top_two = sorted(imp, key=imp.get, reverse=True)[:2]
        assert set(top_two) == {"age", "salary"}
        assert imp["age"] + imp["salary"] > 0.8

    def test_normalized_sums_to_one(self, fitted):
        tree, _, _ = fitted
        assert sum(gini_importance(tree).values()) == pytest.approx(1.0)

    def test_unnormalized_positive(self, fitted):
        tree, _, _ = fitted
        raw = gini_importance(tree, normalize=False)
        assert all(v >= 0 for v in raw.values())
        assert max(raw.values()) > 0

    def test_every_attribute_reported(self, fitted, schema):
        tree, _, _ = fitted
        assert set(gini_importance(tree)) == set(schema.names)

    def test_single_leaf_all_zero(self, schema):
        cols, _ = generate_quest(100, seed=1)
        labels = np.zeros(100, dtype=np.int32)
        tree = fit_direct(schema, cols, labels)
        assert all(v == 0.0 for v in gini_importance(tree).values())


class TestPermutationImportance:
    def test_agrees_with_gini_on_top_features(self, fitted):
        tree, cols, labels = fitted
        perm = permutation_importance(tree, cols, labels, n_repeats=2, seed=3)
        top_two = sorted(perm, key=perm.get, reverse=True)[:2]
        assert set(top_two) == {"age", "salary"}

    def test_irrelevant_attribute_near_zero(self, fitted):
        tree, cols, labels = fitted
        perm = permutation_importance(tree, cols, labels, n_repeats=2, seed=4)
        assert perm["car"] < 0.02  # function 2 ignores `car`

    def test_repeats_validated(self, fitted):
        tree, cols, labels = fitted
        with pytest.raises(ValueError):
            permutation_importance(tree, cols, labels, n_repeats=0)


class TestCrossValidate:
    @pytest.fixture(scope="class")
    def data(self):
        return generate_quest(3000, function=2, seed=52, noise=0.05)

    def test_kfold_accuracy_reasonable(self, schema, data):
        cols, labels = data
        builder = CloudsBuilder(
            schema, CloudsConfig(q_root=50, sample_size=400, min_node=16)
        )
        res = cross_validate(
            lambda c, y: builder.fit_arrays(c, y, seed=1), cols, labels, k=4,
            seed=2,
        )
        assert len(res.fold_accuracies) == 4
        assert 0.8 < res.mean_accuracy < 1.0
        assert res.std_accuracy < 0.1

    def test_folds_partition_data(self, data):
        from repro.clouds.validation import _stratified_folds

        _, labels = data
        folds = _stratified_folds(labels, 5, seed=0)
        all_rows = np.sort(np.concatenate(folds))
        np.testing.assert_array_equal(all_rows, np.arange(len(labels)))

    def test_stratification_preserves_class_balance(self, data):
        from repro.clouds.validation import _stratified_folds

        _, labels = data
        overall = np.mean(labels)
        for fold in _stratified_folds(labels, 5, seed=1):
            assert abs(np.mean(labels[fold]) - overall) < 0.05

    def test_parameter_validation(self, schema, data):
        cols, labels = data
        fit = lambda c, y: fit_direct(schema, c, y)  # noqa: E731
        with pytest.raises(ValueError):
            cross_validate(fit, cols, labels, k=1)
        with pytest.raises(ValueError):
            cross_validate(
                fit,
                {k: v[:3] for k, v in cols.items()},
                labels[:3],
                k=5,
            )


class TestReducedErrorPrune:
    def test_prunes_noise_and_keeps_holdout_accuracy(self, schema):
        cols, labels = generate_quest(6000, function=2, seed=53, noise=0.15)
        tr = {k: v[:4000] for k, v in cols.items()}
        ho = {k: v[4000:] for k, v in cols.items()}
        tree = fit_direct(schema, tr, labels[:4000], StoppingRule(min_node=2))
        acc_before = accuracy(labels[4000:], tree.predict(ho))
        _, removed = reduced_error_prune(tree, ho, labels[4000:])
        assert removed > 0
        validate_tree(tree)
        acc_after = accuracy(labels[4000:], tree.predict(ho))
        # by construction REP never hurts holdout accuracy
        assert acc_after >= acc_before

    def test_pure_tree_untouched(self, schema, quest_clean):
        cols, labels = quest_clean
        tree = fit_direct(schema, cols, labels, StoppingRule(min_node=64))
        n0 = tree.n_nodes
        _, removed = reduced_error_prune(tree, cols, labels)
        # pruning against the training set of a consistent tree removes
        # only splits that never change a prediction
        assert tree.n_nodes <= n0
        assert accuracy(labels, tree.predict(cols)) > 0.99

    def test_empty_holdout_collapses_nothing_wrongly(self, schema):
        cols, labels = generate_quest(800, function=2, seed=54, noise=0.02)
        tree = fit_direct(schema, cols, labels, StoppingRule(min_node=32))
        empty = {k: v[:0] for k, v in cols.items()}
        _, removed = reduced_error_prune(tree, empty, labels[:0])
        # zero holdout errors everywhere: ties collapse to leaves safely
        assert removed >= 0
        validate_tree(tree)
