"""Property-based tests of the communicator: random collective programs
must satisfy MPI semantics and keep clocks consistent on any machine
size."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import Cluster


def run(p, prog, *args):
    return Cluster(p, seed=0, timeout=60.0).run(prog, *args)


@given(st.integers(1, 6), st.lists(st.integers(-100, 100), min_size=1, max_size=8))
@settings(max_examples=25, deadline=None)
def test_allreduce_sum_is_global_sum(p, values):
    def prog(ctx):
        mine = values[ctx.rank % len(values)]
        return ctx.comm.allreduce(mine)

    expect = sum(values[r % len(values)] for r in range(p))
    assert run(p, prog).results == [expect] * p


@given(st.integers(1, 6), st.integers(0, 5))
@settings(max_examples=25, deadline=None)
def test_scan_prefixes_are_consistent(p, offset):
    def prog(ctx):
        return ctx.comm.scan(ctx.rank + offset)

    out = run(p, prog).results
    acc = 0
    for r in range(p):
        acc += r + offset
        assert out[r] == acc


@given(st.integers(1, 6), st.data())
@settings(max_examples=25, deadline=None)
def test_alltoall_is_a_transpose(p, data):
    matrix = [
        [data.draw(st.integers(0, 1000)) for _ in range(p)] for _ in range(p)
    ]

    def prog(ctx):
        return ctx.comm.alltoall(matrix[ctx.rank])

    out = run(p, prog).results
    for dst in range(p):
        assert out[dst] == [matrix[src][dst] for src in range(p)]


@given(st.integers(1, 6), st.integers(0, 5))
@settings(max_examples=20, deadline=None)
def test_bcast_from_any_root(p, root_seed):
    root = root_seed % p

    def prog(ctx):
        return ctx.comm.bcast(("payload", ctx.rank) if ctx.rank == root else None,
                              root=root)

    assert run(p, prog).results == [("payload", root)] * p


@given(st.integers(2, 6), st.lists(st.floats(0, 100, width=16), min_size=6, max_size=6))
@settings(max_examples=25, deadline=None)
def test_minloc_agrees_with_python_min(p, vals):
    def prog(ctx):
        v = vals[ctx.rank % len(vals)]
        return ctx.comm.allreduce_minloc(v, payload=ctx.rank)

    out = run(p, prog).results
    per_rank = [vals[r % len(vals)] for r in range(p)]
    best = min(range(p), key=lambda r: (per_rank[r], r))
    assert all(o == (per_rank[best], best, best) for o in out)


@given(st.integers(1, 6))
@settings(max_examples=15, deadline=None)
def test_scatter_inverts_gather(p):
    def prog(ctx):
        parts = [f"to-{d}" for d in range(ctx.size)] if ctx.rank == 0 else None
        mine = ctx.comm.scatter(parts, root=0)
        back = ctx.comm.gather(mine, root=0)
        return mine, back

    out = run(p, prog).results
    assert [o[0] for o in out] == [f"to-{r}" for r in range(p)]
    assert out[0][1] == [f"to-{r}" for r in range(p)]


@given(st.integers(2, 6), st.integers(0, 3))
@settings(max_examples=20, deadline=None)
def test_clocks_never_regress_through_collectives(p, rounds):
    def prog(ctx):
        stamps = [ctx.clock.now]
        for i in range(rounds + 1):
            ctx.charge_compute(ops=1000 * (ctx.rank + i))
            ctx.comm.allreduce(np.int64(1))
            stamps.append(ctx.clock.now)
        return stamps

    for stamps in run(p, prog).results:
        assert all(b >= a for a, b in zip(stamps, stamps[1:]))


@given(st.integers(2, 6))
@settings(max_examples=15, deadline=None)
def test_collective_exit_times_agree(p):
    """All participants leave a collective at the same simulated time —
    the property the elapsed-time measurements rest on."""

    def prog(ctx):
        ctx.charge_compute(ops=12345 * (ctx.rank + 1))
        ctx.comm.barrier()
        return ctx.clock.now

    out = run(p, prog).results
    assert len(set(out)) == 1
