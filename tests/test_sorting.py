"""External merge sort and parallel sample sort."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.cluster.clock import SimClock
from repro.cluster.diskmodel import DiskModel
from repro.cluster.stats import RankStats
from repro.dnc.sorting import parallel_sample_sort
from repro.ooc import InMemoryBackend, LocalDisk, OocArray
from repro.ooc.extsort import external_sort, is_globally_sorted

from conftest import make_cluster


def fresh_disk():
    return LocalDisk(DiskModel(), SimClock(), RankStats(), InMemoryBackend())


def load(disk, data, chunk=97):
    f = OocArray(disk, np.float64, name="in")
    for lo in range(0, len(data), chunk):
        f.append(data[lo : lo + chunk])
    return f


class TestExternalSort:
    def test_sorts_random_data(self):
        rng = np.random.default_rng(0)
        data = rng.random(5000)
        disk = fresh_disk()
        out = external_sort(load(disk, data), run_records=256)
        np.testing.assert_array_equal(out.read_all(), np.sort(data))

    def test_multilevel_merge(self):
        rng = np.random.default_rng(1)
        data = rng.random(4000)
        disk = fresh_disk()
        # 40 runs with fan-in 3: needs 4 merge levels
        out = external_sort(load(disk, data), run_records=100, fan_in=3)
        assert is_globally_sorted(out)
        assert len(out) == 4000

    def test_io_volume_scales_with_merge_levels(self):
        rng = np.random.default_rng(2)
        data = rng.random(8000)
        d1, d2 = fresh_disk(), fresh_disk()
        external_sort(load(d1, data), run_records=8000)  # one run, no merge
        external_sort(load(d2, data), run_records=100, fan_in=2)  # ~7 levels
        assert d2.stats.bytes_read > 3 * d1.stats.bytes_read

    def test_consumes_source(self):
        disk = fresh_disk()
        f = load(disk, np.arange(10.0))
        external_sort(f, run_records=4)
        with pytest.raises(ValueError):
            f.read_all()

    def test_empty_input(self):
        out = external_sort(load(fresh_disk(), np.empty(0)), run_records=4)
        assert len(out) == 0
        assert is_globally_sorted(out)

    def test_duplicates_preserved(self):
        data = np.array([3.0, 1.0, 3.0, 1.0, 2.0] * 100)
        out = external_sort(load(fresh_disk(), data), run_records=32)
        np.testing.assert_array_equal(out.read_all(), np.sort(data))

    def test_invalid_params(self):
        f = load(fresh_disk(), np.arange(4.0))
        with pytest.raises(ValueError):
            external_sort(f, run_records=0)
        with pytest.raises(ValueError):
            external_sort(f, run_records=2, fan_in=1)

    def test_is_globally_sorted_detects_disorder(self):
        f = load(fresh_disk(), np.array([1.0, 3.0, 2.0]))
        assert not is_globally_sorted(f)
        g = load(fresh_disk(), np.array([1.0, 2.0, 3.0]))
        assert is_globally_sorted(g)

    @given(
        hnp.arrays(np.float64, st.integers(0, 600),
                   elements=st.floats(-1e6, 1e6, width=32)),
        st.integers(1, 64),
        st.integers(2, 5),
    )
    @settings(max_examples=25, deadline=None)
    def test_property_equals_numpy_sort(self, data, run_records, fan_in):
        out = external_sort(
            load(fresh_disk(), data, chunk=37), run_records=run_records,
            fan_in=fan_in,
        )
        np.testing.assert_array_equal(out.read_all(), np.sort(data))


class TestParallelSampleSort:
    def test_sorts_globally(self):
        rng = np.random.default_rng(3)
        values = rng.normal(size=20_000)
        res = parallel_sample_sort(make_cluster(4), values, seed=1)
        assert res.verify()
        np.testing.assert_array_equal(res.read_all(), np.sort(values))

    def test_single_rank(self):
        values = np.random.default_rng(4).random(500)
        res = parallel_sample_sort(make_cluster(1), values, seed=2)
        np.testing.assert_array_equal(res.read_all(), np.sort(values))
        assert len(res.splitters) == 0

    def test_bucket_balance_obeys_sampling_bound(self):
        rng = np.random.default_rng(5)
        values = rng.random(40_000)
        res = parallel_sample_sort(make_cluster(8), values, oversample=64, seed=3)
        # Angluin-Valiant flavour: oversampled splitters keep buckets
        # within a modest factor of the mean
        assert res.imbalance() < 1.5
        assert res.n_records == 40_000

    def test_skewed_input_still_sorts(self):
        rng = np.random.default_rng(6)
        values = np.concatenate([np.zeros(5000), rng.random(5000) * 1e-3,
                                 rng.random(100) * 100])
        res = parallel_sample_sort(make_cluster(4), values, seed=4)
        np.testing.assert_array_equal(res.read_all(), np.sort(values))

    def test_memory_limit_triggers_external_merge(self):
        rng = np.random.default_rng(7)
        values = rng.random(20_000)
        free = parallel_sample_sort(make_cluster(2), values, seed=5)
        tight_cluster = make_cluster(2, memory_limit=4 * 1024)  # 512 records
        tight = parallel_sample_sort(tight_cluster, values, seed=5)
        np.testing.assert_array_equal(tight.read_all(), free.read_all())
        assert (
            tight.run.stats.total.bytes_read > free.run.stats.total.bytes_read
        )

    def test_more_ranks_sort_faster(self):
        from repro.bench.harness import scaled_models

        rng = np.random.default_rng(8)
        values = rng.random(30_000)
        net, disk, compute = scaled_models(100.0)
        times = []
        for p in (1, 4):
            cluster = make_cluster(
                p, network=net, disk=disk, compute=compute,
                memory_limit=16 * 1024,
            )
            times.append(parallel_sample_sort(cluster, values, seed=6).elapsed)
        assert times[1] < times[0] / 2

    def test_empty_input(self):
        res = parallel_sample_sort(make_cluster(3), np.empty(0), seed=7)
        assert res.n_records == 0
        assert res.verify()
