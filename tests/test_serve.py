"""Serving path: the compiled flat-array engine must be bit-identical to
the reference ``DecisionTree.predict`` on every builder's trees (including
trees round-tripped through the JSON wire format), degenerate chain trees
deeper than the interpreter recursion limit must predict / serialise /
compile without error, and the replay driver's latency/throughput
roll-ups and health alerts must be exactly reproducible under a fake
clock."""

from __future__ import annotations

import json
import sys

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clouds import (
    CATEGORICAL_SPLIT,
    NUMERIC_SPLIT,
    CloudsBuilder,
    CloudsConfig,
    SliqBuilder,
    Split,
    SprintBuilder,
    StoppingRule,
    fit_direct,
    validate_tree,
)
from repro.clouds.tree import DecisionTree, TreeNode
from repro.core import DistributedDataset, PClouds, PCloudsConfig
from repro.data import generate_quest, quest_schema
from repro.data.synthetic import make_blobs
from repro.obs import HealthThresholds, MetricsRegistry
from repro.obs.health import OUTSIDE_LEVEL
from repro.serve import (
    CompiledTree,
    ReplayConfig,
    ServeEngine,
    compile_tree,
    replay,
    request_batches,
)
from repro.serve.compiler import LEAF

from conftest import make_cluster


# ---------------------------------------------------------------------------
# helpers


def fit_parallel(cols, labels, p, exchange):
    schema = quest_schema()
    cluster = make_cluster(p)
    ds = DistributedDataset.create(cluster, schema, cols, labels, seed=1)
    cfg = PCloudsConfig(
        clouds=CloudsConfig(q_root=60, sample_size=500, min_node=16),
        exchange=exchange,
    )
    return PClouds(cfg).fit(ds, seed=2).tree


def adversarial_columns(schema, n, rng):
    """A request batch exercising every routing edge case: NaN in
    numerics, and categorical queries that are negative, fractional, or
    beyond the schema cardinality."""
    cols = {}
    for a in schema.numeric:
        v = rng.normal(0.0, 1e5, n)
        v[rng.random(n) < 0.1] = np.nan
        cols[a.name] = v
    for a in schema.categorical:
        v = rng.integers(-2, a.cardinality + 2, n).astype(np.float64)
        frac = rng.random(n) < 0.15
        v[frac] += 0.5
        v[rng.random(n) < 0.05] = np.nan
        cols[a.name] = v
    return cols


def assert_compiled_matches(tree, columns):
    ref = tree.predict(columns)
    got = tree.compile().predict_batch(columns)
    np.testing.assert_array_equal(got, ref)
    assert got.dtype == ref.dtype


# ---------------------------------------------------------------------------
# compiled == reference across the builder grid


class TestCompiledIdentity:
    """Every builder's trees — sequential, approximate, parallel — must
    compile to bit-identical batch prediction."""

    def test_direct_tree(self, schema, quest_small):
        cols, labels = quest_small
        tree = fit_direct(schema, cols, labels, StoppingRule(min_node=8))
        assert_compiled_matches(tree, cols)

    @pytest.mark.parametrize("method", ["ss", "sse"])
    def test_clouds_tree(self, schema, quest_small, method):
        cols, labels = quest_small
        tree = CloudsBuilder(
            schema,
            CloudsConfig(method=method, q_root=40, sample_size=400, min_node=16),
        ).fit_arrays(cols, labels, seed=5)
        assert_compiled_matches(tree, cols)

    def test_sliq_and_sprint_trees(self, schema, quest_small):
        cols, labels = quest_small
        stop = StoppingRule(min_node=32)
        for tree in (
            SliqBuilder(schema, stop).fit(cols, labels),
            SprintBuilder(schema, stop).fit(cols, labels),
        ):
            assert_compiled_matches(tree, cols)

    def test_multiclass_tree(self):
        schema, cols, labels = make_blobs(1500, seed=31)
        tree = fit_direct(schema, cols, labels, StoppingRule(min_node=8))
        assert_compiled_matches(tree, cols)

    @pytest.mark.parametrize("exchange", ["attribute", "distributed"])
    def test_parallel_tree(self, quest_small, exchange):
        cols, labels = quest_small
        tree = fit_parallel(cols, labels, 4, exchange)
        validate_tree(tree)
        assert_compiled_matches(tree, cols)

    def test_loaded_from_json_tree(self, schema, quest_small, tmp_path):
        """The wire format is part of the serving contract: a tree saved
        and loaded back must compile to the same labels."""
        cols, labels = quest_small
        tree = fit_direct(schema, cols, labels, StoppingRule(min_node=8))
        path = str(tmp_path / "tree.json")
        tree.save(path)
        loaded = DecisionTree.load(path, schema)
        np.testing.assert_array_equal(
            loaded.compile().predict_batch(cols), tree.predict(cols)
        )

    def test_adversarial_inputs(self, schema, quest_small):
        cols, labels = quest_small
        tree = fit_direct(schema, cols, labels, StoppingRule(min_node=8))
        bad = adversarial_columns(schema, 3000, np.random.default_rng(0))
        assert_compiled_matches(tree, bad)

    def test_single_leaf_tree(self, schema, quest_small):
        cols, labels = quest_small
        tree = fit_direct(schema, cols, labels, StoppingRule(min_node=10**9))
        compiled = tree.compile()
        assert compiled.n_nodes == 1 and compiled.n_leaves == 1
        assert_compiled_matches(tree, cols)

    def test_empty_batch(self, schema, quest_small):
        cols, labels = quest_small
        tree = fit_direct(schema, cols, labels, StoppingRule(min_node=8))
        empty = {k: v[:0] for k, v in cols.items()}
        out = tree.compile().predict_batch(empty)
        assert out.shape == (0,)


class TestCompiledLayout:
    def test_tables_and_shape(self, schema, quest_small):
        cols, labels = quest_small
        tree = fit_direct(schema, cols, labels, StoppingRule(min_node=16))
        compiled = tree.compile()
        assert isinstance(compiled, CompiledTree)
        assert compiled.n_nodes == tree.n_nodes
        assert compiled.n_leaves == tree.n_leaves
        assert compiled.depth == tree.depth
        assert compiled.feature[0] != LEAF  # root is internal here
        internal = compiled.feature != LEAF
        # breadth-first sibling adjacency: the invariant predict_matrix
        # exploits to advance cursors without a second child gather
        np.testing.assert_array_equal(
            compiled.right[internal], compiled.left[internal] + 1
        )
        assert compiled.nbytes > 0
        assert set(compiled.used_features) <= set(range(len(schema.names)))

    def test_out_of_range_code_rejected(self, schema):
        counts = np.array([3, 2])
        bad = TreeNode(
            node_id=0,
            depth=0,
            class_counts=counts,
            split=Split("elevel", CATEGORICAL_SPLIT, 0.1,
                        left_codes=frozenset({999})),
            left=TreeNode(node_id=1, depth=1, class_counts=np.array([3, 0])),
            right=TreeNode(node_id=2, depth=1, class_counts=np.array([0, 2])),
        )
        with pytest.raises(ValueError, match="outside the schema"):
            compile_tree(DecisionTree(root=bad, schema=schema))


# ---------------------------------------------------------------------------
# property: compiled equals reference on arbitrary batches


@pytest.fixture(scope="module")
def property_tree():
    schema = quest_schema()
    cols, labels = generate_quest(2000, function=2, seed=7, noise=0.02)
    tree = fit_direct(schema, cols, labels, StoppingRule(min_node=8))
    return schema, tree, tree.compile()


@given(seed=st.integers(0, 2**32 - 1), n=st.integers(1, 400))
@settings(max_examples=40, deadline=None)
def test_property_compiled_equals_reference(property_tree, seed, n):
    schema, tree, compiled = property_tree
    rng = np.random.default_rng(seed)
    cols = adversarial_columns(schema, n, rng)
    np.testing.assert_array_equal(
        compiled.predict_batch(cols), tree.predict(cols)
    )


# ---------------------------------------------------------------------------
# deep chain trees: the recursion-bound paths


def make_chain_tree(depth: int) -> tuple[DecisionTree, str]:
    """A degenerate left-leaning chain: node at depth ``d`` routes
    ``attr <= -d`` left into the next link, everything else to a leaf.
    ``class_counts`` stay consistent (parent = left + right) so the tree
    passes the same structural checks fitted trees do."""
    schema = quest_schema()
    attr = schema.numeric[0].name
    node = TreeNode(
        node_id=2 * depth, depth=depth, class_counts=np.array([0, 1])
    )
    for d in range(depth - 1, -1, -1):
        right = TreeNode(
            node_id=2 * d + 1, depth=d + 1, class_counts=np.array([1, 0])
        )
        node = TreeNode(
            node_id=2 * d,
            depth=d,
            class_counts=node.class_counts + right.class_counts,
            split=Split(attr, NUMERIC_SPLIT, 0.5, threshold=-float(d)),
            left=node,
            right=right,
        )
    return DecisionTree(root=node, schema=schema, meta={"builder": "chain"}), attr


class TestDeepChain:
    """Regression for the recursion-bound inference path: a chain deeper
    than ``sys.getrecursionlimit()`` must predict, serialise, round-trip
    and compile. (Whole-dict equality on such trees is itself recursive,
    so identity is asserted via predictions, node counts and describe.)"""

    @pytest.fixture(scope="class")
    def chain(self):
        depth = sys.getrecursionlimit() + 200
        tree, attr = make_chain_tree(depth)
        return depth, tree, attr

    def test_predict_beyond_recursion_limit(self, chain):
        depth, tree, attr = chain
        assert tree.depth == depth
        assert tree.n_nodes == 2 * depth + 1
        # -1e18 survives every `v <= -d` test down to the bottom leaf
        # (label 1); +1 exits right at the root; NaN routes right too
        out = tree.predict({attr: np.array([-1e18, 1.0, np.nan])})
        np.testing.assert_array_equal(out, [1, 0, 0])

    def test_describe_beyond_recursion_limit(self, chain):
        depth, tree, _ = chain
        text = tree.describe()
        assert len(text.splitlines()) == tree.n_nodes
        # truncation at depth 2: the depth-3 chain link and its sibling
        # leaf both collapse to ellipses
        assert tree.describe(max_depth=2).count("...") == 2

    def test_wire_roundtrip_beyond_recursion_limit(self, chain):
        depth, tree, attr = chain
        clone = DecisionTree.from_dict(tree.to_dict(), tree.schema)
        assert clone.n_nodes == tree.n_nodes
        assert clone.meta == {"builder": "chain"}
        batch = {attr: -np.arange(0, depth + 10, 7, dtype=np.float64)}
        np.testing.assert_array_equal(clone.predict(batch), tree.predict(batch))

    def test_save_load_beyond_recursion_limit(self, chain, tmp_path):
        depth, tree, attr = chain
        limit = sys.getrecursionlimit()
        path = str(tmp_path / "chain.json")
        tree.save(path)
        loaded = DecisionTree.load(path, tree.schema)
        # the headroom the json codec borrowed must have been returned
        assert sys.getrecursionlimit() == limit
        assert loaded.n_nodes == tree.n_nodes
        assert loaded.meta == tree.meta
        batch = {attr: -np.arange(0, depth + 10, 3, dtype=np.float64)}
        np.testing.assert_array_equal(loaded.predict(batch), tree.predict(batch))

    def test_compile_beyond_recursion_limit(self, chain):
        depth, tree, attr = chain
        compiled = tree.compile()
        assert compiled.n_nodes == tree.n_nodes
        assert compiled.depth == depth
        rng = np.random.default_rng(3)
        batch = {attr: rng.uniform(-depth - 5, 5, 5000)}
        np.testing.assert_array_equal(
            compiled.predict_batch(batch), tree.predict(batch)
        )

    def test_json_nesting_depth_helper(self):
        from repro.clouds.tree import _json_nesting_depth

        assert _json_nesting_depth("{}") == 1
        assert _json_nesting_depth('{"a": [{"b": 1}]}') == 3
        # brackets inside string literals (and escaped quotes) don't nest
        assert _json_nesting_depth('{"a": "[[[\\"{"}') == 1


# ---------------------------------------------------------------------------
# wire-format fixes: meta round-trip, n_classes validation


class TestWireFixes:
    def test_meta_survives_save_load(self, schema, quest_small, tmp_path):
        cols, labels = quest_small
        tree = fit_direct(schema, cols, labels, StoppingRule(min_node=256))
        assert tree.meta == {"builder": "direct"}
        path = str(tmp_path / "t.json")
        tree.save(path)
        assert DecisionTree.load(path, schema).meta == {"builder": "direct"}

    def test_meta_in_wire_dict(self, schema, quest_small):
        cols, labels = quest_small
        tree = fit_direct(schema, cols, labels, StoppingRule(min_node=256))
        wire = tree.to_dict()
        assert wire["meta"] == {"builder": "direct"}
        assert DecisionTree.from_dict(wire, schema).meta == tree.meta
        # mutating the wire dict must not alias the tree's meta
        wire["meta"]["x"] = 1
        assert "x" not in tree.meta

    def test_legacy_wire_without_meta_loads(self, schema, quest_small):
        cols, labels = quest_small
        tree = fit_direct(schema, cols, labels, StoppingRule(min_node=256))
        wire = tree.to_dict()
        del wire["meta"], wire["n_classes"]
        clone = DecisionTree.from_dict(wire, schema)
        assert clone.meta == {}
        np.testing.assert_array_equal(clone.predict(cols), tree.predict(cols))

    def test_n_classes_mismatch_rejected(self, quest_small):
        schema = quest_schema()  # 2 classes
        cols, labels = quest_small
        tree = fit_direct(schema, cols, labels, StoppingRule(min_node=256))
        blobs_schema, _, _ = make_blobs(50, seed=1)  # 4 classes
        with pytest.raises(ValueError, match="n_classes=2"):
            DecisionTree.from_dict(tree.to_dict(), blobs_schema)

    def test_n_classes_mismatch_rejected_on_load(
        self, schema, quest_small, tmp_path
    ):
        cols, labels = quest_small
        tree = fit_direct(schema, cols, labels, StoppingRule(min_node=256))
        path = str(tmp_path / "t.json")
        tree.save(path)
        blobs_schema, _, _ = make_blobs(50, seed=1)
        with pytest.raises(ValueError, match="load with the schema"):
            DecisionTree.load(path, blobs_schema)


# ---------------------------------------------------------------------------
# Split.goes_left: precomputed codes, categorical routing, NaN policy


class TestGoesLeft:
    def test_categorical_membership(self):
        s = Split("car", CATEGORICAL_SPLIT, 0.1, left_codes=frozenset({0, 3, 7}))
        np.testing.assert_array_equal(
            s.goes_left(np.array([0, 1, 3, 7, 8])),
            [True, False, True, True, False],
        )

    def test_categorical_float_queries_compare_by_value(self):
        """Serving feeds float64 columns; 3.0 is code 3 but 3.5, -1 and
        NaN are members of nothing."""
        s = Split("car", CATEGORICAL_SPLIT, 0.1, left_codes=frozenset({0, 3}))
        np.testing.assert_array_equal(
            s.goes_left(np.array([0.0, 3.0, 3.5, -1.0, np.nan])),
            [True, True, False, False, False],
        )

    def test_codes_array_precomputed_once(self):
        s = Split("car", CATEGORICAL_SPLIT, 0.1, left_codes=frozenset({5, 1, 9}))
        arr = s.left_codes_array
        np.testing.assert_array_equal(arr, [1, 5, 9])
        assert arr.dtype == np.int64
        assert s.left_codes_array is arr  # cached, not rebuilt per call

    def test_numeric_nan_routes_right(self):
        s = Split("age", NUMERIC_SPLIT, 0.2, threshold=40.0)
        np.testing.assert_array_equal(
            s.goes_left(np.array([39.0, 40.0, 41.0, np.nan])),
            [True, True, False, False],
        )
        assert s.left_codes_array is None

    def test_cache_does_not_break_value_semantics(self):
        a = Split("car", CATEGORICAL_SPLIT, 0.1, left_codes=frozenset({1, 2}))
        b = Split("car", CATEGORICAL_SPLIT, 0.1, left_codes=frozenset({2, 1}))
        assert a == b and hash(a) == hash(b)


# ---------------------------------------------------------------------------
# engine + replay: deterministic under a fake clock


class FakeClock:
    """Monotonic clock advancing ``step`` per reading; ``sleep`` jumps it
    by the requested amount (what a real sleeping thread observes)."""

    def __init__(self, step: float = 1e-3):
        self.t = 0.0
        self.step = step
        self.sleeps: list[float] = []

    def __call__(self) -> float:
        self.t += self.step
        return self.t

    def sleep(self, dt: float) -> None:
        self.sleeps.append(dt)
        self.t += dt


@pytest.fixture(scope="module")
def small_compiled():
    schema = quest_schema()
    cols, labels = generate_quest(1000, function=2, seed=0, noise=0.0)
    return fit_direct(schema, cols, labels, StoppingRule(min_node=64)).compile()


class TestServeEngine:
    def test_metrics_recorded(self, small_compiled):
        registry = MetricsRegistry()
        clock = FakeClock(step=1e-3)
        engine = ServeEngine(small_compiled, registry, rank=0, clock=clock)
        cols, _ = generate_quest(256, function=2, seed=1)
        for i in range(4):
            batch = {k: v[i * 64 : (i + 1) * 64] for k, v in cols.items()}
            engine.predict_batch(batch)
        merged = registry.merged()
        (req,) = merged["repro_serve_requests_total"]
        (rec,) = merged["repro_serve_records_total"]
        (nodes,) = merged["repro_serve_model_nodes"]
        assert req.labels == ("0",) and req.value == 4
        assert rec.value == 256
        assert nodes.value == small_compiled.n_nodes
        # each call reads the clock twice: latency == one step, exactly
        assert engine.latencies == [1e-3] * 4
        assert engine.percentile(50) == pytest.approx(1e-3)
        (hist,) = merged["repro_serve_latency_seconds"]
        assert hist.value[-1] == 4  # cell tail is the observation count

    def test_percentile_empty(self, small_compiled):
        engine = ServeEngine(small_compiled, MetricsRegistry())
        assert engine.percentile(99) == 0.0

    def test_finalize_publishes_gauges(self, small_compiled):
        registry = MetricsRegistry()
        engine = ServeEngine(
            small_compiled, registry, rank=2, clock=FakeClock(2e-3)
        )
        cols, _ = generate_quest(100, function=2, seed=1)
        engine.predict_batch(cols)
        engine.finalize(elapsed=0.5)
        merged = registry.merged()
        (p99,) = merged["repro_serve_latency_p99_seconds"]
        (rps,) = merged["repro_serve_records_per_sec"]
        assert p99.labels == ("2",)
        assert p99.value == pytest.approx(2e-3)
        assert rps.value == pytest.approx(100 / 0.5)


class TestReplay:
    def test_config_validation(self):
        with pytest.raises(ValueError, match="at least one record"):
            ReplayConfig(n_records=0)
        with pytest.raises(ValueError, match="batch size"):
            ReplayConfig(batch_size=0)

    def test_request_batches_are_views(self):
        config = ReplayConfig(n_records=100, batch_size=30)
        batches, labels = request_batches(config)
        assert [len(next(iter(b.values()))) for b in batches] == [30, 30, 30, 10]
        assert len(labels) == 100
        first = next(iter(batches[0].values()))
        assert first.base is not None  # sliced views, not copies

    def test_unthrottled_replay_deterministic(self, small_compiled):
        clock = FakeClock(step=1e-3)
        engine = ServeEngine(small_compiled, MetricsRegistry(), clock=clock)
        config = ReplayConfig(
            n_records=100, batch_size=30, seed=0, warmup_batches=2
        )
        report = replay(engine, config, HealthThresholds())
        assert report.n_records == 100
        assert report.n_batches == 4
        # every batch costs exactly one clock step
        assert report.p50_ms == pytest.approx(1.0)
        assert report.p99_ms == pytest.approx(1.0)
        assert report.max_ms == pytest.approx(1.0)
        # 4 batches x 2 readings + the elapsed reading
        assert report.elapsed == pytest.approx(9e-3)
        assert report.records_per_sec == pytest.approx(100 / 9e-3)
        assert report.deadline_misses == 0
        assert report.healthy and report.alerts == []
        assert report.to_dict()["latency_ms"]["p50"] == report.p50_ms
        assert "unthrottled" in report.render()

    def test_warmup_excluded_from_rollups(self, small_compiled):
        clock = FakeClock(step=1e-3)
        engine = ServeEngine(small_compiled, MetricsRegistry(), clock=clock)
        config = ReplayConfig(
            n_records=100, batch_size=30, seed=0, warmup_batches=2
        )
        replay(engine, config, HealthThresholds())
        # measurement window counted 4 batches even though 6 were served
        assert engine.n_requests == 4
        assert len(engine.latencies) == 4

    def test_pacing_sleeps_to_deadlines(self, small_compiled):
        clock = FakeClock(step=1e-6)
        engine = ServeEngine(small_compiled, MetricsRegistry(), clock=clock)
        # interval = 30 / 30.0 = 1 s per batch; the fake clock barely
        # moves on its own, so every batch after the first must sleep
        config = ReplayConfig(
            n_records=100, batch_size=30, target_qps=30.0, seed=0,
            warmup_batches=0,
        )
        report = replay(
            engine, config, HealthThresholds(), sleep=clock.sleep
        )
        assert len(clock.sleeps) == 3
        assert all(s == pytest.approx(1.0, abs=1e-4) for s in clock.sleeps)
        assert report.deadline_misses == 0
        # deadlines at 0/1/2/3 s: 100 records in ~3 s of paced wall time
        assert report.records_per_sec == pytest.approx(100 / 3, rel=0.01)

    def test_deadline_misses_counted(self, small_compiled):
        # a clock step of 1 s against 1 ms deadlines: every batch after
        # the first is late, none sleep
        clock = FakeClock(step=1.0)
        registry = MetricsRegistry()
        engine = ServeEngine(small_compiled, registry, clock=clock)
        config = ReplayConfig(
            n_records=100, batch_size=30, target_qps=30_000.0, seed=0,
            warmup_batches=0,
        )
        report = replay(
            engine, config, HealthThresholds(), sleep=clock.sleep
        )
        assert clock.sleeps == []
        assert report.deadline_misses == 3
        (miss,) = registry.merged()["repro_serve_deadline_misses_total"]
        assert miss.value == 3

    def test_latency_alert(self, small_compiled):
        clock = FakeClock(step=1e-3)
        engine = ServeEngine(small_compiled, MetricsRegistry(), clock=clock)
        config = ReplayConfig(n_records=100, batch_size=30, seed=0)
        report = replay(
            engine, config, HealthThresholds(serve_p99_seconds=1e-9)
        )
        assert not report.healthy
        (alert,) = report.alerts
        assert alert.indicator == "serve_latency"
        assert alert.level == OUTSIDE_LEVEL
        assert "exceeds" in alert.message

    def test_throughput_alert(self, small_compiled):
        clock = FakeClock(step=1.0)  # 1 s per batch: nowhere near target
        engine = ServeEngine(small_compiled, MetricsRegistry(), clock=clock)
        config = ReplayConfig(
            n_records=100, batch_size=30, target_qps=30_000.0, seed=0
        )
        report = replay(
            engine, config,
            HealthThresholds(serve_p99_seconds=1e9),
            sleep=clock.sleep,
        )
        indicators = {a.indicator for a in report.alerts}
        assert indicators == {"serve_throughput"}
        assert report.deadline_misses > 0

    def test_replay_serves_correct_labels(self, small_compiled):
        """The replay stream's predictions match predicting the stream
        in one shot — batching is invisible to the model."""
        config = ReplayConfig(n_records=500, batch_size=64, seed=9)
        batches, _ = request_batches(config)
        whole, _ = generate_quest(500, function=2, seed=9)
        got = np.concatenate(
            [small_compiled.predict_batch(b) for b in batches]
        )
        np.testing.assert_array_equal(
            got, small_compiled.predict_batch(whole)
        )


# ---------------------------------------------------------------------------
# CLI


class TestServeCli:
    def test_serve_end_to_end(self, tmp_path):
        from repro.cli import main

        json_out = tmp_path / "serve.json"
        prom_out = tmp_path / "serve.prom"
        rc = main([
            "serve",
            "--records", "20000",
            "--train-records", "2000",
            "--batch-size", "1024",
            "--p99-ms", "10000",
            "--strict",
            "--json-out", str(json_out),
            "--prom-out", str(prom_out),
        ])
        assert rc == 0
        payload = json.loads(json_out.read_text())
        assert payload["reference_parity"] is True
        assert payload["replay"]["n_records"] == 20000
        assert payload["model"]["n_nodes"] >= 1
        prom = prom_out.read_text()
        assert "repro_serve_records_total" in prom
        assert "repro_serve_latency_seconds_bucket" in prom

    def test_serve_loads_saved_tree(self, schema, quest_small, tmp_path):
        from repro.cli import main

        cols, labels = quest_small
        tree = fit_direct(schema, cols, labels, StoppingRule(min_node=64))
        path = tmp_path / "model.json"
        tree.save(str(path))
        json_out = tmp_path / "serve.json"
        rc = main([
            "serve",
            "--tree", str(path),
            "--records", "5000",
            "--p99-ms", "10000",
            "--json-out", str(json_out),
        ])
        assert rc == 0
        payload = json.loads(json_out.read_text())
        assert payload["model"]["n_nodes"] == tree.n_nodes
