"""The distributed (interval-granular) statistics exchange: block
ownership, prefix-sum bases, and agreement with the replication method
under adversarial machine shapes."""

import numpy as np
import pytest

from repro.clouds import CloudsConfig
from repro.clouds.builder import node_boundaries
from repro.clouds.intervals import class_counts
from repro.clouds.nodestats import stats_from_arrays
from repro.core.config import PCloudsConfig
from repro.core.stats_exchange import _interval_block, exchange_node_stats
from repro.data import generate_quest, shuffle_split

from conftest import make_cluster


class TestIntervalBlocks:
    def test_blocks_partition_range(self):
        for q in (1, 7, 16, 100):
            for p in (1, 3, 8):
                covered = []
                for r in range(p):
                    lo, hi = _interval_block(q, p, r)
                    covered.extend(range(lo, hi))
                assert covered == list(range(q))

    def test_blocks_balanced(self):
        for q, p in ((100, 8), (17, 4)):
            sizes = [
                _interval_block(q, p, r)[1] - _interval_block(q, p, r)[0]
                for r in range(p)
            ]
            assert max(sizes) - min(sizes) <= 1

    def test_more_ranks_than_intervals(self):
        # some ranks own nothing; nothing is lost
        sizes = [
            _interval_block(3, 8, r)[1] - _interval_block(3, 8, r)[0]
            for r in range(8)
        ]
        assert sum(sizes) == 3
        assert max(sizes) == 1


class TestDistributedAgreement:
    @pytest.fixture(scope="class")
    def setup(self, schema):
        cols, labels = generate_quest(2500, function=2, seed=61, noise=0.03)
        sample = {k: v[:400] for k, v in cols.items()}
        bounds = node_boundaries(schema, sample, 24)
        total = class_counts(labels, 2)
        return schema, cols, labels, bounds, total

    def _run(self, setup, p, exchange):
        schema, cols, labels, bounds, total = setup
        frags = shuffle_split(cols, labels, p, seed=7)
        config = PCloudsConfig(
            clouds=CloudsConfig(method="sse", q_root=24), exchange=exchange
        )

        def prog(ctx):
            fcols, flabels = frags[ctx.rank]
            local = stats_from_arrays(schema, fcols, flabels, bounds)
            split, alive = exchange_node_stats(ctx, schema, local, total, config)
            return (
                split.attribute,
                split.gini,
                [(iv.attribute, iv.index, iv.count, tuple(iv.left_cum))
                 for iv in alive],
            )

        return make_cluster(p).run(prog).results

    @pytest.mark.parametrize("p", [1, 2, 5, 13])
    def test_agrees_with_attribute_method_any_p(self, setup, p):
        """p=13 > q/p boundaries per rank, p=1 trivial, p=5 uneven blocks —
        the distributed method must match exactly everywhere, including
        the alive intervals' left-cumulative vectors (the prefix sum)."""
        ref = self._run(setup, p, "attribute")[0]
        got = self._run(setup, p, "distributed")
        for r in got:
            assert r[0] == ref[0]
            assert r[1] == pytest.approx(ref[1])
            assert r[2] == ref[2]

    def test_left_cums_match_data(self, setup):
        schema, cols, labels, bounds, total = setup
        out = self._run(setup, 4, "distributed")[0]
        for attr, idx, count, left_cum in out[2]:
            b = bounds[attr]
            lo = b[idx - 1] if idx > 0 else -np.inf
            left_mask = cols[attr] <= lo
            expect = np.bincount(labels[left_mask], minlength=2)
            np.testing.assert_array_equal(np.asarray(left_cum), expect)

    def test_compute_spread_over_all_ranks(self, setup):
        """The distributed method's selling point: with p > #attributes
        the sweep work lands on every rank, not just the attribute
        owners."""
        schema, cols, labels, bounds, total = setup
        p = 12  # > 9 attributes
        frags = shuffle_split(cols, labels, p, seed=8)

        def prog(ctx, exchange):
            fcols, flabels = frags[ctx.rank]
            local = stats_from_arrays(schema, fcols, flabels, bounds)
            before = ctx.stats.compute_time
            exchange_node_stats(
                ctx, schema, local, total,
                PCloudsConfig(clouds=CloudsConfig(method="ss", q_root=24),
                              exchange=exchange),
            )
            return ctx.stats.compute_time - before

        dist = make_cluster(p).run(prog, "distributed").results
        attr = make_cluster(p).run(prog, "attribute").results
        # attribute-based: 3 of 12 ranks idle through the sweep entirely
        assert sum(1 for t in attr if t == 0.0) >= 3
        # distributed: every rank does some combining/sweeping
        assert all(t > 0.0 for t in dist)
