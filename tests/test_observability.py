"""Observability subsystem (``repro.obs``): registry determinism,
Prometheus exposition, online health monitoring, and the guarantee that
metering never perturbs the simulated run."""

import json
import math

import pytest

from repro.bench.harness import ExperimentConfig, bench_payload, run_pclouds
from repro.cli import main
from repro.cluster.network import NetworkModel
from repro.dnc.cost import collective_cost
from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    HealthMonitor,
    HealthReport,
    HealthThresholds,
    MetricsRegistry,
    render_health_markdown,
    to_prometheus,
)
from repro.obs.health import CollectiveSample, LevelSummary, drift_by_op
from repro.obs.registry import MetricSpec

CFG = ExperimentConfig(n_records=3000, n_ranks=4, scale=200.0, seed=0)


@pytest.fixture(scope="module")
def metered():
    return run_pclouds(CFG, metrics=True)


@pytest.fixture(scope="module")
def plain():
    return run_pclouds(CFG)


# -- registry ----------------------------------------------------------------


class TestRegistry:
    def _registry(self):
        reg = MetricsRegistry()
        reg.register(
            Counter("t_bytes_total", "bytes", ("rank", "op")),
            Gauge("t_width", "width", ("level",)),
            Histogram("t_lat", "latency", ("op",), buckets=(0.001, 0.1, math.inf)),
        )
        return reg

    def test_counters_sum_across_shards(self):
        reg = self._registry()
        reg.shard(0).inc("t_bytes_total", ("0", "read"), 100)
        reg.shard(1).inc("t_bytes_total", ("0", "read"), 25)
        reg.shard(1).inc("t_bytes_total", ("1", "write"), 7)
        merged = reg.merged()
        by_labels = {s.labels: s.value for s in merged["t_bytes_total"]}
        assert by_labels == {("0", "read"): 125.0, ("1", "write"): 7.0}

    def test_gauges_last_rank_wins(self):
        reg = self._registry()
        reg.shard(1).set("t_width", ("0",), 5)
        reg.shard(0).set("t_width", ("0",), 3)
        # merge walks shards in ascending rank order regardless of the
        # order they were created in
        (sample,) = reg.merged()["t_width"]
        assert sample.value == 5.0

    def test_histogram_edge_value_lands_in_its_bucket(self):
        reg = self._registry()
        sh = reg.shard(0)
        for v in (0.001, 0.05, 2.5):  # exact edge, mid, overflow
            sh.observe("t_lat", ("bcast",), v)
        (sample,) = reg.merged()["t_lat"]
        # Prometheus `le` semantics: value == edge counts in that bucket
        assert sample.value[:3] == [1.0, 1.0, 1.0]
        assert sample.value[-2] == pytest.approx(2.5510)
        assert sample.value[-1] == 3.0

    def test_merge_is_insertion_order_independent(self):
        def build(shard_order, key_order):
            reg = self._registry()
            for r in shard_order:
                reg.shard(r)
            for r, op, v in key_order:
                reg.shard(r).inc("t_bytes_total", (str(r), op), v)
                reg.shard(r).observe("t_lat", (op,), v / 1000.0)
            reg.shard(0).set("t_width", ("2",), 9)
            return reg

        writes = [(0, "read", 10), (1, "read", 20), (1, "write", 5), (0, "write", 1)]
        a = build([0, 1], writes)
        b = build([1, 0], list(reversed(writes)))
        assert a.snapshot() == b.snapshot()
        assert to_prometheus(a) == to_prometheus(b)

    def test_register_conflicting_spec_raises(self):
        reg = self._registry()
        reg.register(Counter("t_bytes_total", "bytes", ("rank", "op")))  # idempotent
        with pytest.raises(ValueError, match="different spec"):
            reg.register(Counter("t_bytes_total", "bytes", ("rank",)))

    def test_histogram_spec_validation(self):
        with pytest.raises(ValueError, match=r"\+inf"):
            MetricSpec("h", "histogram", buckets=(1.0, 2.0))
        with pytest.raises(ValueError, match="not sorted"):
            MetricSpec("h", "histogram", buckets=(2.0, 1.0, math.inf))


def test_prometheus_golden():
    reg = MetricsRegistry()
    reg.register(
        Counter("repro_test_bytes_total", "bytes moved", ("rank", "op")),
        Gauge("repro_test_width", "frontier width", ("level",)),
        Histogram(
            "repro_test_latency_seconds", "latency", ("op",),
            buckets=(0.001, 0.1, math.inf),
        ),
    )
    s0, s1 = reg.shard(0), reg.shard(1)
    s1.inc("repro_test_bytes_total", ("1", "read"), 512)
    s0.inc("repro_test_bytes_total", ("0", "read"), 2048)
    s0.set("repro_test_width", ("3",), 7)
    for v in (0.0005, 0.05, 2.5):
        s0.observe("repro_test_latency_seconds", ("bcast",), v)
    assert to_prometheus(reg) == (
        "# HELP repro_test_bytes_total bytes moved\n"
        "# TYPE repro_test_bytes_total counter\n"
        'repro_test_bytes_total{rank="0",op="read"} 2048\n'
        'repro_test_bytes_total{rank="1",op="read"} 512\n'
        "# HELP repro_test_latency_seconds latency\n"
        "# TYPE repro_test_latency_seconds histogram\n"
        'repro_test_latency_seconds_bucket{op="bcast",le="0.001"} 1\n'
        'repro_test_latency_seconds_bucket{op="bcast",le="0.1"} 2\n'
        'repro_test_latency_seconds_bucket{op="bcast",le="+Inf"} 3\n'
        'repro_test_latency_seconds_sum{op="bcast"} 2.5505\n'
        'repro_test_latency_seconds_count{op="bcast"} 3\n'
        "# HELP repro_test_width frontier width\n"
        "# TYPE repro_test_width gauge\n"
        'repro_test_width{level="3"} 7\n'
    )


# -- health monitor (synthetic) ----------------------------------------------

NET = NetworkModel(alpha=40e-6, beta=1.0 / 35e6)


def _gather_samples(p, sizes, *, comm="world", seq=0, level=0, scale=1.0):
    """One gather invocation as each rank saw it; ``scale`` inflates the
    charged busy time to fake a mis-charged primitive."""
    m = max(sizes)
    busy = collective_cost(NET, "gather", p=p, m=m) * scale
    return [
        CollectiveSample(
            comm=comm, seq=seq, op="gather", rank=r, level=level,
            sent=sizes[r], received=0, busy=busy, idle=0.0,
            duration=busy, p=p,
        )
        for r in range(p)
    ]


class TestDrift:
    def test_reconstructed_sizes_give_exact_unity(self):
        # ranks send different amounts; the model's m is the max — the
        # monitor must invert the byte counters the same way the
        # communicator charged them, giving drift exactly 1.0
        ops = drift_by_op(NET, _gather_samples(4, [100, 4000, 250, 4000]))
        (observed, predicted) = ops["gather"]
        assert predicted > 0
        assert observed == predicted

    def test_mischarged_primitive_drifts(self):
        ops = drift_by_op(NET, _gather_samples(4, [1000] * 4, scale=2.0))
        observed, predicted = ops["gather"]
        assert observed / predicted == pytest.approx(2.0)

    def test_invocations_group_by_comm_and_seq(self):
        samples = _gather_samples(4, [100, 200, 300, 400], seq=0)
        samples += _gather_samples(4, [50, 50, 50, 8000], seq=1)
        observed, predicted = drift_by_op(NET, samples)["gather"]
        # grouped per invocation, each reconstructs its own max
        expected = 4 * collective_cost(NET, "gather", p=4, m=400)
        expected += 4 * collective_cost(NET, "gather", p=4, m=8000)
        assert predicted == pytest.approx(expected)
        assert observed == pytest.approx(expected)


class TestHealthMonitor:
    def _summary(self, rank, busy, *, io=400, live=100, samples=(), level=0):
        return LevelSummary(
            rank=rank, attempt=0, level=level, busy=busy, idle=0.0,
            io_bytes=io, live_bytes=live, n_frontier=3,
            samples=tuple(samples),
        )

    def test_level_waits_for_all_ranks(self):
        mon = HealthMonitor(2, NET)
        mon.publish(self._summary(0, 1.0))
        assert mon.levels == []
        mon.publish(self._summary(1, 1.0))
        assert len(mon.levels) == 1

    def test_thresholds_trigger_alerts(self):
        th = HealthThresholds(imbalance=1.2, io_amplification=2.0)
        mon = HealthMonitor(2, NET, th)
        drifting = _gather_samples(2, [1000, 1000], scale=3.0)
        mon.publish(self._summary(0, 3.0, samples=[drifting[0]]))
        mon.publish(self._summary(1, 1.0, samples=[drifting[1]]))
        (lh,) = mon.levels
        assert lh.imbalance == pytest.approx(1.5)
        assert lh.io_amplification == pytest.approx(4.0)
        assert lh.drift == pytest.approx(3.0)
        assert {a.indicator for a in lh.alerts} == {
            "imbalance", "io_amplification", "drift",
        }
        report = HealthReport.from_monitor(mon)
        assert not report.healthy
        md = render_health_markdown(report)
        assert "3 alert(s)" in md
        assert "busy-time imbalance 1.50" in md
        assert "gather cost drift 3.000" in md

    def test_balanced_level_stays_silent(self):
        mon = HealthMonitor(2, NET)
        clean = _gather_samples(2, [1000, 1000])
        mon.publish(self._summary(0, 1.0, samples=[clean[0]]))
        mon.publish(self._summary(1, 1.0, samples=[clean[1]]))
        report = HealthReport.from_monitor(mon)
        assert report.healthy
        assert report.worst_imbalance == pytest.approx(1.0)
        assert "HEALTHY" in render_health_markdown(report)

    def test_outside_samples_join_overall_drift(self):
        mon = HealthMonitor(2, NET)
        mon.publish_outside(_gather_samples(2, [500, 500], level=-1))
        ops = mon.overall_drift_by_op()
        observed, predicted = ops["gather"]
        assert observed == predicted > 0


# -- metered end-to-end runs -------------------------------------------------


class TestMeteredRun:
    def test_metering_is_bit_neutral(self, plain, metered):
        assert metered.tree.to_dict() == plain.tree.to_dict()
        assert metered.elapsed == plain.elapsed

    def test_fault_free_drift_is_exactly_one(self, metered):
        drift = metered.health.to_dict()["drift_by_op"]
        assert drift  # the run must exercise collectives
        for op, row in drift.items():
            assert row["drift"] == pytest.approx(1.0, abs=1e-9), op
        assert metered.health.overall_drift == pytest.approx(1.0, abs=1e-9)
        assert metered.health.healthy

    def test_per_level_report(self, metered):
        report = metered.health
        assert len(report.levels) > 1
        assert [lh.level for lh in report.levels] == sorted(
            lh.level for lh in report.levels
        )
        for lh in report.levels:
            assert lh.imbalance >= 1.0
            assert lh.io_bytes >= 0

    def test_snapshot_reconciles_with_run(self, metered):
        snap = metered.metrics_snapshot()
        families = {f["name"]: f for f in snap["metrics"]}
        (elapsed,) = families["repro_run_elapsed_seconds"]["samples"]
        assert elapsed["value"] == metered.elapsed
        sent = sum(
            s["value"]
            for s in families["repro_collective_bytes_total"]["samples"]
            if s["labels"]["direction"] == "sent"
        )
        assert sent == metered.run.stats.total.bytes_sent
        assert snap["health"]["healthy"] is True

    def test_prometheus_exposition_is_wellformed(self, metered):
        text = metered.prometheus()
        assert text.startswith("# HELP ")
        assert "repro_run_elapsed_seconds" in text
        for line in text.splitlines():
            if line.startswith("#"):
                assert line.startswith(("# HELP ", "# TYPE "))
            else:
                name, _, value = line.rpartition(" ")
                assert name and not name.startswith("{")
                float(value)  # every sample value parses

    def test_bench_payload_embeds_snapshot(self, metered):
        payload = bench_payload(metered, label="obs-test")
        assert payload["label"] == "obs-test"
        assert payload["metrics"]["health"]["healthy"] is True
        json.dumps(payload)  # JSON-ready all the way down


def test_trace_level_rollup():
    res = run_pclouds(CFG, trace=True)
    rows = res.trace_report().level_rollup()
    in_loop = [r for r in rows if r.level is not None]
    assert in_loop and rows[-1].level is None  # outside bucket sorts last
    assert [r.level for r in in_loop] == sorted(r.level for r in in_loop)
    total_sent = sum(
        e.sent for t in res.tracers for e in t.events if e.kind == "comm"
    )
    assert sum(r.comm_sent for r in rows) == total_sent
    assert "traffic by frontier level" in res.trace_report().render()


def test_cli_health_smoke(tmp_path, capsys):
    jp, pp = tmp_path / "h.json", tmp_path / "h.prom"
    rc = main(
        [
            "health", "--records", "1500", "--ranks", "2", "--strict",
            "--json-out", str(jp), "--prom-out", str(pp),
        ]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "HEALTHY" in out and "Frontier levels" in out
    snap = json.loads(jp.read_text())
    assert snap["health"]["healthy"] is True
    assert pp.read_text().startswith("# HELP ")
