"""The command-line interface."""

import json

import numpy as np
import pytest

from repro.cli import build_parser, main


@pytest.fixture
def dataset_path(tmp_path):
    path = str(tmp_path / "data.npz")
    assert main([
        "generate", "--records", "1500", "--function", "2",
        "--noise", "0.02", "--seed", "3", "--out", path,
    ]) == 0
    return path


class TestGenerate:
    def test_writes_loadable_npz(self, dataset_path):
        with np.load(dataset_path) as archive:
            assert "labels" in archive.files
            assert "salary" in archive.files
            assert len(archive["labels"]) == 1500

    def test_deterministic(self, tmp_path, capsys):
        a, b = str(tmp_path / "a.npz"), str(tmp_path / "b.npz")
        for p in (a, b):
            main(["generate", "--records", "100", "--seed", "7", "--out", p])
        with np.load(a) as fa, np.load(b) as fb:
            np.testing.assert_array_equal(fa["salary"], fb["salary"])


class TestTrain:
    @pytest.mark.parametrize("builder", ["clouds-sse", "sprint", "direct"])
    def test_sequential_builders(self, dataset_path, builder, capsys):
        assert main([
            "train", dataset_path, "--builder", builder,
            "--q-root", "40", "--sample-size", "300",
        ]) == 0
        out = capsys.readouterr().out
        assert "train accuracy" in out

    def test_pclouds_with_tree_out(self, dataset_path, tmp_path, capsys):
        tree_path = str(tmp_path / "tree.json")
        assert main([
            "train", dataset_path, "--builder", "pclouds", "--ranks", "3",
            "--q-root", "40", "--sample-size", "300",
            "--tree-out", tree_path, "--prune",
        ]) == 0
        out = capsys.readouterr().out
        assert "pCLOUDS on 3 ranks" in out
        assert "MDL pruning" in out
        with open(tree_path) as fh:
            wire = json.load(fh)
        assert "root" in wire

    def test_auto_switch_accepted(self, dataset_path, capsys):
        assert main([
            "train", dataset_path, "--builder", "pclouds", "--ranks", "2",
            "--q-root", "40", "--sample-size", "300", "--q-switch", "auto",
        ]) == 0


class TestEvaluate:
    def test_sequential_and_parallel_agree(self, dataset_path, tmp_path, capsys):
        tree_path = str(tmp_path / "tree.json")
        main([
            "train", dataset_path, "--builder", "direct",
            "--tree-out", tree_path,
        ])
        capsys.readouterr()
        main(["evaluate", tree_path, dataset_path])
        seq = capsys.readouterr().out
        main(["evaluate", tree_path, dataset_path, "--ranks", "3"])
        par = capsys.readouterr().out
        acc_seq = seq.split("accuracy ")[1].split(" ")[0]
        acc_par = par.split("accuracy ")[1].split(" ")[0]
        assert acc_seq == acc_par
        assert "confusion matrix" in par


class TestSpeedup:
    def test_prints_table(self, capsys):
        assert main([
            "speedup", "--records", "2000", "--ranks", "1", "2",
            "--scale", "100",
        ]) == 0
        out = capsys.readouterr().out
        assert "speedup" in out
        assert "p=" not in out  # table uses a column, not series labels


class TestTrace:
    def test_report_and_perfetto_export(self, tmp_path, capsys):
        out_path = str(tmp_path / "trace.json")
        assert main([
            "trace", "--records", "1200", "--ranks", "2", "--seed", "1",
            "--out", out_path,
        ]) == 0
        text = capsys.readouterr().out
        assert "SPMD schedule contract: OK" in text
        assert "traffic by primitive" in text
        assert "comm bytes by phase" in text
        assert "perfetto" in text.lower()
        with open(out_path) as fh:
            data = json.load(fh)
        slices = [e for e in data["traceEvents"] if e["ph"] == "X"]
        assert {"comm", "disk", "phase"} <= {e["cat"] for e in slices}
        ranks = {e["tid"] for e in slices}
        assert ranks == {0, 1}

    def test_report_only_without_out(self, capsys):
        assert main(["trace", "--records", "800", "--ranks", "2"]) == 0
        text = capsys.readouterr().out
        assert "per-rank totals" in text
        assert "wrote" not in text


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_bad_function_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["generate", "--records", "10", "--function", "11",
                 "--out", str(tmp_path / "x.npz")]
            )

    def test_bad_builder_rejected(self, dataset_path):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["train", dataset_path, "--builder", "xgb"])


class TestTreeSaveLoad:
    def test_save_load_roundtrip(self, dataset_path, tmp_path):
        import numpy as np

        from repro.clouds import DecisionTree, StoppingRule, fit_direct
        from repro.data import quest_schema

        with np.load(dataset_path) as archive:
            labels = archive["labels"]
            cols = {k: archive[k] for k in archive.files if k != "labels"}
        schema = quest_schema()
        tree = fit_direct(schema, cols, labels, StoppingRule(min_node=64))
        path = str(tmp_path / "t.json")
        tree.save(path)
        back = DecisionTree.load(path, schema)
        np.testing.assert_array_equal(tree.predict(cols), back.predict(cols))

    def test_cli_sliq_builder(self, dataset_path, capsys):
        from repro.cli import main

        assert main(["train", dataset_path, "--builder", "sliq"]) == 0
        assert "train accuracy" in capsys.readouterr().out
