"""Documentation consistency: the claims the docs make about the code
must stay true (names exist, inventories match, wiring is honest)."""

import importlib
import re
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent


def test_design_module_inventory_exists():
    """Every module path DESIGN.md names must exist — src modules under
    src/repro, bench files under benchmarks/."""
    text = (ROOT / "DESIGN.md").read_text()
    for match in re.finditer(r"(\w+\.py)", text):
        name = match.group(1)
        if name.startswith("bench_"):
            assert (ROOT / "benchmarks" / name).exists(), name
        else:
            hits = list((ROOT / "src" / "repro").rglob(name))
            assert hits, f"DESIGN.md names {name} but no such module exists"


def test_experiments_bench_files_exist():
    text = (ROOT / "EXPERIMENTS.md").read_text()
    for match in re.finditer(r"bench_\w+\.py", text):
        assert (ROOT / "benchmarks" / match.group(0)).exists(), match.group(0)


def test_readme_example_scripts_exist():
    text = (ROOT / "README.md").read_text()
    for match in re.finditer(r"examples/(\w+\.py)", text):
        assert (ROOT / "examples" / match.group(1)).exists(), match.group(1)


def test_api_doc_names_resolve():
    """Spot-check that the api.md tables reference real attributes."""
    import repro
    import repro.clouds
    import repro.cluster
    import repro.core
    import repro.data
    import repro.dnc
    import repro.ooc

    for module, names in {
        repro: ["Cluster", "PClouds", "DistributedDataset", "PCloudsConfig"],
        repro.cluster: ["Comm", "Request", "NetworkModel", "RankStats"],
        repro.ooc: ["OocArray", "ColumnSet", "external_sort", "MemoryBudget"],
        repro.data: ["generate_quest", "read_csv", "make_blobs"],
        repro.clouds: [
            "CloudsBuilder", "SprintBuilder", "SliqBuilder", "mdl_prune",
            "gini_importance", "cross_validate", "reduced_error_prune",
        ],
        repro.dnc: [
            "run_strategy", "DncCostModel", "parallel_sample_sort",
            "SyntheticDnc",
        ],
        repro.core: [
            "parallel_evaluate", "auto_q_switch", "exchange_node_stats",
        ],
    }.items():
        for name in names:
            assert hasattr(module, name), f"{module.__name__}.{name} missing"


def test_all_public_modules_importable():
    src = ROOT / "src" / "repro"
    for path in src.rglob("*.py"):
        rel = path.relative_to(src.parent).with_suffix("")
        mod = ".".join(rel.parts)
        importlib.import_module(mod)


def test_every_module_has_a_docstring():
    src = ROOT / "src" / "repro"
    for path in src.rglob("*.py"):
        text = path.read_text().lstrip()
        assert text.startswith('"""'), f"{path} lacks a module docstring"


def test_all_exports_resolve():
    """Every name in every __all__ must actually exist in its module."""
    src = ROOT / "src" / "repro"
    for path in src.rglob("*.py"):
        rel = path.relative_to(src.parent).with_suffix("")
        mod = importlib.import_module(".".join(rel.parts))
        for name in getattr(mod, "__all__", []):
            assert hasattr(mod, name), f"{mod.__name__}.__all__ lists {name}"
