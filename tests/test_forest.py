"""Out-of-core bagged forests: reproducible seed streams, member
bit-identity across scheduling regimes, crash recovery mid-forest,
cross-tree cache accounting, the regime scheduler, and compiled voting.

The load-bearing contract: a forest member is a pure function of
``(forest seed, tree index, bag multiset)`` — the regime (group count),
rank count, exchange strategy, buffer pool, metering, and recovery path
must all produce the same trees bit for bit, and the base dataset must
survive the fit (bags are derived spools, not consumed fragments).
"""

import json

import numpy as np
import pytest

from repro.cluster import (
    CrashAtCollective,
    CrashAtPhase,
    FaultPlan,
)
from repro.cluster.clock import SimClock
from repro.cluster.diskmodel import DiskModel
from repro.cluster.stats import RankStats
from repro.clouds import CloudsConfig
from repro.clouds.forest import DecisionForest, validate_forest
from repro.core import DistributedDataset, PClouds, PCloudsConfig
from repro.data import generate_quest, quest_schema
from repro.dnc import DncCostModel, TreeShape, choose_forest_regime, forest_regime_cost
from repro.forest import (
    ForestConfig,
    PForest,
    bag_multiplicities,
    candidate_groups,
    resolve_n_groups,
    spawn_tree_seeds,
)
from repro.obs.health import HealthMonitor, HealthThresholds
from repro.ooc import BufferPool, LocalDisk, MemoryBudget, OocArray

from conftest import make_cluster

N = 800
B = 3
SEED = 5


def pconfig(**overrides):
    clouds = CloudsConfig(
        method="sse", q_root=40, sample_size=200, min_node=16, purity=0.999
    )
    return PCloudsConfig(clouds=clouds, q_switch=8, **overrides)


def forest_config(regime="data", **overrides):
    return ForestConfig(
        n_trees=B, pclouds=pconfig(**overrides.pop("pclouds_kw", {})),
        regime=regime, **overrides,
    )


@pytest.fixture(scope="module")
def quest():
    return generate_quest(N, function=2, seed=SEED, noise=0.02)


def make_dataset(quest, p, **cluster_kwargs):
    cols, labels = quest
    cluster = make_cluster(p, **cluster_kwargs)
    return DistributedDataset.create(
        cluster, quest_schema(), cols, labels, seed=1
    )


def tree_roots(forest: DecisionForest) -> list[dict]:
    # structural comparison only: per-tree meta records the schedule
    return [t.to_dict()["root"] for t in forest.trees]


@pytest.fixture(scope="module")
def standalone_roots(quest):
    """Each member fitted alone: host-side bag materialisation, its own
    2-rank cluster, plain PClouds with the spawned fit seed."""
    cols, labels = quest
    roots = []
    for s in spawn_tree_seeds(SEED, B):
        mult = bag_multiplicities(s.mask, N)
        rows = np.repeat(np.arange(N), mult)
        ds = DistributedDataset.create(
            make_cluster(2), quest_schema(),
            {k: v[rows] for k, v in cols.items()}, labels[rows], seed=1,
        )
        res = PClouds(pconfig()).fit(ds, seed=s.fit_seed)
        roots.append(res.tree.to_dict()["root"])
    return roots


# -- satellite 1: reproducible per-tree seed streams ---------------------------


class TestSeedStreams:
    def test_spawned_fit_seeds_are_pinned(self):
        # the exact SeedSequence spawn tree is part of the wire contract:
        # changing it silently re-rolls every bag in every saved run
        seeds = spawn_tree_seeds(0, 3)
        assert [s.fit_seed for s in seeds] == [
            3581274545, 3613627650, 1663335698,
        ]
        assert [s.tree for s in seeds] == [0, 1, 2]

    def test_bag_multiplicities_are_pinned(self):
        seeds = spawn_tree_seeds(0, 2)
        m0 = bag_multiplicities(seeds[0].mask, 10)
        m1 = bag_multiplicities(seeds[1].mask, 10)
        assert m0.tolist() == [2, 0, 0, 0, 1, 1, 0, 2, 1, 3]
        assert m1.tolist() == [0, 1, 1, 0, 3, 0, 2, 1, 0, 2]

    def test_bag_is_a_resample_with_replacement(self):
        m = bag_multiplicities(spawn_tree_seeds(9, 1)[0].mask, 1000)
        assert m.sum() == 1000
        assert m.min() >= 0
        # a bootstrap leaves ~1/e of records out
        assert 0.25 < np.mean(m == 0) < 0.45

    def test_trees_get_independent_streams(self):
        seeds = spawn_tree_seeds(0, 4)
        masks = [bag_multiplicities(s.mask, 500) for s in seeds]
        for i in range(4):
            for j in range(i + 1, 4):
                assert not np.array_equal(masks[i], masks[j])
        assert len({s.fit_seed for s in seeds}) == 4


def cost_model(p=4):
    from repro.cluster.compute import ComputeModel
    from repro.cluster.network import NetworkModel

    return DncCostModel(
        network=NetworkModel(), disk=DiskModel(), compute=ComputeModel(),
        n_ranks=p,
    )


# -- the scheduler -------------------------------------------------------------


class TestRegimeScheduler:
    def test_candidate_groups_are_divisors_capped_by_trees(self):
        assert candidate_groups(4, 8) == [1, 2, 4]
        assert candidate_groups(4, 2) == [1, 2]
        assert candidate_groups(6, 8) == [1, 2, 3, 6]
        assert candidate_groups(1, 8) == [1]

    def test_named_regimes_resolve(self):
        assert resolve_n_groups("data", n_ranks=4, n_trees=8) == (1, {})
        assert resolve_n_groups("tree", n_ranks=4, n_trees=8) == (4, {})
        g, _ = resolve_n_groups("hybrid", n_ranks=4, n_trees=8)
        assert g == 2
        g, _ = resolve_n_groups("hybrid", n_ranks=4, n_trees=8, n_groups=4)
        assert g == 4

    def test_infeasible_explicit_groups_rejected(self):
        with pytest.raises(ValueError, match="infeasible"):
            resolve_n_groups("hybrid", n_ranks=4, n_trees=8, n_groups=3)
        with pytest.raises(ValueError, match="unknown regime"):
            resolve_n_groups("bogus", n_ranks=4, n_trees=8)

    def test_auto_needs_the_cost_model(self):
        with pytest.raises(ValueError, match="cost model"):
            resolve_n_groups("auto", n_ranks=4, n_trees=8)

    def test_auto_pick_is_a_candidate_and_costs_cover_all(self):
        model = cost_model(4)
        shape = TreeShape(n_records=10_000, leaf_records=16, record_nbytes=64)
        g, costs = resolve_n_groups(
            "auto", n_ranks=4, n_trees=8, model=model, shape=shape,
            memory_limit=1 << 16, pool_bytes=1 << 20,
        )
        assert set(costs) == {1, 2, 4}
        assert g in costs
        assert costs[g] == min(costs.values())

    def test_heavier_stats_payload_favours_grouping(self):
        # the per-level statistics exchange is what grouping eliminates:
        # growing it must shift the data-vs-tree balance toward more
        # groups, never away from them
        model = cost_model(4)
        shape = TreeShape(n_records=50_000, leaf_records=16, record_nbytes=64)

        def gap(stats):
            kw = dict(n_trees=4, memory_limit=1 << 16, pool_bytes=1 << 22,
                      stats_nbytes=stats)
            return forest_regime_cost(
                model, shape, n_groups=1, **kw
            ) - forest_regime_cost(model, shape, n_groups=4, **kw)

        assert gap(64_000) > gap(64)

    def test_regime_cost_rejects_bad_grouping(self):
        model = cost_model(4)
        shape = TreeShape(n_records=1000, leaf_records=16, record_nbytes=64)
        with pytest.raises(ValueError):
            forest_regime_cost(model, shape, n_trees=4, n_groups=3)
        with pytest.raises(ValueError):
            forest_regime_cost(model, shape, n_trees=0, n_groups=1)
        best, costs = choose_forest_regime(model, shape, n_trees=1)
        assert best == 1 and set(costs) == {1}


# -- the tentpole: bit-identity across every schedule --------------------------


class TestForestBitIdentity:
    @pytest.mark.parametrize("p,regime", [
        (4, "data"), (4, "tree"), (4, "hybrid"), (2, "tree"),
    ])
    def test_members_match_standalone_fits(
        self, quest, standalone_roots, p, regime
    ):
        ds = make_dataset(quest, p)
        before = ds.local_rows()
        res = PForest(forest_config(regime)).fit(ds, seed=SEED)
        assert tree_roots(res.forest) == standalone_roots
        # the base spool survives: bags are derived, not consumed
        assert ds.local_rows() == before
        assert res.n_groups == resolve_n_groups(
            regime, n_ranks=p, n_trees=B
        )[0]
        validate_forest(res.forest)

    def test_exchange_strategy_does_not_leak_into_members(
        self, quest, standalone_roots
    ):
        ds = make_dataset(quest, 4)
        res = PForest(
            forest_config("tree", pclouds_kw=dict(exchange="voting"))
        ).fit(ds, seed=SEED)
        assert tree_roots(res.forest) == standalone_roots

    def test_buffer_pool_does_not_leak_into_members(
        self, quest, standalone_roots
    ):
        ds = make_dataset(
            quest, 4, buffer_pool="lru+prefetch",
            memory_limit=1 << 14, pool_bytes=1 << 18,
        )
        res = PForest(forest_config("tree")).fit(ds, seed=SEED)
        assert tree_roots(res.forest) == standalone_roots

    def test_auto_regime_fits_and_reports_costs(self, quest, standalone_roots):
        ds = make_dataset(quest, 4)
        res = PForest(forest_config("auto")).fit(ds, seed=SEED)
        assert tree_roots(res.forest) == standalone_roots
        assert set(res.regime_costs) == set(candidate_groups(4, B))
        assert res.n_groups in res.regime_costs

    def test_same_dataset_refits_identically(self, quest):
        ds = make_dataset(quest, 4)
        first = tree_roots(PForest(forest_config("tree")).fit(ds, seed=SEED).forest)
        second = tree_roots(PForest(forest_config("tree")).fit(ds, seed=SEED).forest)
        assert first == second


# -- crash recovery mid-forest -------------------------------------------------


class TestForestRecovery:
    def reference(self, quest, regime="tree"):
        return PForest(forest_config(regime)).fit(
            make_dataset(quest, 4), seed=SEED
        )

    def test_recovers_identical_forest_from_collective_crash(self, quest):
        ref = tree_roots(self.reference(quest).forest)
        plan = FaultPlan.of("mid", CrashAtCollective(rank=1, nth=5))
        res = PForest(forest_config("tree")).fit(
            make_dataset(quest, 4), seed=SEED, faults=plan, recover=True
        )
        assert res.n_restarts == 1
        assert res.fault_events
        assert tree_roots(res.forest) == ref

    def test_recovers_from_crash_inside_a_member_fit(self, quest):
        # phase names are tree-prefixed inside the forest program, so the
        # crash lands mid-member, after earlier trees may have completed
        ref = tree_roots(self.reference(quest, "data").forest)
        plan = FaultPlan.of(
            "member", CrashAtPhase(rank=2, phase=f"tree{B - 1}/stats")
        )
        res = PForest(forest_config("data")).fit(
            make_dataset(quest, 4), seed=SEED, faults=plan, recover=True
        )
        assert res.n_restarts == 1
        assert tree_roots(res.forest) == ref
        # completed waves were restored, not refitted: restored members
        # report a zero-elapsed span
        assert any(t["elapsed"] == 0.0 for t in res.tree_stats)

    def test_unrecovered_crash_propagates(self, quest):
        from repro.cluster import SpmdProgramError

        plan = FaultPlan.of("mid", CrashAtCollective(rank=0, nth=5))
        with pytest.raises(SpmdProgramError):
            PForest(forest_config("tree")).fit(
                make_dataset(quest, 4), seed=SEED, faults=plan, recover=False
            )


# -- cross-tree cache accounting ----------------------------------------------


class TestCrossTreeAccounting:
    def scripted_pool(self):
        disk = LocalDisk(DiskModel(), SimClock(), RankStats(), None)
        pool = BufferPool(MemoryBudget(limit=1 << 20))
        disk.attach_pool(pool)
        arr = OocArray(disk, np.float64, name="x")
        arr.append(np.arange(64.0))
        arr.append(np.arange(64.0) + 1)
        return pool, arr

    def test_hits_across_begin_tree_are_cross_tree_exactly(self):
        pool, arr = self.scripted_pool()
        pool.begin_tree(0)
        list(arr.iter_chunks())  # two cold misses admitted under tree 0
        assert (pool.stats.hits, pool.stats.cross_tree_hits) == (0, 0)
        list(arr.iter_chunks())  # same-tree hits: not cross-tree
        assert (pool.stats.hits, pool.stats.cross_tree_hits) == (2, 0)
        pool.begin_tree(1)
        list(arr.iter_chunks())  # other tree reads tree-0 residents
        assert (pool.stats.hits, pool.stats.cross_tree_hits) == (4, 2)
        assert pool.stats.cross_tree_hit_bytes == arr.nbytes
        pool.begin_tree(None)
        list(arr.iter_chunks())  # outside any forest: never cross-tree
        assert (pool.stats.hits, pool.stats.cross_tree_hits) == (6, 2)

    def test_forest_result_accounting_is_consistent(self, quest):
        ds = make_dataset(
            quest, 4, buffer_pool="lru",
            memory_limit=1 << 14, pool_bytes=1 << 20,
        )
        res = PForest(forest_config("tree")).fit(ds, seed=SEED)
        ct = res.cross_tree
        assert ct["cross_tree_hits"] <= ct["hits"]
        assert sum(r["cross_tree_hits"] for r in ct["per_rank"]) == (
            ct["cross_tree_hits"]
        )
        assert sum(r["hits"] for r in ct["per_rank"]) == ct["hits"]
        if ct["hits"]:
            assert ct["cross_tree_hit_rate"] == pytest.approx(
                ct["cross_tree_hits"] / ct["hits"]
            )
        # concurrent groups over a generous pool must actually share
        assert ct["cross_tree_hits"] > 0
        assert len(res.disk_read_bytes) == 4

    def test_data_parallel_regime_has_no_concurrent_sharing_alert(self):
        monitor = HealthMonitor(4, network=None, thresholds=HealthThresholds())
        assert monitor.evaluate_forest_cache(
            n_groups=1, cross_tree_hits=0, hits=100
        ) == []
        assert monitor.evaluate_forest_cache(
            n_groups=4, cross_tree_hits=0, hits=0
        ) == []

    def test_cold_shared_cache_raises_alert(self):
        monitor = HealthMonitor(4, network=None, thresholds=HealthThresholds())
        alerts = monitor.evaluate_forest_cache(
            n_groups=4, cross_tree_hits=0, hits=1000
        )
        assert len(alerts) == 1
        assert alerts[0].indicator == "forest_cross_tree_hit_rate"
        assert monitor.alerts == alerts
        assert monitor.evaluate_forest_cache(
            n_groups=4, cross_tree_hits=500, hits=1000
        ) == []


# -- observability ------------------------------------------------------------


class TestForestMetrics:
    def test_metered_forest_exports_forest_family(self, quest):
        ds = make_dataset(
            quest, 4, buffer_pool="lru",
            memory_limit=1 << 14, pool_bytes=1 << 20,
        )
        res = PForest(forest_config("tree")).fit(ds, seed=SEED, metrics=True)
        snap = res.metrics_snapshot()
        families = {f["name"]: f for f in snap["metrics"]}
        (trees,) = families["repro_forest_trees"]["samples"]
        assert trees["value"] == B
        (groups,) = families["repro_forest_groups"]["samples"]
        assert groups["value"] == res.n_groups
        per_tree = families["repro_forest_tree_elapsed_seconds"]["samples"]
        assert {s["labels"]["tree"] for s in per_tree} == {
            str(t) for t in range(B)
        }
        xhits = sum(
            s["value"]
            for s in families["repro_forest_cross_tree_hits_total"]["samples"]
        )
        assert xhits == res.cross_tree["cross_tree_hits"]
        assert res.health is not None

    def test_metering_does_not_perturb_members(self, quest, standalone_roots):
        ds = make_dataset(quest, 4)
        res = PForest(forest_config("tree")).fit(ds, seed=SEED, metrics=True)
        assert tree_roots(res.forest) == standalone_roots

    def test_per_tree_phase_blame(self, quest):
        ds = make_dataset(quest, 4)
        res = PForest(forest_config("data")).fit(ds, seed=SEED, trace=True)
        for t in range(B):
            phases = res.tree_phases(t)
            assert phases, f"tree {t} has no phase profile"
            assert all(not k.startswith("tree") for k in phases)
            assert "bag" in phases


# -- compiled voting ----------------------------------------------------------


class TestCompiledForestParity:
    def test_compiled_vote_matches_reference_with_nan(self, quest):
        ds = make_dataset(quest, 4)
        res = PForest(forest_config("tree")).fit(ds, seed=SEED)
        cols, _ = quest
        probe = {k: v[:200].copy() for k, v in cols.items()}
        salary = probe["salary"].astype(float)
        salary[::7] = np.nan
        probe["salary"] = salary
        compiled = res.forest.compile()
        np.testing.assert_array_equal(
            compiled.predict_batch(probe), res.forest.predict(probe)
        )

    def test_forest_round_trips_through_json(self, quest, tmp_path):
        ds = make_dataset(quest, 2)
        res = PForest(forest_config("tree")).fit(ds, seed=SEED)
        path = tmp_path / "forest.json"
        res.forest.save(str(path))
        loaded = DecisionForest.load(str(path), quest_schema())
        assert tree_roots(loaded) == tree_roots(res.forest)
        cols, _ = quest
        probe = {k: v[:100] for k, v in cols.items()}
        np.testing.assert_array_equal(
            loaded.predict(probe), res.forest.predict(probe)
        )


# -- config validation and CLI -------------------------------------------------


class TestConfigAndCli:
    def test_config_rejects_bad_values(self):
        with pytest.raises(ValueError):
            ForestConfig(n_trees=0)
        with pytest.raises(ValueError):
            ForestConfig(regime="bogus")

    def test_cli_forest_smoke(self, tmp_path):
        from repro.cli import main

        report = tmp_path / "forest.json"
        out = tmp_path / "forest_model.json"
        rc = main([
            "forest", "--records", "800", "--ranks", "2", "--trees", "2",
            "--regime", "tree", "--seed", "3",
            "--json-out", str(report), "--forest-out", str(out),
        ])
        assert rc == 0
        payload = json.loads(report.read_text())
        assert payload["n_trees"] == 2
        assert payload["n_groups"] == 2
        assert "cross_tree" in payload
        loaded = DecisionForest.load(str(out), quest_schema())
        assert loaded.n_trees == 2
