"""Additional divide-and-conquer strategy coverage: non-power-of-two
machines, deep skew, leaf accounting, and the cost model's shape
sensitivity."""

import numpy as np
import pytest

from repro.bench.harness import scaled_models
from repro.cluster import Cluster
from repro.dnc import (
    DncCostModel,
    SyntheticDnc,
    TreeShape,
    run_strategy,
)

from conftest import make_cluster


def ooc_cluster(p, memory_kib=16, seed=0):
    net, disk, compute = scaled_models(100.0)
    return Cluster(
        p, network=net, disk=disk, compute=compute,
        memory_limit=memory_kib * 1024, seed=seed, timeout=120.0,
    )


class TestNonPowerOfTwoMachines:
    @pytest.mark.parametrize("p", [3, 5, 7])
    def test_task_parallel_odd_machines(self, p):
        """Group halving on odd sizes exercises the proportional split
        clamping (at least one rank per side)."""
        problem = SyntheticDnc(leaf_records=128)
        res = run_strategy(ooc_cluster(p), problem, 6000, "task", seed=2)
        ref = run_strategy(ooc_cluster(p), problem, 6000, "data", seed=2)
        assert (res.outcome.n_tasks, res.outcome.n_leaves) == (
            ref.outcome.n_tasks, ref.outcome.n_leaves
        )

    @pytest.mark.parametrize("strategy", ["concatenated", "mixed"])
    def test_other_strategies_odd_machines(self, strategy):
        problem = SyntheticDnc(leaf_records=128)
        res = run_strategy(ooc_cluster(5), problem, 6000, strategy, seed=3)
        ref = run_strategy(ooc_cluster(5), problem, 6000, "data", seed=3)
        assert res.outcome.n_tasks == ref.outcome.n_tasks


class TestDeepSkew:
    def test_extreme_skew_terminates(self):
        """split_ratio 0.95 produces a path-like tree; every strategy must
        terminate and agree (guards the group-splitting clamps)."""
        problem = SyntheticDnc(leaf_records=64, split_ratio=0.95)
        outcomes = {}
        for strategy in ("data", "task", "mixed"):
            res = run_strategy(ooc_cluster(4), problem, 3000, strategy, seed=4)
            outcomes[strategy] = (
                res.outcome.n_tasks, res.outcome.max_depth
            )
        assert len(set(outcomes.values())) == 1
        assert outcomes["data"][1] > 20  # genuinely path-like


class TestLeafMassConservation:
    def test_leaf_records_sum_to_input(self):
        """Count leaf records through a custom problem wrapper: no record
        may be lost or duplicated by any executor."""
        counted = []

        class CountingDnc(SyntheticDnc):
            def is_leaf(self, n_global, depth):
                leaf = super().is_leaf(n_global, depth)
                return leaf

        problem = CountingDnc(leaf_records=256)
        for strategy in ("data", "concatenated", "task", "mixed"):
            res = run_strategy(ooc_cluster(4), problem, 5000, strategy, seed=5)
            # leaves × average ≥ records; exact conservation is visible in
            # n_tasks being identical to the data-parallel reference, and
            # in the sample-sort tests; here assert the tree is plausible
            assert res.outcome.n_leaves >= 5000 // 256
            counted.append(res.outcome.n_leaves)
        assert len(set(counted)) == 1


class TestCostModelShapes:
    @pytest.fixture
    def model(self):
        net, disk, compute = scaled_models(100.0)
        return DncCostModel(network=net, disk=disk, compute=compute, n_ranks=8)

    def test_costs_scale_with_records(self, model):
        small = TreeShape(n_records=10_000, leaf_records=128)
        big = TreeShape(n_records=80_000, leaf_records=128)
        for fn in (
            model.data_parallel,
            model.concatenated,
            model.task_parallel_compute_dependent,
            model.task_parallel_compute_independent,
        ):
            assert fn(big) > fn(small)

    def test_memory_only_helps(self, model):
        shape = TreeShape(n_records=40_000, leaf_records=128)
        assert model.data_parallel(shape, 1 << 30) <= model.data_parallel(shape, 1024)

    def test_mixed_switch_extremes(self, model):
        shape = TreeShape(n_records=40_000, leaf_records=128)
        never = model.mixed(shape, switch_records=1, memory_limit=16 * 1024)
        sane = model.mixed(shape, switch_records=2500, memory_limit=16 * 1024)
        assert sane <= never

    def test_in_core_level_monotone_in_memory(self, model):
        shape = TreeShape(n_records=40_000, leaf_records=128)
        levels = [
            model.in_core_level(shape, mem)
            for mem in (None, 1 << 20, 16 * 1024, 1024)
        ]
        assert levels[0] == 0
        assert all(b >= a for a, b in zip(levels, levels[1:]))
