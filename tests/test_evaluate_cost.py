"""Distributed evaluation and the analytic D&C cost model."""

import numpy as np
import pytest

from repro.bench.harness import scaled_models
from repro.clouds import StoppingRule, accuracy, fit_direct
from repro.core import DistributedDataset, parallel_evaluate
from repro.data import generate_quest, quest_schema
from repro.dnc import DncCostModel, TreeShape

from conftest import make_cluster


class TestParallelEvaluate:
    @pytest.fixture(scope="class")
    def setup(self):
        schema = quest_schema()
        cols, labels = generate_quest(3000, function=2, seed=41, noise=0.05)
        tree = fit_direct(
            schema,
            {k: v[:2000] for k, v in cols.items()},
            labels[:2000],
            StoppingRule(min_node=16),
        )
        test_c = {k: v[2000:] for k, v in cols.items()}
        test_y = labels[2000:]
        return schema, tree, test_c, test_y

    def test_matches_sequential_accuracy_exactly(self, setup):
        schema, tree, test_c, test_y = setup
        cluster = make_cluster(4)
        ds = DistributedDataset.create(cluster, schema, test_c, test_y, seed=1)
        ev = parallel_evaluate(ds, tree)
        assert ev.accuracy == pytest.approx(accuracy(test_y, tree.predict(test_c)))
        assert ev.n_records == len(test_y)

    def test_confusion_matrix_matches(self, setup):
        schema, tree, test_c, test_y = setup
        from repro.clouds import confusion_matrix

        cluster = make_cluster(3)
        ds = DistributedDataset.create(cluster, schema, test_c, test_y, seed=2)
        ev = parallel_evaluate(ds, tree)
        np.testing.assert_array_equal(
            ev.confusion, confusion_matrix(test_y, tree.predict(test_c), 2)
        )

    def test_same_result_any_machine_size(self, setup):
        schema, tree, test_c, test_y = setup
        matrices = []
        for p in (1, 2, 5):
            cluster = make_cluster(p)
            ds = DistributedDataset.create(cluster, schema, test_c, test_y, seed=3)
            matrices.append(parallel_evaluate(ds, tree).confusion)
        for m in matrices[1:]:
            np.testing.assert_array_equal(m, matrices[0])

    def test_evaluation_does_not_consume_dataset(self, setup):
        schema, tree, test_c, test_y = setup
        cluster = make_cluster(2)
        ds = DistributedDataset.create(cluster, schema, test_c, test_y, seed=4)
        parallel_evaluate(ds, tree)
        ev2 = parallel_evaluate(ds, tree)  # second pass still works
        assert ev2.n_records == len(test_y)

    def test_recall_and_error_rate(self, setup):
        schema, tree, test_c, test_y = setup
        cluster = make_cluster(2)
        ds = DistributedDataset.create(cluster, schema, test_c, test_y, seed=5)
        ev = parallel_evaluate(ds, tree)
        assert ev.error_rate == pytest.approx(1.0 - ev.accuracy)
        recall = ev.per_class_recall()
        assert recall.shape == (2,)
        assert np.all((0.0 <= recall) & (recall <= 1.0))

    def test_more_ranks_evaluate_faster(self, setup):
        schema, tree, test_c, test_y = setup
        net, disk, compute = scaled_models(100.0)
        times = []
        for p in (1, 4):
            cluster = make_cluster(p, network=net, disk=disk, compute=compute)
            ds = DistributedDataset.create(cluster, schema, test_c, test_y, seed=6)
            times.append(parallel_evaluate(ds, tree).elapsed)
        assert times[1] < times[0]


class TestTreeShape:
    def test_levels_balanced(self):
        shape = TreeShape(n_records=8192, leaf_records=64)
        assert shape.levels == 7

    def test_levels_skewed_deeper(self):
        bal = TreeShape(n_records=8192, leaf_records=64, split_ratio=0.5)
        skew = TreeShape(n_records=8192, leaf_records=64, split_ratio=0.9)
        assert skew.levels > bal.levels

    def test_degenerate_single_leaf(self):
        assert TreeShape(n_records=10, leaf_records=64).levels == 0

    def test_tasks_at_level_capped(self):
        shape = TreeShape(n_records=1024, leaf_records=256)
        assert shape.tasks_at(0) == 1
        assert shape.tasks_at(10) <= 4


class TestDncCostModel:
    @pytest.fixture
    def model(self):
        net, disk, compute = scaled_models(100.0)
        return DncCostModel(network=net, disk=disk, compute=compute, n_ranks=8)

    @pytest.fixture
    def shape(self):
        return TreeShape(n_records=40_000, leaf_records=128)

    def test_data_beats_concatenated_when_memory_binds(self, model, shape):
        mem = 16 * 1024
        assert model.data_parallel(shape, mem) < model.concatenated(shape, mem)

    def test_without_memory_they_match_closely(self, model, shape):
        # no in-core crossover: both stream everything; concatenated is
        # cheaper only in startups
        dp = model.data_parallel(shape, None)
        cc = model.concatenated(shape, None)
        assert cc <= dp

    def test_compute_independent_pays_network_for_remote_data(self, model, shape):
        dep = model.task_parallel_compute_dependent(shape)
        indep = model.task_parallel_compute_independent(shape)
        assert dep > 0 and indep > 0

    def test_mixed_with_good_switch_beats_pure_data(self, model, shape):
        mem = 16 * 1024
        mixed = model.mixed(shape, switch_records=2500, memory_limit=mem)
        dp = model.data_parallel(shape, mem)
        assert mixed < dp

    def test_predictions_track_simulation_ordering(self, shape):
        """The analytic model must reproduce the simulator's ranking of
        data vs concatenated in the memory-bound regime."""
        from repro.cluster import Cluster
        from repro.dnc import SyntheticDnc, run_strategy

        net, disk, compute = scaled_models(100.0)
        model = DncCostModel(network=net, disk=disk, compute=compute, n_ranks=4)
        small_shape = TreeShape(n_records=12_000, leaf_records=128)
        mem = 8 * 1024
        predicted = {
            "data": model.data_parallel(small_shape, mem),
            "concatenated": model.concatenated(small_shape, mem),
        }
        measured = {}
        for strat in ("data", "concatenated"):
            cluster = Cluster(
                4, network=net, disk=disk, compute=compute,
                memory_limit=mem, seed=0, timeout=60.0,
            )
            measured[strat] = run_strategy(
                cluster, SyntheticDnc(leaf_records=128), 12_000, strat, seed=1
            ).elapsed
        assert (predicted["data"] < predicted["concatenated"]) == (
            measured["data"] < measured["concatenated"]
        )
        # magnitudes in the same decade
        for s in predicted:
            assert 0.1 < predicted[s] / measured[s] < 10.0
