"""Deterministic fault injection, storage integrity, and
checkpoint/restart recovery.

The contract under test: every fault a :class:`FaultPlan` can express is
reproducible from ``(seed, plan)``; silent chunk corruption is caught by
the per-chunk CRC instead of changing the tree; transient disk errors
are retried with backoff charged to the simulated clock; and a fit run
with ``recover=True`` survives planned crashes and produces a tree
bit-identical to the fault-free run.
"""

import numpy as np
import pytest

from repro.cluster import (
    CorruptChunk,
    CrashAtCollective,
    CrashAtPhase,
    FaultInjector,
    FaultPlan,
    InjectedFault,
    SlowRank,
    SpmdProgramError,
    TransientDiskFaults,
    standard_plans,
)
from repro.core import CheckpointStore, DistributedDataset, PClouds
from repro.data import generate_quest, quest_schema
from repro.ooc import (
    ChunkCorruptionError,
    InMemoryBackend,
    MemoryBudget,
    MemoryExceededError,
    OocArray,
    TransientDiskError,
)

from conftest import make_cluster


def make_dataset(p=4, n=2000, seed=0, **cluster_kwargs):
    cluster = make_cluster(p, seed=seed, **cluster_kwargs)
    columns, labels = generate_quest(n, function=2, seed=seed)
    return DistributedDataset.create(
        cluster, quest_schema(), columns, labels, seed=seed + 1
    )


def fit(dataset, seed=2, **kwargs):
    return PClouds().fit(dataset, seed=seed, **kwargs)


# -- the injector itself ------------------------------------------------------


class TestFaultInjector:
    def test_adhoc_fault_sequence_becomes_a_plan(self):
        inj = FaultInjector([SlowRank(rank=0)])
        assert isinstance(inj.plan, FaultPlan)
        assert inj.plan.name == "adhoc"

    def test_crash_fires_at_exact_collective_index(self):
        c = make_cluster(2)
        ctxs = c.make_contexts()
        inj = FaultInjector(FaultPlan.of("x", CrashAtCollective(rank=1, nth=2)))
        inj.attach(ctxs)
        inj.begin_attempt()
        progress = []

        def prog(ctx):
            for i in range(5):
                ctx.comm.allreduce(1)
                if ctx.rank == 1:
                    progress.append(i)

        with pytest.raises(SpmdProgramError) as e:
            c.run(prog, contexts=ctxs)
        assert e.value.rank == 1
        assert isinstance(e.value.cause, InjectedFault)
        # collectives #0 and #1 completed; the crash hit #2
        assert progress == [0, 1]
        assert inj.events[0]["rank"] == 1
        assert "collective#2" in inj.events[0]["fault"]

    def test_crash_is_one_shot_across_attempts(self):
        c = make_cluster(2)
        ctxs = c.make_contexts()
        inj = FaultInjector(FaultPlan.of("x", CrashAtCollective(rank=0, nth=0)))
        inj.attach(ctxs)

        def prog(ctx):
            return ctx.comm.allreduce(1)

        inj.begin_attempt()
        with pytest.raises(SpmdProgramError):
            c.run(prog, contexts=ctxs)
        inj.begin_attempt()  # counters reset; the fired fault stays spent
        assert c.run(prog, contexts=ctxs).results == [2, 2]
        assert inj.n_fired == 1
        assert inj.attempts == 2

    def test_crash_at_named_phase(self):
        c = make_cluster(2)
        ctxs = c.make_contexts()
        inj = FaultInjector(FaultPlan.of("x", CrashAtPhase(rank=0, phase="work")))
        inj.attach(ctxs)
        inj.begin_attempt()

        def prog(ctx):
            ctx.timer.start("setup")
            ctx.timer.start("work")

        with pytest.raises(SpmdProgramError) as e:
            c.run(prog, contexts=ctxs)
        assert isinstance(e.value.cause, InjectedFault)
        assert "work" in str(e.value.cause)

    def test_slow_rank_scales_local_charges_only(self):
        c = make_cluster(2)
        ctxs = c.make_contexts()
        inj = FaultInjector(FaultPlan.of("x", SlowRank(rank=1, factor=3.0)))
        inj.attach(ctxs)
        inj.begin_attempt()
        assert ctxs[1].clock.rate == 3.0
        assert ctxs[0].clock.rate == 1.0

        def prog(ctx):
            ctx.charge_compute(seconds=1.0)
            return ctx.clock.now

        out = c.run(prog, contexts=ctxs).results
        assert out[0] == pytest.approx(1.0)
        assert out[1] == pytest.approx(3.0)

    def test_attach_is_idempotent(self):
        c = make_cluster(2)
        ctxs = c.make_contexts()
        inj = FaultInjector(FaultPlan.of("x"))
        inj.attach(ctxs)
        comm = ctxs[0].comm
        inj.attach(ctxs)
        assert ctxs[0].comm is comm


# -- storage integrity --------------------------------------------------------


class TestStorageIntegrity:
    def test_crc_detects_tampered_chunk(self):
        c = make_cluster(1)

        def prog(ctx):
            f = OocArray(ctx.disk, np.float64, name="x")
            f.append(np.arange(8, dtype=np.float64))
            # flip a bit behind the file's back
            handle = f._handles[0]
            bad = ctx.disk.backend.get(handle).copy()
            bad[3] = -999.0
            ctx.disk.backend.overwrite(handle, bad)
            return f.read_all()

        with pytest.raises(SpmdProgramError) as e:
            c.run(prog)
        assert isinstance(e.value.cause, ChunkCorruptionError)

    def test_transient_errors_retried_with_charged_backoff(self):
        plans = FaultPlan.of(
            "t", TransientDiskFaults(rank=0, op="get", start=0, count=2)
        )

        def prog(ctx):
            f = OocArray(ctx.disk, np.float64, name="x")
            f.append(np.arange(16, dtype=np.float64))
            t0 = ctx.clock.now
            data = f.read_all()
            return data.sum(), ctx.clock.now - t0, ctx.stats.io_retries

        c = make_cluster(1)
        ctxs = c.make_contexts()
        inj = FaultInjector(plans)
        inj.attach(ctxs)
        inj.begin_attempt()
        total, dt_faulty, retries = c.run(prog, contexts=ctxs).results[0]

        clean_total, dt_clean, _ = make_cluster(1).run(prog).results[0]
        assert total == clean_total == np.arange(16).sum()
        assert retries == 2
        # the two backoff waits were charged to the simulated clock
        disk = ctxs[0].disk
        expected = disk.RETRY_BASE_DELAY * (1 + disk.RETRY_MULTIPLIER)
        assert dt_faulty == pytest.approx(dt_clean + expected)

    def test_transient_window_wider_than_retry_budget_propagates(self):
        c = make_cluster(1)
        ctxs = c.make_contexts()
        inj = FaultInjector(
            FaultPlan.of("t", TransientDiskFaults(rank=0, op="get", count=99))
        )
        inj.attach(ctxs)
        inj.begin_attempt()

        def prog(ctx):
            f = OocArray(ctx.disk, np.float64, name="x")
            f.append(np.ones(4))
            return f.read_all()

        with pytest.raises(SpmdProgramError) as e:
            c.run(prog, contexts=ctxs)
        assert isinstance(e.value.cause, TransientDiskError)

    def test_corruption_is_deterministic_in_seed(self):
        def corrupted_bytes(seed):
            c = make_cluster(1)
            ctxs = c.make_contexts()
            inj = FaultInjector(
                FaultPlan.of("c", CorruptChunk(rank=0, nth_put=0)), seed=seed
            )
            inj.attach(ctxs)
            inj.begin_attempt()

            def prog(ctx):
                f = OocArray(ctx.disk, np.float64, name="x")
                f.append(np.zeros(32))
                return ctx.disk.backend.get(f._handles[0]).tobytes()

            return c.run(prog, contexts=ctxs).results[0]

        assert corrupted_bytes(1) == corrupted_bytes(1)
        assert corrupted_bytes(1) != corrupted_bytes(2)


# -- the checkpoint store -----------------------------------------------------


class TestCheckpointStore:
    def _disk(self):
        return make_cluster(1).make_contexts()[0].disk

    def test_roundtrip_latest_wins(self):
        disk = self._disk()
        store = CheckpointStore()
        store.save(disk, "level-0", {"level": 0})
        store.save(disk, "level-1", {"level": 1, "x": np.arange(3)})
        assert store.labels == ["level-0", "level-1"]
        label, state = store.load_latest(disk)
        assert label == "level-1"
        assert state["level"] == 1
        np.testing.assert_array_equal(state["x"], np.arange(3))

    def test_empty_store_restores_nothing(self):
        assert CheckpointStore().load_latest(self._disk()) is None

    def test_corrupted_checkpoint_falls_back_to_older(self):
        disk = self._disk()
        store = CheckpointStore()
        store.save(disk, "good", {"v": 1})
        store.save(disk, "bad", {"v": 2})
        entry = store._entries[-1]
        payload = disk.backend.get(entry.handle).copy()
        payload[0] ^= 0xFF
        disk.backend.overwrite(entry.handle, payload)
        label, state = store.load_latest(disk)
        assert (label, state["v"]) == ("good", 1)
        assert store.labels == ["good"]  # the bad entry was dropped

    def test_checkpoint_write_charged_to_clock(self):
        disk = self._disk()
        t0 = disk.clock.now
        CheckpointStore().save(disk, "x", {"blob": np.zeros(1024)})
        assert disk.clock.now > t0
        assert disk.stats.bytes_written > 0


# -- end-to-end recovery ------------------------------------------------------


class TestRecovery:
    def test_crash_recovers_to_identical_tree(self):
        baseline = fit(make_dataset())
        plan = FaultPlan.of("k", CrashAtPhase(rank=3, phase="partition"))
        res = fit(make_dataset(), faults=plan, recover=True)
        assert res.n_restarts == 1
        assert len(res.fault_events) == 1
        assert res.tree.to_dict() == baseline.tree.to_dict()
        # the failed attempt's simulated time is not free
        assert res.elapsed > baseline.elapsed

    def test_crash_without_recover_raises(self):
        plan = FaultPlan.of("k", CrashAtCollective(rank=1, nth=4))
        with pytest.raises(SpmdProgramError) as e:
            fit(make_dataset(), faults=plan)
        assert isinstance(e.value.cause, InjectedFault)

    def test_corruption_detected_not_silent(self):
        """A flipped bit must surface as ChunkCorruptionError — never as a
        quietly different tree."""
        plan = FaultPlan.of("c", CorruptChunk(rank=2, nth_put=1))
        with pytest.raises(SpmdProgramError) as e:
            fit(make_dataset(), faults=plan)
        assert isinstance(e.value.cause, ChunkCorruptionError)

    def test_corruption_recovers_to_identical_tree(self):
        baseline = fit(make_dataset())
        plan = FaultPlan.of("c", CorruptChunk(rank=2, nth_put=1))
        res = fit(make_dataset(), faults=plan, recover=True)
        assert res.n_restarts >= 1
        assert res.tree.to_dict() == baseline.tree.to_dict()

    def test_transient_faults_survive_without_restart(self):
        baseline = fit(make_dataset())
        plan = FaultPlan.of(
            "t", TransientDiskFaults(rank=0, op="get", start=3, count=2)
        )
        res = fit(make_dataset(), faults=plan, recover=True)
        assert res.n_restarts == 0
        assert res.tree.to_dict() == baseline.tree.to_dict()
        assert sum(s.io_retries for s in res.run.stats.per_rank) == 2

    def test_straggler_slows_but_completes(self):
        baseline = fit(make_dataset())
        res = fit(
            make_dataset(), faults=FaultPlan.of("s", SlowRank(rank=3, factor=4.0))
        )
        assert res.n_restarts == 0
        assert res.tree.to_dict() == baseline.tree.to_dict()
        assert res.elapsed > baseline.elapsed

    def test_recovery_is_deterministic(self):
        plan = standard_plans(4)[0]
        r1 = fit(make_dataset(), faults=plan, recover=True)
        r2 = fit(make_dataset(), faults=plan, recover=True)
        assert r1.fault_events == r2.fault_events
        assert r1.tree.to_dict() == r2.tree.to_dict()
        assert r1.elapsed == r2.elapsed

    def test_restart_budget_exhausts(self):
        # every attempt re-fires a fresh crash: recovery must give up
        plan = FaultPlan.of(
            "relentless",
            *[CrashAtCollective(rank=1, nth=0) for _ in range(10)],
        )
        with pytest.raises(SpmdProgramError):
            fit(make_dataset(), faults=plan, recover=True, max_restarts=2)

    def test_fault_events_reach_the_trace(self):
        plan = standard_plans(4)[0]
        res = fit(make_dataset(), faults=plan, recover=True, trace=True)
        faults = [e for t in res.tracers for e in t.events if e.kind == "fault"]
        assert len(faults) == 1
        assert faults[0].op.startswith("fault:crash@collective")
        # the roll-up aggregates the new kind into its rows
        report = res.trace_report()
        fault_rows = [r for r in report.rows if r.kind == "fault"]
        assert len(fault_rows) == 1 and fault_rows[0].count == 1
        assert fault_rows[0].op in report.render()

    def test_checkpoint_and_recover_phases_attributed(self):
        plan = FaultPlan.of("k", CrashAtCollective(rank=1, nth=20))
        res = fit(make_dataset(), faults=plan, recover=True)
        assert res.phase_time("checkpoint") > 0
        assert res.phase_time("recover") > 0


class TestChaosMatrix:
    """The acceptance matrix: every standard plan × seed must survive and
    reproduce the fault-free tree bit for bit."""

    @pytest.mark.parametrize("seed", [0, 1])
    def test_all_standard_plans_recover(self, seed):
        baseline = fit(make_dataset(seed=seed), seed=seed + 2).tree.to_dict()
        for plan in standard_plans(4):
            res = fit(
                make_dataset(seed=seed), seed=seed + 2, faults=plan, recover=True
            )
            assert res.tree.to_dict() == baseline, plan.name


# -- memory-budget fallback ---------------------------------------------------


class TestMemoryFallback:
    def test_reservation_released_when_guarded_block_raises(self):
        budget = MemoryBudget(limit=100)
        with pytest.raises(RuntimeError):
            with budget.reserve(60):
                assert budget.reserved == 60
                raise RuntimeError("boom")
        assert budget.reserved == 0
        assert budget.high_water == 60

    def test_reserve_beyond_budget_raises(self):
        budget = MemoryBudget(limit=100)
        with budget.reserve(80):
            with pytest.raises(MemoryExceededError):
                budget.reserve(40)
        assert budget.reserved == 0

    def test_small_nodes_fall_back_to_out_of_core(self):
        """A tight memory budget must reroute small-node builds through
        the disk — changing costs, never the tree."""
        unlimited = fit(make_dataset())
        limited_ds = make_dataset(memory_limit=4096)
        limited = fit(limited_ds)
        assert limited.tree.to_dict() == unlimited.tree.to_dict()
        read = lambda r: sum(s.bytes_read for s in r.run.stats.per_rank)
        assert read(limited) > read(unlimited)

    def test_in_core_builds_actually_reserve(self):
        ds = make_dataset()
        fit(ds)
        # unlimited budget: small-node builds reserved (and released) memory
        assert max(ctx.memory.high_water for ctx in ds.contexts) > 0
        assert all(ctx.memory.reserved == 0 for ctx in ds.contexts)


# -- Cluster.run resource ownership -------------------------------------------


class TestRunCleanup:
    def test_run_owned_backends_closed_on_success_and_failure(self):
        made = []

        def factory():
            b = InMemoryBackend()
            made.append(b)
            return b

        c = make_cluster(2, backend_factory=factory)

        def prog(ctx):
            f = OocArray(ctx.disk, np.float64, name="x")
            f.append(np.ones(64))
            return len(f)

        assert c.run(prog).results == [64, 64]
        assert len(made) == 2
        assert all(b.resident_bytes() == 0 for b in made)

        def bad(ctx):
            OocArray(ctx.disk, np.float64, name="x").append(np.ones(64))
            raise RuntimeError("die")

        with pytest.raises(SpmdProgramError):
            c.run(bad)
        assert all(b.resident_bytes() == 0 for b in made)

    def test_caller_owned_contexts_stay_open(self):
        c = make_cluster(2)
        ctxs = c.make_contexts()

        def writer(ctx):
            f = OocArray(ctx.disk, np.float64, name="x")
            f.append(np.full(4, ctx.rank, dtype=np.float64))
            return f

        files = c.run(writer, contexts=ctxs).results
        # the disks survive the run: read the files back in a second run
        out = c.run(lambda ctx: files[ctx.rank].read_all().sum(), contexts=ctxs)
        assert out.results == [0.0, 4.0]

    def test_timers_closed_after_failure(self):
        c = make_cluster(2)
        ctxs = c.make_contexts()

        def prog(ctx):
            ctx.timer.start("doomed")
            if ctx.rank == 1:
                raise RuntimeError("die")
            ctx.comm.barrier()

        with pytest.raises(SpmdProgramError):
            c.run(prog, contexts=ctxs)
        assert all(ctx.timer.current is None for ctx in ctxs)

    def test_contexts_reusable_after_abort(self):
        c = make_cluster(2)
        ctxs = c.make_contexts()

        def bad(ctx):
            if ctx.rank == 0:
                raise RuntimeError("die")
            ctx.comm.allreduce(1)

        with pytest.raises(SpmdProgramError):
            c.run(bad, contexts=ctxs)
        # the shared world is reset on the next run
        assert c.run(lambda ctx: ctx.comm.allreduce(1), contexts=ctxs).results == [2, 2]
