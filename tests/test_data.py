"""The Quest generator, schemas, and record distribution."""

import numpy as np
import pytest

from repro.data import (
    CATEGORICAL,
    GROUP_A,
    GROUP_B,
    N_FUNCTIONS,
    NUMERIC,
    Attribute,
    Schema,
    generate_quest,
    make_schema,
    multinomial_split,
    quest_schema,
    shuffle_split,
)
from repro.data.generator import _group_a


class TestSchema:
    def test_quest_schema_shape(self, schema):
        assert len(schema) == 9
        assert len(schema.numeric) == 6
        assert len(schema.categorical) == 3
        assert schema.n_classes == 2

    def test_row_nbytes(self, schema):
        # 6 numeric f8 + 3 categorical i4 + label i4
        assert schema.row_nbytes() == 6 * 8 + 3 * 4 + 4

    def test_attribute_lookup(self, schema):
        assert schema.attribute("elevel").cardinality == 5
        with pytest.raises(KeyError):
            schema.attribute("nope")

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            Schema((Attribute("x", NUMERIC), Attribute("x", NUMERIC)))

    def test_categorical_needs_cardinality(self):
        with pytest.raises(ValueError):
            Attribute("c", CATEGORICAL, cardinality=1)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            Attribute("c", "weird")

    def test_make_schema_helper(self):
        s = make_schema(["a", "b"], {"c": 3}, n_classes=4)
        assert s.names == ["a", "b", "c"]
        assert s.n_classes == 4

    def test_n_classes_minimum(self):
        with pytest.raises(ValueError):
            make_schema(["a"], {}, n_classes=1)

    def test_validate_columns_catches_extra(self, schema, quest_small):
        cols, labels = quest_small
        bad = dict(cols)
        bad["extra"] = labels
        with pytest.raises(ValueError):
            schema.validate_columns(bad, labels)


class TestGenerator:
    def test_deterministic_given_seed(self):
        a = generate_quest(500, function=3, seed=42)
        b = generate_quest(500, function=3, seed=42)
        for k in a[0]:
            np.testing.assert_array_equal(a[0][k], b[0][k])
        np.testing.assert_array_equal(a[1], b[1])

    def test_different_seeds_differ(self):
        a, _ = generate_quest(500, seed=1)
        b, _ = generate_quest(500, seed=2)
        assert not np.array_equal(a["salary"], b["salary"])

    def test_value_ranges(self):
        cols, labels = generate_quest(5000, seed=0)
        assert cols["salary"].min() >= 20_000 and cols["salary"].max() <= 150_000
        assert cols["age"].min() >= 20 and cols["age"].max() <= 80
        assert cols["elevel"].min() >= 0 and cols["elevel"].max() <= 4
        assert cols["car"].max() <= 19
        assert cols["zipcode"].max() <= 8
        assert cols["loan"].max() <= 500_000
        assert set(np.unique(labels)) <= {GROUP_A, GROUP_B}

    def test_commission_zero_iff_high_salary(self):
        cols, _ = generate_quest(5000, seed=1)
        high = cols["salary"] >= 75_000
        assert (cols["commission"][high] == 0).all()
        assert (cols["commission"][~high] >= 10_000).all()

    def test_hvalue_depends_on_zipcode(self):
        cols, _ = generate_quest(20000, seed=2)
        # lower zipcode codes mean larger k, hence pricier houses
        lo = cols["hvalue"][cols["zipcode"] == 0]
        hi = cols["hvalue"][cols["zipcode"] == 8]
        assert lo.mean() > hi.mean()

    @pytest.mark.parametrize("fn", range(1, N_FUNCTIONS + 1))
    def test_all_functions_produce_both_classes(self, fn):
        _, labels = generate_quest(4000, function=fn, seed=5)
        assert len(np.unique(labels)) == 2

    def test_function2_predicate_matches_labels(self):
        cols, labels = generate_quest(2000, function=2, seed=3, noise=0.0)
        a = (
            ((cols["age"] < 40) & (50_000 <= cols["salary"]) & (cols["salary"] <= 100_000))
            | ((cols["age"] >= 40) & (cols["age"] < 60)
               & (75_000 <= cols["salary"]) & (cols["salary"] <= 125_000))
            | ((cols["age"] >= 60) & (25_000 <= cols["salary"]) & (cols["salary"] <= 75_000))
        )
        np.testing.assert_array_equal(labels == GROUP_A, a)

    def test_function1_depends_only_on_age(self):
        cols, labels = generate_quest(2000, function=1, seed=3)
        np.testing.assert_array_equal(
            labels == GROUP_A, (cols["age"] < 40) | (cols["age"] >= 60)
        )

    def test_noise_flips_expected_fraction(self):
        cols, clean = generate_quest(20000, function=2, seed=9, noise=0.0)
        _, noisy = generate_quest(20000, function=2, seed=9, noise=0.2)
        flipped = np.mean(clean != noisy)
        assert 0.17 < flipped < 0.23

    def test_bad_function_rejected(self):
        with pytest.raises(ValueError):
            generate_quest(10, function=11)
        cols, _ = generate_quest(10, function=1)
        with pytest.raises(ValueError):
            _group_a(cols, 0)

    def test_bad_noise_rejected(self):
        with pytest.raises(ValueError):
            generate_quest(10, noise=1.5)

    def test_negative_n_rejected(self):
        with pytest.raises(ValueError):
            generate_quest(-1)

    def test_empty_generation(self):
        cols, labels = generate_quest(0)
        assert len(labels) == 0
        assert all(len(v) == 0 for v in cols.values())


class TestDistribute:
    def test_shuffle_split_partitions_exactly(self, quest_small):
        cols, labels = quest_small
        frags = shuffle_split(cols, labels, 3, seed=1)
        assert sum(len(f[1]) for f in frags) == len(labels)
        sizes = [len(f[1]) for f in frags]
        assert max(sizes) - min(sizes) <= 1
        all_sal = np.sort(np.concatenate([f[0]["salary"] for f in frags]))
        np.testing.assert_array_equal(all_sal, np.sort(cols["salary"]))

    def test_shuffle_split_rows_stay_aligned(self, quest_small):
        cols, labels = quest_small
        frags = shuffle_split(cols, labels, 4, seed=2)
        # a record's (salary, label) pair must survive redistribution
        pairs = set(zip(cols["salary"].tolist(), labels.tolist()))
        for fcols, flabels in frags:
            for s, l in zip(fcols["salary"], flabels):
                assert (s, l) in pairs

    def test_multinomial_split_partitions_exactly(self, quest_small):
        cols, labels = quest_small
        frags = multinomial_split(cols, labels, 5, seed=3)
        assert sum(len(f[1]) for f in frags) == len(labels)

    def test_multinomial_sizes_near_uniform(self):
        cols, labels = generate_quest(20000, seed=4)
        frags = multinomial_split(cols, labels, 4, seed=5)
        sizes = np.array([len(f[1]) for f in frags])
        # Angluin–Valiant: deviations are O(sqrt(n/p log n)) ~ a few hundred
        assert np.all(np.abs(sizes - 5000) < 500)

    def test_single_rank_gets_everything(self, quest_small):
        cols, labels = quest_small
        (fc, fl), = shuffle_split(cols, labels, 1, seed=0)
        assert len(fl) == len(labels)

    def test_zero_ranks_rejected(self, quest_small):
        cols, labels = quest_small
        with pytest.raises(ValueError):
            shuffle_split(cols, labels, 0)
        with pytest.raises(ValueError):
            multinomial_split(cols, labels, 0)
