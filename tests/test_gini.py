"""Gini machinery: impurity, sweeps, categorical subsets, the SSE bound."""

import itertools

import numpy as np
import pytest

from repro.clouds.gini import (
    best_categorical_split,
    best_numeric_split_exact,
    boundary_sweep,
    gini_from_counts,
    gini_lower_bound,
    weighted_gini,
)


def brute_force_numeric(values, labels, n_classes):
    """Reference: evaluate every distinct threshold directly."""
    best = None
    for thr in np.unique(values):
        mask = values <= thr
        if mask.all():
            continue
        g = weighted_gini(
            np.bincount(labels[mask], minlength=n_classes),
            np.bincount(labels[~mask], minlength=n_classes),
        )
        if best is None or g < best[0] - 1e-12:
            best = (float(g), float(thr))
    return best


class TestGiniFromCounts:
    def test_pure_node_is_zero(self):
        assert gini_from_counts([10, 0]) == pytest.approx(0.0)

    def test_balanced_two_class_is_half(self):
        assert gini_from_counts([5, 5]) == pytest.approx(0.5)

    def test_uniform_k_classes(self):
        for k in (2, 3, 4, 10):
            assert gini_from_counts([7] * k) == pytest.approx(1 - 1 / k)

    def test_empty_counts_zero(self):
        assert gini_from_counts([0, 0]) == 0.0

    def test_batched_rows(self):
        g = gini_from_counts(np.array([[1, 1], [2, 0], [0, 0]]))
        np.testing.assert_allclose(g, [0.5, 0.0, 0.0])


class TestWeightedGini:
    def test_weights_by_partition_size(self):
        g = weighted_gini([2, 2], [4, 0])
        assert g == pytest.approx((4 * 0.5 + 4 * 0.0) / 8)

    def test_empty_side_contributes_nothing(self):
        assert weighted_gini([3, 3], [0, 0]) == pytest.approx(0.5)

    def test_batched(self):
        left = np.array([[2, 2], [4, 0]])
        right = np.array([[4, 0], [2, 2]])
        np.testing.assert_allclose(weighted_gini(left, right), [0.25, 0.25])


class TestBoundarySweep:
    def test_matches_pointwise_weighted_gini(self):
        rng = np.random.default_rng(0)
        labels = rng.integers(0, 3, 50)
        onehot = np.eye(3, dtype=np.int64)[labels]
        cum = np.cumsum(onehot, axis=0)
        total = cum[-1]
        sweep = boundary_sweep(cum[:-1], total)
        for i in range(49):
            expect = weighted_gini(cum[i], total - cum[i])
            assert sweep[i] == pytest.approx(expect)


class TestBestNumericSplit:
    @pytest.mark.parametrize("seed", range(5))
    def test_matches_brute_force(self, seed):
        rng = np.random.default_rng(seed)
        values = rng.choice(20, 200).astype(float)
        labels = (values + rng.normal(0, 5, 200) > 10).astype(np.int64)
        got = best_numeric_split_exact(values, labels, 2)
        ref = brute_force_numeric(values, labels, 2)
        assert got[0] == pytest.approx(ref[0])

    def test_separable_data_reaches_zero(self):
        values = np.array([1.0, 2.0, 3.0, 10.0, 11.0])
        labels = np.array([0, 0, 0, 1, 1])
        g, thr = best_numeric_split_exact(values, labels, 2)
        assert g == pytest.approx(0.0)
        assert thr == pytest.approx(3.0)

    def test_constant_values_no_split(self):
        assert best_numeric_split_exact(np.ones(5), np.array([0, 1, 0, 1, 0]), 2) is None

    def test_empty_input(self):
        assert best_numeric_split_exact(np.empty(0), np.empty(0, dtype=int), 2) is None

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            best_numeric_split_exact(np.ones(3), np.zeros(2, dtype=int), 2)

    def test_base_left_shifts_to_node_scope(self):
        # interval members [5,6] inside a node where 4 class-0 sit left
        # and 4 class-1 sit right of the interval
        values = np.array([5.0, 6.0])
        labels = np.array([0, 1])
        base_left = np.array([4.0, 0.0])
        node_counts = np.array([5.0, 5.0])
        g, thr = best_numeric_split_exact(
            values, labels, 2, base_left=base_left, node_counts=node_counts
        )
        # split at 5: left = [5,0] pure, right = [0,5] pure
        assert thr == pytest.approx(5.0)
        assert g == pytest.approx(0.0)

    def test_interval_max_is_legal_with_node_scope(self):
        # node has records right of the interval, so splitting at the
        # interval's largest value is allowed
        values = np.array([1.0, 2.0])
        labels = np.array([0, 0])
        res = best_numeric_split_exact(
            values, labels, 2,
            base_left=np.zeros(2), node_counts=np.array([2.0, 3.0]),
        )
        assert res is not None
        g, thr = res
        assert thr == pytest.approx(2.0)
        assert g == pytest.approx(0.0)


class TestCategoricalSplit:
    def brute_force(self, counts):
        v = counts.shape[0]
        total = counts.sum(axis=0)
        best = None
        for r in range(1, v):
            for combo in itertools.combinations(range(v), r):
                left = counts[list(combo)].sum(axis=0)
                if left.sum() == 0 or left.sum() == counts.sum():
                    continue
                g = float(weighted_gini(left, total - left))
                if best is None or g < best - 1e-12:
                    best = g
        return best

    @pytest.mark.parametrize("seed", range(4))
    def test_two_class_prefix_theorem_is_optimal(self, seed):
        rng = np.random.default_rng(seed)
        counts = rng.integers(0, 20, (6, 2))
        res = best_categorical_split(counts)
        assert res[0] == pytest.approx(self.brute_force(counts))

    @pytest.mark.parametrize("seed", range(3))
    def test_enumeration_is_optimal_three_classes(self, seed):
        rng = np.random.default_rng(seed + 10)
        counts = rng.integers(0, 10, (5, 3))
        res = best_categorical_split(counts, enumerate_limit=8)
        assert res[0] == pytest.approx(self.brute_force(counts))

    def test_greedy_not_worse_than_one_vs_rest(self):
        rng = np.random.default_rng(3)
        counts = rng.integers(0, 10, (15, 3))
        g_greedy, _ = best_categorical_split(counts, enumerate_limit=4)
        total = counts.sum(axis=0)
        one_vs_rest = min(
            float(weighted_gini(counts[v], total - counts[v]))
            for v in range(15)
            if 0 < counts[v].sum() < counts.sum()
        )
        assert g_greedy <= one_vs_rest + 1e-9

    def test_single_present_value_no_split(self):
        counts = np.zeros((4, 2), dtype=int)
        counts[2] = [5, 3]
        assert best_categorical_split(counts) is None

    def test_separable_reaches_zero(self):
        counts = np.array([[5, 0], [0, 7], [3, 0]])
        g, left = best_categorical_split(counts)
        assert g == pytest.approx(0.0)
        assert left in ({0, 2}, {1})


class TestGiniLowerBound:
    def _discrete_min(self, left, inside_labels, total):
        """Min gini over all realisable prefixes of a specific ordering —
        any valid lower bound must be <= this for every ordering."""
        c = len(left)
        best = np.inf
        for perm_seed in range(10):
            order = np.random.default_rng(perm_seed).permutation(len(inside_labels))
            cum = np.array(left, dtype=float)
            for idx in order:
                cum = cum + np.eye(c)[inside_labels[idx]]
                g = float(weighted_gini(cum, np.asarray(total) - cum))
                best = min(best, g)
        return best

    @pytest.mark.parametrize("seed", range(6))
    def test_bounds_every_realisable_split(self, seed):
        rng = np.random.default_rng(seed)
        c = 2
        left = rng.integers(0, 10, c).astype(float)
        inside_labels = rng.integers(0, c, 12)
        inside = np.bincount(inside_labels, minlength=c).astype(float)
        right = rng.integers(0, 10, c).astype(float)
        total = left + inside + right
        bound = gini_lower_bound(left, inside, total)
        assert bound <= self._discrete_min(left, inside_labels, total) + 1e-9

    def test_three_classes(self):
        rng = np.random.default_rng(42)
        c = 3
        left = rng.integers(0, 5, c).astype(float)
        inside_labels = rng.integers(0, c, 10)
        inside = np.bincount(inside_labels, minlength=c).astype(float)
        total = left + inside + rng.integers(0, 5, c)
        bound = gini_lower_bound(left, inside, total)
        assert bound <= self._discrete_min(left, inside_labels, total) + 1e-9

    def test_empty_interval_equals_boundary_gini(self):
        left = np.array([3.0, 1.0])
        total = np.array([5.0, 5.0])
        bound = gini_lower_bound(left, np.zeros(2), total)
        assert bound == pytest.approx(float(weighted_gini(left, total - left)))

    def test_bound_never_negative(self):
        bound = gini_lower_bound(
            np.array([1.0, 1.0]), np.array([3.0, 3.0]), np.array([10.0, 10.0])
        )
        assert bound >= 0.0

    def test_vertex_search_fallback_many_classes(self):
        c = 20  # above the corner_limit: falls back to local search
        left = np.ones(c)
        inside = np.full(c, 2.0)
        total = left + inside + np.ones(c)
        bound = gini_lower_bound(left, inside, total, corner_limit=16)
        assert 0.0 <= bound <= 1.0

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            gini_lower_bound(np.zeros(2), np.zeros(3), np.zeros(2))
