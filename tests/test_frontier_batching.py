"""Level-synchronous frontier batching: the batched pipeline must produce
bit-identical trees to the per-node baseline under every exchange
strategy, method, residency mode and fault plan, while issuing a
per-level collective count that is constant in the frontier width."""

import numpy as np
import pytest

from repro.cluster.comm import CommMismatchError
from repro.cluster.errors import SpmdProgramError
from repro.cluster.faults import CrashAtCollective, CrashAtPhase, FaultPlan
from repro.clouds import CloudsConfig, validate_tree
from repro.core import DistributedDataset, PClouds, PCloudsConfig
from repro.data import generate_quest, quest_schema

from conftest import make_cluster


def fit(p, cols, labels, *, batching, exchange="attribute", method="sse",
        memory_limit=None, seed=0, q_root=80, q_switch=10, trace=False,
        faults=None, recover=False):
    schema = quest_schema()
    cluster = make_cluster(p, memory_limit=memory_limit, seed=seed)
    ds = DistributedDataset.create(cluster, schema, cols, labels, seed=seed + 1)
    cfg = PCloudsConfig(
        clouds=CloudsConfig(
            method=method, q_root=q_root, sample_size=600, min_node=8
        ),
        q_switch=q_switch,
        exchange=exchange,
        frontier_batching=batching,
    )
    return PClouds(cfg).fit(
        ds, seed=seed + 2, trace=trace, faults=faults, recover=recover
    )


@pytest.fixture(scope="module")
def data():
    return generate_quest(3000, function=2, seed=13, noise=0.03)


class TestMinlocMany:
    """The vectorized k-way min election behind the batched pipeline."""

    def test_matches_k_single_elections(self):
        cluster = make_cluster(4)

        def prog(ctx):
            values = [float((ctx.rank * 7 + s * 3) % 5) for s in range(6)]
            payloads = [f"r{ctx.rank}s{s}" for s in range(6)]
            singles = [
                ctx.comm.allreduce_minloc(values[s], payloads[s])
                for s in range(6)
            ]
            batched = ctx.comm.allreduce_minloc_many(values, payloads)
            return singles, batched

        for singles, batched in cluster.run(prog).results:
            assert batched == singles

    def test_tiebreaks_pick_smallest_key(self):
        cluster = make_cluster(4)

        def prog(ctx):
            # equal values everywhere: the tiebreak key must decide,
            # with None keys losing to present keys
            tb = None if ctx.rank == 0 else ("k", -ctx.rank)
            return ctx.comm.allreduce_minloc_many(
                [1.0, 1.0], [f"p{ctx.rank}", f"q{ctx.rank}"],
                tiebreaks=[tb, tb],
            )

        for out in cluster.run(prog).results:
            # smallest tuple key is ("k", -3) at rank 3
            assert out == [(1.0, "p3", 3), (1.0, "q3", 3)]

    def test_slot_count_mismatch_aborts(self):
        cluster = make_cluster(2)

        def prog(ctx):
            k = 2 if ctx.rank == 0 else 3
            with pytest.raises(CommMismatchError):
                ctx.comm.allreduce_minloc_many([0.0] * k, list(range(k)))
            raise SpmdProgramError("stop")  # the world is already aborted

        with pytest.raises(SpmdProgramError):
            cluster.run(prog)

    def test_misaligned_payloads_rejected(self):
        cluster = make_cluster(2)

        def prog(ctx):
            with pytest.raises(ValueError):
                ctx.comm.allreduce_minloc_many([0.0, 1.0], [None])
            return True

        assert all(cluster.run(prog).results)


class TestBitIdentity:
    @pytest.mark.parametrize("exchange", ["attribute", "distributed", "allreduce"])
    @pytest.mark.parametrize("method", ["sse", "ss"])
    def test_level_equals_per_node(self, data, exchange, method):
        cols, labels = data
        a = fit(4, cols, labels, batching="level", exchange=exchange,
                method=method)
        b = fit(4, cols, labels, batching="per_node", exchange=exchange,
                method=method)
        assert a.tree.to_dict() == b.tree.to_dict()
        validate_tree(a.tree)
        # same large/small decomposition and survival trace, fewer syncs
        assert a.n_large_nodes == b.n_large_nodes
        assert a.n_small_tasks == b.n_small_tasks
        assert a.survival_ratios == b.survival_ratios

    @pytest.mark.parametrize("seed", [1, 2])
    def test_level_equals_per_node_across_seeds(self, data, seed):
        cols, labels = data
        a = fit(4, cols, labels, batching="level", seed=seed)
        b = fit(4, cols, labels, batching="per_node", seed=seed)
        assert a.tree.to_dict() == b.tree.to_dict()

    def test_streaming_residency_identical(self, data):
        """The level pipeline holds every node of a level open at once;
        that must not change trees when fragments stream from disk."""
        cols, labels = data
        tight = fit(4, cols, labels, batching="level", memory_limit=16 * 1024)
        loose = fit(4, cols, labels, batching="per_node", memory_limit=None)
        assert tight.tree.to_dict() == loose.tree.to_dict()

    def test_single_rank(self, data):
        cols, labels = data
        a = fit(1, cols, labels, batching="level")
        b = fit(1, cols, labels, batching="per_node")
        assert a.tree.to_dict() == b.tree.to_dict()


class TestFaultRecovery:
    """PR 2's level-boundary checkpoint protocol must keep working under
    batching — batching is naturally level-synchronous."""

    def test_crash_at_collective_recovers_identical_tree(self, data):
        cols, labels = data
        clean = fit(4, cols, labels, batching="level")
        plan = FaultPlan.of("crash", CrashAtCollective(rank=1, nth=20))
        crashed = fit(4, cols, labels, batching="level", faults=plan,
                      recover=True)
        assert crashed.n_restarts >= 1
        assert crashed.tree.to_dict() == clean.tree.to_dict()
        assert crashed.elapsed > clean.elapsed  # lost attempt is charged

    def test_crash_at_partition_phase_recovers(self, data):
        cols, labels = data
        clean = fit(4, cols, labels, batching="per_node")
        plan = FaultPlan.of("crash", CrashAtPhase(rank=3, phase="partition"))
        crashed = fit(4, cols, labels, batching="level", faults=plan,
                      recover=True)
        assert crashed.n_restarts >= 1
        assert crashed.tree.to_dict() == clean.tree.to_dict()


class TestCollectiveCounts:
    def _per_level_counts(self, tracer):
        """Collective counts per frontier level, from rank-0's trace:
        each level opens with a "stats" phase, the large-node loop ends
        where "small_nodes" begins."""
        from repro.cluster.trace import _P2P_OPS

        phases = [e for e in tracer.events if e.kind == "phase"]
        starts = [e.t_start for e in phases if e.op == "stats"]
        tail = [e.t_start for e in phases if e.op == "small_nodes"]
        end = tail[0] if tail else max(e.t_end for e in tracer.events)
        windows = list(zip(starts, starts[1:] + [end]))
        return [
            sum(
                1
                for e in tracer.events
                if e.kind == "comm" and e.op not in _P2P_OPS
                and w0 <= e.t_start < w1
            )
            for w0, w1 in windows
        ]

    def test_per_level_count_constant_in_frontier_width(self, data):
        cols, labels = data
        res = fit(4, cols, labels, batching="level", trace=True)
        counts = self._per_level_counts(res.tracers[0])
        assert len(counts) >= 3
        # more large nodes than levels: some level carried several nodes,
        # yet every level paid the identical number of collectives
        assert res.n_large_nodes > len(counts)
        assert len(set(counts)) == 1
        # the full batched cycle: stats alltoall + boundary election +
        # alive allgather + member alltoall + interior election + one
        # left-count allreduce
        assert counts[0] == 6

    def test_per_node_pays_one_cycle_per_node(self, data):
        """The baseline opens a stats→alive→partition cycle per *node*,
        so its per-level collective count grows with the frontier width;
        the batched driver opens one cycle per *level*."""
        cols, labels = data
        per_node = fit(4, cols, labels, batching="per_node", trace=True)
        level = fit(4, cols, labels, batching="level", trace=True)

        def n_cycles(res):
            return sum(
                1
                for e in res.tracers[0].events
                if e.kind == "phase" and e.op == "stats"
            )

        assert n_cycles(per_node) == per_node.n_large_nodes
        assert n_cycles(level) < level.n_large_nodes
        assert per_node.n_large_nodes == level.n_large_nodes

    def test_batched_issues_fewer_collectives(self, data):
        cols, labels = data
        for exchange in ("attribute", "distributed", "allreduce"):
            a = fit(4, cols, labels, batching="level", exchange=exchange)
            b = fit(4, cols, labels, batching="per_node", exchange=exchange)
            ca = a.run.stats.per_rank[0].collectives
            cb = b.run.stats.per_rank[0].collectives
            assert ca < cb, (exchange, ca, cb)
            assert a.elapsed < b.elapsed, exchange

    def test_schedules_match_across_ranks(self, data):
        from repro.cluster.trace import assert_schedules_match

        cols, labels = data
        res = fit(4, cols, labels, batching="level", trace=True)
        assert_schedules_match(res.tracers)


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            PCloudsConfig(frontier_batching="node")
        assert PCloudsConfig().frontier_batching == "level"
        assert PCloudsConfig(frontier_batching="per_node").frontier_batching == (
            "per_node"
        )


class TestVectorizedSatellites:
    """The loop-to-vector rewrites that rode along must keep exact
    semantics (ties included)."""

    def test_greedy_subset_matches_scalar_scan(self):
        from repro.clouds.gini import _greedy_subset, weighted_gini

        def scalar(counts):
            present = list(np.flatnonzero(counts.sum(axis=1) > 0))
            all_counts = counts.sum(axis=0, dtype=np.float64)
            left, left_counts = set(), np.zeros_like(all_counts)
            best = (float("inf"), frozenset())
            while len(left) < len(present) - 1:
                move = None
                for v in present:
                    if v in left:
                        continue
                    cand = left_counts + counts[v]
                    g = float(weighted_gini(cand, all_counts - cand))
                    if move is None or g < move[0]:
                        move = (g, v)
                if move is None:
                    break
                g, v = move
                left.add(v)
                left_counts = left_counts + counts[v]
                if g < best[0]:
                    best = (g, frozenset(left))
                else:
                    break
            return best

        rng = np.random.default_rng(3)
        for _ in range(300):
            counts = rng.integers(
                0, 8, size=(int(rng.integers(1, 14)), int(rng.integers(2, 5)))
            ).astype(np.float64)
            assert _greedy_subset(counts) == scalar(counts)

    def test_apportion_matches_repeated_max(self):
        from repro.core.pclouds import apportion_sample

        def repeated_max(sample_size, counts):
            total = sum(counts)
            if total <= 0:
                return [0] * len(counts)
            want = min(int(sample_size), total)
            quotas = [want * c / total for c in counts]
            out = [min(int(q), c) for q, c in zip(quotas, counts)]
            while sum(out) < want:
                r = max(
                    (r for r in range(len(counts)) if out[r] < counts[r]),
                    key=lambda r: (quotas[r] - out[r], -r),
                )
                out[r] += 1
            return out

        import random

        rng = random.Random(7)
        for _ in range(500):
            counts = [rng.randint(0, 30) for _ in range(rng.randint(1, 10))]
            want = rng.randint(0, 80)
            assert apportion_sample(want, counts) == repeated_max(want, counts)
