"""Buffer pool: LRU caching, pinning, overlapped prefetch, integrity.

The pool must never change *what* is computed — only when time is
charged — so the heart of this file is a bit-identity matrix across pool
modes, methods, exchanges, seeds and backends, plus the acceptance
scenario: re-read I/O collapses when a streaming node's columns fit the
cache, and fault-injected corruption is still caught through the cache.
"""

import numpy as np
import pytest

from repro.bench.harness import ExperimentConfig, build_cluster, run_pclouds
from repro.cluster import Cluster, standard_plans
from repro.cluster.clock import SimClock
from repro.cluster.diskmodel import DiskModel
from repro.cluster.stats import RankStats
from repro.clouds import CloudsConfig
from repro.clouds.sse import AliveInterval, member_mask, stacked_member_masks
from repro.core import DistributedDataset, PClouds, PCloudsConfig
from repro.data import generate_quest, quest_schema
from repro.ooc import (
    BufferPool,
    ChunkCorruptionError,
    ColumnSet,
    FileBackend,
    InMemoryBackend,
    LocalDisk,
    MemoryBudget,
    OocArray,
    default_batch_rows,
)


def make_disk(pool_bytes=None, prefetch=False, backend=None, **model_kwargs):
    disk = LocalDisk(
        DiskModel(**model_kwargs), SimClock(), RankStats(), backend
    )
    if pool_bytes is not None:
        disk.attach_pool(
            BufferPool(MemoryBudget(limit=pool_bytes), prefetch=prefetch)
        )
    return disk


def chunked_array(disk, nchunks=4, rows=512, seed=0):
    rng = np.random.default_rng(seed)
    arr = OocArray(disk, np.float64, name="x")
    chunks = [rng.standard_normal(rows) for _ in range(nchunks)]
    for c in chunks:
        arr.append(c)
    return arr, np.concatenate(chunks)


class TestPoolUnit:
    def test_second_scan_hits_and_skips_disk(self):
        disk = make_disk(pool_bytes=1 << 20)
        arr, ref = chunked_array(disk)
        np.testing.assert_array_equal(np.concatenate(list(arr.iter_chunks())), ref)
        bytes_after_first = disk.stats.bytes_read
        np.testing.assert_array_equal(np.concatenate(list(arr.iter_chunks())), ref)
        assert disk.stats.bytes_read == bytes_after_first
        assert disk.pool.stats.hits == arr.nchunks
        assert disk.pool.stats.misses == arr.nchunks

    def test_hit_charges_memory_copy_not_io(self):
        disk = make_disk(pool_bytes=1 << 20)
        arr, _ = chunked_array(disk, nchunks=1)
        list(arr.iter_chunks())
        t0, io0 = disk.clock.now, disk.stats.io_time
        list(arr.iter_chunks())
        assert disk.stats.io_time == io0  # no disk traffic
        copy_dt = disk.clock.now - t0
        full_dt = disk.model.access(arr.nbytes, sequential=True)
        assert 0 < copy_dt < full_dt / 10

    def test_eviction_is_lru_and_budget_bounded(self):
        disk = make_disk(pool_bytes=3 * 512 * 8)  # room for 3 of 4 chunks
        arr, _ = chunked_array(disk, nchunks=4)
        list(arr.iter_chunks())
        pool = disk.pool
        assert pool.stats.evictions == 1
        assert pool.budget.reserved <= pool.capacity
        assert pool.budget.high_water <= pool.capacity
        # chunk 0 was the LRU victim: re-reading it misses, 1..3 hit
        handles = arr.chunk_handles
        assert handles[0] not in pool._entries
        assert all(h in pool._entries for h in handles[1:])

    def test_pinned_entries_survive_pressure(self):
        disk = make_disk(pool_bytes=2 * 512 * 8)
        arr, _ = chunked_array(disk, nchunks=4)
        pool = disk.pool
        pool.pin(arr.chunk_handles[:2])
        list(arr.iter_chunks())
        assert all(h in pool._entries for h in arr.chunk_handles[:2])
        # nothing evictable once the pinned pair fills the pool
        assert pool.stats.bypasses >= 1

    def test_oversized_chunk_bypasses(self):
        disk = make_disk(pool_bytes=100)
        arr, ref = chunked_array(disk, nchunks=2)
        np.testing.assert_array_equal(np.concatenate(list(arr.iter_chunks())), ref)
        assert disk.pool.stats.bypasses == 2
        assert disk.pool.budget.reserved == 0

    def test_read_all_serves_hits_without_admitting_misses(self):
        disk = make_disk(pool_bytes=1 << 20)
        arr, ref = chunked_array(disk)
        list(arr.iter_chunks())  # populate
        bytes0 = disk.stats.bytes_read
        np.testing.assert_array_equal(arr.read_all(), ref)
        assert disk.stats.bytes_read == bytes0  # all hits
        cold = OocArray(disk, np.float64, name="cold")
        cold.append(np.arange(64, dtype=np.float64))
        arr2 = cold.read_all()
        assert cold.chunk_handles[0] not in disk.pool._entries  # not admitted
        np.testing.assert_array_equal(arr2, np.arange(64))

    def test_cached_payload_is_read_only(self):
        disk = make_disk(pool_bytes=1 << 20)
        arr, _ = chunked_array(disk, nchunks=1)
        chunk = next(iter(arr.iter_chunks()))
        with pytest.raises(ValueError):
            chunk[0] = 1.0

    def test_delete_invalidates_and_unpins(self):
        disk = make_disk(pool_bytes=1 << 20)
        arr, _ = chunked_array(disk)
        pool = disk.pool
        pool.pin(arr.chunk_handles)
        list(arr.iter_chunks())
        assert pool.budget.reserved > 0
        arr.delete()
        assert pool.budget.reserved == 0
        assert not pool._entries and not pool._pinned
        assert pool.stats.invalidations == 4

    def test_overwrite_invalidates_and_crc_catches_bit_flip(self):
        # the acceptance scenario: cache a chunk, corrupt it behind the
        # pool's back, and the next read must still raise
        disk = make_disk(pool_bytes=1 << 20)
        arr, _ = chunked_array(disk, nchunks=1)
        list(arr.iter_chunks())  # cached
        handle = arr.chunk_handles[0]
        stored = disk.backend.get(handle)
        raw = bytearray(stored.tobytes())
        raw[3] ^= 1 << 5
        disk.backend.overwrite(
            handle, np.frombuffer(bytes(raw), dtype=stored.dtype)
        )
        assert handle not in disk.pool._entries  # invalidated
        with pytest.raises(ChunkCorruptionError):
            list(arr.iter_chunks())

    def test_pool_requires_bounded_budget(self):
        with pytest.raises(ValueError):
            BufferPool(MemoryBudget(limit=None))


class TestPrefetch:
    def test_prefetch_hides_compute_exactly(self):
        disk = make_disk(pool_bytes=1 << 22, prefetch=True)
        base = make_disk(pool_bytes=1 << 22, prefetch=False)
        compute = 0.004
        elapsed = {}
        for d in (base, disk):
            arr, _ = chunked_array(d, nchunks=16)
            t0 = d.clock.now
            for _ in arr.iter_chunks():
                d.clock.advance(compute)
            elapsed[d] = d.clock.now - t0
        saved = disk.stats.io_overlap_saved
        assert saved > 0
        assert elapsed[base] - elapsed[disk] == pytest.approx(saved)
        assert disk.pool.stats.prefetch_issued == 15
        assert disk.pool.stats.prefetch_useful == 15

    def test_demand_io_preempts_prefetch(self):
        # a second hot file read between issue and consume must not be
        # delayed by the in-flight prefetch, and the prefetch must not
        # claim the demand read's duration as overlap savings
        disk = make_disk(pool_bytes=1 << 22, prefetch=True)
        arr, _ = chunked_array(disk, nchunks=8, seed=1)
        other, _ = chunked_array(disk, nchunks=8, seed=2)
        for _ in arr.iter_chunks():
            pass  # no compute at all: nothing to hide behind
        assert disk.stats.io_overlap_saved == pytest.approx(0.0)
        t0 = disk.clock.now
        sync_dt = disk.model.access(512 * 8, sequential=True)
        it = iter(arr.iter_chunks())  # all hits now; issues nothing
        next(it)
        disk.charge_read(512 * 8)
        assert disk.clock.now - t0 >= sync_dt  # not queued behind prefetch

    def test_reset_drops_inflight(self):
        disk = make_disk(pool_bytes=1 << 22, prefetch=True)
        arr, _ = chunked_array(disk, nchunks=4)
        it = iter(arr.iter_chunks())
        next(it)  # chunk 0 read, chunk 1 in flight
        disk.reset_io_queue()
        assert disk.io_front == 0.0
        assert disk.pool.stats.prefetch_wasted == 1
        assert disk.pool.budget.reserved == 512 * 8  # only chunk 0 resident


class TestStackedMasks:
    @pytest.mark.parametrize("with_nan", [False, True])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_member_mask(self, seed, with_nan):
        rng = np.random.default_rng(seed)
        values = rng.normal(size=500) * 10
        if with_nan:
            values[rng.integers(0, 500, size=20)] = np.nan
        edges = np.sort(rng.normal(size=6) * 10)
        bounds = [-np.inf, *edges, np.inf]
        zeros = np.zeros(2)
        ivs = [
            AliveInterval("a", i, float(bounds[i]), float(bounds[i + 1]),
                          zeros, 1, 0.0)
            for i in range(len(bounds) - 1)
        ]
        # alive subsets, not just the full partition
        for keep in ([0, 2, 5], [1], list(range(len(ivs)))):
            sub = [ivs[i] for i in keep]
            got = stacked_member_masks(values, sub)
            for iv, mask in zip(sub, got):
                np.testing.assert_array_equal(mask, member_mask(values, iv))

    def test_empty_values(self):
        iv = AliveInterval("a", 0, 0.0, 1.0, np.zeros(2), 1, 0.0)
        (mask,) = stacked_member_masks(np.empty(0), [iv])
        assert mask.shape == (0,)


class TestDefaultBatchRows:
    def test_scales_with_block_and_caps_to_pool(self):
        schema = quest_schema()
        plain = make_disk()
        assert default_batch_rows(plain, schema) == max(
            1, 4 * plain.model.block // schema.row_nbytes()
        )
        small_pool = make_disk(pool_bytes=plain.model.block * 2)
        assert (
            default_batch_rows(small_pool, schema)
            <= default_batch_rows(plain, schema)
        )
        assert default_batch_rows(small_pool, schema) >= 1

    def test_from_arrays_uses_derived_default(self):
        schema = quest_schema()
        disk = make_disk(pool_bytes=1 << 20)
        cols, labels = generate_quest(1000, function=2, seed=0)
        cs = ColumnSet.from_arrays(disk, schema, cols, labels, name="n")
        step = default_batch_rows(disk, schema)
        assert cs.labels_file.nchunks == -(-1000 // step)


def fit_tree(mode, *, method="sse", exchange="attribute", seed=0,
             backend_factory=None, n_records=1500, n_ranks=2,
             memory_ratio=0.25, faults=None):
    schema = quest_schema()
    cols, labels = generate_quest(n_records, function=2, seed=seed, noise=0.05)
    limit = max(4096, int(n_records * schema.row_nbytes() * memory_ratio))
    cluster = Cluster(
        n_ranks,
        memory_limit=limit,
        seed=seed,
        buffer_pool=mode,
        pool_bytes=4 * limit,
        backend_factory=backend_factory,
    )
    dataset = DistributedDataset.create(
        cluster, schema, cols, labels, seed=seed + 1
    )
    pc = PClouds(
        PCloudsConfig(
            clouds=CloudsConfig(method=method, q_root=60, sample_size=400),
            exchange=exchange,
        )
    )
    res = pc.fit(
        dataset, seed=seed + 2, faults=faults, recover=faults is not None
    )
    return res, dataset


class TestBitIdentity:
    @pytest.mark.parametrize("method", ["ss", "sse"])
    @pytest.mark.parametrize("exchange", ["attribute", "distributed"])
    @pytest.mark.parametrize("seed", [0, 7])
    def test_trees_identical_across_pool_modes(self, method, exchange, seed):
        trees = {
            mode: fit_tree(mode, method=method, exchange=exchange, seed=seed)[
                0
            ].tree.to_dict()
            for mode in Cluster.BUFFER_POOL_MODES
        }
        assert trees["off"] == trees["lru"] == trees["lru+prefetch"]

    def test_file_backend_identical_to_memory(self, tmp_path):
        counter = [0]

        def factory():
            counter[0] += 1
            return FileBackend(tmp_path / f"rank{counter[0]}")

        mem, _ = fit_tree("lru+prefetch")
        fil, _ = fit_tree("lru+prefetch", backend_factory=factory)
        assert mem.tree.to_dict() == fil.tree.to_dict()

    @pytest.mark.parametrize("plan_index", [0, 2])
    def test_recovery_with_pool_matches_fault_free(self, plan_index):
        plan = standard_plans(2)[plan_index]
        base, _ = fit_tree("lru+prefetch")
        faulty, _ = fit_tree("lru+prefetch", faults=plan)
        assert faulty.tree.to_dict() == base.tree.to_dict()

    def test_corruption_through_cache_recovers(self):
        # bit flip lands on a stored chunk that the pool may be caching;
        # the invalidating wrapper forces a re-read, CRC fires, recovery
        # still converges to the fault-free tree
        plan = next(
            p for p in standard_plans(2) if p.name == "chunk-corruption"
        )
        base, _ = fit_tree("lru")
        faulty, res = fit_tree("lru", faults=plan)
        assert faulty.tree.to_dict() == base.tree.to_dict()


class TestAcceptance:
    def test_streaming_node_rereads_collapse(self):
        """One streaming SSE node whose columns fit the pool: the three
        passes of a level (stats, alive members, partition) must read at
        least 2x fewer bytes with the pool on — the re-read passes hit
        the cache instead of the disk."""
        from repro.clouds.splits import NUMERIC_SPLIT, Split
        from repro.core.access import StreamingAccess, open_node

        schema = quest_schema()
        cols, labels = generate_quest(1200, function=2, seed=3, noise=0.05)
        node_bytes = 1200 * schema.row_nbytes()
        reads = {}
        for mode in ("off", "lru"):
            cluster = Cluster(
                1,
                memory_limit=node_bytes // 4,  # forces streaming
                buffer_pool=mode,
                pool_bytes=node_bytes,  # ... but the node fits the pool
            )
            ctx = cluster.make_contexts()[0]
            cs = ColumnSet.from_arrays(ctx.disk, schema, cols, labels, name="n")
            base = ctx.stats.bytes_read
            access = open_node(ctx, cs, schema)
            assert isinstance(access, StreamingAccess)
            boundaries = {
                a.name: np.quantile(cols[a.name], [0.25, 0.5, 0.75])
                for a in schema.numeric
            }
            access.stats_pass(boundaries)
            first = schema.numeric[0].name
            lo, hi = boundaries[first][0], boundaries[first][1]
            access.alive_members(
                [AliveInterval(first, 1, float(lo), float(hi),
                               np.zeros(schema.n_classes), 1, 0.0)]
            )
            access.partition(
                Split(attribute=first, kind=NUMERIC_SPLIT, gini=0.0,
                      threshold=float(hi))
            )
            access.release()
            reads[mode] = ctx.stats.bytes_read - base
            if mode == "lru":
                assert ctx.pool_budget.high_water <= ctx.pool_budget.limit
        assert reads["off"] >= 2 * reads["lru"]

    def test_full_fit_reads_strictly_fewer_bytes(self):
        reads = {}
        for mode in ("off", "lru"):
            res, ds = fit_tree(mode, n_records=3000, memory_ratio=0.2)
            reads[mode] = sum(c.stats.bytes_read for c in ds.contexts)
            if mode == "lru":
                assert all(
                    c.pool_budget.high_water <= c.pool_budget.limit
                    for c in ds.contexts
                )
        assert reads["off"] > 1.5 * reads["lru"]

    def test_harness_default_pool_on_and_health_sees_it(self):
        cfg = ExperimentConfig(
            n_records=2000, n_ranks=2, scale=200.0, seed=0, memory_ratio=0.25
        )
        assert cfg.buffer_pool == "lru+prefetch"
        res = run_pclouds(cfg, metrics=True)
        snap = res.metrics_snapshot()
        names = {
            m["name"] if isinstance(m, dict) else m for m in snap
        } if isinstance(snap, list) else set(snap)
        flat = str(snap)
        assert "repro_ooc_cache_hits_total" in flat
        assert "repro_ooc_prefetch_total" in flat

    def test_pool_off_cluster_has_no_pool(self):
        cluster = Cluster(2)
        for ctx in cluster.make_contexts():
            assert ctx.disk.pool is None
            assert ctx.pool_budget is None

    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError):
            Cluster(2, buffer_pool="mru")
