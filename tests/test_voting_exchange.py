"""Top-k voting exchange (PV-Tree style): exactness when every attribute
is nominated, bounded approximation when k < f, deterministic elections,
checkpoint/restart election replay, and O(f) → O(k) payload accounting."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.faults import CrashAtCollective, FaultPlan
from repro.clouds import CloudsConfig, accuracy, validate_tree
from repro.clouds.builder import node_boundaries
from repro.clouds.intervals import class_counts
from repro.clouds.nodestats import stats_from_arrays
from repro.core import EXCHANGE_STRATEGIES, DistributedDataset, PClouds, PCloudsConfig
from repro.core.stats_exchange import _elect_candidates, exchange_node_stats
from repro.data import generate_quest, make_schema, quest_schema

from conftest import make_cluster
from test_property_exchange import SCHEMA, _random_fragments


def fit(p, cols, labels, *, exchange, vote_top_k=8, method="sse",
        batching="level", seed=0, trace=False, metrics=False, faults=None,
        recover=False, observers=None):
    schema = quest_schema()
    cluster = make_cluster(p, seed=seed)
    ds = DistributedDataset.create(cluster, schema, cols, labels, seed=seed + 1)
    if observers is not None:
        for ctx, obs in zip(ds.contexts, observers):
            ctx.observers.append(obs)
    cfg = PCloudsConfig(
        clouds=CloudsConfig(
            method=method, q_root=80, sample_size=600, min_node=8
        ),
        exchange=exchange,
        frontier_batching=batching,
        vote_top_k=vote_top_k,
    )
    return PClouds(cfg).fit(
        ds, seed=seed + 2, trace=trace, metrics=metrics, faults=faults,
        recover=recover,
    )


@pytest.fixture(scope="module")
def data():
    return generate_quest(3000, function=2, seed=13, noise=0.03)


class TestExactWhenKCoversSchema:
    """k >= f means every rank nominates every attribute, all are
    elected, and the restricted exchange degenerates to the exact
    attribute-partitioned one — same splits, same alive sets, bit for
    bit."""

    @given(
        st.integers(1, 4),
        st.integers(40, 300),
        st.integers(3, 20),
        st.integers(0, 10_000),
    )
    @settings(max_examples=15, deadline=None)
    def test_node_exchange_matches_attribute(self, p, n, q, seed):
        rng = np.random.default_rng(seed)
        cols, labels, frags = _random_fragments(rng, n, p)
        bounds = node_boundaries(SCHEMA, cols, q)
        total = class_counts(labels, 2)

        def prog_for(exchange, top_k):
            config = PCloudsConfig(
                clouds=CloudsConfig(method="sse", q_root=max(q, 2)),
                exchange=exchange,
                vote_top_k=top_k,
            )

            def prog(ctx):
                fcols, flabels = frags[ctx.rank]
                local = stats_from_arrays(SCHEMA, fcols, flabels, bounds)
                split, alive = exchange_node_stats(
                    ctx, SCHEMA, local, total, config
                )
                key = None
                if split is not None:
                    key = (split.attribute, split.kind, round(split.gini, 12))
                return key, sorted(
                    (iv.attribute, iv.index, iv.count) for iv in alive
                )

            return prog

        # k = f = 3 attributes in SCHEMA: voting must be exact
        exact = make_cluster(p).run(prog_for("attribute", 3)).results
        voted = make_cluster(p).run(
            prog_for("voting", len(SCHEMA.attributes))
        ).results
        assert voted == exact

    @pytest.mark.parametrize("method", ["ss", "sse"])
    @pytest.mark.parametrize("p", [2, 4])
    def test_full_fit_bit_identical(self, data, method, p):
        cols, labels = data
        f = len(quest_schema().attributes)
        exact = fit(p, cols, labels, exchange="attribute", method=method)
        voted = fit(p, cols, labels, exchange="voting", vote_top_k=f,
                    method=method)
        assert voted.tree.to_dict() == exact.tree.to_dict()
        validate_tree(voted.tree)

    @pytest.mark.parametrize("seed", [1, 2])
    def test_full_fit_bit_identical_across_seeds(self, data, seed):
        cols, labels = data
        exact = fit(4, cols, labels, exchange="attribute", seed=seed)
        voted = fit(4, cols, labels, exchange="voting", vote_top_k=9,
                    seed=seed)
        assert voted.tree.to_dict() == exact.tree.to_dict()


class TestApproximation:
    def test_level_equals_per_node(self, data):
        """The batched level pipeline must replay the exact same
        elections as the per-node baseline even when k < f."""
        cols, labels = data
        a = fit(4, cols, labels, exchange="voting", vote_top_k=2,
                batching="level")
        b = fit(4, cols, labels, exchange="voting", vote_top_k=2,
                batching="per_node")
        assert a.tree.to_dict() == b.tree.to_dict()

    def test_small_k_accuracy_stays_close(self, data):
        """Restricting splits to elected candidates loses little: the
        locally best attributes are usually globally best too."""
        cols, labels = data
        exact = fit(4, cols, labels, exchange="attribute")
        voted = fit(4, cols, labels, exchange="voting", vote_top_k=2)
        acc_exact = accuracy(labels, exact.tree.predict(cols))
        acc_voted = accuracy(labels, voted.tree.predict(cols))
        assert acc_voted >= acc_exact - 0.02
        validate_tree(voted.tree)


class TestElection:
    def test_majority_wins(self):
        ballots = [
            np.array([[0.0, 0.1], [1.0, 0.2]]),
            np.array([[0.0, 0.3], [2.0, 0.2]]),
            np.array([[0.0, 0.2], [3.0, 0.2]]),
        ]
        # 2k = 2 winners: attribute 0 has 3 votes, the rest tie at one
        # vote each — best gini 0.2 is shared, index breaks the tie
        assert _elect_candidates(ballots, n_attrs=5, top_k=1) == [0, 1]

    def test_tie_broken_by_best_gini_then_index(self):
        ballots = [
            np.array([[4.0, 0.5], [2.0, 0.1]]),
            np.array([[3.0, 0.1], [1.0, 0.5]]),
        ]
        # all four get one vote; gini ranks 2 and 3 first, then 1 vs 4
        # tie at 0.5 and index 1 wins the third seat
        assert _elect_candidates(ballots, n_attrs=6, top_k=1) == [2, 3]
        assert _elect_candidates(ballots, n_attrs=6, top_k=2) == [1, 2, 3, 4]

    def test_winner_count_capped_by_schema(self):
        ballots = [np.array([[float(i), 0.1 * i] for i in range(4)])]
        assert _elect_candidates(ballots, n_attrs=4, top_k=8) == [0, 1, 2, 3]

    def test_deterministic_under_ballot_order(self):
        rng = np.random.default_rng(5)
        ballots = [
            np.array([[float(a), float(g)] for a, g in
                      zip(rng.choice(12, 4, replace=False),
                          rng.random(4).round(3))])
            for _ in range(6)
        ]
        expect = _elect_candidates(ballots, n_attrs=12, top_k=4)
        for _ in range(10):
            rng.shuffle(ballots)
            assert _elect_candidates(ballots, n_attrs=12, top_k=4) == expect


class _ElectionLog:
    """Observer recording every elected candidate set, reset on restart
    so the log holds only the successful attempt's elections."""

    def __init__(self):
        self.elections = []

    def begin_attempt(self, _attempt):
        self.elections = []

    def on_vote_election(self, elected_sets):
        self.elections.append(elected_sets)


class TestFaultRecovery:
    def test_crash_recovers_identical_tree_and_elections(self, data):
        cols, labels = data
        clean_logs = [_ElectionLog() for _ in range(4)]
        clean = fit(4, cols, labels, exchange="voting", vote_top_k=2,
                    observers=clean_logs)

        crash_logs = [_ElectionLog() for _ in range(4)]
        plan = FaultPlan.of("crash", CrashAtCollective(rank=1, nth=20))
        crashed = fit(4, cols, labels, exchange="voting", vote_top_k=2,
                      faults=plan, recover=True, observers=crash_logs)

        assert crashed.n_restarts >= 1
        assert crashed.tree.to_dict() == clean.tree.to_dict()
        # the restart resumes from the level checkpoint, so the
        # surviving attempt's elections (the log resets per attempt) are
        # the clean run's tail — every replayed level elected the
        # identical candidate sets
        assert clean_logs[0].elections  # the hook fired at all
        for clean_log, crash_log in zip(clean_logs, crash_logs):
            n = len(crash_log.elections)
            assert 0 < n <= len(clean_log.elections)
            assert crash_log.elections == clean_log.elections[-n:]


class TestObservability:
    def test_trace_carries_vote_events_and_rollup(self, data):
        from repro.cluster.trace import assert_schedules_match
        from repro.cluster.tracereport import TraceReport

        cols, labels = data
        res = fit(4, cols, labels, exchange="voting", vote_top_k=2,
                  trace=True)
        assert_schedules_match(res.tracers)
        assert any(
            e.op == "vote" for e in res.tracers[0].comm_events()
        )
        report = TraceReport(res.tracers)
        assert report.exchange_strategy == "voting"
        rollup = report.exchange_rollup()
        assert rollup and all(r.count > 0 for r in rollup)
        assert report.exchange_bytes() == sum(r.sent for r in rollup)
        assert "strategy: voting" in report.render()

    def test_payload_metrics_populate(self, data):
        cols, labels = data
        res = fit(2, cols, labels, exchange="voting", vote_top_k=2,
                  metrics=True)
        families = {
            fam["name"]: fam for fam in res.metrics_snapshot()["metrics"]
        }
        payload = families["repro_exchange_payload_bytes_total"]["samples"]
        assert all(
            s["labels"]["strategy"] == "voting" for s in payload
        )
        assert sum(s["value"] for s in payload) > 0
        elected = families["repro_exchange_elected_attributes_total"]
        assert sum(s["value"] for s in elected["samples"]) > 0

    def test_voting_moves_fewer_stats_bytes(self, data):
        """The point of the strategy, on the real driver: stats-phase
        traffic shrinks vs the exact attribute exchange (quest has only
        f=9 attributes; bench_voting.py measures the f=64 regime)."""
        from repro.cluster.tracereport import TraceReport

        cols, labels = data
        exact = fit(4, cols, labels, exchange="attribute", trace=True)
        voted = fit(4, cols, labels, exchange="voting", vote_top_k=2,
                    trace=True)
        assert (
            TraceReport(voted.tracers).exchange_bytes()
            < TraceReport(exact.tracers).exchange_bytes()
        )


class TestConfigAndCost:
    def test_exchange_validation_enumerates_strategies(self):
        with pytest.raises(ValueError) as err:
            PCloudsConfig(exchange="gossip")
        for s in EXCHANGE_STRATEGIES:
            assert repr(s) in str(err.value)

    def test_vote_top_k_validation(self):
        with pytest.raises(ValueError, match="vote_top_k"):
            PCloudsConfig(exchange="voting", vote_top_k=0)
        assert PCloudsConfig(exchange="voting").vote_top_k == 8

    def test_stats_bytes_model(self):
        from repro.dnc.cost import exchange_stats_bytes

        kw = dict(q=100, c=2, f=64, p=8)
        voting = exchange_stats_bytes("voting", top_k=8, **kw)
        attribute = exchange_stats_bytes("attribute", **kw)
        allreduce = exchange_stats_bytes("allreduce", **kw)
        assert voting < attribute / 2
        assert attribute < allreduce
        # k >= f converges to the attribute payload plus the ballots
        full = exchange_stats_bytes("voting", top_k=64, **kw)
        assert full > attribute
        with pytest.raises(ValueError, match="top_k"):
            exchange_stats_bytes("voting", **kw)
        with pytest.raises(ValueError, match="unknown"):
            exchange_stats_bytes("gossip", **kw)

    def test_exchange_cost_model(self):
        from repro.cluster.network import NetworkModel
        from repro.dnc.cost import exchange_cost

        net = NetworkModel(alpha=40e-6, beta=1.0 / 35e6)
        kw = dict(q=500, c=2, f=64, p=8)
        voting = exchange_cost(net, "voting", top_k=8, **kw)
        attribute = exchange_cost(net, "attribute", **kw)
        assert voting < attribute
        with pytest.raises(ValueError):
            exchange_cost(net, "voting", **kw)
        with pytest.raises(ValueError):
            exchange_cost(net, "bad", **kw)


class TestVoteCollective:
    def test_vote_is_an_allgather_on_the_wire(self):
        """Same data movement as allgather, its own opname for
        attribution."""
        cluster = make_cluster(3)

        def prog(ctx):
            out = ctx.comm.vote(np.array([[float(ctx.rank), 0.5]]))
            return [np.asarray(x).tolist() for x in out]

        for got in cluster.run(prog).results:
            assert got == [[[0.0, 0.5]], [[1.0, 0.5]], [[2.0, 0.5]]]

    def test_vote_charges_bytes(self):
        cluster = make_cluster(2)

        def prog(ctx):
            before = ctx.stats.bytes_sent
            ctx.comm.vote(np.zeros((4, 2)))
            return ctx.stats.bytes_sent - before

        assert all(n > 0 for n in cluster.run(prog).results)


def test_make_schema_mixed_voting_exact(data):
    """Categorical attributes ride the same vote: k >= f exactness is
    schema-shape independent."""
    schema = make_schema(["x", "y"], {"c": 3}, n_classes=2)
    rng = np.random.default_rng(0)
    cols, labels, _ = _random_fragments(rng, 400, 1)

    def one(exchange, top_k):
        cluster = make_cluster(3, seed=4)
        ds = DistributedDataset.create(cluster, schema, cols, labels, seed=5)
        cfg = PCloudsConfig(
            clouds=CloudsConfig(method="ss", q_root=40, min_node=8),
            exchange=exchange,
            vote_top_k=top_k,
        )
        return PClouds(cfg).fit(ds, seed=6).tree.to_dict()

    assert one("voting", 3) == one("attribute", 3)
