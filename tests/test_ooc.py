"""Out-of-core storage: backends, chunked files, column sets, budgets."""

import numpy as np
import pytest

from repro.cluster.clock import SimClock
from repro.cluster.diskmodel import DiskModel
from repro.cluster.stats import RankStats
from repro.data import quest_schema
from repro.ooc import (
    ColumnSet,
    FileBackend,
    InMemoryBackend,
    LocalDisk,
    MemoryBudget,
    MemoryExceededError,
    OocArray,
)


def make_disk(**model_kwargs) -> LocalDisk:
    return LocalDisk(
        DiskModel(**model_kwargs), SimClock(), RankStats(), InMemoryBackend()
    )


class TestBackends:
    @pytest.mark.parametrize("backend_cls", [InMemoryBackend, FileBackend])
    def test_put_get_roundtrip(self, backend_cls, tmp_path):
        backend = (
            backend_cls(str(tmp_path)) if backend_cls is FileBackend else backend_cls()
        )
        arr = np.arange(17, dtype=np.float64)
        h = backend.put(arr)
        np.testing.assert_array_equal(backend.get(h), arr)
        backend.close()

    def test_in_memory_copies_on_put(self):
        b = InMemoryBackend()
        arr = np.zeros(4)
        h = b.put(arr)
        arr[0] = 99.0
        assert b.get(h)[0] == 0.0

    def test_in_memory_get_is_read_only(self):
        # get() hands out a zero-copy view; the read-only flag is what
        # protects the stored payload (and the CRC taken over it)
        b = InMemoryBackend()
        h = b.put(np.zeros(4))
        out = b.get(h)
        with pytest.raises(ValueError):
            out[0] = 5.0
        assert b.get(h)[0] == 0.0

    def test_delete_frees(self):
        b = InMemoryBackend()
        h = b.put(np.zeros(100))
        assert b.resident_bytes() == 800
        b.delete(h)
        assert b.resident_bytes() == 0

    def test_file_backend_spools_to_disk(self, tmp_path):
        b = FileBackend(str(tmp_path))
        h = b.put(np.arange(3))
        assert str(h).endswith(".npy")
        b.delete(h)
        b.delete(h)  # idempotent

    def test_file_backend_owns_temp_root(self):
        b = FileBackend()
        import os

        root = b.root
        assert os.path.isdir(root)
        b.close()
        assert not os.path.isdir(root)


class TestLocalDisk:
    def test_read_write_charge_clock_and_stats(self):
        disk = make_disk(seek=0.01, bandwidth=1e6)
        disk.charge_read(1_000_000)
        disk.charge_write(500_000)
        assert disk.clock.now == pytest.approx(0.01 + 1.0 + 0.01 + 0.5)
        assert disk.stats.bytes_read == 1_000_000
        assert disk.stats.bytes_written == 500_000
        assert disk.stats.io_calls == 2
        assert disk.stats.io_time == pytest.approx(disk.clock.now)


class TestOocArray:
    def test_append_and_read_all(self):
        f = OocArray(make_disk(), np.float64)
        f.append(np.arange(5))
        f.append(np.arange(5, 8))
        np.testing.assert_array_equal(f.read_all(), np.arange(8, dtype=np.float64))
        assert len(f) == 8
        assert f.nchunks == 2
        assert f.nbytes == 64

    def test_iter_chunks_preserves_order(self):
        f = OocArray(make_disk(), np.int32)
        for i in range(4):
            f.append(np.full(3, i, dtype=np.int32))
        chunks = list(f.iter_chunks())
        assert [c[0] for c in chunks] == [0, 1, 2, 3]

    def test_empty_append_is_free(self):
        f = OocArray(make_disk(), np.float64)
        f.append(np.empty(0))
        assert f.nchunks == 0
        assert f.disk.stats.io_calls == 0

    def test_read_empty_file(self):
        f = OocArray(make_disk(), np.float64)
        assert f.read_all().shape == (0,)

    def test_dtype_coercion(self):
        f = OocArray(make_disk(), np.float64)
        f.append(np.arange(3, dtype=np.int32))
        assert f.read_all().dtype == np.float64

    def test_rejects_2d(self):
        f = OocArray(make_disk(), np.float64)
        with pytest.raises(ValueError):
            f.append(np.zeros((2, 2)))

    def test_use_after_delete_rejected(self):
        f = OocArray(make_disk(), np.float64)
        f.append(np.ones(2))
        f.delete()
        with pytest.raises(ValueError):
            f.read_all()

    def test_io_charged_per_access(self):
        disk = make_disk(seek=0.001, bandwidth=1e6)
        f = OocArray(disk, np.float64)
        f.append(np.zeros(1000))  # one write: 8000 bytes
        before = disk.stats.io_time
        f.read_all()
        assert disk.stats.io_time - before == pytest.approx(0.001 + 8000 / 1e6)
        assert disk.stats.bytes_read == 8000

    def test_disk_contents_isolated_from_caller(self):
        f = OocArray(make_disk(), np.float64)
        src = np.ones(4)
        f.append(src)
        src[:] = 7.0
        assert f.read_all()[0] == 1.0


class TestColumnSet:
    @pytest.fixture
    def loaded(self, quest_small, schema):
        cols, labels = quest_small
        cs = ColumnSet.from_arrays(
            make_disk(), schema, cols, labels, name="t", batch_rows=300
        )
        return cs, cols, labels

    def test_from_arrays_roundtrip(self, loaded, schema):
        cs, cols, labels = loaded
        got_cols, got_labels = cs.read_all()
        np.testing.assert_array_equal(got_labels, labels)
        for a in schema:
            np.testing.assert_array_equal(got_cols[a.name], cols[a.name])

    def test_nrows_and_nbytes(self, loaded, schema):
        cs, _, labels = loaded
        assert cs.nrows == len(labels)
        assert cs.nbytes == len(labels) * schema.row_nbytes()

    def test_iter_batches_aligned(self, loaded):
        cs, cols, labels = loaded
        seen = 0
        for batch, lab in cs.iter_batches():
            n = len(lab)
            np.testing.assert_array_equal(
                batch["salary"], cols["salary"][seen : seen + n]
            )
            np.testing.assert_array_equal(lab, labels[seen : seen + n])
            seen += n
        assert seen == len(labels)

    def test_iter_column_with_labels(self, loaded):
        cs, cols, labels = loaded
        vals = np.concatenate([v for v, _ in cs.iter_column_with_labels("age")])
        np.testing.assert_array_equal(vals, cols["age"])

    def test_missing_column_rejected(self, schema):
        cs = ColumnSet(make_disk(), schema)
        with pytest.raises(ValueError):
            cs.append_batch({"salary": np.zeros(2)}, np.zeros(2, dtype=np.int32))

    def test_misaligned_lengths_rejected(self, schema, quest_small):
        cols, labels = quest_small
        cs = ColumnSet(make_disk(), schema)
        bad = {k: v[:10] for k, v in cols.items()}
        bad["age"] = bad["age"][:5]
        with pytest.raises(ValueError):
            cs.append_batch(bad, labels[:10])

    def test_label_range_validated(self, schema, quest_small):
        cols, labels = quest_small
        cs = ColumnSet(make_disk(), schema)
        bad_labels = labels[:10].copy()
        bad_labels[0] = 9
        with pytest.raises(ValueError):
            cs.append_batch({k: v[:10] for k, v in cols.items()}, bad_labels)

    def test_delete_frees_all_columns(self, loaded):
        cs, _, _ = loaded
        cs.delete()
        with pytest.raises(ValueError):
            cs.read_labels()

    def test_batch_rows_controls_chunking(self, schema, quest_small):
        cols, labels = quest_small
        cs = ColumnSet.from_arrays(
            make_disk(), schema, cols, labels, batch_rows=500
        )
        assert cs.labels_file.nchunks == 4  # 2000 rows / 500


class TestMemoryBudget:
    def test_unlimited_fits_everything(self):
        assert MemoryBudget().fits(1 << 60)

    def test_fits_respects_reservations(self):
        b = MemoryBudget(limit=100)
        assert b.fits(100)
        with b.reserve(60):
            assert b.fits(40)
            assert not b.fits(41)
        assert b.fits(100)

    def test_overcommit_raises(self):
        b = MemoryBudget(limit=10)
        with pytest.raises(MemoryExceededError):
            b.reserve(11)

    def test_high_water_tracks_peak(self):
        b = MemoryBudget(limit=100)
        with b.reserve(70):
            pass
        with b.reserve(30):
            pass
        assert b.high_water == 70

    def test_negative_reservation_rejected(self):
        with pytest.raises(ValueError):
            MemoryBudget(limit=10).reserve(-1)

    def test_nested_reservations(self):
        b = MemoryBudget(limit=100)
        with b.reserve(50):
            with b.reserve(50):
                assert b.reserved == 100
        assert b.reserved == 0
