"""Smoke tests: the shipped examples must run and print what their
docstrings promise. Only the fast ones run here (the figure-scale ones
are exercised by the benchmark suite)."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, timeout: float = 120.0) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    return proc.stdout


def test_quickstart():
    out = run_example("quickstart.py")
    assert "CLOUDS/SSE" in out
    assert "SPRINT baseline" in out
    assert "test  accuracy" in out
    assert "after MDL pruning" in out


def test_strategy_comparison():
    out = run_example("strategy_comparison.py")
    for strategy in ("data", "concatenated", "task", "mixed"):
        assert strategy in out
    assert "skewed trees" in out


def test_out_of_core():
    out = run_example("out_of_core.py")
    assert "unlimited" in out
    assert "FileBackend" in out
    assert "same tree" in out


@pytest.mark.slow
def test_parallel_sorting():
    out = run_example("parallel_sorting.py", timeout=300.0)
    assert "speedup" in out
    assert "bucket imbalance" in out


def test_all_examples_have_main_and_docstring():
    for path in sorted(EXAMPLES.glob("*.py")):
        text = path.read_text()
        assert text.startswith('"""'), f"{path.name}: missing module docstring"
        assert 'if __name__ == "__main__":' in text, f"{path.name}: not runnable"
        assert "Run:" in text, f"{path.name}: docstring lacks a Run: line"
