"""Additional communicator semantics: reduce ops, scatter payload sizes,
minloc tiebreaks, mixed payload kinds through collectives."""

import numpy as np
import pytest

from conftest import make_cluster


class TestReduceVariants:
    def test_reduce_min_max_arrays(self):
        c = make_cluster(3)

        def prog(ctx):
            arr = np.array([ctx.rank, 10 - ctx.rank], dtype=np.int64)
            return (
                ctx.comm.allreduce(arr, "min").tolist(),
                ctx.comm.allreduce(arr, "max").tolist(),
            )

        out = c.run(prog).results
        assert out[0] == ([0, 8], [2, 10])
        assert all(o == out[0] for o in out)

    def test_reduce_to_nonzero_root_custom_op(self):
        c = make_cluster(4)

        def prog(ctx):
            return ctx.comm.reduce(
                {"s": ctx.rank}, op=lambda a, b: {"s": a["s"] + b["s"]}, root=2
            )

        out = c.run(prog).results
        assert out[2] == {"s": 6}
        assert out[0] is None


class TestMinlocTiebreaks:
    def test_tiebreak_key_beats_rank(self):
        """With equal values, the caller-supplied key decides — not the
        rank — so the parallel election matches sequential sweeps."""
        c = make_cluster(3)

        def prog(ctx):
            keys = ["zeta", "alpha", "mid"]
            return ctx.comm.allreduce_minloc(
                1.0, payload=keys[ctx.rank], tiebreak=keys[ctx.rank]
            )

        out = c.run(prog).results
        assert all(o == (1.0, "alpha", 1) for o in out)

    def test_missing_tiebreak_sorts_last(self):
        c = make_cluster(2)

        def prog(ctx):
            tb = "aaa" if ctx.rank == 1 else None
            return ctx.comm.allreduce_minloc(1.0, payload=ctx.rank, tiebreak=tb)

        out = c.run(prog).results
        # the rank WITH a key wins over the rank without one
        assert all(o[1] == 1 for o in out)


class TestScatterAccounting:
    def test_scatter_counts_bytes(self):
        c = make_cluster(2)

        def prog(ctx):
            parts = (
                [np.zeros(100), np.zeros(200)] if ctx.rank == 0 else None
            )
            mine = ctx.comm.scatter(parts, root=0)
            return len(mine), ctx.stats.bytes_received

        out = c.run(prog).results
        assert out[0][0] == 100 and out[1][0] == 200
        assert out[1][1] == 200 * 8


class TestMixedPayloads:
    def test_allgather_heterogeneous_objects(self):
        c = make_cluster(3)

        def prog(ctx):
            payloads = [np.arange(2), {"k": 1}, ("t", 2.0)]
            return ctx.comm.allgather(payloads[ctx.rank])

        out = c.run(prog).results[0]
        np.testing.assert_array_equal(out[0], [0, 1])
        assert out[1] == {"k": 1}
        assert out[2] == ("t", 2.0)

    def test_alltoall_with_none_slots(self):
        c = make_cluster(3)

        def prog(ctx):
            parts = [None] * 3
            parts[(ctx.rank + 1) % 3] = f"from{ctx.rank}"
            return ctx.comm.alltoall(parts)

        out = c.run(prog).results
        assert out[1][0] == "from0"
        assert out[0][2] == "from2"
        assert out[0][1] is None

    def test_bcast_large_array_identity(self):
        c = make_cluster(4)
        big = np.random.default_rng(0).random(10_000)

        def prog(ctx):
            got = ctx.comm.bcast(big if ctx.rank == 0 else None, root=0)
            return float(got.sum())

        out = c.run(prog).results
        assert len(set(out)) == 1
        assert out[0] == pytest.approx(float(big.sum()))
