"""Edge coverage for the bench harness, reporting, and CLI error paths."""

import numpy as np
import pytest

from repro.bench.harness import ExperimentConfig, speedup_series
from repro.bench.reporting import format_series, format_table
from repro.cli import main


class TestSpeedupSeries:
    def test_base_computed_when_series_lacks_p1(self):
        pts = speedup_series(
            2000, [2, 4], q_root=40, sample_size=200, min_node=64, seed=1
        )
        assert [p.n_ranks for p in pts] == [2, 4]
        # speedups are relative to an implicit p=1 run
        assert pts[0].speedup > 1.0
        assert pts[1].speedup > pts[0].speedup

    def test_points_carry_results(self):
        pts = speedup_series(
            1500, [1], q_root=30, sample_size=150, min_node=64, seed=2
        )
        assert pts[0].result.tree.n_nodes >= 1
        assert pts[0].elapsed == pts[0].result.elapsed


class TestExperimentConfigEdges:
    def test_memory_floor(self):
        cfg = ExperimentConfig(n_records=10, n_ranks=1)
        assert cfg.memory_limit_bytes(64) == 4096  # clamped floor

    def test_explicit_sample_wins(self):
        cfg = ExperimentConfig(n_records=10_000, n_ranks=2, sample_size=123)
        assert cfg.resolved_sample() == 123

    def test_q_root_floor(self):
        cfg = ExperimentConfig(n_records=100, n_ranks=1)
        assert cfg.resolved_q_root() >= 20


class TestReportingEdges:
    def test_zero_and_negative_values(self):
        text = format_table(["v"], [[0.0], [-1.25], [1e-9]])
        assert "0" in text and "-1.25" in text and "1e-09" in text

    def test_mixed_types_in_rows(self):
        text = format_table(["a", "b"], [["x", 1], [2.5, "y"]])
        assert "x" in text and "2.5" in text

    def test_series_empty(self):
        assert format_series("s", [], []) == "s: "

    def test_column_width_fits_longest(self):
        text = format_table(["h"], [["short"], ["a-much-longer-cell"]])
        lines = text.splitlines()
        assert len(lines[1]) >= len("a-much-longer-cell")


class TestCliErrors:
    def test_evaluate_missing_tree_file(self, tmp_path):
        data = str(tmp_path / "d.npz")
        main(["generate", "--records", "50", "--out", data])
        with pytest.raises(FileNotFoundError):
            main(["evaluate", str(tmp_path / "ghost.json"), data])

    def test_train_missing_data_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            main(["train", str(tmp_path / "ghost.npz")])

    def test_train_rejects_foreign_npz(self, tmp_path):
        path = str(tmp_path / "foreign.npz")
        np.savez(path, labels=np.zeros(3, dtype=np.int32), something=np.ones(3))
        with pytest.raises(ValueError):
            main(["train", path])

    def test_generate_zero_records(self, tmp_path, capsys):
        out = str(tmp_path / "empty.npz")
        assert main(["generate", "--records", "0", "--out", out]) == 0
        with np.load(out) as archive:
            assert len(archive["labels"]) == 0
