"""Disk model, compute model, simulated clocks and phase timers."""

import pytest

from repro.cluster.clock import PhaseTimer, SimClock
from repro.cluster.compute import ComputeModel
from repro.cluster.diskmodel import DiskModel


class TestDiskModel:
    def test_zero_bytes_is_free(self):
        assert DiskModel().access(0) == 0.0

    def test_sequential_access_pays_one_seek(self):
        d = DiskModel(seek=0.01, bandwidth=1e6, block=1024)
        assert d.access(4096) == pytest.approx(0.01 + 4096 / 1e6)

    def test_scattered_access_pays_seek_per_block(self):
        d = DiskModel(seek=0.01, bandwidth=1e6, block=1024)
        assert d.access(4096, sequential=False) == pytest.approx(
            4 * 0.01 + 4096 / 1e6
        )

    def test_partial_block_rounds_up_seeks(self):
        d = DiskModel(seek=0.01, bandwidth=1e6, block=1024)
        assert d.access(1, sequential=False) == pytest.approx(0.01 + 1e-6)
        assert d.access(1025, sequential=False) == pytest.approx(0.02 + 1025 / 1e6)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            DiskModel().access(-1)

    def test_scan_rate_is_bandwidth(self):
        assert DiskModel(bandwidth=5e6).scan_rate() == 5e6

    def test_large_transfer_dominated_by_bandwidth(self):
        d = DiskModel(seek=0.01, bandwidth=8e6)
        t = d.access(80_000_000)
        assert t == pytest.approx(10.0, rel=0.01)


class TestComputeModel:
    def test_linear_cost(self):
        c = ComputeModel(seconds_per_op=2e-9)
        assert c.cost(1e6) == pytest.approx(2e-3)

    def test_zero_ops_free(self):
        assert ComputeModel().cost(0) == 0.0

    def test_negative_ops_rejected(self):
        with pytest.raises(ValueError):
            ComputeModel().cost(-5)

    def test_scan_counts_width(self):
        c = ComputeModel(seconds_per_op=1.0)
        assert c.scan(10, width=3) == pytest.approx(30.0)

    def test_sort_is_nlogn(self):
        c = ComputeModel(seconds_per_op=1.0)
        assert c.sort(8) == pytest.approx(8 * 3)
        assert c.sort(1) == pytest.approx(1)
        assert c.sort(0) == pytest.approx(0)


class TestSimClock:
    def test_advance_accumulates(self):
        clk = SimClock()
        clk.advance(1.5)
        clk.advance(0.5)
        assert clk.now == pytest.approx(2.0)

    def test_advance_negative_rejected(self):
        with pytest.raises(ValueError):
            SimClock().advance(-0.1)

    def test_advance_to_never_goes_backwards(self):
        clk = SimClock(now=5.0)
        clk.advance_to(3.0)
        assert clk.now == 5.0
        clk.advance_to(7.0)
        assert clk.now == 7.0


class TestPhaseTimer:
    def test_attributes_time_to_phases(self):
        clk = SimClock()
        t = PhaseTimer(clk)
        t.start("a")
        clk.advance(2.0)
        t.start("b")  # implicitly closes "a"
        clk.advance(3.0)
        t.stop()
        assert t.totals == pytest.approx({"a": 2.0, "b": 3.0})

    def test_reentering_phase_accumulates(self):
        clk = SimClock()
        t = PhaseTimer(clk)
        for _ in range(2):
            t.start("x")
            clk.advance(1.0)
            t.stop()
        assert t.totals["x"] == pytest.approx(2.0)

    def test_snapshot_includes_open_phase_without_closing(self):
        clk = SimClock()
        t = PhaseTimer(clk)
        t.start("open")
        clk.advance(4.0)
        snap = t.snapshot()
        assert snap["open"] == pytest.approx(4.0)
        assert "open" not in t.totals  # still open
        clk.advance(1.0)
        t.stop()
        assert t.totals["open"] == pytest.approx(5.0)

    def test_stop_without_start_is_noop(self):
        t = PhaseTimer(SimClock())
        t.stop()
        assert t.totals == {}
