"""ASCII timeline rendering."""

import pytest

from repro.bench.timeline import (
    render_comm_phase_bars,
    render_phase_bars,
    render_rank_bars,
)


def test_phase_bars_scale_to_longest():
    text = render_phase_bars([{"a": 10.0, "b": 5.0}], width=10)
    lines = text.splitlines()
    bar_a = lines[0].count("█")
    bar_b = lines[1].count("█")
    assert bar_a == 10 and bar_b == 5


def test_phase_bars_report_imbalance():
    text = render_phase_bars(
        [{"work": 4.0}, {"work": 2.0}], width=8
    )
    assert "imbalance 1.33" in text


def test_phase_bars_missing_phase_on_some_ranks():
    text = render_phase_bars([{"a": 1.0}, {}], width=8)
    assert "a" in text


def test_phase_bars_empty():
    assert "no phases" in render_phase_bars([])


def test_rank_bars_basics():
    text = render_rank_bars([2.0, 1.0], label="io", width=8)
    lines = text.splitlines()
    assert lines[0].startswith("io 0")
    assert lines[0].count("█") == 8
    assert lines[1].count("█") == 4


def test_rank_bars_empty():
    assert "no ranks" in render_rank_bars([])


def test_partial_blocks_render():
    text = render_rank_bars([1.0, 0.55], width=10)
    # 5.5 cells: 5 full blocks plus a partial glyph
    assert any(ch in text for ch in "▏▎▍▌▋▊▉")


def test_zero_values_render_empty_bars():
    text = render_rank_bars([0.0, 0.0], width=10)
    assert "█" not in text


def test_phase_bars_custom_unit():
    text = render_phase_bars([{"comm": 1024.0}], width=8, unit="B")
    assert "1024.00B" in text


def test_comm_phase_bars_from_tracers():
    from repro.cluster.trace import Tracer

    t0, t1 = Tracer(rank=0), Tracer(rank=1)
    t0.record("allreduce", 8, 0.0, 1.0, sent=8, received=8, phase="stats")
    t0.record("alltoall", 64, 1.0, 2.0, sent=64, received=64, phase="partition")
    t0.record("write", 100, 2.0, 3.0, kind="disk", sent=100)  # not comm
    t1.record("allreduce", 8, 0.0, 1.0, sent=8, received=8, phase="stats")
    text = render_comm_phase_bars([t0, t1], width=10)
    assert "stats" in text and "partition" in text
    assert "128.00B" in text  # alltoall sent+received, disk excluded


def test_comm_phase_bars_untraced():
    assert "no phases" in render_comm_phase_bars([])


def test_traced_run_comm_bars_render(schema, quest_small):
    from repro.clouds import CloudsConfig
    from repro.core import DistributedDataset, PClouds, PCloudsConfig

    from conftest import make_cluster

    cols, labels = quest_small
    cluster = make_cluster(2)
    ds = DistributedDataset.create(cluster, schema, cols, labels, seed=1)
    res = PClouds(
        PCloudsConfig(clouds=CloudsConfig(q_root=40, sample_size=300, min_node=32))
    ).fit(ds, trace=True)
    text = render_comm_phase_bars(res.tracers)
    for phase in ("preprocess", "stats", "partition"):
        assert phase in text


def test_real_run_phase_times_render(schema, quest_small):
    from repro.clouds import CloudsConfig
    from repro.core import DistributedDataset, PClouds, PCloudsConfig

    from conftest import make_cluster

    cols, labels = quest_small
    cluster = make_cluster(2)
    ds = DistributedDataset.create(cluster, schema, cols, labels, seed=1)
    res = PClouds(
        PCloudsConfig(clouds=CloudsConfig(q_root=40, sample_size=300, min_node=32))
    ).fit(ds)
    text = render_phase_bars(res.run.phase_times)
    for phase in ("stats", "partition", "preprocess"):
        assert phase in text
