"""Property test: every statistics-exchange method must elect the same
splitter and the same alive set as the sequential computation, for any
random data, any fragmentation and any machine size."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clouds import CloudsConfig
from repro.clouds.builder import node_boundaries
from repro.clouds.intervals import class_counts
from repro.clouds.nodestats import stats_from_arrays
from repro.clouds.ss import find_split_ss
from repro.clouds.sse import determine_alive_intervals
from repro.core.config import PCloudsConfig
from repro.core.stats_exchange import exchange_node_stats
from repro.data import make_schema

from conftest import make_cluster

SCHEMA = make_schema(["x", "y"], {"c": 3}, n_classes=2)


def _random_fragments(rng, n, p):
    cols = {
        "x": rng.normal(size=n),
        "y": np.round(rng.random(n) * 10) / 2.0,  # heavy duplicates
        "c": rng.integers(0, 3, n).astype(np.int32),
    }
    labels = ((cols["x"] + rng.normal(0, 0.7, n)) > 0).astype(np.int32)
    owner = rng.integers(0, p, n)
    frags = [
        ({k: v[owner == r] for k, v in cols.items()}, labels[owner == r])
        for r in range(p)
    ]
    return cols, labels, frags


@given(
    st.integers(1, 4),
    st.integers(40, 300),
    st.integers(3, 20),
    st.integers(0, 10_000),
    st.sampled_from(["attribute", "distributed", "allreduce"]),
)
@settings(max_examples=15, deadline=None)
def test_exchange_equals_sequential(p, n, q, seed, exchange):
    rng = np.random.default_rng(seed)
    cols, labels, frags = _random_fragments(rng, n, p)
    bounds = node_boundaries(SCHEMA, cols, q)
    total = class_counts(labels, 2)

    seq_stats = stats_from_arrays(SCHEMA, cols, labels, bounds)
    seq_split = find_split_ss(seq_stats, SCHEMA)
    config = PCloudsConfig(
        clouds=CloudsConfig(method="sse", q_root=max(q, 2)), exchange=exchange
    )

    def prog(ctx):
        fcols, flabels = frags[ctx.rank]
        local = stats_from_arrays(SCHEMA, fcols, flabels, bounds)
        split, alive = exchange_node_stats(ctx, SCHEMA, local, total, config)
        key = None
        if split is not None:
            key = (split.attribute, split.kind, round(split.gini, 12))
        return key, [(iv.attribute, iv.index, iv.count) for iv in alive]

    results = make_cluster(p).run(prog).results
    if seq_split is None:
        assert all(r[0] is None for r in results)
        return
    seq_alive = determine_alive_intervals(seq_stats, SCHEMA, seq_split.gini)
    expect_key = (
        seq_split.attribute, seq_split.kind, round(seq_split.gini, 12)
    )
    expect_alive = sorted(
        (iv.attribute, iv.index, iv.count) for iv in seq_alive
    )
    for key, alive in results:
        assert key == expect_key
        assert alive == expect_alive
