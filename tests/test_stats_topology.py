"""Rank statistics aggregation and hypercube topology helpers."""

import pytest

from repro.cluster.stats import RankStats, RunStats
from repro.cluster.topology import (
    hamming_distance,
    hypercube_dimension,
    is_power_of_two,
    neighbours,
    subcube_partition,
)


class TestRankStats:
    def test_merge_adds_fields(self):
        a = RankStats(compute_time=1.0, bytes_read=100)
        b = RankStats(compute_time=2.0, bytes_read=50, messages_sent=3)
        m = a.merge(b)
        assert m.compute_time == pytest.approx(3.0)
        assert m.bytes_read == 150
        assert m.messages_sent == 3

    def test_busy_time_excludes_idle(self):
        s = RankStats(compute_time=1.0, io_time=2.0, comm_time=3.0, idle_time=99.0)
        assert s.busy_time() == pytest.approx(6.0)

    def test_as_dict_roundtrip(self):
        s = RankStats(io_calls=7)
        assert s.as_dict()["io_calls"] == 7

    def test_run_total(self):
        run = RunStats(per_rank=[RankStats(bytes_read=10), RankStats(bytes_read=30)])
        assert run.total.bytes_read == 40

    def test_imbalance_perfect(self):
        run = RunStats(per_rank=[RankStats(io_time=2.0), RankStats(io_time=2.0)])
        assert run.imbalance("io_time") == pytest.approx(1.0)

    def test_imbalance_skewed(self):
        run = RunStats(per_rank=[RankStats(io_time=3.0), RankStats(io_time=1.0)])
        assert run.imbalance("io_time") == pytest.approx(1.5)

    def test_imbalance_of_method_attr(self):
        run = RunStats(per_rank=[RankStats(compute_time=1.0), RankStats(io_time=1.0)])
        assert run.imbalance("busy_time") == pytest.approx(1.0)

    def test_imbalance_all_zero_is_one(self):
        run = RunStats(per_rank=[RankStats(), RankStats()])
        assert run.imbalance("io_time") == 1.0


class TestTopology:
    def test_dimension(self):
        assert hypercube_dimension(1) == 0
        assert hypercube_dimension(2) == 1
        assert hypercube_dimension(16) == 4
        assert hypercube_dimension(9) == 4

    def test_power_of_two(self):
        assert is_power_of_two(1) and is_power_of_two(16)
        assert not is_power_of_two(0) and not is_power_of_two(12)

    def test_neighbours_of_origin(self):
        assert sorted(neighbours(0, 8)) == [1, 2, 4]

    def test_neighbours_are_symmetric(self):
        p = 16
        for r in range(p):
            for nb in neighbours(r, p):
                assert r in neighbours(nb, p)

    def test_neighbours_rejects_non_power(self):
        with pytest.raises(ValueError):
            neighbours(0, 6)

    def test_neighbours_rejects_bad_rank(self):
        with pytest.raises(ValueError):
            neighbours(8, 8)

    def test_hamming_distance(self):
        assert hamming_distance(0, 0) == 0
        assert hamming_distance(0b101, 0b010) == 3

    def test_subcube_partition_covers_all_ranks(self):
        groups = subcube_partition(16, 3)
        flat = [r for g in groups for r in g]
        assert flat == list(range(16))
        assert max(len(g) for g in groups) - min(len(g) for g in groups) <= 1

    def test_subcube_partition_rejects_too_many_groups(self):
        with pytest.raises(ValueError):
            subcube_partition(4, 5)
