"""Failure injection: the simulated machine must fail loudly, promptly
and attributably — never hang, never corrupt another rank's results."""

import time

import numpy as np
import pytest

from repro.cluster import (
    ClusterAborted,
    CommMismatchError,
    DeadlockError,
    SpmdProgramError,
)

from conftest import make_cluster


class TestAbortPropagation:
    def test_failure_during_alltoall_releases_peers(self):
        c = make_cluster(4, timeout=10.0)

        def prog(ctx):
            if ctx.rank == 2:
                raise RuntimeError("dies before the exchange")
            ctx.comm.alltoall([ctx.rank] * ctx.size)

        with pytest.raises(SpmdProgramError) as e:
            c.run(prog)
        assert e.value.rank == 2

    def test_failure_inside_subgroup_cascades(self):
        """A rank failing while peers wait in a *sub*-communicator's
        barrier must still release them (abort cascade)."""
        c = make_cluster(4, timeout=10.0)

        def prog(ctx):
            sub = ctx.comm.split(ctx.rank % 2)
            if ctx.rank == 3:
                raise RuntimeError("dies after split")
            # rank 1 now waits for rank 3 inside the odd subgroup
            sub.allreduce(1)

        with pytest.raises(SpmdProgramError) as e:
            c.run(prog)
        assert e.value.rank == 3

    def test_first_failing_rank_reported(self):
        c = make_cluster(4, timeout=10.0)

        def prog(ctx):
            raise ValueError(f"rank {ctx.rank}")

        with pytest.raises(SpmdProgramError) as e:
            c.run(prog)
        # deterministic attribution: the lowest failing rank wins
        assert e.value.rank == 0

    def test_failure_during_p2p_wait(self):
        c = make_cluster(3, timeout=10.0)

        def prog(ctx):
            if ctx.rank == 0:
                raise RuntimeError("sender dies")
            if ctx.rank == 1:
                ctx.comm.recv(src=0)  # never arrives; must be released

        with pytest.raises(SpmdProgramError) as e:
            c.run(prog)
        assert e.value.rank == 0

    def test_abort_wakes_rank_blocked_in_recv(self):
        """A peer crash must release a blocked recv within milliseconds,
        not after the full (here: 300 s) rendezvous timeout."""
        c = make_cluster(3, timeout=300.0)

        def prog(ctx):
            if ctx.rank == 0:
                raise RuntimeError("sender dies")
            ctx.comm.recv(src=0)

        t0 = time.monotonic()
        with pytest.raises(SpmdProgramError) as e:
            c.run(prog)
        assert e.value.rank == 0
        assert time.monotonic() - t0 < 5.0

    def test_abort_wakes_rank_blocked_in_request_wait(self):
        c = make_cluster(2, timeout=300.0)

        def prog(ctx):
            if ctx.rank == 0:
                raise RuntimeError("sender dies")
            ctx.comm.irecv(src=0).wait()

        t0 = time.monotonic()
        with pytest.raises(SpmdProgramError):
            c.run(prog)
        assert time.monotonic() - t0 < 5.0

    def test_recv_after_abort_fails_immediately(self):
        """A rank that opens its mailbox only after the abort happened
        must still be released (the sentinel is pre-seeded)."""
        c = make_cluster(2, timeout=300.0)

        def prog(ctx):
            if ctx.rank == 0:
                raise RuntimeError("dies first")
            # give the abort time to land before the first recv call
            time.sleep(0.2)
            ctx.comm.recv(src=0, tag=42)

        t0 = time.monotonic()
        with pytest.raises(SpmdProgramError):
            c.run(prog)
        assert time.monotonic() - t0 < 5.0

    def test_cluster_reusable_after_failure(self):
        c = make_cluster(2, timeout=10.0)
        with pytest.raises(SpmdProgramError):
            c.run(lambda ctx: (_ for _ in ()).throw(RuntimeError("x")))
        # a fresh run on the same Cluster object works (fresh CommWorld)
        assert c.run(lambda ctx: ctx.comm.allreduce(1)).results == [2, 2]


class TestContractViolations:
    def test_mixed_collectives_diagnosed_not_hung(self):
        c = make_cluster(3, timeout=10.0)

        def prog(ctx):
            if ctx.rank == 0:
                ctx.comm.scan(1)
            else:
                ctx.comm.allreduce(1)

        with pytest.raises(SpmdProgramError) as e:
            c.run(prog)
        assert isinstance(e.value.cause, CommMismatchError)
        assert "scan" in str(e.value.cause) or "allreduce" in str(e.value.cause)

    def test_partial_participation_times_out(self):
        c = make_cluster(3, timeout=0.5)

        def prog(ctx):
            if ctx.rank != 0:
                ctx.comm.barrier()  # rank 0 never shows up

        with pytest.raises(SpmdProgramError) as e:
            c.run(prog)
        assert isinstance(e.value.cause, DeadlockError)

    def test_scatter_root_without_parts(self):
        c = make_cluster(2, timeout=10.0)

        def prog(ctx):
            return ctx.comm.scatter(None, root=0)

        with pytest.raises(SpmdProgramError) as e:
            c.run(prog)
        assert isinstance(e.value.cause, ValueError)

    def test_scatter_wrong_part_count(self):
        c = make_cluster(3, timeout=10.0)

        def prog(ctx):
            parts = [1, 2] if ctx.rank == 0 else None
            return ctx.comm.scatter(parts, root=0)

        with pytest.raises(SpmdProgramError):
            c.run(prog)


class TestDataIntegrityUnderErrors:
    def test_disks_survive_a_failed_program(self, schema, quest_small):
        """A failed run must not corrupt previously written fragments."""
        from repro.data import shuffle_split
        from repro.data.distribute import load_fragment

        cols, labels = quest_small
        frags = shuffle_split(cols, labels, 2, seed=1)
        c = make_cluster(2, timeout=10.0)
        ctxs = c.make_contexts()
        run = c.run(load_fragment, schema, frags, 256, contexts=ctxs)
        columnsets = run.results

        def bad(ctx):
            if ctx.rank == 1:
                raise RuntimeError("mid-run crash")
            ctx.comm.barrier()

        with pytest.raises(SpmdProgramError):
            c.run(bad, contexts=ctxs)

        def readback(ctx):
            return columnsets[ctx.rank].read_labels().sum()

        out = c.run(readback, contexts=ctxs).results
        expected = [int(f[1].sum()) for f in frags]
        assert out == expected

    def test_numpy_payloads_not_shared_through_disk(self):
        """Backend copy semantics: callers cannot alias disk contents."""
        from repro.ooc import OocArray

        c = make_cluster(1)

        def prog(ctx):
            f = OocArray(ctx.disk, np.float64)
            buf = np.ones(8)
            f.append(buf)
            buf[:] = -1
            first = f.read_all().copy()
            got = f.read_all()
            got[:] = -2
            return first, f.read_all()

        first, second = c.run(prog).results[0]
        assert (first == 1.0).all()
        assert (second == 1.0).all()
