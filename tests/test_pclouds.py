"""pCLOUDS end-to-end: correctness across machine sizes, the mixed
parallelism structure, load balance, and the paper's scaling behaviours."""

import numpy as np
import pytest

from repro.cluster import Cluster
from repro.clouds import CloudsConfig, accuracy, validate_tree
from repro.core import DistributedDataset, PClouds, PCloudsConfig
from repro.data import generate_quest, quest_schema

from conftest import make_cluster


def fit(p, cols, labels, *, q_root=80, q_switch=10, method="sse",
        exchange="attribute", memory_limit=None, seed=0, min_node=8,
        purity=1.0, sample_size=600, scaled=False):
    schema = quest_schema()
    if scaled:
        from repro.bench.harness import scaled_models

        net, disk, compute = scaled_models(100.0)
        cluster = make_cluster(
            p, memory_limit=memory_limit, seed=seed,
            network=net, disk=disk, compute=compute,
        )
    else:
        cluster = make_cluster(p, memory_limit=memory_limit, seed=seed)
    ds = DistributedDataset.create(cluster, schema, cols, labels, seed=seed + 1)
    cfg = PCloudsConfig(
        clouds=CloudsConfig(
            method=method, q_root=q_root, sample_size=sample_size,
            min_node=min_node, purity=purity,
        ),
        q_switch=q_switch,
        exchange=exchange,
    )
    return PClouds(cfg).fit(ds, seed=seed + 2)


@pytest.fixture(scope="module")
def data():
    return generate_quest(4000, function=2, seed=13, noise=0.03)


class TestCorrectness:
    def test_single_rank_builds_valid_tree(self, data):
        cols, labels = data
        res = fit(1, cols, labels)
        validate_tree(res.tree)
        assert accuracy(labels, res.tree.predict(cols)) > 0.9

    @pytest.mark.parametrize("p", [2, 3, 4, 8])
    def test_tree_identical_across_machine_sizes(self, data, p):
        """Data parallelism must not change the result: statistics are
        global sums, so any p yields the tree of p=1."""
        cols, labels = data
        base = fit(1, cols, labels)
        res = fit(p, cols, labels)
        # meta records n_ranks (provenance, not structure): compare roots
        assert res.tree.to_dict()["root"] == base.tree.to_dict()["root"]

    def test_exchange_variants_agree(self, data):
        cols, labels = data
        a = fit(4, cols, labels, exchange="attribute")
        b = fit(4, cols, labels, exchange="allreduce")
        d = fit(4, cols, labels, exchange="distributed")
        assert a.tree.to_dict() == b.tree.to_dict()
        assert a.tree.to_dict() == d.tree.to_dict()

    def test_distributed_exchange_more_ranks_than_attributes(self, data):
        """The distributed method's whole point: interval-granular
        ownership keeps all ranks busy even when p > #attributes."""
        cols, labels = data
        a = fit(12, cols, labels, exchange="attribute")
        d = fit(12, cols, labels, exchange="distributed")
        assert a.tree.to_dict() == d.tree.to_dict()

    def test_ss_method_parallel(self, data):
        cols, labels = data
        res = fit(4, cols, labels, method="ss")
        validate_tree(res.tree)
        assert accuracy(labels, res.tree.predict(cols)) > 0.85

    def test_memory_limit_does_not_change_tree(self, data):
        """In-core vs streaming access changes only I/O, never results."""
        cols, labels = data
        unlimited = fit(4, cols, labels, memory_limit=None)
        tight = fit(4, cols, labels, memory_limit=16 * 1024)
        assert unlimited.tree.to_dict() == tight.tree.to_dict()

    def test_leaf_counts_partition_training_set(self, data):
        cols, labels = data
        res = fit(4, cols, labels)
        leaves = [n for n in res.tree.iter_nodes() if n.is_leaf]
        assert sum(n.n for n in leaves) == len(labels)
        total = sum(n.class_counts for n in leaves)
        np.testing.assert_array_equal(total, np.bincount(labels, minlength=2))

    def test_deterministic_given_seeds(self, data):
        cols, labels = data
        a = fit(4, cols, labels, seed=5)
        b = fit(4, cols, labels, seed=5)
        assert a.tree.to_dict() == b.tree.to_dict()
        assert a.elapsed == pytest.approx(b.elapsed)

    def test_generalizes_to_holdout(self):
        cols, labels = generate_quest(6000, function=2, seed=17, noise=0.0)
        res = fit(4, {k: v[:4500] for k, v in cols.items()}, labels[:4500])
        acc = accuracy(labels[4500:], res.tree.predict({k: v[4500:] for k, v in cols.items()}))
        assert acc > 0.93


class TestSampleApportionment:
    """The global root sample must have exactly cfg.sample_size records;
    independent per-rank rounding drifted by up to p/2."""

    def test_apportion_exact_and_capped(self):
        from repro.core.pclouds import apportion_sample

        for counts in (
            [100, 100, 100],
            [333, 333, 334],
            [1, 999],
            [250, 250, 250, 250, 1],
            [7] * 13,
            [0, 50, 0, 50],
        ):
            for want in (0, 1, 7, 100, 777):
                out = apportion_sample(want, counts)
                assert sum(out) == min(want, sum(counts))
                assert all(0 <= o <= c for o, c in zip(out, counts))

    def test_apportion_rounding_regression(self):
        from repro.core.pclouds import apportion_sample

        # 5 ranks × 150 rows, sample 100: round(100*150/750)=20 each is
        # fine, but 7 ranks × 107 rows, sample 500 used to give
        # 7*round(500*107/749)=7*71=497 — three records short
        out = apportion_sample(500, [107] * 7)
        assert sum(out) == 500

    def test_apportion_deterministic(self):
        from repro.core.pclouds import apportion_sample

        a = apportion_sample(123, [50, 60, 70, 80])
        b = apportion_sample(123, [50, 60, 70, 80])
        assert a == b

    @pytest.mark.parametrize("p", [1, 2, 3, 5, 8])
    def test_global_sample_size_exact_in_program(self, data, p):
        from repro.core.pclouds import _root_preprocess

        cols, labels = data
        schema = quest_schema()
        cluster = make_cluster(p)
        ds = DistributedDataset.create(cluster, schema, cols, labels, seed=3)

        def prog(ctx, columnsets):
            _, sample_labels, counts = _root_preprocess(
                ctx, columnsets[ctx.rank], schema, 777, len(labels), 5
            )
            return len(sample_labels), int(counts.sum())

        run = cluster.run(prog, ds.columnsets, contexts=ds.contexts)
        for n_sample, n_counted in run.results:
            assert n_sample == 777  # exactly, for every (p, n_total)
            assert n_counted == len(labels)


class TestMixedParallelism:
    def test_small_tasks_appear_below_switch(self, data):
        cols, labels = data
        res = fit(4, cols, labels, q_switch=20)
        assert res.n_small_tasks > 0
        assert res.n_large_nodes > 0

    def test_higher_switch_defers_earlier(self, data):
        cols, labels = data
        low = fit(2, cols, labels, q_switch=5)
        high = fit(2, cols, labels, q_switch=40)
        # a higher threshold switches higher in the tree: fewer large
        # nodes remain (the deferred subtrees are bigger but fewer)
        assert high.n_large_nodes < low.n_large_nodes
        # the switch threshold must not change the classifier
        assert low.tree.to_dict() == high.tree.to_dict()

    def test_all_small_after_root(self, data):
        """q_switch above q_root: the root itself defers — degenerate but
        legal; everything is built by delayed task parallelism."""
        cols, labels = data
        res = fit(3, cols, labels, q_root=30, q_switch=1000)
        assert res.n_large_nodes == 0
        assert res.n_small_tasks == 1
        validate_tree(res.tree)
        assert accuracy(labels, res.tree.predict(cols)) > 0.9

    def test_survival_ratio_recorded_per_large_node(self, data):
        cols, labels = data
        res = fit(2, cols, labels)
        assert len(res.survival_ratios) == res.n_large_nodes
        # summed over attributes, so bounded by the numeric attribute count
        assert all(0.0 <= r <= 6.0 for r in res.survival_ratios)

    def test_phase_times_cover_the_run(self, data):
        cols, labels = data
        res = fit(4, cols, labels)
        phases = res.phases
        for key in ("preprocess", "stats", "partition", "small_nodes"):
            assert key in phases
        assert sum(phases.values()) <= res.elapsed * len(res.run.phase_times) + 1e-6


class TestScalingBehaviour:
    def test_more_processors_run_faster(self, data):
        # under the paper-regime cost models (per-record costs scaled so
        # bandwidth dominates latency), p=4 must show a clear speedup
        cols, labels = data
        t1 = fit(1, cols, labels, memory_limit=32 * 1024, scaled=True).elapsed
        t4 = fit(4, cols, labels, memory_limit=32 * 1024, scaled=True).elapsed
        assert t4 < t1
        assert t1 / t4 > 2.0

    def test_io_volume_balanced_across_ranks(self, data):
        cols, labels = data
        res = fit(4, cols, labels, memory_limit=32 * 1024)
        reads = [s.bytes_read for s in res.run.stats.per_rank]
        assert max(reads) / max(min(reads), 1) < 1.3  # Lemma 2 balance

    def test_attribute_exchange_avoids_redundant_sweeps(self, data):
        """The attribute-based approach runs the prefix-sum + gini sweep
        and the alive estimation once per attribute (at its owner) instead
        of replicating that work on every processor."""
        cols, labels = data
        a = fit(4, cols, labels, exchange="attribute")
        b = fit(4, cols, labels, exchange="allreduce")
        assert (
            a.run.stats.total.compute_time < b.run.stats.total.compute_time
        )

    def test_elapsed_counts_only_fit(self, data):
        cols, labels = data
        res = fit(2, cols, labels)
        # distribution happens at time zero; fit elapsed is positive and
        # bounded by total busy+idle time
        assert 0 < res.elapsed < 1e4


class TestEdgeCases:
    def test_tiny_dataset(self):
        cols, labels = generate_quest(40, function=1, seed=3)
        res = fit(4, cols, labels, q_root=4, sample_size=20, min_node=4)
        validate_tree(res.tree)

    def test_single_class_degenerates_to_leaf(self):
        cols, _ = generate_quest(500, seed=9)
        labels = np.zeros(500, dtype=np.int32)
        res = fit(2, cols, labels)
        assert res.tree.root.is_leaf

    def test_more_ranks_than_attributes(self, data):
        cols, labels = data
        res = fit(12, cols, labels, q_root=40)
        validate_tree(res.tree)

    def test_max_depth_enforced(self, data):
        cols, labels = data
        schema = quest_schema()
        cluster = make_cluster(2)
        ds = DistributedDataset.create(cluster, schema, cols, labels, seed=1)
        cfg = PCloudsConfig(
            clouds=CloudsConfig(q_root=60, sample_size=400, max_depth=4)
        )
        res = PClouds(cfg).fit(ds)
        assert res.tree.depth <= 4

    def test_config_validation(self):
        with pytest.raises(ValueError):
            PCloudsConfig(q_switch=0)
        with pytest.raises(ValueError):
            PCloudsConfig(exchange="quantum")
