"""Shared fixtures: small Quest datasets and cluster factories."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import Cluster
from repro.data import generate_quest, quest_schema


@pytest.fixture(scope="session")
def schema():
    return quest_schema()


@pytest.fixture(scope="session")
def quest_small():
    """2,000 function-2 records with a little label noise."""
    return generate_quest(2000, function=2, seed=7, noise=0.02)


@pytest.fixture(scope="session")
def quest_clean():
    """4,000 noise-free function-2 records."""
    return generate_quest(4000, function=2, seed=11, noise=0.0)


@pytest.fixture
def cluster4():
    return Cluster(4, seed=0, timeout=60.0)


def make_cluster(p: int, **kwargs) -> Cluster:
    kwargs.setdefault("seed", 0)
    kwargs.setdefault("timeout", 60.0)
    return Cluster(p, **kwargs)
