"""Sequential CLOUDS: in-core and out-of-core paths, sampling, config."""

import numpy as np
import pytest

from repro.cluster.clock import SimClock
from repro.cluster.diskmodel import DiskModel
from repro.cluster.stats import RankStats
from repro.clouds.builder import CloudsBuilder, CloudsConfig, draw_sample
from repro.clouds.metrics import accuracy
from repro.clouds.tree import validate_tree
from repro.ooc import ColumnSet, InMemoryBackend, LocalDisk


def make_disk():
    return LocalDisk(DiskModel(), SimClock(), RankStats(), InMemoryBackend())


@pytest.fixture
def loaded(schema, quest_small):
    cols, labels = quest_small
    disk = make_disk()
    cs = ColumnSet.from_arrays(disk, schema, cols, labels, batch_rows=256)
    return cs, cols, labels, disk


class TestConfig:
    def test_method_validated(self):
        with pytest.raises(ValueError):
            CloudsConfig(method="magic")

    def test_q_root_validated(self):
        with pytest.raises(ValueError):
            CloudsConfig(q_root=1)

    def test_sample_size_validated(self):
        with pytest.raises(ValueError):
            CloudsConfig(sample_size=0)

    def test_stopping_built_from_fields(self):
        cfg = CloudsConfig(min_node=7, max_depth=3, purity=0.8)
        rule = cfg.stopping()
        assert rule.min_node == 7 and rule.max_depth == 3 and rule.purity == 0.8


class TestDrawSample:
    def test_sample_size_and_membership(self, loaded):
        cs, cols, labels, _ = loaded
        sc, sl = draw_sample(cs, 150, np.random.default_rng(0))
        assert len(sl) == 150
        assert np.isin(sc["salary"], cols["salary"]).all()

    def test_sample_larger_than_data_capped(self, loaded):
        cs, _, labels, _ = loaded
        _, sl = draw_sample(cs, 10**6, np.random.default_rng(0))
        assert len(sl) == len(labels)

    def test_sample_rows_stay_aligned(self, loaded):
        cs, cols, labels, _ = loaded
        sc, sl = draw_sample(cs, 200, np.random.default_rng(1))
        pairs = set(zip(cols["salary"].tolist(), labels.tolist()))
        assert all((s, l) in pairs for s, l in zip(sc["salary"], sl))

    def test_empty_columnset(self, schema):
        cs = ColumnSet(make_disk(), schema)
        sc, sl = draw_sample(cs, 10, np.random.default_rng(0))
        assert len(sl) == 0
        assert set(sc) == set(schema.names)


class TestInCoreBuilder:
    def test_fit_arrays_accuracy(self, schema, quest_small):
        cols, labels = quest_small
        tree = CloudsBuilder(
            schema, CloudsConfig(method="sse", q_root=60, sample_size=500)
        ).fit_arrays(cols, labels, seed=1)
        validate_tree(tree)
        assert accuracy(labels, tree.predict(cols)) > 0.9

    def test_ss_vs_sse_both_valid(self, schema, quest_small):
        cols, labels = quest_small
        for method in ("ss", "sse"):
            tree = CloudsBuilder(
                schema,
                CloudsConfig(method=method, q_root=40, sample_size=400, min_node=16),
            ).fit_arrays(cols, labels, seed=2)
            validate_tree(tree)

    def test_deterministic_given_seed(self, schema, quest_small):
        cols, labels = quest_small
        cfg = CloudsConfig(q_root=40, sample_size=400)
        t1 = CloudsBuilder(schema, cfg).fit_arrays(cols, labels, seed=5)
        t2 = CloudsBuilder(schema, cfg).fit_arrays(cols, labels, seed=5)
        assert t1.to_dict() == t2.to_dict()

    def test_small_nodes_use_direct_method(self, schema, quest_small):
        cols, labels = quest_small
        # q_min above q_root: the whole tree is built with the direct path
        cfg = CloudsConfig(q_root=8, sample_size=100, q_min=100, min_node=8)
        tree = CloudsBuilder(schema, cfg).fit_arrays(cols, labels, seed=3)
        validate_tree(tree)
        assert accuracy(labels, tree.predict(cols)) > 0.95

    def test_node_ids_unique(self, schema, quest_small):
        cols, labels = quest_small
        tree = CloudsBuilder(
            schema, CloudsConfig(q_root=30, sample_size=300)
        ).fit_arrays(cols, labels, seed=4)
        ids = [n.node_id for n in tree.iter_nodes()]
        assert len(ids) == len(set(ids))


class TestOutOfCoreBuilder:
    def test_fit_columnset_matches_quality(self, schema, quest_small, loaded):
        cs, cols, labels, disk = loaded
        cfg = CloudsConfig(method="sse", q_root=60, sample_size=500, min_node=16)
        tree = CloudsBuilder(schema, cfg).fit_columnset(cs, seed=1)
        validate_tree(tree)
        assert accuracy(labels, tree.predict(cols)) > 0.9

    def test_ooc_charges_io(self, schema, loaded):
        cs, cols, labels, disk = loaded
        before = disk.stats.bytes_read
        CloudsBuilder(
            schema, CloudsConfig(q_root=40, sample_size=300, min_node=32)
        ).fit_columnset(cs, seed=2)
        # multiple passes per node: far more bytes read than the set holds
        assert disk.stats.bytes_read - before > len(labels) * schema.row_nbytes()

    def test_fit_consumes_the_fragment(self, schema, loaded):
        cs, _, _, _ = loaded
        CloudsBuilder(
            schema, CloudsConfig(q_root=40, sample_size=300, min_node=64)
        ).fit_columnset(cs, seed=0)
        with pytest.raises(ValueError):
            cs.read_labels()

    def test_ooc_tree_close_to_in_core_tree(self, schema, quest_small):
        # identical configs and seeds: the OOC driver must produce a tree
        # of equivalent predictive quality (sampling differs slightly in
        # the two paths, so compare quality rather than structure)
        cols, labels = quest_small
        cfg = CloudsConfig(method="sse", q_root=50, sample_size=400, min_node=16)
        t_core = CloudsBuilder(schema, cfg).fit_arrays(cols, labels, seed=9)
        cs = ColumnSet.from_arrays(make_disk(), schema, cols, labels, batch_rows=512)
        t_ooc = CloudsBuilder(schema, cfg).fit_columnset(cs, seed=9)
        acc_core = accuracy(labels, t_core.predict(cols))
        acc_ooc = accuracy(labels, t_ooc.predict(cols))
        assert abs(acc_core - acc_ooc) < 0.05

    def test_empty_columnset_single_leaf(self, schema):
        cs = ColumnSet(make_disk(), schema)
        tree = CloudsBuilder(schema).fit_columnset(cs, seed=0)
        assert tree.root.is_leaf and tree.root.n == 0
