"""The Table-1 cost formulas of the cut-through hypercube model."""

import math

import pytest

from repro.cluster.network import NetworkModel, _log2p


@pytest.fixture
def net():
    return NetworkModel(alpha=1e-4, beta=1e-8)


def test_log2p_values():
    assert _log2p(1) == 0.0
    assert _log2p(2) == 1.0
    assert _log2p(8) == 3.0
    assert _log2p(5) == 3.0  # non-power-of-two rounds up


def test_log2p_rejects_zero():
    with pytest.raises(ValueError):
        _log2p(0)


def test_p2p_is_alpha_plus_beta_m(net):
    assert net.p2p(0) == pytest.approx(1e-4)
    assert net.p2p(1_000_000) == pytest.approx(1e-4 + 1e-8 * 1e6)


def test_broadcast_scales_with_log_p(net):
    m = 1000
    assert net.broadcast(m, 2) == pytest.approx((net.alpha + net.beta * m) * 1)
    assert net.broadcast(m, 16) == pytest.approx((net.alpha + net.beta * m) * 4)


def test_all_to_all_broadcast_formula(net):
    # Table 1: O(alpha log p + beta m (p-1))
    m, p = 4096, 8
    assert net.all_to_all_broadcast(m, p) == pytest.approx(
        net.alpha * 3 + net.beta * m * 7
    )


def test_gather_formula(net):
    m, p = 512, 16
    assert net.gather(m, p) == pytest.approx(net.alpha * 4 + net.beta * m * 16)


def test_global_combine_bandwidth_independent_of_p(net):
    m = 8192
    c4 = net.global_combine(m, 4) - net.alpha * 2
    c16 = net.global_combine(m, 16) - net.alpha * 4
    assert c4 == pytest.approx(c16)


def test_prefix_sum_matches_combine_shape(net):
    assert net.prefix_sum(100, 8) == pytest.approx(net.global_combine(100, 8))


def test_all_to_all_personalized_scales_with_p(net):
    m = 1024
    assert net.all_to_all_personalized(m, 2) == pytest.approx(net.p2p(m))
    assert net.all_to_all_personalized(m, 9) == pytest.approx(8 * net.p2p(m))


def test_alltoallv_uses_max_direction(net):
    out_heavy = net.alltoallv(10_000, 100, 4)
    in_heavy = net.alltoallv(100, 10_000, 4)
    assert out_heavy == pytest.approx(in_heavy)
    assert out_heavy == pytest.approx(net.alpha * 3 + net.beta * 10_000)


def test_single_processor_collectives_are_free_of_bandwidth(net):
    # p=1: log term vanishes; only (p-1)=0 bandwidth terms remain
    assert net.all_to_all_broadcast(1 << 20, 1) == 0.0
    assert net.broadcast(1 << 20, 1) == 0.0
    assert net.all_to_all_personalized(1 << 20, 1) == 0.0


def test_costs_monotone_in_message_size(net):
    for fn in (net.p2p, lambda m: net.broadcast(m, 8), lambda m: net.gather(m, 8)):
        assert fn(2000) > fn(1000)


def test_collective_latency_grows_logarithmically(net):
    # doubling p adds exactly one alpha to the combine latency
    for p in (2, 4, 8, 16):
        delta = net.global_combine(0, 2 * p) - net.global_combine(0, p)
        assert delta == pytest.approx(net.alpha)


def test_negative_p_rejected(net):
    with pytest.raises(ValueError):
        net.broadcast(10, 0)


def test_log_consistency_with_math():
    for p in (2, 3, 7, 32, 1000):
        assert _log2p(p) == math.ceil(math.log2(p))
