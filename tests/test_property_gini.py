"""Property-based tests of the gini machinery (the invariants SS/SSE
correctness rests on)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.clouds.gini import (
    best_categorical_split,
    best_numeric_split_exact,
    gini_from_counts,
    gini_lower_bound,
    weighted_gini,
)

counts_vectors = hnp.arrays(
    dtype=np.int64,
    shape=st.integers(2, 6),
    elements=st.integers(0, 50),
)


@given(counts_vectors)
def test_gini_in_unit_range(counts):
    g = gini_from_counts(counts)
    assert 0.0 <= g <= 1.0


@given(counts_vectors)
def test_gini_bounded_by_uniform(counts):
    k = len(counts)
    assert gini_from_counts(counts) <= 1.0 - 1.0 / k + 1e-12


@given(counts_vectors)
def test_gini_invariant_under_permutation(counts):
    g1 = gini_from_counts(counts)
    g2 = gini_from_counts(counts[::-1])
    assert g1 == pytest.approx(g2)


@given(counts_vectors)
def test_gini_invariant_under_scaling(counts):
    g1 = gini_from_counts(counts)
    g2 = gini_from_counts(counts * 7)
    assert g1 == pytest.approx(g2)


@given(counts_vectors, counts_vectors.map(lambda a: a))
def test_weighted_gini_never_exceeds_parent(left, right):
    """Splitting never increases gini (concavity of the impurity)."""
    if len(left) != len(right):
        right = np.resize(right, len(left))
    parent = gini_from_counts(left + right)
    assert weighted_gini(left, right) <= parent + 1e-9


@given(
    st.integers(2, 200).flatmap(
        lambda n: st.tuples(
            hnp.arrays(np.float64, n, elements=st.floats(-100, 100, width=32)),
            hnp.arrays(np.int64, n, elements=st.integers(0, 2)),
        )
    )
)
@settings(max_examples=50, deadline=None)
def test_best_numeric_split_leaves_both_sides_nonempty(arrs):
    values, labels = arrs
    res = best_numeric_split_exact(values, labels, 3)
    if res is None:
        assert len(np.unique(values)) < 2
        return
    g, thr = res
    mask = values <= thr
    assert 0 < mask.sum() < len(values)
    assert 0.0 <= g <= 1.0 - 1.0 / 3 + 1e-9


@given(
    hnp.arrays(np.int64, st.tuples(st.integers(2, 8), st.just(2)),
               elements=st.integers(0, 30))
)
@settings(max_examples=60)
def test_categorical_split_valid_or_none(counts):
    res = best_categorical_split(counts)
    present = counts.sum(axis=1) > 0
    if present.sum() < 2:
        assert res is None
        return
    assert res is not None
    g, left = res
    left_counts = counts[sorted(left)].sum(axis=0)
    assert 0 < left_counts.sum() < counts.sum()
    assert g == pytest.approx(
        float(weighted_gini(left_counts, counts.sum(axis=0) - left_counts))
    )


@given(
    st.integers(2, 4).flatmap(
        lambda c: st.tuples(
            hnp.arrays(np.int64, c, elements=st.integers(0, 12)),
            hnp.arrays(np.int64, st.integers(1, 10), elements=st.integers(0, c - 1)),
            hnp.arrays(np.int64, c, elements=st.integers(0, 12)),
        )
    )
)
@settings(max_examples=60, deadline=None)
def test_lower_bound_is_sound(parts):
    """gini_est must lower-bound the gini of every realisable split inside
    the interval — the property that makes SSE safe."""
    left, inside_labels, right = parts
    c = len(left)
    inside = np.bincount(inside_labels, minlength=c)
    total = left + inside + right
    if total.sum() == 0:
        return
    bound = gini_lower_bound(
        left.astype(float), inside.astype(float), total.astype(float)
    )
    # walk one realisable ordering of the interval's points
    cum = left.astype(float)
    for lab in inside_labels:
        cum = cum + np.eye(c)[lab]
        g = float(weighted_gini(cum, total - cum))
        assert bound <= g + 1e-9


@given(counts_vectors)
def test_lower_bound_with_empty_interval_is_exact(total_half):
    total = total_half + total_half[::-1] + 1
    left = total_half
    bound = gini_lower_bound(
        left.astype(float), np.zeros_like(left, dtype=float), total.astype(float)
    )
    assert bound == pytest.approx(float(weighted_gini(left, total - left)))
