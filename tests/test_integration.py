"""Cross-module integration: pCLOUDS over the real-file spool backend,
sequential-vs-parallel agreement, end-to-end pipelines."""

import numpy as np
import pytest

from repro.cluster import Cluster
from repro.clouds import (
    CloudsBuilder,
    CloudsConfig,
    accuracy,
    mdl_prune,
    validate_tree,
)
from repro.core import DistributedDataset, PClouds, PCloudsConfig
from repro.data import generate_quest, quest_schema
from repro.ooc import FileBackend


@pytest.fixture(scope="module")
def data():
    return generate_quest(2500, function=2, seed=31, noise=0.03)


def test_pclouds_on_real_files(tmp_path, data):
    """The out-of-core path must not secretly rely on in-memory chunk
    aliasing: run the whole parallel fit over .npy spool files."""
    cols, labels = data
    schema = quest_schema()
    backends = []

    def factory():
        b = FileBackend(str(tmp_path / f"spool{len(backends)}"))
        backends.append(b)
        return b

    cluster = Cluster(3, backend_factory=factory, seed=0, timeout=120.0)
    ds = DistributedDataset.create(cluster, schema, cols, labels, seed=1)
    cfg = PCloudsConfig(clouds=CloudsConfig(q_root=50, sample_size=400, min_node=16))
    res = PClouds(cfg).fit(ds, seed=2)
    validate_tree(res.tree)
    assert accuracy(labels, res.tree.predict(cols)) > 0.9
    assert sum(b.chunks_created for b in backends) > 0

    # identical tree to the default in-memory backend
    cluster2 = Cluster(3, seed=0, timeout=120.0)
    ds2 = DistributedDataset.create(cluster2, schema, cols, labels, seed=1)
    res2 = PClouds(cfg).fit(ds2, seed=2)
    assert res.tree.to_dict() == res2.tree.to_dict()


def test_parallel_matches_sequential_quality(data):
    """pCLOUDS and sequential CLOUDS share the split machinery; given the
    same hyper-parameters their trees must be of equivalent quality."""
    cols, labels = data
    schema = quest_schema()
    seq = CloudsBuilder(
        schema, CloudsConfig(method="sse", q_root=50, sample_size=400, min_node=16)
    ).fit_arrays(cols, labels, seed=3)

    cluster = Cluster(4, seed=0, timeout=120.0)
    ds = DistributedDataset.create(cluster, schema, cols, labels, seed=1)
    par = PClouds(
        PCloudsConfig(
            clouds=CloudsConfig(method="sse", q_root=50, sample_size=400, min_node=16)
        )
    ).fit(ds, seed=3)

    acc_seq = accuracy(labels, seq.predict(cols))
    acc_par = accuracy(labels, par.tree.predict(cols))
    assert abs(acc_seq - acc_par) < 0.05


def test_full_pipeline_train_prune_predict(data):
    """The workflow a downstream user runs: distribute, fit in parallel,
    prune at the front-end, serialise, reload, predict."""
    from repro.clouds.tree import DecisionTree

    cols, labels = data
    schema = quest_schema()
    cluster = Cluster(4, seed=0, timeout=120.0)
    ds = DistributedDataset.create(cluster, schema, cols, labels, seed=1)
    res = PClouds(
        PCloudsConfig(clouds=CloudsConfig(q_root=50, sample_size=400, min_node=8))
    ).fit(ds)
    tree, removed = mdl_prune(res.tree)
    assert removed >= 0
    wire = tree.to_dict()
    reloaded = DecisionTree.from_dict(wire, schema)
    np.testing.assert_array_equal(tree.predict(cols), reloaded.predict(cols))
    assert accuracy(labels, reloaded.predict(cols)) > 0.9


def test_distribution_policies_only_change_time(data):
    cols, labels = data
    schema = quest_schema()
    trees = {}
    for policy in ("shuffle", "multinomial"):
        cluster = Cluster(4, seed=0, timeout=120.0)
        ds = DistributedDataset.create(
            cluster, schema, cols, labels, seed=1, policy=policy
        )
        res = PClouds(
            PCloudsConfig(clouds=CloudsConfig(q_root=50, sample_size=400))
        ).fit(ds, seed=2)
        trees[policy] = res
    # same global statistics => same boundary splits; sampling differs by
    # placement so compare quality, not structure
    a = accuracy(labels, trees["shuffle"].tree.predict(cols))
    b = accuracy(labels, trees["multinomial"].tree.predict(cols))
    assert abs(a - b) < 0.05


def test_unknown_policy_rejected(data):
    cols, labels = data
    cluster = Cluster(2, seed=0)
    with pytest.raises(ValueError):
        DistributedDataset.create(
            cluster, quest_schema(), cols, labels, policy="teleport"
        )


def test_dataset_bookkeeping(data):
    cols, labels = data
    cluster = Cluster(5, seed=0)
    ds = DistributedDataset.create(cluster, quest_schema(), cols, labels, seed=2)
    assert ds.n_ranks == 5
    assert sum(ds.local_rows()) == len(labels)
    assert ds.n_total == len(labels)
    # clocks were reset: the paper times from after the distribution
    assert all(c.clock.now == 0.0 for c in ds.contexts)
