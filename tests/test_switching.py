"""The analytic mixed-parallelism switching criterion (the extension
answering the paper's open question)."""

import pytest

from repro.bench.harness import scaled_models
from repro.clouds import CloudsConfig
from repro.core import PCloudsConfig
from repro.core.switching import auto_q_switch, break_even_node_size
from repro.data import generate_quest, quest_schema

from test_pclouds import fit


@pytest.fixture(scope="module")
def models():
    return scaled_models(100.0)


class TestBreakEven:
    def test_single_rank_never_switches_for_latency(self, schema, models):
        net, disk, compute = models
        assert break_even_node_size(schema, net, disk, compute, 1) == 0.0

    def test_grows_with_machine_size(self, schema, models):
        net, disk, compute = models
        sizes = [break_even_node_size(schema, net, disk, compute, p)
                 for p in (2, 4, 8, 16)]
        assert all(b > a for a, b in zip(sizes, sizes[1:]))

    def test_grows_with_latency(self, schema, models):
        from repro.cluster import NetworkModel

        _, disk, compute = models
        slow = NetworkModel(alpha=1e-2, beta=1e-9)
        fast = NetworkModel(alpha=1e-6, beta=1e-9)
        assert break_even_node_size(
            schema, slow, disk, compute, 8
        ) > break_even_node_size(schema, fast, disk, compute, 8)

    def test_shrinks_with_slower_disks(self, schema, models):
        from repro.cluster import DiskModel

        net, _, compute = models
        slow_disk = DiskModel(bandwidth=1e4)
        fast_disk = DiskModel(bandwidth=1e8)
        # slower disks make each record's pass costlier, so even small
        # nodes are worth parallelising
        assert break_even_node_size(
            schema, net, slow_disk, compute, 8
        ) < break_even_node_size(schema, net, fast_disk, compute, 8)


class TestAutoQSwitch:
    def q(self, schema, models, p, n, q_root=500, **kw):
        net, disk, compute = models
        return auto_q_switch(
            schema, CloudsConfig(q_root=q_root), net, disk, compute, p, n, **kw
        )

    def test_in_valid_range(self, schema, models):
        for p in (1, 2, 8, 16):
            q = self.q(schema, models, p, 18_000)
            assert 1 <= q <= 250

    def test_more_ranks_switch_earlier_by_balance(self, schema, models):
        # n/(2p) falls with p, so the threshold (in records) falls too —
        # but in q units both shrink proportionally; check record units
        net, disk, compute = models
        qs = {p: self.q(schema, models, p, 18_000) for p in (2, 16)}
        n2 = qs[2] / 500 * 18_000
        n16 = qs[16] / 500 * 18_000
        assert n16 <= n2

    def test_empty_dataset(self, schema, models):
        assert self.q(schema, models, 4, 0) == 1

    def test_clamped_below_half_root(self, schema, models):
        q = self.q(schema, models, 1, 10, q_root=10)
        assert q <= 5

    def test_config_accepts_auto(self):
        cfg = PCloudsConfig(q_switch="auto")
        assert cfg.q_switch == "auto"
        with pytest.raises(ValueError):
            PCloudsConfig(q_switch="magic")


class TestAutoEndToEnd:
    def test_auto_fit_builds_valid_tree(self):
        from repro.clouds import accuracy, validate_tree

        cols, labels = generate_quest(4000, function=2, seed=13, noise=0.03)
        res = fit(4, cols, labels, q_switch="auto", scaled=True)
        validate_tree(res.tree)
        assert accuracy(labels, res.tree.predict(cols)) > 0.9
        assert res.n_small_tasks > 0

    def test_auto_never_catastrophic(self):
        """At tiny test scale the criterion's constants are off-regime
        (it is calibrated against the paper-scale cost ratios, where the
        ablation bench asserts it beats the fixed threshold); here it
        must simply stay in the same ballpark as the paper's fixed 10."""
        cols, labels = generate_quest(4000, function=2, seed=13, noise=0.03)
        auto = fit(8, cols, labels, q_switch="auto", scaled=True)
        fixed = fit(8, cols, labels, q_switch=10, scaled=True)
        assert auto.elapsed <= fixed.elapsed * 2.0
