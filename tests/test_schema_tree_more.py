"""Remaining surface coverage: schema helpers on unusual shapes, tree
meta, and the wire format's stability."""

import numpy as np
import pytest

from repro.clouds import DecisionTree, StoppingRule, fit_direct
from repro.data import make_schema, quest_schema
from repro.data.synthetic import make_blobs


class TestSchemaMore:
    def test_iteration_order_is_declaration_order(self):
        s = make_schema(["b", "a"], {"z": 2, "c": 3})
        assert s.names == ["b", "a", "z", "c"]

    def test_numeric_categorical_partition(self, schema):
        names = set(schema.names)
        assert names == {a.name for a in schema.numeric} | {
            a.name for a in schema.categorical
        }

    def test_attribute_dtypes(self, schema):
        assert schema.attribute("salary").dtype == np.dtype(np.float64)
        assert schema.attribute("car").dtype == np.dtype(np.int32)

    def test_many_classes(self):
        s = make_schema(["x"], {}, n_classes=17)
        assert s.n_classes == 17


class TestTreeMetaAndWire:
    def test_meta_carried_by_builders(self, schema, quest_small):
        cols, labels = quest_small
        tree = fit_direct(schema, cols, labels, StoppingRule(min_node=256))
        assert tree.meta.get("builder") == "direct"

    def test_wire_format_fields_are_stable(self, schema, quest_small):
        """The JSON wire format is a compatibility surface (CLI, the
        small-task shipping); its field names must not drift silently."""
        cols, labels = quest_small
        tree = fit_direct(schema, cols, labels, StoppingRule(min_node=256))
        wire = tree.to_dict()
        assert set(wire) == {"root", "n_classes", "meta"}
        node = wire["root"]
        assert {"node_id", "depth", "class_counts"} <= set(node)
        if "split" in node:
            assert set(node["split"]) == {
                "attribute", "kind", "gini", "threshold", "left_codes"
            }

    def test_load_rejects_missing_file(self, schema, tmp_path):
        with pytest.raises(FileNotFoundError):
            DecisionTree.load(str(tmp_path / "nope.json"), schema)

    def test_multiclass_wire_roundtrip(self):
        schema, cols, labels = make_blobs(400, seed=31)
        tree = fit_direct(schema, cols, labels, StoppingRule(min_node=16))
        clone = DecisionTree.from_dict(tree.to_dict(), schema)
        np.testing.assert_array_equal(tree.predict(cols), clone.predict(cols))


class TestQuestSchemaSingleton:
    def test_quest_schema_fresh_instances_equal(self):
        assert quest_schema() == quest_schema()

    def test_quest_schema_hashable_attributes(self):
        # frozen dataclasses: usable as dict keys / set members
        s = quest_schema()
        assert len({a for a in s}) == 9
