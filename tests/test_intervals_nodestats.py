"""Interval construction, histogramming, and node statistics."""

import numpy as np
import pytest

from repro.clouds.intervals import (
    boundaries_from_sample,
    categorical_count_matrix,
    class_counts,
    interval_histogram,
    interval_index,
    scale_q,
)
from repro.clouds.nodestats import (
    accumulate_batch,
    empty_stats,
    stats_from_arrays,
)
from repro.data import generate_quest, quest_schema


class TestBoundaries:
    def test_equal_frequency_on_uniform(self):
        sample = np.arange(1000, dtype=float)
        b = boundaries_from_sample(sample, 4)
        assert len(b) == 3
        np.testing.assert_allclose(b, [249, 499, 749])  # order statistics

    def test_boundaries_are_sample_values(self):
        rng = np.random.default_rng(5)
        sample = rng.normal(size=200)
        b = boundaries_from_sample(sample, 16)
        assert np.isin(b, sample).all()

    def test_boundaries_strictly_increasing(self):
        rng = np.random.default_rng(0)
        b = boundaries_from_sample(rng.normal(size=500), 50)
        assert (np.diff(b) > 0).all()

    def test_duplicates_collapse(self):
        sample = np.array([1.0] * 50 + [2.0] * 50)
        b = boundaries_from_sample(sample, 10)
        assert len(b) <= 2  # only two distinct values exist

    def test_constant_sample_no_boundaries(self):
        assert len(boundaries_from_sample(np.ones(100), 10)) <= 1

    def test_empty_sample(self):
        assert len(boundaries_from_sample(np.empty(0), 5)) == 0

    def test_single_interval(self):
        assert len(boundaries_from_sample(np.arange(10.0), 1)) == 0

    def test_invalid_q(self):
        with pytest.raises(ValueError):
            boundaries_from_sample(np.arange(10.0), 0)


class TestIntervalIndex:
    def test_boundary_value_goes_left(self):
        b = np.array([1.0, 2.0])
        idx = interval_index(np.array([0.5, 1.0, 1.5, 2.0, 2.5]), b)
        np.testing.assert_array_equal(idx, [0, 0, 1, 1, 2])

    def test_no_boundaries_single_interval(self):
        idx = interval_index(np.array([1.0, 5.0]), np.empty(0))
        np.testing.assert_array_equal(idx, [0, 0])


class TestHistogram:
    def test_histogram_totals(self):
        rng = np.random.default_rng(1)
        values = rng.random(300)
        labels = rng.integers(0, 3, 300)
        b = boundaries_from_sample(values, 10)
        h = interval_histogram(values, labels, b, 3)
        assert h.shape == (len(b) + 1, 3)
        np.testing.assert_array_equal(h.sum(axis=0), class_counts(labels, 3))

    def test_histogram_is_cumulative_consistent(self):
        values = np.array([0.1, 0.5, 0.9, 1.5])
        labels = np.array([0, 1, 0, 1])
        b = np.array([0.5, 1.0])
        h = interval_histogram(values, labels, b, 2)
        np.testing.assert_array_equal(h, [[1, 1], [1, 0], [0, 1]])

    def test_class_counts(self):
        np.testing.assert_array_equal(
            class_counts(np.array([0, 2, 2, 1]), 4), [1, 1, 2, 0]
        )

    def test_categorical_count_matrix(self):
        codes = np.array([0, 1, 1, 2])
        labels = np.array([0, 0, 1, 1])
        m = categorical_count_matrix(codes, labels, 3, 2)
        np.testing.assert_array_equal(m, [[1, 0], [1, 1], [0, 1]])


class TestScaleQ:
    def test_proportional(self):
        assert scale_q(1000, 500_000, 1_000_000) == 500

    def test_floor_at_q_min(self):
        assert scale_q(1000, 10, 1_000_000, q_min=5) == 5

    def test_root_unchanged(self):
        assert scale_q(1000, 1_000_000, 1_000_000) == 1000

    def test_zero_root(self):
        assert scale_q(1000, 0, 0) == 2


class TestNodeStats:
    @pytest.fixture
    def setup(self):
        schema = quest_schema()
        cols, labels = generate_quest(1200, seed=3)
        bounds = {
            a.name: boundaries_from_sample(cols[a.name], 8) for a in schema.numeric
        }
        return schema, cols, labels, bounds

    def test_batchwise_equals_oneshot(self, setup):
        schema, cols, labels, bounds = setup
        whole = stats_from_arrays(schema, cols, labels, bounds)
        parts = empty_stats(schema, bounds)
        for lo in range(0, 1200, 100):
            accumulate_batch(
                parts,
                schema,
                {k: v[lo : lo + 100] for k, v in cols.items()},
                labels[lo : lo + 100],
            )
        np.testing.assert_array_equal(whole.total, parts.total)
        for name in whole.numeric:
            np.testing.assert_array_equal(
                whole.numeric[name].hist, parts.numeric[name].hist
            )
        for name in whole.categorical:
            np.testing.assert_array_equal(
                whole.categorical[name], parts.categorical[name]
            )

    def test_add_inplace_matches_concat(self, setup):
        schema, cols, labels, bounds = setup
        half = {k: v[:600] for k, v in cols.items()}
        rest = {k: v[600:] for k, v in cols.items()}
        a = stats_from_arrays(schema, half, labels[:600], bounds)
        b = stats_from_arrays(schema, rest, labels[600:], bounds)
        a.add_inplace(b)
        whole = stats_from_arrays(schema, cols, labels, bounds)
        np.testing.assert_array_equal(a.total, whole.total)
        for name in whole.numeric:
            np.testing.assert_array_equal(
                a.numeric[name].hist, whole.numeric[name].hist
            )

    def test_add_inplace_rejects_mismatched_intervals(self, setup):
        schema, cols, labels, bounds = setup
        a = stats_from_arrays(schema, cols, labels, bounds)
        other_bounds = {
            name: b[:-1] if len(b) else b for name, b in bounds.items()
        }
        b = stats_from_arrays(schema, cols, labels, other_bounds)
        with pytest.raises(ValueError):
            a.add_inplace(b)

    def test_left_of_interval_shifts_cumsum(self, setup):
        schema, cols, labels, bounds = setup
        stats = stats_from_arrays(schema, cols, labels, bounds)
        ns = stats.numeric["salary"]
        left = ns.left_of_interval()
        np.testing.assert_array_equal(left[0], 0)
        np.testing.assert_array_equal(
            left[-1] + ns.hist[-1], stats.total
        )

    def test_cumulative_rows_are_boundary_counts(self, setup):
        schema, cols, labels, bounds = setup
        stats = stats_from_arrays(schema, cols, labels, bounds)
        ns = stats.numeric["age"]
        cum = ns.cumulative()
        assert cum.shape[0] == len(ns.boundaries)
        for i, b in enumerate(ns.boundaries):
            mask = cols["age"] <= b
            np.testing.assert_array_equal(cum[i], class_counts(labels[mask], 2))

    def test_n_property(self, setup):
        schema, cols, labels, bounds = setup
        assert stats_from_arrays(schema, cols, labels, bounds).n == 1200
