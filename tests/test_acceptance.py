"""Acceptance test: the full workflow a downstream adopter would run,
end to end, across every major subsystem in one story."""

import numpy as np
import pytest

from repro.bench.harness import scaled_models
from repro.cluster import Cluster
from repro.clouds import (
    CloudsConfig,
    accuracy,
    gini_importance,
    mdl_prune,
    train_test_split,
    validate_tree,
)
from repro.core import (
    DistributedDataset,
    PClouds,
    PCloudsConfig,
    parallel_evaluate,
)
from repro.data import generate_quest, quest_schema, read_csv, write_csv


@pytest.mark.slow
def test_full_adoption_story(tmp_path):
    schema = quest_schema()

    # 1. data arrives as CSV
    columns, labels = generate_quest(6000, function=2, seed=71, noise=0.05)
    csv_path = str(tmp_path / "train.csv")
    write_csv(csv_path, schema, columns, labels)
    schema2, columns, labels, codec = read_csv(
        csv_path, label_column="label",
        categorical_columns={"elevel", "car", "zipcode"},
    )
    tr_c, tr_y, te_c, te_y = train_test_split(columns, labels, 0.25, seed=72)

    # 2. a 8-node machine with paper-regime cost models and a real memory
    # limit, fitting with the distributed exchange and the auto switch
    net, disk, compute = scaled_models(100.0)
    cluster = Cluster(
        8, network=net, disk=disk, compute=compute,
        memory_limit=32 * 1024, seed=0, timeout=300.0,
    )
    data = DistributedDataset.create(cluster, schema2, tr_c, tr_y, seed=73)
    result = PClouds(
        PCloudsConfig(
            clouds=CloudsConfig(
                method="sse", q_root=150, sample_size=900, min_node=16
            ),
            q_switch="auto",
            exchange="distributed",
        )
    ).fit(data, seed=74)
    validate_tree(result.tree)
    assert result.elapsed > 0
    assert result.n_large_nodes > 0 and result.n_small_tasks > 0
    # I/O balanced across the machine (Lemma 2)
    assert result.run.stats.imbalance("bytes_read") < 1.3

    # 3. prune at the front-end, persist, reload
    tree, _ = mdl_prune(result.tree)
    model_path = str(tmp_path / "model.json")
    tree.save(model_path)
    from repro.clouds import DecisionTree

    tree = DecisionTree.load(model_path, schema2)

    # 4. distributed evaluation of the holdout
    test_cluster = Cluster(
        8, network=net, disk=disk, compute=compute, seed=1, timeout=300.0
    )
    test_data = DistributedDataset.create(
        test_cluster, schema2, te_c, te_y, seed=75
    )
    ev = parallel_evaluate(test_data, tree)
    assert ev.accuracy == pytest.approx(accuracy(te_y, tree.predict(te_c)))
    assert ev.accuracy > 0.85

    # 5. the model makes sense: function 2 is an (age, salary) concept
    imp = gini_importance(tree)
    top_two = sorted(imp, key=imp.get, reverse=True)[:2]
    assert set(top_two) == {"age", "salary"}

    # 6. decode predictions back to the CSV's label vocabulary
    decoded = codec.decode_labels(tree.predict(te_c)[:5])
    assert set(decoded) <= set(codec.labels)
