"""SLIQ baseline, CSV dataset I/O, and non-blocking point-to-point."""

import numpy as np
import pytest

from repro.clouds import (
    SliqBuilder,
    SprintBuilder,
    StoppingRule,
    accuracy,
    fit_direct,
    validate_tree,
)
from repro.data import generate_quest, quest_schema, read_csv, write_csv

from conftest import make_cluster


class TestSliq:
    @pytest.fixture(scope="class")
    def fitted(self, schema, quest_small):
        cols, labels = quest_small
        stop = StoppingRule(min_node=16)
        return (
            SliqBuilder(schema, stop).fit(cols, labels),
            fit_direct(schema, cols, labels, stop),
            cols,
            labels,
        )

    def test_matches_direct_oracle(self, fitted):
        sliq, direct, cols, labels = fitted
        np.testing.assert_array_equal(sliq.predict(cols), direct.predict(cols))
        assert sliq.n_nodes == direct.n_nodes
        assert sliq.depth == direct.depth
        assert sliq.describe() == direct.describe()

    def test_invariants(self, fitted):
        sliq, _, _, _ = fitted
        validate_tree(sliq)

    def test_matches_sprint_too(self, schema, quest_small):
        cols, labels = quest_small
        stop = StoppingRule(min_node=32)
        sliq = SliqBuilder(schema, stop).fit(cols, labels)
        sprint = SprintBuilder(schema, stop).fit(cols, labels)
        np.testing.assert_array_equal(sliq.predict(cols), sprint.predict(cols))

    def test_breadth_first_ids(self, fitted):
        """SLIQ grows level by level: child ids exceed all ids of
        shallower nodes."""
        sliq, _, _, _ = fitted
        by_depth: dict[int, list[int]] = {}
        for node in sliq.iter_nodes():
            by_depth.setdefault(node.depth, []).append(node.node_id)
        depths = sorted(by_depth)
        for a, b in zip(depths, depths[1:]):
            assert max(by_depth[a]) < min(by_depth[b])

    def test_single_class(self, schema, quest_small):
        cols, _ = quest_small
        labels = np.zeros(len(cols["age"]), dtype=np.int32)
        tree = SliqBuilder(schema).fit(cols, labels)
        assert tree.root.is_leaf

    def test_max_depth(self, schema, quest_small):
        cols, labels = quest_small
        tree = SliqBuilder(schema, StoppingRule(max_depth=3)).fit(cols, labels)
        assert tree.depth <= 3


class TestCsvIO:
    @pytest.fixture
    def csv_path(self, tmp_path):
        path = tmp_path / "data.csv"
        path.write_text(
            "age,income,city,outcome\n"
            "34,51000.5,paris,yes\n"
            "61,23000.0,tokyo,no\n"
            "45,80000.25,paris,yes\n"
            "29,15500.0,lima,no\n"
            "52,67000.0,tokyo,yes\n"
        )
        return str(path)

    def test_roundtrip(self, csv_path, tmp_path):
        schema, cols, labels, codec = read_csv(
            csv_path, label_column="outcome", categorical_columns={"city"}
        )
        assert schema.attribute("age").is_numeric
        assert not schema.attribute("city").is_numeric
        assert len(labels) == 5
        assert codec.labels == {"yes": 0, "no": 1}
        assert codec.categorical["city"] == {"paris": 0, "tokyo": 1, "lima": 2}
        np.testing.assert_allclose(cols["income"][:2], [51000.5, 23000.0])

        out = str(tmp_path / "back.csv")
        write_csv(out, schema, cols, labels, label_column="outcome", codec=codec)
        schema2, cols2, labels2, _ = read_csv(
            out, label_column="outcome", categorical_columns={"city"}
        )
        np.testing.assert_array_equal(labels, labels2)
        np.testing.assert_allclose(cols["income"], cols2["income"])
        np.testing.assert_array_equal(cols["city"], cols2["city"])

    def test_trainable(self, csv_path):
        schema, cols, labels, _ = read_csv(
            csv_path, label_column="outcome", categorical_columns={"city"}
        )
        tree = fit_direct(schema, cols, labels, StoppingRule(min_node=1))
        assert accuracy(labels, tree.predict(cols)) == 1.0

    def test_decode_labels(self, csv_path):
        _, _, labels, codec = read_csv(
            csv_path, label_column="outcome", categorical_columns={"city"}
        )
        assert codec.decode_labels(labels[:2]) == ["yes", "no"]

    def test_missing_label_column(self, csv_path):
        with pytest.raises(ValueError, match="label column"):
            read_csv(csv_path, label_column="nope")

    def test_unparseable_numeric_names_row(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("x,label\n1.5,a\noops,b\n")
        with pytest.raises(ValueError, match="bad.csv:3"):
            read_csv(str(path), label_column="label")

    def test_unknown_categorical_column(self, csv_path):
        with pytest.raises(ValueError, match="categorical"):
            read_csv(csv_path, label_column="outcome", categorical_columns={"ghost"})

    def test_single_label_value_rejected(self, tmp_path):
        path = tmp_path / "one.csv"
        path.write_text("x,label\n1,a\n2,a\n")
        with pytest.raises(ValueError, match="two distinct"):
            read_csv(str(path), label_column="label")

    def test_quest_roundtrip(self, tmp_path):
        schema = quest_schema()
        cols, labels = generate_quest(50, seed=1)
        path = str(tmp_path / "quest.csv")
        write_csv(path, schema, cols, labels)
        schema2, cols2, labels2, _ = read_csv(
            path,
            label_column="label",
            categorical_columns={"elevel", "car", "zipcode"},
        )
        np.testing.assert_allclose(cols["salary"], cols2["salary"])
        assert len(labels2) == 50


class TestNonBlocking:
    def test_isend_irecv_roundtrip(self):
        c = make_cluster(2)

        def prog(ctx):
            if ctx.rank == 0:
                req = ctx.comm.isend({"k": 1}, dst=1)
                req.wait()
                return None
            req = ctx.comm.irecv(src=0)
            return req.wait()

        assert c.run(prog).results[1] == {"k": 1}

    def test_isend_overlaps_compute(self):
        """The point of non-blocking sends: computation proceeds during
        the transfer, so total time beats send-then-compute."""
        import numpy as np

        c = make_cluster(2)
        big = np.zeros(1 << 20)

        def overlapped(ctx):
            if ctx.rank == 0:
                req = ctx.comm.isend(big, dst=1)
                ctx.charge_compute(seconds=0.01)
                req.wait()
                return ctx.clock.now
            ctx.comm.recv(src=0)

        def blocking(ctx):
            if ctx.rank == 0:
                ctx.comm.send(big, dst=1)
                ctx.charge_compute(seconds=0.01)
                return ctx.clock.now
            ctx.comm.recv(src=0)

        t_overlap = c.run(overlapped).results[0]
        t_block = make_cluster(2).run(blocking).results[0]
        assert t_overlap < t_block

    def test_wait_idempotent(self):
        c = make_cluster(2)

        def prog(ctx):
            if ctx.rank == 0:
                ctx.comm.send("v", dst=1)
                return None
            req = ctx.comm.irecv(src=0)
            a = req.wait()
            b = req.wait()
            return a, b

        assert c.run(prog).results[1] == ("v", "v")

    def test_send_test_reflects_transfer(self):
        c = make_cluster(2)
        import numpy as np

        def prog(ctx):
            if ctx.rank == 0:
                req = ctx.comm.isend(np.zeros(1 << 20), dst=1)
                before = req.test()
                ctx.charge_compute(seconds=10.0)  # transfer surely drained
                after = req.test()
                return before, after
            ctx.comm.recv(src=0)

        before, after = c.run(prog).results[0]
        assert not before and after

    def test_bad_ranks_rejected(self):
        c = make_cluster(2)
        from repro.cluster import SpmdProgramError

        with pytest.raises(SpmdProgramError):
            c.run(lambda ctx: ctx.comm.isend(1, dst=5))
        with pytest.raises(SpmdProgramError):
            make_cluster(2).run(lambda ctx: ctx.comm.irecv(src=-1))
