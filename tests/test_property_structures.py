"""Property-based tests on intervals, trees, LPT assignment, and the
out-of-core files."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.cluster.clock import SimClock
from repro.cluster.diskmodel import DiskModel
from repro.cluster.stats import RankStats
from repro.clouds.direct import StoppingRule, fit_direct
from repro.clouds.intervals import (
    boundaries_from_sample,
    interval_histogram,
    interval_index,
)
from repro.clouds.tree import validate_tree
from repro.core.alive import assign_by_cost
from repro.data import make_schema
from repro.ooc import InMemoryBackend, LocalDisk, OocArray


def fresh_disk():
    return LocalDisk(DiskModel(), SimClock(), RankStats(), InMemoryBackend())


@given(
    hnp.arrays(np.float64, st.integers(1, 300),
               elements=st.floats(-1e6, 1e6, width=32)),
    st.integers(1, 64),
)
def test_boundaries_sorted_unique_within_range(sample, q):
    b = boundaries_from_sample(sample, q)
    assert len(b) <= q - 1 if q > 1 else len(b) == 0
    assert (np.diff(b) > 0).all()
    if len(b):
        assert b.min() >= sample.min() and b.max() <= sample.max()


@given(
    hnp.arrays(np.float64, st.integers(0, 200), elements=st.floats(-100, 100, width=16)),
    hnp.arrays(np.float64, st.integers(0, 6), elements=st.floats(-100, 100, width=16)),
)
def test_interval_index_within_bounds(values, raw_bounds):
    b = np.unique(raw_bounds)
    idx = interval_index(values, b)
    if len(values):
        assert idx.min() >= 0 and idx.max() <= len(b)


@given(
    st.integers(1, 150).flatmap(
        lambda n: st.tuples(
            hnp.arrays(np.float64, n, elements=st.floats(0, 10, width=16)),
            hnp.arrays(np.int64, n, elements=st.integers(0, 2)),
        )
    ),
    st.integers(2, 16),
)
def test_histogram_conserves_mass(arrs, q):
    values, labels = arrs
    b = boundaries_from_sample(values, q)
    h = interval_histogram(values, labels, b, 3)
    assert h.sum() == len(values)
    np.testing.assert_array_equal(
        h.sum(axis=0), np.bincount(labels, minlength=3)
    )


@given(
    st.lists(st.floats(0.01, 100.0), min_size=0, max_size=50),
    st.integers(1, 8),
)
def test_lpt_assignment_properties(costs, p):
    owners = assign_by_cost(costs, p)
    assert len(owners) == len(costs)
    assert all(0 <= o < p for o in owners)
    if costs:
        loads = [0.0] * p
        for c, o in zip(costs, owners):
            loads[o] += c
        # classic LPT bound: max load <= mean + max item
        assert max(loads) <= sum(costs) / p + max(costs) + 1e-9


@given(st.lists(
    hnp.arrays(np.float64, st.integers(0, 40), elements=st.floats(-1, 1, width=16)),
    min_size=0, max_size=10,
))
def test_ooc_array_is_a_faithful_sequence(chunks):
    f = OocArray(fresh_disk(), np.float64)
    expect = []
    for c in chunks:
        f.append(c)
        expect.append(c)
    whole = np.concatenate(expect) if expect else np.empty(0)
    np.testing.assert_array_equal(f.read_all(), whole)
    assert len(f) == len(whole)
    streamed = list(f.iter_chunks())
    if streamed:
        np.testing.assert_array_equal(np.concatenate(streamed), whole)


@given(
    st.integers(20, 300),
    st.integers(2, 4),
    st.integers(0, 10_000),
)
@settings(max_examples=20, deadline=None)
def test_direct_tree_invariants_hold_for_random_data(n, n_classes, seed):
    rng = np.random.default_rng(seed)
    schema = make_schema(["x", "y"], {"c": 4}, n_classes=n_classes)
    cols = {
        "x": rng.normal(size=n),
        "y": rng.choice(5, n).astype(float),
        "c": rng.integers(0, 4, n).astype(np.int32),
    }
    labels = rng.integers(0, n_classes, n).astype(np.int32)
    tree = fit_direct(schema, cols, labels, StoppingRule(min_node=5))
    validate_tree(tree)
    leaves = [node for node in tree.iter_nodes() if node.is_leaf]
    assert sum(node.n for node in leaves) == n
    preds = tree.predict(cols)
    assert preds.shape == (n,)
    assert preds.min() >= 0 and preds.max() < n_classes


@given(st.integers(0, 2**31), st.integers(1, 10))
@settings(max_examples=25, deadline=None)
def test_quest_generator_total_order_free(seed, function):
    """Any seed/function combination yields schema-conforming data."""
    from repro.data import generate_quest, quest_schema

    cols, labels = generate_quest(64, function=function, seed=seed)
    schema = quest_schema()
    assert schema.validate_columns(cols, labels) == 64
