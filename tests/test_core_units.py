"""Unit tests of the pCLOUDS building blocks: statistics exchange,
alive-interval evaluation, LPT assignment, small-task processing, and
the access modes."""

import numpy as np
import pytest

from repro.clouds.builder import node_boundaries
from repro.clouds.direct import StoppingRule, fit_direct
from repro.clouds.intervals import class_counts
from repro.clouds.nodestats import stats_from_arrays
from repro.clouds.splits import Split
from repro.clouds.ss import find_split_ss
from repro.clouds.sse import determine_alive_intervals
from repro.clouds.tree import decode_node
from repro.core.access import InCoreAccess, StreamingAccess, open_node
from repro.core.alive import assign_by_cost, evaluate_alive_parallel
from repro.core.config import PCloudsConfig
from repro.core.small_tasks import SmallTask, process_small_tasks
from repro.core.stats_exchange import attribute_owner, exchange_node_stats
from repro.clouds import CloudsConfig
from repro.data import quest_schema, shuffle_split
from repro.data.distribute import load_fragment
from repro.ooc import ColumnSet

from conftest import make_cluster


class TestAttributeOwner:
    def test_round_robin(self):
        assert [attribute_owner(i, 4) for i in range(9)] == [0, 1, 2, 3, 0, 1, 2, 3, 0]

    def test_single_rank_owns_all(self):
        assert all(attribute_owner(i, 1) == 0 for i in range(9))


class TestAssignByCost:
    def test_lpt_balances(self):
        costs = [10.0, 9.0, 8.0, 1.0, 1.0, 1.0]
        owners = assign_by_cost(costs, 3)
        loads = [0.0] * 3
        for c, o in zip(costs, owners):
            loads[o] += c
        assert max(loads) <= 11.0  # LPT: no rank hoards the big items

    def test_deterministic(self):
        costs = [3.0, 1.0, 4.0, 1.0, 5.0]
        assert assign_by_cost(costs, 2) == assign_by_cost(costs, 2)

    def test_empty(self):
        assert assign_by_cost([], 4) == []

    def test_more_ranks_than_items(self):
        owners = assign_by_cost([5.0, 3.0], 8)
        assert len(set(owners)) == 2  # spread, not stacked

    def test_single_rank(self):
        assert assign_by_cost([1.0, 2.0], 1) == [0, 0]


class TestExchange:
    @pytest.fixture
    def setup(self, schema, quest_small):
        cols, labels = quest_small
        sample = {k: v[:400] for k, v in cols.items()}
        bounds = node_boundaries(schema, sample, 30)
        total = class_counts(labels, 2)
        frags = shuffle_split(cols, labels, 4, seed=3)
        return schema, bounds, total, frags, cols, labels

    @pytest.mark.parametrize("exchange", ["attribute", "distributed", "allreduce"])
    def test_matches_sequential_ss(self, setup, exchange):
        schema, bounds, total, frags, cols, labels = setup
        config = PCloudsConfig(
            clouds=CloudsConfig(method="sse", q_root=30), exchange=exchange
        )
        seq_stats = stats_from_arrays(schema, cols, labels, bounds)
        seq_split = find_split_ss(seq_stats, schema)
        seq_alive = determine_alive_intervals(seq_stats, schema, seq_split.gini)

        def prog(ctx):
            fcols, flabels = frags[ctx.rank]
            local = stats_from_arrays(schema, fcols, flabels, bounds)
            split, alive = exchange_node_stats(ctx, schema, local, total, config)
            return split, [(iv.attribute, iv.index) for iv in alive]

        run = make_cluster(4).run(prog)
        for split, alive_keys in run.results:
            assert split.gini == pytest.approx(seq_split.gini)
            assert split.attribute == seq_split.attribute
            assert alive_keys == sorted(
                (iv.attribute, iv.index) for iv in seq_alive
            )

    def test_ss_method_returns_no_alive(self, setup):
        schema, bounds, total, frags, _, _ = setup
        config = PCloudsConfig(clouds=CloudsConfig(method="ss", q_root=30))

        def prog(ctx):
            fcols, flabels = frags[ctx.rank]
            local = stats_from_arrays(schema, fcols, flabels, bounds)
            return exchange_node_stats(ctx, schema, local, total, config)[1]

        assert make_cluster(4).run(prog).results == [[]] * 4


class TestParallelAlive:
    def test_matches_sequential_refinement(self, schema, quest_small):
        cols, labels = quest_small
        sample = {k: v[:400] for k, v in cols.items()}
        bounds = node_boundaries(schema, sample, 30)
        stats = stats_from_arrays(schema, cols, labels, bounds)
        boundary = find_split_ss(stats, schema)
        alive = determine_alive_intervals(stats, schema, boundary.gini)
        assert alive
        from repro.clouds.builder import find_split_from_arrays, CloudsConfig as CC

        seq_split, _, _ = find_split_from_arrays(
            schema, cols, labels, bounds, CC(method="sse", q_root=30)
        )
        frags = shuffle_split(cols, labels, 3, seed=5)

        def prog(ctx):
            cs = load_fragment(ctx, schema, frags, batch_rows=300)
            access = open_node(ctx, cs, schema)
            return evaluate_alive_parallel(
                ctx, access, alive, stats.total, schema, boundary
            )

        run = make_cluster(3).run(prog)
        for split in run.results:
            assert split.gini == pytest.approx(seq_split.gini)

    def test_no_alive_returns_boundary(self, schema, quest_small):
        cols, labels = quest_small
        boundary = Split("age", "numeric", gini=0.2, threshold=40.0)
        frags = shuffle_split(cols, labels, 2, seed=5)

        def prog(ctx):
            cs = load_fragment(ctx, schema, frags)
            access = open_node(ctx, cs, schema)
            return evaluate_alive_parallel(
                ctx, access, [], class_counts(labels, 2), schema, boundary
            )

        assert all(s is boundary for s in make_cluster(2).run(prog).results)


class TestAccessModes:
    @pytest.fixture
    def fragments(self, schema, quest_small):
        return shuffle_split(*quest_small, 1, seed=0)

    def test_mode_selected_by_memory(self, schema, fragments):
        def prog(ctx):
            cs = load_fragment(ctx, schema, fragments)
            return type(open_node(ctx, cs, schema)).__name__

        assert make_cluster(1).run(prog).results == ["InCoreAccess"]
        assert make_cluster(1, memory_limit=1024).run(prog).results == [
            "StreamingAccess"
        ]

    def test_modes_produce_identical_stats(self, schema, fragments, quest_small):
        cols, labels = quest_small
        bounds = node_boundaries(schema, {k: v[:300] for k, v in cols.items()}, 20)

        def prog(ctx, mode):
            cs = load_fragment(ctx, schema, fragments, batch_rows=256)
            access = (InCoreAccess if mode == "core" else StreamingAccess)(
                ctx, cs, schema
            )
            stats = access.stats_pass(bounds)
            return stats.total, {k: v.hist for k, v in stats.numeric.items()}

        core = make_cluster(1).run(prog, "core").results[0]
        stream = make_cluster(1).run(prog, "stream").results[0]
        np.testing.assert_array_equal(core[0], stream[0])
        for k in core[1]:
            np.testing.assert_array_equal(core[1][k], stream[1][k])

    def test_streaming_reads_more_bytes(self, schema, fragments):
        bounds_q = 10

        def prog(ctx, mode):
            cs = load_fragment(ctx, schema, fragments, batch_rows=256)
            sample_cols, _ = cs.read_all()
            bounds = node_boundaries(schema, sample_cols, bounds_q)
            before = ctx.stats.bytes_read
            access = (InCoreAccess if mode == "core" else StreamingAccess)(
                ctx, cs, schema
            )
            access.stats_pass(bounds)
            access.partition(Split("age", "numeric", gini=0.1, threshold=50.0))
            return ctx.stats.bytes_read - before

        core = make_cluster(1).run(prog, "core").results[0]
        stream = make_cluster(1).run(prog, "stream").results[0]
        assert stream > core  # streaming re-reads for the partition pass

    def test_partition_modes_agree(self, schema, fragments, quest_small):
        cols, labels = quest_small
        split = Split("age", "numeric", gini=0.1, threshold=50.0)

        def prog(ctx, mode):
            cs = load_fragment(ctx, schema, fragments, batch_rows=256)
            access = (InCoreAccess if mode == "core" else StreamingAccess)(
                ctx, cs, schema
            )
            left, right, counts = access.partition(split)
            return left.nrows, right.nrows, counts

        core = make_cluster(1).run(prog, "core").results[0]
        stream = make_cluster(1).run(prog, "stream").results[0]
        assert core[0] == stream[0] and core[1] == stream[1]
        np.testing.assert_array_equal(core[2], stream[2])
        expect_left = int((cols["age"] <= 50.0).sum())
        assert core[0] == expect_left


class TestSmallTasks:
    def test_parallel_small_tasks_match_sequential_direct(self, schema, quest_small):
        cols, labels = quest_small
        config = PCloudsConfig(clouds=CloudsConfig(q_root=50, min_node=8))
        frags = shuffle_split(cols, labels, 3, seed=9)
        total = class_counts(labels, 2)

        def prog(ctx):
            cs = load_fragment(ctx, schema, frags)
            task = SmallTask(
                node_id=7, depth=2, n_global=len(labels),
                class_counts=total, columnset=cs,
            )
            return process_small_tasks(ctx, [task], schema, config)

        run = make_cluster(3).run(prog)
        built = {}
        for r in run.results:
            built.update(r)
        assert set(built) == {7}
        root = decode_node(built[7])
        assert root.depth == 2
        np.testing.assert_array_equal(root.class_counts, total)
        # same records => same accuracy as a sequential direct build
        seq = fit_direct(schema, cols, labels, StoppingRule(min_node=8))
        from repro.clouds.metrics import accuracy
        from repro.clouds.tree import DecisionTree

        par_tree = DecisionTree(root=root, schema=schema)
        assert accuracy(labels, par_tree.predict(cols)) == pytest.approx(
            accuracy(labels, seq.predict(cols)), abs=0.01
        )

    def test_tasks_spread_across_owners(self, schema, quest_small):
        cols, labels = quest_small
        config = PCloudsConfig(clouds=CloudsConfig(q_root=50, min_node=8))
        frags = shuffle_split(cols, labels, 4, seed=10)

        def prog(ctx):
            tasks = []
            fcols, flabels = frags[ctx.rank]
            step = len(flabels) // 4
            for t in range(4):
                lo, hi = t * step, (t + 1) * step
                cs = ColumnSet.from_arrays(
                    ctx.disk,
                    schema,
                    {k: v[lo:hi] for k, v in fcols.items()},
                    flabels[lo:hi],
                    name=f"t{t}",
                )
                tasks.append(
                    SmallTask(
                        node_id=t, depth=1, n_global=step * 4,
                        class_counts=class_counts(labels, 2), columnset=cs,
                    )
                )
            out = process_small_tasks(ctx, tasks, schema, config)
            return sorted(out)

        run = make_cluster(4).run(prog)
        owned = [r for r in run.results if r]
        assert sum(len(o) for o in owned) == 4  # every task built exactly once
        assert len(owned) >= 2  # spread over at least two ranks
