"""Communication tracing and the SPMD schedule contract."""

import numpy as np
import pytest

from repro.cluster import Cluster
from repro.cluster.trace import (
    Tracer,
    assert_schedules_match,
    attach_tracers,
)

from conftest import make_cluster


def test_events_recorded_in_order():
    c = make_cluster(2)
    ctxs = c.make_contexts()
    tracers = attach_tracers(ctxs)

    def prog(ctx):
        ctx.comm.allgather(np.zeros(10))
        ctx.comm.barrier()
        ctx.comm.allreduce(1)

    c.run(prog, contexts=ctxs)
    ops = tracers[0].schedule()
    assert ops == ["allgather", "barrier", "allreduce"]
    assert tracers[0].events[0].nbytes == 80
    assert tracers[0].events[0].t_end >= tracers[0].events[0].t_start


def test_schedules_match_for_correct_program():
    c = make_cluster(4)
    ctxs = c.make_contexts()
    tracers = attach_tracers(ctxs)

    def prog(ctx):
        for _ in range(3):
            ctx.comm.allreduce(ctx.rank)
        ctx.comm.gather(ctx.rank, root=1)

    c.run(prog, contexts=ctxs)
    assert_schedules_match(tracers)


def test_p2p_excluded_from_schedule():
    c = make_cluster(2)
    ctxs = c.make_contexts()
    tracers = attach_tracers(ctxs)

    def prog(ctx):
        if ctx.rank == 0:
            ctx.comm.send("x", dst=1)
        else:
            ctx.comm.recv(src=0)
        ctx.comm.barrier()

    c.run(prog, contexts=ctxs)
    assert_schedules_match(tracers)  # sends/recvs differ; barrier matches
    assert any(e.op in ("send", "recv") for t in tracers for e in t.events)


def test_divergence_detected():
    a = Tracer(rank=0)
    b = Tracer(rank=1)
    a.record("allgather", 8, 0.0, 1.0)
    b.record("barrier", 0, 0.0, 1.0)
    with pytest.raises(AssertionError, match="diverged"):
        assert_schedules_match([a, b])


def test_length_mismatch_detected():
    a = Tracer(rank=0)
    b = Tracer(rank=1)
    a.record("barrier", 0, 0.0, 1.0)
    a.record("barrier", 0, 1.0, 2.0)
    b.record("barrier", 0, 0.0, 1.0)
    with pytest.raises(AssertionError, match="executed"):
        assert_schedules_match([a, b])


def test_timeline_renders():
    t = Tracer(rank=3)
    t.record("allreduce", 64, 0.5, 0.75)
    text = t.timeline()
    assert "rank 3" in text and "allreduce" in text
    assert t.total_comm_bytes() == 64


def test_pclouds_obeys_the_spmd_contract(schema, quest_small):
    """The paper's whole algorithm under the tracer: every rank must
    execute the identical collective schedule."""
    from repro.clouds import CloudsConfig
    from repro.core import DistributedDataset, PClouds, PCloudsConfig

    cols, labels = quest_small
    cluster = Cluster(4, seed=0, timeout=120.0)
    ds = DistributedDataset.create(cluster, schema, cols, labels, seed=1)
    tracers = attach_tracers(ds.contexts)
    PClouds(
        PCloudsConfig(clouds=CloudsConfig(q_root=40, sample_size=300, min_node=16))
    ).fit(ds, seed=2)
    assert_schedules_match(tracers)
    # and the schedule is substantial (stats + alive + partition per node)
    assert len(tracers[0].schedule()) > 20
