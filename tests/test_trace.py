"""Event tracing (comm + disk + phases) and the SPMD schedule contract."""

import json

import numpy as np
import pytest

from repro.cluster import Cluster
from repro.cluster.trace import (
    Tracer,
    assert_schedules_match,
    attach_tracers,
)
from repro.cluster.tracereport import (
    TraceReport,
    to_chrome_trace,
    write_chrome_trace,
)

from conftest import make_cluster


def test_events_recorded_in_order():
    c = make_cluster(2)
    ctxs = c.make_contexts()
    tracers = attach_tracers(ctxs)

    def prog(ctx):
        ctx.comm.allgather(np.zeros(10))
        ctx.comm.barrier()
        ctx.comm.allreduce(1)

    c.run(prog, contexts=ctxs)
    ops = tracers[0].schedule()
    assert ops == ["allgather", "barrier", "allreduce"]
    assert tracers[0].events[0].nbytes == 80
    assert tracers[0].events[0].t_end >= tracers[0].events[0].t_start


def test_schedules_match_for_correct_program():
    c = make_cluster(4)
    ctxs = c.make_contexts()
    tracers = attach_tracers(ctxs)

    def prog(ctx):
        for _ in range(3):
            ctx.comm.allreduce(ctx.rank)
        ctx.comm.gather(ctx.rank, root=1)

    c.run(prog, contexts=ctxs)
    assert_schedules_match(tracers)


def test_p2p_excluded_from_schedule():
    c = make_cluster(2)
    ctxs = c.make_contexts()
    tracers = attach_tracers(ctxs)

    def prog(ctx):
        if ctx.rank == 0:
            ctx.comm.send("x", dst=1)
        else:
            ctx.comm.recv(src=0)
        ctx.comm.barrier()

    c.run(prog, contexts=ctxs)
    assert_schedules_match(tracers)  # sends/recvs differ; barrier matches
    assert any(e.op in ("send", "recv") for t in tracers for e in t.events)


def test_divergence_detected():
    a = Tracer(rank=0)
    b = Tracer(rank=1)
    a.record("allgather", 8, 0.0, 1.0)
    b.record("barrier", 0, 0.0, 1.0)
    with pytest.raises(AssertionError, match="diverged"):
        assert_schedules_match([a, b])


def test_length_mismatch_detected():
    a = Tracer(rank=0)
    b = Tracer(rank=1)
    a.record("barrier", 0, 0.0, 1.0)
    a.record("barrier", 0, 1.0, 2.0)
    b.record("barrier", 0, 0.0, 1.0)
    with pytest.raises(AssertionError, match="executed"):
        assert_schedules_match([a, b])


def test_timeline_renders():
    t = Tracer(rank=3)
    t.record("allreduce", 64, 0.5, 0.75)
    text = t.timeline()
    assert "rank 3" in text and "allreduce" in text
    assert t.total_comm_bytes() == 64


def test_empty_and_singleton_tracer_lists():
    assert_schedules_match([])  # no-op, not IndexError
    t = Tracer(rank=0)
    t.record("barrier", 0, 0.0, 1.0)
    assert_schedules_match([t])


def test_recv_records_true_payload_size():
    """recv must log the received payload's bytes, not the src int's."""
    c = make_cluster(2)
    ctxs = c.make_contexts()
    tracers = attach_tracers(ctxs)

    def prog(ctx):
        if ctx.rank == 0:
            ctx.comm.send(np.zeros(100), dst=1)
        else:
            ctx.comm.recv(src=0)

    c.run(prog, contexts=ctxs)
    (recv,) = [e for e in tracers[1].events if e.op == "recv"]
    assert recv.received == 800 and recv.nbytes == 800
    (send,) = [e for e in tracers[0].events if e.op == "send"]
    assert send.sent == 800


def test_allreduce_minloc_includes_payload_bytes():
    c = make_cluster(2)
    ctxs = c.make_contexts()
    tracers = attach_tracers(ctxs)

    def prog(ctx):
        ctx.comm.allreduce_minloc(float(ctx.rank), payload=np.zeros(64))

    c.run(prog, contexts=ctxs)
    (e,) = tracers[0].events
    assert e.op == "allreduce_minloc"
    assert e.sent == 8 + 512  # the float plus the elected payload


def test_byte_accounting_matches_rank_stats_exactly():
    """Summed event sent/received equal the RankStats byte counters for
    every primitive mix, including nested ones (split's allgather)."""
    c = make_cluster(3)
    ctxs = c.make_contexts()
    tracers = attach_tracers(ctxs)

    def prog(ctx):
        ctx.comm.bcast({"a": np.ones(7), "b": 3}, root=1)
        ctx.comm.alltoall([{"x": np.full(ctx.rank + 1, 1.0)}] * ctx.size)
        sub = ctx.comm.split(0 if ctx.rank == 0 else 1)
        sub.allgather(np.arange(4))
        ctx.comm.scan(2.0)
        ctx.comm.gather(np.ones(3), root=0)

    run = c.run(prog, contexts=ctxs)
    for t, s in zip(tracers, run.stats.per_rank):
        assert sum(e.sent for e in t.comm_events()) == s.bytes_sent
        assert sum(e.received for e in t.comm_events()) == s.bytes_received


def test_disk_events_traced():
    c = make_cluster(1)
    ctxs = c.make_contexts()
    tracers = attach_tracers(ctxs)

    def prog(ctx):
        from repro.ooc.file import OocArray

        f = OocArray(ctx.disk, np.float64, name="d")
        f.append(np.ones(50))
        return sum(chunk.sum() for chunk in f.iter_chunks())

    run = c.run(prog, contexts=ctxs)
    disk = tracers[0].disk_events()
    assert {e.op for e in disk} == {"read", "write"}
    assert sum(e.received for e in disk) == run.stats.per_rank[0].bytes_read
    assert sum(e.sent for e in disk) == run.stats.per_rank[0].bytes_written
    assert tracers[0].total_disk_bytes() > 0


def test_events_tagged_with_open_phase():
    c = make_cluster(2)
    ctxs = c.make_contexts()
    tracers = attach_tracers(ctxs)

    def prog(ctx):
        from repro.ooc.file import OocArray

        ctx.timer.start("io")
        OocArray(ctx.disk, np.float64, name="p").append(np.ones(10))
        ctx.timer.start("talk")
        ctx.comm.allreduce(1)
        ctx.timer.stop()
        ctx.comm.barrier()  # outside any phase

    c.run(prog, contexts=ctxs)
    t = tracers[0]
    by_op = {e.op: e for e in t.events}
    assert by_op["write"].phase == "io"
    assert by_op["allreduce"].phase == "talk"
    assert by_op["barrier"].phase is None
    # the closed phases appear as span events covering their children
    phases = {e.op: e for e in t.phase_events()}
    assert set(phases) == {"io", "talk"}
    assert phases["io"].t_start <= by_op["write"].t_start
    assert phases["talk"].t_end >= by_op["allreduce"].t_end


def test_split_returns_traced_subcommunicator():
    """Collectives on split() children must appear in schedules, and the
    contract tolerates subgroups running different schedules."""
    c = make_cluster(4)
    ctxs = c.make_contexts()
    tracers = attach_tracers(ctxs)

    def prog(ctx):
        sub = ctx.comm.split(ctx.rank % 2)
        if ctx.rank % 2 == 0:
            sub.allreduce(1.0)
            sub.allreduce(2.0)
        else:
            sub.barrier()
        ctx.comm.barrier()

    c.run(prog, contexts=ctxs)
    assert_schedules_match(tracers)
    by_comm = tracers[0].schedules_by_comm()
    assert by_comm["world"] == ["allgather", "split", "barrier"]
    (sub_label,) = [k for k in by_comm if k != "world"]
    assert sub_label == "world/0,2"
    assert by_comm[sub_label] == ["allreduce", "allreduce"]
    assert tracers[1].schedules_by_comm()["world/1,3"] == ["barrier"]


def test_subgroup_divergence_detected():
    a, b = Tracer(rank=0), Tracer(rank=2)
    for t in (a, b):
        t.record("split", 0, 0.0, 0.1)
    a.record("allreduce", 8, 0.2, 0.3, comm="world/0,2")
    b.record("barrier", 0, 0.2, 0.3, comm="world/0,2")
    with pytest.raises(AssertionError, match="world/0,2"):
        assert_schedules_match([a, b])


def test_nested_split_labels_are_consistent():
    c = make_cluster(4)
    ctxs = c.make_contexts()
    tracers = attach_tracers(ctxs)

    def prog(ctx):
        sub = ctx.comm.split(ctx.rank // 2)
        subsub = sub.split(sub.rank)  # singleton communicators
        subsub.barrier()

    c.run(prog, contexts=ctxs)
    assert_schedules_match(tracers)
    labels = [
        e.comm for e in tracers[3].events if e.op == "barrier" and e.kind == "comm"
    ]
    assert labels == ["world/2,3/1"]


def test_chrome_trace_round_trip(tmp_path):
    c = make_cluster(2)
    ctxs = c.make_contexts()
    tracers = attach_tracers(ctxs)

    def prog(ctx):
        ctx.timer.start("work")
        ctx.comm.allgather(np.zeros(8))
        ctx.timer.stop()

    c.run(prog, contexts=ctxs)
    path = str(tmp_path / "trace.json")
    write_chrome_trace(path, tracers)
    with open(path) as fh:
        data = json.load(fh)
    assert data == to_chrome_trace(tracers)
    evs = data["traceEvents"]
    # one thread-name metadata record per rank
    assert sum(e["ph"] == "M" for e in evs) == 2
    slices = [e for e in evs if e["ph"] == "X"]
    assert {s["cat"] for s in slices} == {"comm", "phase"}
    comm = [s for s in slices if s["cat"] == "comm"][0]
    assert comm["name"] == "allgather"
    assert comm["args"]["sent"] == 64 and comm["args"]["received"] == 64
    assert comm["args"]["phase"] == "work"
    # phase span encloses the comm slice on the same track (Perfetto nesting)
    phase = [s for s in slices if s["cat"] == "phase" and s["tid"] == comm["tid"]][0]
    assert phase["ts"] <= comm["ts"]
    assert phase["ts"] + phase["dur"] >= comm["ts"] + comm["dur"]


def test_report_aggregates_by_phase_and_primitive():
    c = make_cluster(2)
    ctxs = c.make_contexts()
    tracers = attach_tracers(ctxs)

    def prog(ctx):
        ctx.timer.start("a")
        ctx.comm.allreduce(np.ones(4))
        ctx.timer.start("b")
        ctx.comm.allreduce(np.ones(2))
        ctx.timer.stop()

    run = c.run(prog, contexts=ctxs)
    report = TraceReport.from_tracers(tracers)
    cells = {(r.phase, r.op): r for r in report.rows}
    assert cells[("a", "allreduce")].sent == 2 * 32
    assert cells[("b", "allreduce")].sent == 2 * 16
    assert report.total_sent == sum(s.bytes_sent for s in run.stats.per_rank)
    assert report.phase_comm_bytes() == {"a": 128, "b": 64}
    skew = report.phase_skew()
    assert set(skew) == {"a", "b"}
    text = report.render()
    assert "traffic by primitive" in text and "phase skew" in text


def test_traced_run_does_no_extra_payload_walks(monkeypatch):
    """Micro-bench for tracing overhead: the tracer uses stats deltas, so
    a traced run must size payloads exactly as often as an untraced one
    (the old tracer re-walked every alltoall payload a second time)."""
    import repro.cluster.comm as comm_mod

    real = comm_mod.payload_nbytes
    calls = {"n": 0}

    def counting(obj):
        calls["n"] += 1
        return real(obj)

    def prog(ctx):
        parts = [{"x": np.ones(64), "y": np.ones(64)} for _ in range(ctx.size)]
        for _ in range(3):
            ctx.comm.alltoall(parts)
            ctx.comm.allreduce(np.ones(8))

    counts = {}
    for traced in (False, True):
        c = make_cluster(2)
        ctxs = c.make_contexts()
        if traced:
            attach_tracers(ctxs)
        monkeypatch.setattr(comm_mod, "payload_nbytes", counting)
        calls["n"] = 0
        c.run(prog, contexts=ctxs)
        counts[traced] = calls["n"]
        monkeypatch.setattr(comm_mod, "payload_nbytes", real)
    assert counts[True] == counts[False]


def test_pclouds_traced_fit_report_matches_stats(schema, quest_small):
    """End-to-end acceptance: a traced fit's per-phase comm roll-up must
    account for exactly the bytes RankStats counted during the fit."""
    from repro.clouds import CloudsConfig
    from repro.core import DistributedDataset, PClouds, PCloudsConfig

    cols, labels = quest_small
    cluster = Cluster(3, seed=0, timeout=120.0)
    ds = DistributedDataset.create(cluster, schema, cols, labels, seed=1)
    base = [(c.stats.bytes_sent, c.stats.bytes_received) for c in ds.contexts]
    res = PClouds(
        PCloudsConfig(clouds=CloudsConfig(q_root=40, sample_size=300, min_node=16))
    ).fit(ds, seed=2, trace=True)
    assert res.tracers is not None
    assert_schedules_match(res.tracers)
    report = res.trace_report()
    fit_sent = sum(
        c.stats.bytes_sent - b[0] for c, b in zip(ds.contexts, base)
    )
    fit_received = sum(
        c.stats.bytes_received - b[1] for c, b in zip(ds.contexts, base)
    )
    assert report.total_sent == fit_sent
    assert report.total_received == fit_received
    # every paper phase shows up with attributed communication
    assert {"preprocess", "stats", "alive", "partition"} <= set(
        report.phase_comm_bytes()
    )
    # and the fit touched disk under tracing as well
    assert report.total_disk_read > 0


def test_untraced_fit_has_no_tracers(schema, quest_small):
    from repro.clouds import CloudsConfig
    from repro.core import DistributedDataset, PClouds, PCloudsConfig

    cols, labels = quest_small
    cluster = make_cluster(2)
    ds = DistributedDataset.create(cluster, schema, cols, labels, seed=1)
    res = PClouds(
        PCloudsConfig(clouds=CloudsConfig(q_root=40, sample_size=300))
    ).fit(ds)
    assert res.tracers is None
    with pytest.raises(ValueError, match="trace=True"):
        res.trace_report()


def test_pclouds_obeys_the_spmd_contract(schema, quest_small):
    """The paper's whole algorithm under the tracer: every rank must
    execute the identical collective schedule."""
    from repro.clouds import CloudsConfig
    from repro.core import DistributedDataset, PClouds, PCloudsConfig

    cols, labels = quest_small
    cluster = Cluster(4, seed=0, timeout=120.0)
    ds = DistributedDataset.create(cluster, schema, cols, labels, seed=1)
    tracers = attach_tracers(ds.contexts)
    PClouds(
        PCloudsConfig(clouds=CloudsConfig(q_root=40, sample_size=300, min_node=16))
    ).fit(ds, seed=2)
    assert_schedules_match(tracers)
    # and the schedule is substantial (stats + alive + partition per node)
    assert len(tracers[0].schedule()) > 20
