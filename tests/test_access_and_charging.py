"""Residency-mode equivalence for alive members, array scans, and the
out-of-core charge for oversized deferred tasks."""

import numpy as np
import pytest

from repro.clouds import CloudsConfig
from repro.clouds.builder import node_boundaries
from repro.clouds.intervals import class_counts
from repro.clouds.nodestats import stats_from_arrays
from repro.clouds.ss import find_split_ss
from repro.clouds.sse import determine_alive_intervals
from repro.core.access import InCoreAccess, StreamingAccess
from repro.core.config import PCloudsConfig
from repro.core.small_tasks import SmallTask, process_small_tasks
from repro.data import quest_schema, shuffle_split
from repro.data.distribute import load_fragment

from conftest import make_cluster


class TestAliveMembersParity:
    def test_in_core_and_streaming_extract_identical_members(
        self, schema, quest_small
    ):
        cols, labels = quest_small
        bounds = node_boundaries(schema, {k: v[:400] for k, v in cols.items()}, 25)
        stats = stats_from_arrays(schema, cols, labels, bounds)
        split = find_split_ss(stats, schema)
        alive = determine_alive_intervals(stats, schema, split.gini)
        assert alive
        frags = shuffle_split(cols, labels, 1, seed=0)

        def prog(ctx, mode):
            cs = load_fragment(ctx, schema, frags, batch_rows=197)
            access = (InCoreAccess if mode == "core" else StreamingAccess)(
                ctx, cs, schema
            )
            return [
                (np.sort(v).tolist(), np.sort(l).tolist())
                for v, l in access.alive_members(alive)
            ]

        core = make_cluster(1).run(prog, "core").results[0]
        stream = make_cluster(1).run(prog, "stream").results[0]
        assert core == stream
        # and the extracted counts match the intervals' census
        for (vals, _), iv in zip(core, alive):
            assert len(vals) == iv.count


class TestArrayScan:
    def test_scan_on_matrices(self):
        """The distributed exchange scans (f, c) count matrices; elementwise
        prefix semantics must hold."""
        c = make_cluster(3)

        def prog(ctx):
            m = np.full((2, 2), ctx.rank + 1, dtype=np.int64)
            return ctx.comm.scan(m)

        out = c.run(prog).results
        np.testing.assert_array_equal(out[0], np.full((2, 2), 1))
        np.testing.assert_array_equal(out[1], np.full((2, 2), 3))
        np.testing.assert_array_equal(out[2], np.full((2, 2), 6))


class TestOversizedSmallTaskCharge:
    def _run(self, memory_limit, schema, cols, labels):
        frags = shuffle_split(cols, labels, 2, seed=3)
        total = class_counts(labels, 2)
        config = PCloudsConfig(clouds=CloudsConfig(q_root=50, min_node=8))

        def prog(ctx):
            cs = load_fragment(ctx, schema, frags)
            task = SmallTask(
                node_id=1, depth=1, n_global=len(labels),
                class_counts=total, columnset=cs,
            )
            before = ctx.stats.bytes_read + ctx.stats.bytes_written
            out = process_small_tasks(ctx, [task], schema, config)
            return out, ctx.stats.bytes_read + ctx.stats.bytes_written - before

        cluster = make_cluster(2, memory_limit=memory_limit)
        return cluster.run(prog)

    def test_oversized_task_pays_streaming_io(self, schema, quest_small):
        cols, labels = quest_small
        fits = self._run(None, schema, cols, labels)
        tight = self._run(2 * 1024, schema, cols, labels)
        io_fits = sum(r[1] for r in fits.results)
        io_tight = sum(r[1] for r in tight.results)
        # the subtree result is identical...
        trees_a = {k: v for r in fits.results for k, v in r[0].items()}
        trees_b = {k: v for r in tight.results for k, v in r[0].items()}
        assert trees_a == trees_b
        # ...but building it beyond the memory budget streams every level
        assert io_tight > 2 * io_fits
