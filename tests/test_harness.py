"""The benchmark harness: scaled cost models, experiment configs,
reporting tables."""

import pytest

from repro.bench.harness import (
    PAPER_MEMORY_RATIO,
    ExperimentConfig,
    build_cluster,
    run_pclouds,
    scaled_models,
    speedup_series,
)
from repro.bench.reporting import format_series, format_table
from repro.clouds import validate_tree


class TestScaledModels:
    def test_volume_terms_scale_latency_terms_do_not(self):
        net1, disk1, cpu1 = scaled_models(1.0)
        net100, disk100, cpu100 = scaled_models(100.0)
        assert net100.alpha == net1.alpha
        assert net100.beta == pytest.approx(net1.beta * 100)
        assert disk100.seek == disk1.seek
        assert disk100.bandwidth == pytest.approx(disk1.bandwidth / 100)
        assert cpu100.seconds_per_op == pytest.approx(cpu1.seconds_per_op * 100)

    def test_scaled_record_costs_match_paper_records(self):
        # one scaled record must cost what `scale` paper records cost
        net1, disk1, _ = scaled_models(1.0)
        net100, disk100, _ = scaled_models(100.0)
        assert net100.beta * 64 == pytest.approx(net1.beta * 64 * 100)
        assert 64 / disk100.bandwidth == pytest.approx(100 * 64 / disk1.bandwidth)

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            scaled_models(0)


class TestExperimentConfig:
    def test_q_root_tracks_records(self):
        a = ExperimentConfig(n_records=36_000, n_ranks=4)
        b = ExperimentConfig(n_records=72_000, n_ranks=4)
        assert b.resolved_q_root() == 2 * a.resolved_q_root()

    def test_explicit_q_root_wins(self):
        cfg = ExperimentConfig(n_records=36_000, n_ranks=4, q_root=77)
        assert cfg.resolved_q_root() == 77

    def test_sample_follows_q(self):
        cfg = ExperimentConfig(n_records=36_000, n_ranks=4)
        assert cfg.resolved_sample() == 4 * cfg.resolved_q_root()

    def test_memory_limit_scales_with_data_not_ranks(self):
        row = 64
        small = ExperimentConfig(n_records=36_000, n_ranks=4)
        big = ExperimentConfig(n_records=72_000, n_ranks=16)
        assert big.memory_limit_bytes(row) == 2 * small.memory_limit_bytes(row)

    def test_paper_memory_ratio_value(self):
        # 1 MB per 6M 64-byte records
        assert PAPER_MEMORY_RATIO == pytest.approx(2**20 / (6e6 * 64))

    def test_build_cluster_wires_models(self):
        cfg = ExperimentConfig(n_records=10_000, n_ranks=2, scale=50.0)
        cluster = build_cluster(cfg, 64)
        assert cluster.n_ranks == 2
        assert cluster.memory_limit == cfg.memory_limit_bytes(64)
        assert cluster.disk_model.bandwidth == pytest.approx(8e6 / 50.0)


class TestRunPclouds:
    def test_end_to_end_small_point(self):
        cfg = ExperimentConfig(
            n_records=3000, n_ranks=2, q_root=60, sample_size=300,
            min_node=32, seed=4,
        )
        res = run_pclouds(cfg)
        validate_tree(res.tree)
        assert res.elapsed > 0
        assert res.n_large_nodes >= 1

    def test_speedup_series_shape(self):
        pts = speedup_series(
            3000, [1, 2], q_root=60, sample_size=300, min_node=32, seed=4
        )
        assert [p.n_ranks for p in pts] == [1, 2]
        assert pts[0].speedup == pytest.approx(1.0)
        assert pts[1].speedup > 1.0


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [[1, 2.5], [30, 0.125]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_format_table_empty_rows(self):
        text = format_table(["x"], [])
        assert "x" in text

    def test_format_series(self):
        s = format_series("speedup", [1, 2], [1.0, 1.9])
        assert s.startswith("speedup:")
        assert "(2, 1.9)" in s

    def test_float_formatting(self):
        text = format_table(["v"], [[0.000123], [12345.6], [1.5]])
        assert "0.000123" in text and "1.23e+04" in text and "1.5" in text
