"""Cross-cutting coverage: OOC-vs-in-core split agreement, strategy
executors at p=1, generator predicates, StrategyResult surface."""

import numpy as np
import pytest

from repro.cluster.clock import SimClock
from repro.cluster.diskmodel import DiskModel
from repro.cluster.stats import RankStats
from repro.clouds import CloudsBuilder, CloudsConfig, accuracy, validate_tree
from repro.data import GROUP_A, generate_quest
from repro.dnc import STRATEGIES, SyntheticDnc, run_strategy
from repro.ooc import ColumnSet, InMemoryBackend, LocalDisk

from conftest import make_cluster


def make_disk():
    return LocalDisk(DiskModel(), SimClock(), RankStats(), InMemoryBackend())


class TestOocVsInCoreSplits:
    """The streaming and in-memory paths share the split machinery but
    not the scanning code; their split decisions must agree exactly when
    fed identical statistics inputs."""

    def test_single_node_split_identical(self, schema, quest_small):
        from repro.clouds.builder import (
            find_split_from_arrays,
            node_boundaries,
        )
        from repro.clouds.nodestats import empty_stats, accumulate_batch
        from repro.clouds.ss import find_split_ss

        cols, labels = quest_small
        sample = {k: v[:300] for k, v in cols.items()}
        bounds = node_boundaries(schema, sample, 30)
        cfg = CloudsConfig(method="sse", q_root=30)

        in_core, _, _ = find_split_from_arrays(
            schema, cols, labels, bounds, cfg
        )

        # streaming statistics in batches of 111
        stats = empty_stats(schema, bounds)
        for lo in range(0, len(labels), 111):
            accumulate_batch(
                stats, schema,
                {k: v[lo : lo + 111] for k, v in cols.items()},
                labels[lo : lo + 111],
            )
        streamed_ss = find_split_ss(stats, schema)
        # the SS stage must agree bit-for-bit; SSE refinement operates on
        # the same alive machinery (tested elsewhere)
        from repro.clouds.nodestats import stats_from_arrays

        whole = stats_from_arrays(schema, cols, labels, bounds)
        ss_whole = find_split_ss(whole, schema)
        assert streamed_ss.attribute == ss_whole.attribute
        assert streamed_ss.gini == pytest.approx(ss_whole.gini)
        assert in_core.gini <= ss_whole.gini + 1e-12

    def test_fit_columnset_ss_method(self, schema, quest_small):
        cols, labels = quest_small
        cs = ColumnSet.from_arrays(make_disk(), schema, cols, labels, batch_rows=256)
        tree = CloudsBuilder(
            schema, CloudsConfig(method="ss", q_root=40, sample_size=300, min_node=32)
        ).fit_columnset(cs, seed=1)
        validate_tree(tree)
        assert accuracy(labels, tree.predict(cols)) > 0.85


class TestStrategiesSingleRank:
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_every_strategy_runs_on_one_rank(self, strategy):
        problem = SyntheticDnc(leaf_records=64)
        res = run_strategy(make_cluster(1), problem, 2000, strategy, seed=1)
        o = res.outcome
        assert o.n_tasks - o.n_leaves + 1 == o.n_leaves
        assert res.elapsed > 0

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_single_rank_outcomes_agree(self, strategy):
        problem = SyntheticDnc(leaf_records=64)
        base = run_strategy(make_cluster(1), problem, 2000, "data", seed=1)
        res = run_strategy(make_cluster(1), problem, 2000, strategy, seed=1)
        assert (res.outcome.n_tasks, res.outcome.max_depth) == (
            base.outcome.n_tasks,
            base.outcome.max_depth,
        )


class TestStrategyResultSurface:
    def test_properties(self):
        res = run_strategy(
            make_cluster(2), SyntheticDnc(leaf_records=256), 1500, "data", seed=2
        )
        assert res.bytes_read > 0
        assert res.collectives > 0
        assert res.strategy == "data"
        row = res.row()
        assert row[1] == res.elapsed


class TestGeneratorPredicates:
    def test_function3_matches_definition(self):
        cols, labels = generate_quest(3000, function=3, seed=8, noise=0.0)
        age, el = cols["age"], cols["elevel"]
        expect = (
            ((age < 40) & np.isin(el, (0, 1)))
            | ((age >= 40) & (age < 60) & np.isin(el, (1, 2, 3)))
            | ((age >= 60) & np.isin(el, (2, 3, 4)))
        )
        np.testing.assert_array_equal(labels == GROUP_A, expect)

    def test_function7_matches_definition(self):
        cols, labels = generate_quest(3000, function=7, seed=8, noise=0.0)
        disposable = (
            0.67 * (cols["salary"] + cols["commission"])
            - 0.2 * cols["loan"]
            - 20_000.0
        )
        np.testing.assert_array_equal(labels == GROUP_A, disposable > 0)

    def test_function10_uses_equity(self):
        cols, labels = generate_quest(3000, function=10, seed=8, noise=0.0)
        equity = 0.1 * cols["hvalue"] * np.maximum(cols["hyears"] - 20.0, 0.0)
        disposable = (
            0.67 * (cols["salary"] + cols["commission"])
            - 5_000.0 * cols["elevel"]
            + 0.2 * equity
            - 10_000.0
        )
        np.testing.assert_array_equal(labels == GROUP_A, disposable > 0)

    @pytest.mark.parametrize("fn", [1, 2, 3, 4, 5, 6, 7, 8, 9, 10])
    def test_both_classes_present(self, fn):
        # several published functions (notably 8 and 10) are heavily
        # skewed under the Quest value ranges; both classes must still
        # occur, and the balanced predicates stay balanced
        _, labels = generate_quest(5000, function=fn, seed=12)
        frac = float(np.mean(labels == GROUP_A))
        assert 0.001 < frac < 0.9995
        if fn in (1, 2, 7):
            assert 0.1 < frac < 0.9


class TestSplitTraced:
    def test_comm_split_appears_in_schedule(self):
        from repro.cluster.trace import attach_tracers

        c = make_cluster(4)
        ctxs = c.make_contexts()
        tracers = attach_tracers(ctxs)

        def prog(ctx):
            sub = ctx.comm.split(ctx.rank % 2)
            return sub.size

        c.run(prog, contexts=ctxs)
        assert "split" in tracers[0].schedule()
