"""Parallel out-of-core sample sort — the techniques applied beyond
classification.

Sorting is the canonical external-memory divide-and-conquer problem; this
example sorts 200k records spread over 8 simulated disks with tiny
per-processor memory, using the same substrate pCLOUDS runs on
(replicated sampling, one personalized all-to-all, external merge sort
under the memory budget).

Run:  python examples/parallel_sorting.py
"""

import numpy as np

from repro.bench.harness import scaled_models
from repro.bench.reporting import format_table
from repro.cluster import Cluster
from repro.dnc import parallel_sample_sort


def make_cluster(p: int, memory_kib: int) -> Cluster:
    net, disk, compute = scaled_models(100.0)
    return Cluster(
        p, network=net, disk=disk, compute=compute,
        memory_limit=memory_kib * 1024, seed=0,
    )


def main() -> None:
    rng = np.random.default_rng(0)
    values = rng.normal(size=200_000)
    total_kib = values.nbytes >> 10
    print(f"sorting {len(values):,} float64 records ({total_kib} KiB) "
          f"with 64 KiB of memory per processor\n")

    rows = []
    base = None
    for p in (1, 2, 4, 8):
        res = parallel_sample_sort(make_cluster(p, 64), values, seed=1)
        assert res.verify(), "output must be globally sorted"
        if base is None:
            base = res.elapsed
        rows.append([
            p, f"{res.elapsed:.1f}", f"{base / res.elapsed:.2f}",
            f"{res.imbalance():.3f}",
            res.run.stats.total.bytes_read >> 20,
        ])
    print(format_table(
        ["p", "sim time (s)", "speedup", "bucket imbalance", "MiB read"],
        rows,
    ))
    print(
        "\nBuckets stay balanced (oversampled splitters, the Theorem-1\n"
        "argument pCLOUDS uses for its record distribution), and the\n"
        "external merge sort's extra passes show up in the bytes read."
    )


if __name__ == "__main__":
    main()
