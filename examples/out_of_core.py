"""Out-of-core behaviour under a memory limit.

Builds the same tree under three per-processor memory budgets and shows
how the limit decides in-core vs streaming node processing — the
re-reading that makes out-of-core construction I/O-bound, and the reason
aggregate memory gives the paper's superlinear speedups. Also
demonstrates the FileBackend, which really spools chunks to .npy files.

Run:  python examples/out_of_core.py
"""

import os

from repro.bench.harness import scaled_models
from repro.cluster import Cluster
from repro.clouds import CloudsConfig, accuracy
from repro.core import DistributedDataset, PClouds, PCloudsConfig
from repro.data import generate_quest, quest_schema
from repro.ooc import FileBackend


def build(memory_limit, columns, labels, backend_factory=None):
    schema = quest_schema()
    net, disk, compute = scaled_models(100.0)
    cluster = Cluster(
        4,
        network=net,
        disk=disk,
        compute=compute,
        memory_limit=memory_limit,
        backend_factory=backend_factory,
        seed=0,
    )
    dataset = DistributedDataset.create(cluster, schema, columns, labels, seed=1)
    pclouds = PClouds(
        PCloudsConfig(
            clouds=CloudsConfig(
                method="sse", q_root=300, sample_size=1_200, min_node=16
            ),
            q_switch=10,
        )
    )
    return pclouds.fit(dataset, seed=2)


def main() -> None:
    columns, labels = generate_quest(12_000, function=2, seed=0, noise=0.05)
    raw_bytes = 12_000 * quest_schema().row_nbytes()
    print(f"training set: {raw_bytes >> 10} KiB across 4 disks\n")

    print(f"{'memory/proc':>12}  {'sim time':>9}  {'MiB read':>9}  {'accuracy':>8}")
    for limit in (None, 64 * 1024, 8 * 1024):
        res = build(limit, columns, labels)
        label = "unlimited" if limit is None else f"{limit >> 10} KiB"
        reads = res.run.stats.total.bytes_read / 2**20
        acc = accuracy(labels, res.tree.predict(columns))
        print(f"{label:>12}  {res.elapsed:8.1f}s  {reads:9.1f}  {acc:8.4f}")

    print(
        "\nTighter memory -> more streaming passes -> more bytes read and a\n"
        "longer simulated run; the tree itself is identical (residency\n"
        "never changes results)."
    )

    # the FileBackend really writes chunk files to a spool directory
    backends = []

    def file_backend():
        b = FileBackend()
        backends.append(b)
        return b

    res = build(16 * 1024, columns, labels, backend_factory=file_backend)
    created = sum(b.chunks_created for b in backends)
    live = sum(
        len(os.listdir(b.root)) for b in backends if os.path.isdir(b.root)
    )
    print(f"\nFileBackend run: {created} .npy chunk files were spooled "
          f"({live} still live — fit consumes its fragments)")
    print(f"accuracy {accuracy(labels, res.tree.predict(columns)):.4f} (same tree)")


if __name__ == "__main__":
    main()
