"""Section-3 playground: compare the four parallel out-of-core
divide-and-conquer techniques on a synthetic problem.

Shows the paper's qualitative claims: data parallelism beats concatenated
parallelism out-of-core (memory sharing forces extra passes), task
parallelism pays redistribution but drops per-task synchronisation, and
mixed parallelism combines the good halves.

Run:  python examples/strategy_comparison.py
"""

from repro.bench.harness import scaled_models
from repro.bench.reporting import format_table
from repro.cluster import Cluster
from repro.dnc import STRATEGIES, SyntheticDnc, run_strategy


def make_cluster() -> Cluster:
    net, disk, compute = scaled_models(100.0)
    return Cluster(
        8, network=net, disk=disk, compute=compute,
        memory_limit=16 * 1024, seed=0,
    )


def main() -> None:
    problem = SyntheticDnc(leaf_records=128, split_ratio=0.5, work_per_record=2.0)
    rows = []
    for strategy in STRATEGIES:
        res = run_strategy(make_cluster(), problem, 40_000, strategy, seed=3)
        rows.append(res.row())
    print(
        format_table(
            ["strategy", "sim time (s)", "tasks", "depth",
             "bytes read", "bytes sent", "collectives"],
            rows,
            title="40,000 records, 8 processors, 16 KiB memory/proc",
        )
    )
    print(
        "\nEvery strategy builds the identical tree; they differ in I/O\n"
        "volume (concatenated re-reads whole levels), communication volume\n"
        "(task parallelism redistributes subtrees) and startups\n"
        "(data parallelism synchronises per task)."
    )

    print("\nskewed trees (split ratio 0.85):")
    skewed = SyntheticDnc(leaf_records=128, split_ratio=0.85)
    rows = []
    for strategy in STRATEGIES:
        res = run_strategy(make_cluster(), skewed, 40_000, strategy, seed=4)
        rows.append([strategy, res.elapsed, res.outcome.max_depth])
    print(format_table(["strategy", "sim time (s)", "depth"], rows))


if __name__ == "__main__":
    main()
