"""Quickstart: train and evaluate the sequential CLOUDS classifier.

Generates Quest synthetic data (the paper's workload), fits CLOUDS with
the SSE method, prunes with MDL, and reports accuracy against the exact
SPRINT-style baseline.

Run:  python examples/quickstart.py
"""

from repro.clouds import (
    CloudsBuilder,
    CloudsConfig,
    MdlPruneConfig,
    SprintBuilder,
    StoppingRule,
    accuracy,
    mdl_prune,
    train_test_split,
)
from repro.data import generate_quest, quest_schema


def main() -> None:
    schema = quest_schema()
    columns, labels = generate_quest(
        20_000, function=2, seed=0, noise=0.05
    )
    train_c, train_y, test_c, test_y = train_test_split(
        columns, labels, test_fraction=0.25, seed=1
    )
    print(f"training on {len(train_y):,} records, testing on {len(test_y):,}")

    # CLOUDS with interval sampling + estimation (the SSE method)
    clouds = CloudsBuilder(
        schema,
        CloudsConfig(method="sse", q_root=400, sample_size=2_000, min_node=16),
    )
    tree = clouds.fit_arrays(train_c, train_y, seed=2)
    print(f"\nCLOUDS/SSE: {tree.n_nodes} nodes, depth {tree.depth}")
    print(f"  train accuracy: {accuracy(train_y, tree.predict(train_c)):.4f}")
    print(f"  test  accuracy: {accuracy(test_y, tree.predict(test_c)):.4f}")

    mdl_prune(tree, MdlPruneConfig())
    print(f"after MDL pruning: {tree.n_nodes} nodes")
    print(f"  test  accuracy: {accuracy(test_y, tree.predict(test_c)):.4f}")

    # the exact presorted baseline the CLOUDS papers compare against
    sprint = SprintBuilder(schema, StoppingRule(min_node=16)).fit(train_c, train_y)
    mdl_prune(sprint)
    print(f"\nSPRINT baseline: {sprint.n_nodes} nodes")
    print(f"  test  accuracy: {accuracy(test_y, sprint.predict(test_c)):.4f}")

    print("\nfirst levels of the CLOUDS tree:")
    print(tree.describe(max_depth=2))


if __name__ == "__main__":
    main()
