"""The analytic mixed-parallelism switch (extension).

The paper fixes the data-parallel → task-parallel switch at ten intervals
and notes that "analytical characterization [of the switching criterion]
is currently under investigation". This example runs the criterion
derived from the machine's cost models (``q_switch="auto"``,
repro.core.switching) against a sweep of fixed thresholds.

Run:  python examples/auto_switching.py
"""

from repro.bench.harness import ExperimentConfig, run_pclouds
from repro.bench.reporting import format_table
from repro.clouds import CloudsConfig
from repro.core import auto_q_switch, break_even_node_size
from repro.bench.harness import scaled_models
from repro.data import quest_schema


def main() -> None:
    n, p, scale = 18_000, 8, 200.0
    schema = quest_schema()
    net, disk, compute = scaled_models(scale)

    n_star = break_even_node_size(schema, net, disk, compute, p)
    q_auto = auto_q_switch(
        schema, CloudsConfig(q_root=500), net, disk, compute, p, n
    )
    print(f"machine: p={p}, cost models at 1:{scale:g} record scale")
    print(f"latency break-even node size: {n_star:.0f} records")
    print(f"analytic threshold: q_switch = {q_auto}\n")

    rows = []
    for qs in (2, 10, 40, 160, "auto"):
        res = run_pclouds(
            ExperimentConfig(
                n_records=n, n_ranks=p, scale=scale, q_switch=qs, seed=0
            )
        )
        rows.append(
            [qs, f"{res.elapsed:.1f}", res.n_large_nodes, res.n_small_tasks]
        )
    print(
        format_table(
            ["q_switch", "sim time (s)", "large nodes", "small tasks"],
            rows,
            title=f"{n:,} records on {p} processors",
        )
    )
    print(
        "\nThe paper used q_switch=10. 'auto' derives the threshold from\n"
        "the latency floor (nodes that synchronise more than they compute)\n"
        "and an LPT-balance bound (enough deferred subtrees to balance)."
    )


if __name__ == "__main__":
    main()
