"""Model-quality workflow: CSV data, cross-validation, pruning choices,
feature importance.

Exercises the library the way a practitioner would: load a CSV (here,
a Quest export), cross-validate CLOUDS against the exact baseline,
compare MDL vs reduced-error pruning on a holdout, and inspect which
attributes the model actually uses.

Run:  python examples/model_quality.py
"""

import os
import tempfile

from repro.clouds import (
    CloudsBuilder,
    CloudsConfig,
    StoppingRule,
    accuracy,
    cross_validate,
    fit_direct,
    gini_importance,
    mdl_prune,
    permutation_importance,
    reduced_error_prune,
    train_test_split,
)
from repro.bench.reporting import format_table
from repro.data import generate_quest, quest_schema, read_csv, write_csv


def main() -> None:
    # round-trip through CSV, as if the data came from elsewhere
    schema = quest_schema()
    columns, labels = generate_quest(8_000, function=5, seed=0, noise=0.05)
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "quest.csv")
        write_csv(path, schema, columns, labels)
        schema, columns, labels, codec = read_csv(
            path, label_column="label",
            categorical_columns={"elevel", "car", "zipcode"},
        )
    print(f"loaded {len(labels):,} records, "
          f"{len(schema.numeric)} numeric + {len(schema.categorical)} "
          f"categorical attributes, labels {sorted(codec.labels)}\n")

    # cross-validate CLOUDS/SSE against the exact method
    clouds = CloudsBuilder(
        schema, CloudsConfig(method="sse", q_root=200, sample_size=1000,
                             min_node=16)
    )
    rows = []
    for name, fit in (
        ("clouds-sse", lambda c, y: clouds.fit_arrays(c, y, seed=1)),
        ("exact", lambda c, y: fit_direct(schema, c, y, StoppingRule(min_node=16))),
    ):
        cv = cross_validate(fit, columns, labels, k=4, seed=2)
        rows.append([name, f"{cv.mean_accuracy:.4f}", f"{cv.std_accuracy:.4f}"])
    print(format_table(["method", "cv accuracy", "std"], rows,
                       title="4-fold cross-validation"))

    # pruning comparison on a holdout
    tr_c, tr_y, ho_c, ho_y = train_test_split(columns, labels, 0.3, seed=3)
    rows = []
    for name, prune in (
        ("unpruned", None),
        ("mdl", lambda t: mdl_prune(t)),
        ("reduced-error", lambda t: reduced_error_prune(t, ho_c, ho_y)),
    ):
        tree = clouds.fit_arrays(tr_c, tr_y, seed=4)
        if prune is not None:
            prune(tree)
        rows.append([name, tree.n_nodes, f"{accuracy(ho_y, tree.predict(ho_c)):.4f}"])
    print()
    print(format_table(["pruning", "nodes", "holdout accuracy"], rows))

    # what drives the model (function 5 uses age, salary and loan)
    tree = clouds.fit_arrays(tr_c, tr_y, seed=4)
    mdl_prune(tree)
    gini_imp = gini_importance(tree)
    perm_imp = permutation_importance(tree, ho_c, ho_y, n_repeats=3, seed=5)
    rows = [
        [name, f"{gini_imp[name]:.3f}", f"{perm_imp[name]:.3f}"]
        for name in sorted(gini_imp, key=gini_imp.get, reverse=True)[:5]
    ]
    print()
    print(format_table(["attribute", "gini importance", "permutation"],
                       rows, title="top attributes"))


if __name__ == "__main__":
    main()
