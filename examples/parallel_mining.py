"""Parallel mining with pCLOUDS on the simulated shared-nothing machine.

Distributes a Quest training set across 8 processors' local disks, builds
the tree with mixed parallelism, and reports the simulated elapsed time,
the per-phase breakdown, and the speedup against a single processor —
the quantities behind the paper's Figures 1-3.

Run:  python examples/parallel_mining.py
"""

from repro.bench.harness import ExperimentConfig, build_cluster
from repro.clouds import CloudsConfig, accuracy
from repro.core import DistributedDataset, PClouds, PCloudsConfig
from repro.data import generate_quest, quest_schema


def fit_on(p: int, columns, labels, cfg: ExperimentConfig):
    schema = quest_schema()
    cluster = build_cluster(
        ExperimentConfig(n_records=cfg.n_records, n_ranks=p, scale=cfg.scale),
        schema.row_nbytes(),
    )
    dataset = DistributedDataset.create(cluster, schema, columns, labels, seed=1)
    pclouds = PClouds(
        PCloudsConfig(
            clouds=CloudsConfig(
                method="sse",
                q_root=cfg.resolved_q_root(),
                sample_size=cfg.resolved_sample(),
                min_node=16,
                purity=0.999,
            ),
            q_switch=10,
        )
    )
    return pclouds.fit(dataset, seed=2)


def main() -> None:
    cfg = ExperimentConfig(n_records=24_000, n_ranks=8)
    columns, labels = generate_quest(
        cfg.n_records, function=2, seed=0, noise=0.05
    )
    print(f"{cfg.n_records:,} records (stands for {cfg.n_records * 100:,} at paper scale)")

    base = fit_on(1, columns, labels, cfg)
    print(f"\np=1  simulated time {base.elapsed:8.1f}s")

    res = fit_on(8, columns, labels, cfg)
    print(f"p=8  simulated time {res.elapsed:8.1f}s  -> speedup {base.elapsed / res.elapsed:.2f}x")

    print(f"\ntree: {res.tree.n_nodes} nodes, depth {res.tree.depth}")
    print(f"large nodes (data parallelism):      {res.n_large_nodes}")
    print(f"small nodes (delayed task parallel): {res.n_small_tasks}")
    print(f"train accuracy: {accuracy(labels, res.tree.predict(columns)):.4f}")

    print("\nphase breakdown (max over ranks, simulated seconds):")
    from repro.bench.timeline import render_phase_bars

    print(render_phase_bars(res.run.phase_times, width=32))

    total = res.run.stats.total
    print(f"\nI/O:   {total.bytes_read >> 20} MiB read, {total.bytes_written >> 20} MiB written")
    print(f"comm:  {total.bytes_sent >> 10} KiB sent over {total.collectives} collectives")
    print(f"I/O balance (max/mean bytes read): {res.run.stats.imbalance('bytes_read'):.3f}")


if __name__ == "__main__":
    main()
