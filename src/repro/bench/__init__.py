"""Experiment harness shared by benchmarks/ and examples/."""

from .harness import (
    PAPER_MEMORY_RATIO,
    ExperimentConfig,
    SpeedupPoint,
    build_cluster,
    run_pclouds,
    scaled_models,
    speedup_series,
)
from .reporting import format_series, format_table, print_table
from .timeline import render_phase_bars, render_rank_bars

__all__ = [
    "ExperimentConfig",
    "PAPER_MEMORY_RATIO",
    "SpeedupPoint",
    "build_cluster",
    "format_series",
    "format_table",
    "print_table",
    "render_phase_bars",
    "render_rank_bars",
    "run_pclouds",
    "scaled_models",
    "speedup_series",
]
