"""Shared experiment harness for the paper's figures and the ablations.

Scaling
-------
The paper ran 3.6–7.2 **million** records on a 16-node SP2; we run the
same experiments at 1:``scale`` (default 1:100) record counts. To keep
the *cost ratios* identical to the paper's regime, every per-record cost
is multiplied by ``scale`` — per-byte network time, per-byte disk time,
per-op CPU time — while the non-scaling terms (message startup, seek
latency) stay physical. A record of the scaled run then costs exactly
what ``scale`` records cost on the modelled 1999 machine, so speedup,
sizeup and scaleup shapes are preserved. The per-processor memory limit
follows the paper ("1 MB for 6.0 million tuples ... linearly scaled based
on the size"): a fixed fraction of the (unscaled) training-set bytes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cluster.compute import ComputeModel
from repro.cluster.diskmodel import DiskModel
from repro.cluster.machine import Cluster
from repro.cluster.network import NetworkModel
from repro.clouds.builder import CloudsConfig
from repro.core.config import PCloudsConfig
from repro.core.dataset import DistributedDataset
from repro.core.pclouds import PClouds, PCloudsResult
from repro.data.generator import generate_quest, quest_schema
from repro.forest.trainer import ForestConfig, ForestResult, PForest

__all__ = [
    "ExperimentConfig",
    "ForestExperimentConfig",
    "scaled_models",
    "build_cluster",
    "run_pclouds",
    "run_forest",
    "bench_payload",
    "forest_payload",
    "speedup_series",
]

#: the paper's configuration expressed at unit scale
PAPER_MEMORY_RATIO = 1.0 * 2**20 / (6.0e6 * 64)  # 1 MB per 6M 64-byte records


def scaled_models(
    scale: float = 100.0,
    *,
    alpha: float = 40e-6,
    beta: float = 1.0 / 35e6,
    seek: float = 10e-3,
    bandwidth: float = 8e6,
    seconds_per_op: float = 7.5e-9,
) -> tuple[NetworkModel, DiskModel, ComputeModel]:
    """Cost models where one scaled record stands for ``scale`` paper
    records (volume terms ×scale, latency terms unchanged)."""
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")
    return (
        NetworkModel(alpha=alpha, beta=beta * scale),
        DiskModel(seek=seek, bandwidth=bandwidth / scale),
        ComputeModel(seconds_per_op=seconds_per_op * scale),
    )


@dataclass(frozen=True)
class ExperimentConfig:
    """One pCLOUDS experiment point of the paper's evaluation."""

    n_records: int
    n_ranks: int
    scale: float = 100.0
    function: int = 2  # the paper uses classification function 2
    noise: float = 0.05  # label noise so purity stopping mirrors real data
    q_root: int | None = None
    records_per_interval: int = 36
    sample_size: int | None = None
    q_switch: int = 10
    memory_ratio: float = PAPER_MEMORY_RATIO
    method: str = "sse"
    exchange: str = "attribute"
    #: voting exchange: attributes each rank nominates per node
    vote_top_k: int = 8
    frontier_batching: str = "level"
    #: per-rank chunk cache + overlapped prefetch for the out-of-core
    #: layer ("off" | "lru" | "lru+prefetch"); on by default — trees are
    #: bit-identical in every mode, only charged I/O time changes
    buffer_pool: str = "lru+prefetch"
    #: buffer-pool capacity as a multiple of the per-rank memory limit
    #: (the processing limit is the paper's 1 MB-ish threshold; the pool
    #: models the node's remaining RAM working as an I/O cache)
    pool_ratio: float = 4.0
    seed: int = 0
    min_node: int = 16
    purity: float = 0.999

    def resolved_q_root(self) -> int:
        """Paper: q_root=10,000 for 3.6M records, i.e. ~360 records per
        interval, with the task-parallel switch at 10 intervals. At 1:100
        record scale we keep the interval population at ~36 records so the
        tree still has a deep data-parallel phase over many large nodes
        followed by a broad small-node tail, as in the paper."""
        if self.q_root is not None:
            return self.q_root
        return max(20, self.n_records // self.records_per_interval)

    def resolved_sample(self) -> int:
        if self.sample_size is not None:
            return self.sample_size
        return max(200, min(self.n_records, 4 * self.resolved_q_root()))

    def memory_limit_bytes(self, row_nbytes: int) -> int:
        """Per-processor memory limit: a fixed fraction of the training
        set's bytes, independent of p (each node's RAM is fixed)."""
        return max(4096, int(self.n_records * row_nbytes * self.memory_ratio))

    def pool_nbytes(self, row_nbytes: int) -> int:
        """Buffer-pool capacity for this point's cluster."""
        return int(self.pool_ratio * self.memory_limit_bytes(row_nbytes))


def build_cluster(cfg: ExperimentConfig, row_nbytes: int) -> Cluster:
    net, disk, compute = scaled_models(cfg.scale)
    limit = cfg.memory_limit_bytes(row_nbytes)
    return Cluster(
        cfg.n_ranks,
        network=net,
        disk=disk,
        compute=compute,
        memory_limit=limit,
        seed=cfg.seed,
        buffer_pool=cfg.buffer_pool,
        pool_bytes=cfg.pool_nbytes(row_nbytes),
    )


@dataclass(frozen=True)
class ForestExperimentConfig(ExperimentConfig):
    """One bagged-forest experiment point over a single shared spool.

    The pool default differs from the single-tree default: for a forest,
    the pool models node RAM provisioned to hold the *shared base spool
    plus one bag* — that residency is what lets concurrent trees in
    different rank groups hit each other's chunks instead of re-reading
    them. ``pool_ratio=None`` (the forest default) auto-sizes the pool to
    that working set; an explicit ratio keeps the single-tree semantics
    (a multiple of the per-rank memory limit) for ablation sweeps.
    """

    n_trees: int = 8
    #: "data" | "tree" | "hybrid" | "auto" (cost-model pick)
    regime: str = "auto"
    #: hybrid only: explicit concurrent group count
    n_groups: int | None = None
    #: None = auto-size to the tree-parallel working set (see class doc)
    pool_ratio: float | None = None

    def pool_nbytes(self, row_nbytes: int) -> int:
        if self.pool_ratio is not None:
            return super().pool_nbytes(row_nbytes)
        # tree-parallel working set of one group rank: its share of the
        # base spool plus the bag spool it fits from (a full bag when
        # groups are single ranks), with slack for the child spools the
        # partition pass writes alongside
        working = self.n_records * row_nbytes * (1.0 / self.n_ranks + 1.0)
        return max(
            int(1.25 * working),
            int(32.0 * self.memory_limit_bytes(row_nbytes)),
        )


def run_forest(
    cfg: ForestExperimentConfig, *, trace: bool = False, metrics: bool = False
) -> ForestResult:
    """Generate data, distribute it once, and fit a bagged forest.

    Mirrors :func:`run_pclouds`: same seed layout (``seed`` generates,
    ``seed+1`` distributes, ``seed+2`` fits), same cost models, one
    :class:`~repro.core.dataset.DistributedDataset` shared by every
    member through per-tree multiplicity masks.
    """
    schema = quest_schema()
    cols, labels = generate_quest(
        cfg.n_records, cfg.function, seed=cfg.seed, noise=cfg.noise
    )
    cluster = build_cluster(cfg, schema.row_nbytes())
    dataset = DistributedDataset.create(
        cluster, schema, cols, labels, seed=cfg.seed + 1
    )
    forest = PForest(
        ForestConfig(
            n_trees=cfg.n_trees,
            pclouds=PCloudsConfig(
                clouds=CloudsConfig(
                    method=cfg.method,
                    q_root=cfg.resolved_q_root(),
                    sample_size=cfg.resolved_sample(),
                    min_node=cfg.min_node,
                    purity=cfg.purity,
                ),
                q_switch=cfg.q_switch,
                exchange=cfg.exchange,
                frontier_batching=cfg.frontier_batching,
                vote_top_k=cfg.vote_top_k,
            ),
            regime=cfg.regime,
            n_groups=cfg.n_groups,
        )
    )
    return forest.fit(dataset, seed=cfg.seed + 2, trace=trace, metrics=metrics)


def run_pclouds(
    cfg: ExperimentConfig, *, trace: bool = False, metrics: bool = False
) -> PCloudsResult:
    """Generate data, distribute it, and fit pCLOUDS once.

    ``trace=True`` records the fit's full event stream (comm + disk +
    phases) on ``result.tracers`` — the Fig. 1–3 benches use it to emit
    phase-attributed timelines and Perfetto exports. ``metrics=True``
    runs under the live metrics registry and health monitor
    (:mod:`repro.obs`); embed ``result.metrics_snapshot()`` in BENCH
    payloads via :func:`bench_payload`.
    """
    schema = quest_schema()
    cols, labels = generate_quest(
        cfg.n_records, cfg.function, seed=cfg.seed, noise=cfg.noise
    )
    cluster = build_cluster(cfg, schema.row_nbytes())
    dataset = DistributedDataset.create(
        cluster, schema, cols, labels, seed=cfg.seed + 1
    )
    pc = PClouds(
        PCloudsConfig(
            clouds=CloudsConfig(
                method=cfg.method,
                q_root=cfg.resolved_q_root(),
                sample_size=cfg.resolved_sample(),
                min_node=cfg.min_node,
                purity=cfg.purity,
            ),
            q_switch=cfg.q_switch,
            exchange=cfg.exchange,
            frontier_batching=cfg.frontier_batching,
            vote_top_k=cfg.vote_top_k,
        )
    )
    return pc.fit(dataset, seed=cfg.seed + 2, trace=trace, metrics=metrics)


def bench_payload(result: PCloudsResult, **extra) -> dict:
    """Standard BENCH_*.json payload for one fit: elapsed time, node
    counts, and — when the fit was metered — the merged metrics snapshot
    plus the health roll-up."""
    payload = {
        "elapsed_s": result.elapsed,
        "n_large_nodes": result.n_large_nodes,
        "n_small_tasks": result.n_small_tasks,
        "n_restarts": result.n_restarts,
        **extra,
    }
    if result.metrics is not None:
        payload["metrics"] = result.metrics_snapshot()
    return payload


def forest_payload(result: ForestResult, **extra) -> dict:
    """Standard BENCH_*.json payload for one forest fit: elapsed time,
    schedule shape, cross-tree cache accounting, and total disk reads."""
    payload = {
        "elapsed_s": result.elapsed,
        "n_trees": len(result.forest.trees),
        "n_groups": result.n_groups,
        "n_waves": result.n_waves,
        "n_restarts": result.n_restarts,
        "cross_tree": result.cross_tree,
        "disk_read_bytes": int(sum(result.disk_read_bytes)),
        "tree_elapsed_s": {
            str(t["tree"]): t["elapsed"] for t in result.tree_stats
        },
        "regime_costs": {
            str(g): cost for g, cost in result.regime_costs.items()
        },
        **extra,
    }
    if result.metrics is not None:
        payload["metrics"] = result.metrics_snapshot()
    return payload


@dataclass
class SpeedupPoint:
    n_ranks: int
    elapsed: float
    speedup: float
    result: PCloudsResult = field(repr=False, default=None)


def speedup_series(
    n_records: int,
    ranks: list[int],
    base: ExperimentConfig | None = None,
    **overrides,
) -> list[SpeedupPoint]:
    """Elapsed time and speedup relative to one processor for a series of
    machine sizes (one Figure-1 curve)."""
    points: list[SpeedupPoint] = []
    t1 = None
    for p in ranks:
        cfg = ExperimentConfig(n_records=n_records, n_ranks=p, **overrides)
        res = run_pclouds(cfg)
        if t1 is None:
            base_cfg = ExperimentConfig(n_records=n_records, n_ranks=1, **overrides)
            t1 = res.elapsed if p == 1 else run_pclouds(base_cfg).elapsed
        points.append(
            SpeedupPoint(
                n_ranks=p, elapsed=res.elapsed, speedup=t1 / res.elapsed, result=res
            )
        )
    return points
