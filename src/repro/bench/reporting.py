"""Plain-text tables for the benchmark harness — each bench prints the
same rows/series the paper's figures plot."""

from __future__ import annotations

from typing import Any, Sequence

__all__ = ["format_table", "format_series", "print_table"]


def _fmt(x: Any) -> str:
    if isinstance(x, float):
        if x == 0:
            return "0"
        if abs(x) >= 1000 or abs(x) < 0.01:
            return f"{x:.3g}"
        return f"{x:.3f}".rstrip("0").rstrip(".")
    return str(x)


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[Any]], title: str = ""
) -> str:
    """Fixed-width ascii table."""
    cells = [[_fmt(x) for x in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
        for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for r in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(r, widths)))
    return "\n".join(lines)


def format_series(name: str, xs: Sequence[Any], ys: Sequence[Any]) -> str:
    """One figure curve as `name: (x, y) ...` pairs."""
    pairs = ", ".join(f"({_fmt(x)}, {_fmt(y)})" for x, y in zip(xs, ys))
    return f"{name}: {pairs}"


def print_table(
    headers: Sequence[str], rows: Sequence[Sequence[Any]], title: str = ""
) -> None:
    print()
    print(format_table(headers, rows, title=title))
