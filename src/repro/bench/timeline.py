"""ASCII timelines of simulated runs.

Renders per-rank phase times (from :class:`~repro.cluster.clock.PhaseTimer`
snapshots) as horizontal bars — a quick visual answer to "where did the
time go and was it balanced?" without leaving the terminal. Traced runs
(``repro.cluster.trace``) additionally render per-phase communication
traffic via :func:`render_comm_phase_bars`.
"""

from __future__ import annotations

from typing import Mapping, Sequence

__all__ = ["render_phase_bars", "render_rank_bars", "render_comm_phase_bars"]

_BLOCK = "█"
_PARTIAL = "▏▎▍▌▋▊▉"


def _bar(value: float, scale: float, width: int) -> str:
    if scale <= 0:
        return ""
    cells = value / scale * width
    full = int(cells)
    frac = cells - full
    out = _BLOCK * full
    if frac > 1 / 8 and full < width:
        out += _PARTIAL[min(int(frac * 8), 6)]
    return out


def render_phase_bars(
    phase_times: Sequence[Mapping[str, float]],
    width: int = 40,
    unit: str = "s",
) -> str:
    """One bar per phase (max over ranks), annotated with the imbalance.

    ``phase_times`` is ``SpmdRun.phase_times`` — one dict per rank —
    but any per-rank ``{phase: value}`` mapping works (``unit`` labels
    the values: seconds by default, bytes for traffic).
    """
    phases = sorted({k for pt in phase_times for k in pt})
    if not phases:
        return "(no phases recorded)"
    maxima = {
        k: max(pt.get(k, 0.0) for pt in phase_times) for k in phases
    }
    means = {
        k: sum(pt.get(k, 0.0) for pt in phase_times) / len(phase_times)
        for k in phases
    }
    scale = max(maxima.values())
    name_w = max(len(k) for k in phases)
    lines = []
    for k in phases:
        imb = maxima[k] / means[k] if means[k] > 0 else 1.0
        lines.append(
            f"{k:<{name_w}}  {_bar(maxima[k], scale, width):<{width}}  "
            f"{maxima[k]:9.2f}{unit}  (imbalance {imb:.2f})"
        )
    return "\n".join(lines)


def render_comm_phase_bars(tracers, width: int = 40) -> str:
    """Per-phase communication traffic (max over ranks) of a traced run.

    ``tracers`` are :class:`repro.cluster.trace.Tracer` objects; each
    comm event's sent+received bytes accrue to the phase it ran under.
    """
    per_rank: list[dict[str, float]] = []
    for t in tracers:
        d: dict[str, float] = {}
        for e in t.events:
            if e.kind == "comm":
                key = e.phase or "(no phase)"
                d[key] = d.get(key, 0.0) + e.sent + e.received
        per_rank.append(d)
    return render_phase_bars(per_rank, width=width, unit="B")


def render_rank_bars(
    values: Sequence[float],
    label: str = "rank",
    width: int = 40,
) -> str:
    """One bar per rank for any per-rank quantity (busy time, bytes...)."""
    if not values:
        return "(no ranks)"
    scale = max(values)
    lines = []
    for r, v in enumerate(values):
        lines.append(f"{label} {r:<3} {_bar(v, scale, width):<{width}} {v:12.3f}")
    return "\n".join(lines)
