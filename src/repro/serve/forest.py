"""Compile a fitted :class:`~repro.clouds.DecisionForest` for serving.

Each member tree is flattened by :func:`~repro.serve.compiler.compile_tree`
into its node-major tables; the forest engine stacks them behind one
shared record-major feature matrix (built once per batch, filled for the
union of the members' used features) and tallies the members' levelwise
predictions into a per-record ballot box. The majority vote — ties to
the lowest label code — is pinned **bit-identical** to the reference
``DecisionForest.predict``, which itself composes the per-tree reference
walkers, so the whole chain

    reference trees → reference vote == compiled trees → compiled vote

holds bit for bit (each compiled tree is already pinned against its
reference walker).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.data.schema import LABEL_DTYPE, Schema

from .compiler import CompiledTree, compile_tree

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.clouds.forest import DecisionForest

__all__ = ["CompiledForest", "compile_forest"]


@dataclass(frozen=True)
class CompiledForest:
    """A fitted forest as stacked per-tree flat tables."""

    schema: Schema
    trees: tuple[CompiledTree, ...]

    # -- shape -------------------------------------------------------------
    @property
    def n_trees(self) -> int:
        return len(self.trees)

    @property
    def n_nodes(self) -> int:
        return sum(t.n_nodes for t in self.trees)

    @property
    def nbytes(self) -> int:
        return sum(t.nbytes for t in self.trees)

    @property
    def depth(self) -> int:
        return max(t.depth for t in self.trees)

    @property
    def used_features(self) -> np.ndarray:
        """Sorted schema indices of features any member tests."""
        return np.unique(np.concatenate([t.used_features for t in self.trees]))

    # -- evaluation --------------------------------------------------------
    def feature_matrix(self, columns: dict[str, np.ndarray]) -> np.ndarray:
        """One record-major float64 matrix shared by every member's
        levelwise evaluation; only the union of used features is filled."""
        names = self.schema.names
        n = len(next(iter(columns.values()))) if columns else 0
        X = np.empty((n, len(names)), dtype=np.float64)
        for f in self.used_features:
            X[:, f] = np.asarray(columns[names[f]], dtype=np.float64)
        return X

    def vote_counts(self, columns: dict[str, np.ndarray]) -> np.ndarray:
        """Per-record ``(n, n_classes)`` ballot box of member votes."""
        X = self.feature_matrix(columns)
        n = X.shape[0]
        counts = np.zeros((n, self.schema.n_classes), dtype=np.int64)
        rows = np.arange(n)
        for tree in self.trees:
            counts[rows, tree.predict_matrix(X)] += 1
        return counts

    def predict_batch(self, columns: dict[str, np.ndarray]) -> np.ndarray:
        """Vectorised majority vote, bit-identical to the reference
        ``DecisionForest.predict`` (argmax ties to the lowest code)."""
        return np.argmax(self.vote_counts(columns), axis=1).astype(LABEL_DTYPE)


def compile_forest(forest: "DecisionForest") -> CompiledForest:
    """Flatten every member of ``forest`` into a :class:`CompiledForest`."""
    return CompiledForest(
        schema=forest.schema,
        trees=tuple(compile_tree(t) for t in forest.trees),
    )
