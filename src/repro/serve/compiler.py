"""Compile a fitted :class:`~repro.clouds.DecisionTree` into flat arrays.

The pointer tree the builders produce is the single source of truth, but
chasing Python object pointers per record is the wrong shape for a read
path that has to serve millions of records. :func:`compile_tree` flattens
the tree into **node-major numpy tables** laid out in breadth-first
order — feature index, threshold, left/right child, majority label, and a
per-node **categorical-membership bitset** — and
:meth:`CompiledTree.predict_batch` evaluates a whole request batch with
levelwise ``np.take`` gathers over an array of per-record cursors: every
iteration advances *all* records still inside the tree by one level at
once, the vectorized analogue of the evaluate-all-levels-at-once trick
from "Speculative Parallel Evaluation of Classification Trees on GPGPU
Compute Engines" (PAPERS.md).

Semantics are pinned **bit-identical** to the reference
``DecisionTree.predict``:

* numeric: ``value <= threshold`` routes left, so NaN (which compares
  false) routes right, exactly like the reference;
* categorical: integer-code membership in the split's left set via the
  bitset; non-integral, negative or out-of-range values are members of
  nothing and route right, exactly like ``np.isin`` against the code
  array.

Compilation itself is iterative (breadth-first queue), so degenerate
chain trees deeper than the interpreter recursion limit compile fine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.data.schema import LABEL_DTYPE, Schema

from repro.clouds.splits import NUMERIC_SPLIT

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.clouds.tree import DecisionTree

__all__ = ["CompiledTree", "compile_tree"]

#: sentinel child / feature index marking a leaf row
LEAF = -1


@dataclass(frozen=True)
class CompiledTree:
    """A fitted tree flattened into node-major tables (breadth-first
    order, root at row 0).

    Rows are nodes. ``feature[i] == LEAF`` marks a leaf; internal rows
    carry the schema-ordered feature index, the numeric ``threshold``
    (NaN on categorical rows) and the children. ``catmask`` packs each
    categorical split's left-code set into 64-bit words; ``label`` holds
    every node's majority class so the cursor array doubles as the
    output gather index.
    """

    schema: Schema
    feature: np.ndarray  # int32[n] schema feature index, LEAF at leaves
    threshold: np.ndarray  # float64[n], NaN at leaves / categorical rows
    left: np.ndarray  # int32[n] child row, LEAF at leaves
    right: np.ndarray  # int32[n]
    label: np.ndarray  # LABEL_DTYPE[n] majority class of every node
    is_cat: np.ndarray  # bool[n] categorical-split rows
    catmask: np.ndarray  # uint64[n, n_words] left-code bitsets
    node_id: np.ndarray  # int32[n] original builder node ids
    depth: int  # deepest node

    # -- shape -------------------------------------------------------------
    @property
    def n_nodes(self) -> int:
        return len(self.feature)

    @property
    def n_leaves(self) -> int:
        return int(np.count_nonzero(self.feature == LEAF))

    @property
    def nbytes(self) -> int:
        """Total table bytes (the whole model, cache-resident for any
        realistic tree)."""
        return sum(
            a.nbytes
            for a in (
                self.feature,
                self.threshold,
                self.left,
                self.right,
                self.label,
                self.is_cat,
                self.catmask,
                self.node_id,
            )
        )

    @property
    def used_features(self) -> np.ndarray:
        """Sorted schema indices of features the tree actually tests."""
        return np.unique(self.feature[self.feature != LEAF])

    @property
    def has_categorical(self) -> bool:
        return bool(self.is_cat.any())

    # -- evaluation --------------------------------------------------------
    def feature_matrix(self, columns: dict[str, np.ndarray]) -> np.ndarray:
        """Gather the request columns into one record-major ``float64``
        matrix (int32 categorical codes are exact in float64). Row
        layout keeps one record's features on one cache line, which is
        what the per-level gathers touch. Only columns for features the
        tree tests are filled."""
        names = self.schema.names
        n = len(next(iter(columns.values()))) if columns else 0
        X = np.empty((n, len(names)), dtype=np.float64)
        for f in self.used_features:
            X[:, f] = np.asarray(columns[names[f]], dtype=np.float64)
        return X

    def predict_batch(self, columns: dict[str, np.ndarray]) -> np.ndarray:
        """Vectorised batch prediction, bit-identical to the reference
        ``DecisionTree.predict``."""
        return self.predict_matrix(self.feature_matrix(columns))

    def predict_matrix(self, X: np.ndarray) -> np.ndarray:
        """Levelwise evaluation over a prebuilt record-major matrix.

        ``cur`` holds each record's node row; every pass gathers the
        active rows' split tables (``np.take``), resolves the routing
        predicate, and advances the cursors. Breadth-first layout makes
        siblings adjacent (``right == left + 1``), so advancing is one
        gather plus the predicate — no second child table, no select.
        Records that reach a leaf drop out of the active set, so the
        work per pass shrinks with the frontier.
        """
        n = X.shape[0] if X.ndim == 2 else 0
        cur = np.zeros(n, dtype=np.int64)
        if self.feature[0] == LEAF:
            active = np.empty(0, dtype=np.int64)
        else:
            active = np.arange(n, dtype=np.int64)
        n_codes = self.catmask.shape[1] * 64
        has_cat = self.has_categorical
        while active.size:
            c = cur[active]
            vals = X[active, np.take(self.feature, c)]
            # NaN thresholds on categorical rows compare false, so this
            # single compare is already correct for every numeric row
            # and a placeholder (right) for categorical rows
            go_left = vals <= np.take(self.threshold, c)
            if has_cat:
                ci = np.flatnonzero(np.take(self.is_cat, c))
                if ci.size:
                    v = vals[ci]
                    member = np.zeros(v.size, dtype=bool)
                    # integer-valued, in-range codes are the only
                    # candidates; everything else (NaN, fractions, out
                    # of range) is a member of nothing and routes right,
                    # matching np.isin against the code array
                    finite = np.isfinite(v)
                    iv = np.zeros(v.size, dtype=np.int64)
                    iv[finite] = v[finite].astype(np.int64)
                    ok = finite & (iv.astype(np.float64) == v)
                    ok &= (iv >= 0) & (iv < n_codes)
                    if ok.any():
                        rows = c[ci][ok]
                        codes = iv[ok]
                        words = self.catmask[rows, codes >> 6]
                        member[ok] = (
                            words >> (codes & 63).astype(np.uint64)
                        ) & 1 == 1
                    go_left[ci] = member

            nxt = np.take(self.left, c) + ~go_left
            cur[active] = nxt
            active = active[np.take(self.feature, nxt) != LEAF]
        return np.take(self.label, cur).astype(LABEL_DTYPE, copy=False)


def compile_tree(tree: "DecisionTree") -> CompiledTree:
    """Flatten ``tree`` breadth-first into a :class:`CompiledTree`."""
    schema = tree.schema
    feat_index = {name: i for i, name in enumerate(schema.names)}
    max_card = max((a.cardinality for a in schema.categorical), default=0)

    # breadth-first numbering via an explicit queue (no recursion)
    order = []
    queue = [tree.root]
    head = 0
    while head < len(queue):
        node = queue[head]
        head += 1
        order.append(node)
        if not node.is_leaf:
            queue.append(node.left)
            queue.append(node.right)
    index = {id(node): i for i, node in enumerate(order)}
    n = len(order)

    # left-code sets can only contain codes seen in training data, but
    # size the bitset to the schema cardinality so membership lookups
    # never need a per-node width
    n_words = max(1, (max_card + 63) // 64)
    feature = np.full(n, LEAF, dtype=np.int32)
    threshold = np.full(n, np.nan, dtype=np.float64)
    left = np.full(n, LEAF, dtype=np.int32)
    right = np.full(n, LEAF, dtype=np.int32)
    label = np.empty(n, dtype=LABEL_DTYPE)
    is_cat = np.zeros(n, dtype=bool)
    catmask = np.zeros((n, n_words), dtype=np.uint64)
    node_id = np.empty(n, dtype=np.int32)
    max_depth = 0

    for i, node in enumerate(order):
        label[i] = node.label
        node_id[i] = node.node_id
        if node.depth > max_depth:
            max_depth = node.depth
        if node.is_leaf:
            continue
        s = node.split
        feature[i] = feat_index[s.attribute]
        left[i] = index[id(node.left)]
        right[i] = index[id(node.right)]
        if s.kind == NUMERIC_SPLIT:
            threshold[i] = s.threshold
        else:
            is_cat[i] = True
            for code in s.left_codes:
                if not 0 <= code < n_words * 64:
                    raise ValueError(
                        f"categorical code {code} at node {node.node_id} "
                        f"outside the schema cardinality bitset"
                    )
                catmask[i, code >> 6] |= np.uint64(1) << np.uint64(code & 63)

    # predict_matrix advances cursors as ``left + ~go_left``: the
    # breadth-first queue appends left then right, so siblings are
    # always adjacent — keep this invariant machine-checked
    internal = feature != LEAF
    if not np.array_equal(right[internal], left[internal] + 1):
        raise AssertionError("BFS layout broke sibling adjacency")

    return CompiledTree(
        schema=schema,
        feature=feature,
        threshold=threshold,
        left=left,
        right=right,
        label=label,
        is_cat=is_cat,
        catmask=catmask,
        node_id=node_id,
        depth=max_depth,
    )
