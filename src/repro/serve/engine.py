"""Batch serving engine: a compiled tree plus live ``repro_serve_*``
metrics.

:class:`ServeEngine` is the process-local read path. Each call to
:meth:`ServeEngine.predict_batch` evaluates one request batch through the
:class:`~repro.serve.compiler.CompiledTree` and records — into the same
:class:`~repro.obs.MetricsRegistry` machinery the training side uses —
the ``repro_serve_*`` metric family: request/record counters, a
fine-grained latency histogram, batch-size distribution, and gauges for
the exact p50/p99 and records/sec published by :meth:`finalize`.

Unlike the training-side metrics (functions of the *simulated* clock),
serving is a real read path: latencies are **host** seconds from an
injectable monotonic clock, which tests replace with a fake to keep every
recorded number deterministic.
"""

from __future__ import annotations

import math
import time
from typing import Callable

import numpy as np

from repro.obs.registry import Counter, Gauge, Histogram, MetricsRegistry

from .compiler import CompiledTree

__all__ = ["ServeEngine", "register_serve_metrics", "SERVE_LATENCY_BUCKETS"]

#: host-seconds buckets for request latency (log-spaced, sub-ms floor —
#: a batched gather over a cached model sits in the 1e-5..1e-2 range)
SERVE_LATENCY_BUCKETS = (
    1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 1e-1, 1.0, math.inf
)

#: records-per-batch buckets (powers of four from a single record up)
SERVE_BATCH_BUCKETS = (
    1.0, 4.0, 16.0, 64.0, 256.0, 1024.0, 4096.0, 16384.0, 65536.0, math.inf
)


def register_serve_metrics(registry: MetricsRegistry) -> None:
    """Declare the ``repro_serve_*`` family (idempotent)."""
    registry.register(
        Counter(
            "repro_serve_requests_total",
            "Prediction request batches served",
            ("rank",),
        ),
        Counter(
            "repro_serve_records_total",
            "Records predicted",
            ("rank",),
        ),
        Counter(
            "repro_serve_deadline_misses_total",
            "Paced batches that started after their deadline",
            ("rank",),
        ),
        Histogram(
            "repro_serve_latency_seconds",
            "Host-clock latency of one predict_batch call",
            ("rank",),
            buckets=SERVE_LATENCY_BUCKETS,
        ),
        Histogram(
            "repro_serve_batch_records",
            "Records per request batch",
            ("rank",),
            buckets=SERVE_BATCH_BUCKETS,
        ),
        Gauge(
            "repro_serve_latency_p50_seconds",
            "Exact median batch latency (set at finalize)",
            ("rank",),
        ),
        Gauge(
            "repro_serve_latency_p99_seconds",
            "Exact 99th-percentile batch latency (set at finalize)",
            ("rank",),
        ),
        Gauge(
            "repro_serve_records_per_sec",
            "Replay throughput (set at finalize)",
            ("rank",),
        ),
        Gauge(
            "repro_serve_model_nodes",
            "Compiled model size in nodes",
            ("rank",),
        ),
        Gauge(
            "repro_serve_model_bytes",
            "Compiled model table bytes",
            ("rank",),
        ),
    )


class ServeEngine:
    """One serving replica: compiled model + metrics shard.

    ``rank`` namespaces the metric labels so several replicas can share
    one registry (the multi-job story of ROADMAP item 5); ``clock`` is
    any monotonic ``() -> float`` — ``time.perf_counter`` in production,
    a fake in tests.
    """

    def __init__(
        self,
        compiled: CompiledTree,
        registry: MetricsRegistry | None = None,
        rank: int = 0,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        self.compiled = compiled
        self.registry = registry or MetricsRegistry()
        register_serve_metrics(self.registry)
        self.rank = rank
        self.clock = clock
        self._labels = (str(rank),)
        self._shard = self.registry.shard(rank)
        self.latencies: list[float] = []  # host seconds per batch
        self.n_records = 0
        self.n_requests = 0
        self._shard.set("repro_serve_model_nodes", self._labels, compiled.n_nodes)
        self._shard.set("repro_serve_model_bytes", self._labels, compiled.nbytes)

    # -- serving -------------------------------------------------------------
    def predict_batch(self, columns: dict[str, np.ndarray]) -> np.ndarray:
        """Serve one batch, recording latency and volume."""
        t0 = self.clock()
        out = self.compiled.predict_batch(columns)
        dt = self.clock() - t0
        n = len(out)
        self.latencies.append(dt)
        self.n_records += n
        self.n_requests += 1
        shard, labels = self._shard, self._labels
        shard.inc("repro_serve_requests_total", labels)
        shard.inc("repro_serve_records_total", labels, n)
        shard.observe("repro_serve_latency_seconds", labels, dt)
        shard.observe("repro_serve_batch_records", labels, n)
        return out

    def record_deadline_miss(self) -> None:
        self._shard.inc("repro_serve_deadline_misses_total", self._labels)

    # -- roll-ups ------------------------------------------------------------
    def percentile(self, q: float) -> float:
        """Exact latency percentile in seconds (0.0 before any traffic)."""
        if not self.latencies:
            return 0.0
        return float(np.percentile(np.asarray(self.latencies), q))

    def finalize(self, elapsed: float) -> None:
        """Publish the exact percentile and throughput gauges after a
        replay (``elapsed`` is the driver's wall time in host seconds)."""
        shard, labels = self._shard, self._labels
        shard.set("repro_serve_latency_p50_seconds", labels, self.percentile(50))
        shard.set("repro_serve_latency_p99_seconds", labels, self.percentile(99))
        if elapsed > 0:
            shard.set(
                "repro_serve_records_per_sec", labels, self.n_records / elapsed
            )
