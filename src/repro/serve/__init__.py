"""Batched inference serving: the repo's production read path.

Training (the write path) produces a pointer-based
:class:`~repro.clouds.DecisionTree`; this package turns it into
something that can face traffic:

* :mod:`repro.serve.compiler` — :func:`compile_tree` flattens a fitted
  tree into node-major numpy tables and
  :class:`CompiledTree.predict_batch` evaluates request batches with
  levelwise gathers, bit-identical to the (iterative) reference
  ``DecisionTree.predict``;
* :mod:`repro.serve.engine` — :class:`ServeEngine` wraps a compiled
  model with the ``repro_serve_*`` metric family (request/record
  counters, latency histogram, exact p50/p99 gauges) on the shared
  :class:`~repro.obs.MetricsRegistry`;
* :mod:`repro.serve.replay` — :func:`replay` drives Quest record
  batches through an engine at a target QPS and reports exact
  p50/p99/records-per-sec plus serve-latency health alerts.

``repro serve`` (the CLI) and ``benchmarks/bench_serve.py`` are thin
drivers over these three layers.
"""

from .compiler import CompiledTree, compile_tree
from .forest import CompiledForest, compile_forest
from .engine import (
    SERVE_LATENCY_BUCKETS,
    ServeEngine,
    register_serve_metrics,
)
from .replay import ReplayConfig, ReplayReport, replay, request_batches

__all__ = [
    "CompiledForest",
    "CompiledTree",
    "ReplayConfig",
    "ReplayReport",
    "SERVE_LATENCY_BUCKETS",
    "ServeEngine",
    "compile_forest",
    "compile_tree",
    "register_serve_metrics",
    "replay",
    "request_batches",
]
