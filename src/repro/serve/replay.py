"""Replay driver: push Quest record batches through a serving engine at
a target QPS and report latency/throughput.

The driver is the load generator behind ``repro serve`` and
``benchmarks/bench_serve.py``: it materialises a Quest request stream,
slices it into batches, paces batch starts against an absolute deadline
schedule (``start + i * batch_size / target_qps``; unthrottled when the
target is 0), and measures per-batch latency through the engine's
``repro_serve_*`` metrics. The report carries *exact* p50/p99 (computed
from the full latency vector, not histogram buckets) plus
:class:`~repro.obs.HealthAlert` serve-latency/throughput indicators
evaluated against :class:`~repro.obs.HealthThresholds`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.data import generate_quest
from repro.obs.health import OUTSIDE_LEVEL, HealthAlert, HealthThresholds

from .engine import ServeEngine

__all__ = ["ReplayConfig", "ReplayReport", "replay", "request_batches"]


@dataclass(frozen=True)
class ReplayConfig:
    """One replay workload."""

    n_records: int = 1_000_000
    batch_size: int = 4096
    target_qps: float = 0.0  # records/sec; 0 = unthrottled
    function: int = 2
    seed: int = 0
    noise: float = 0.0
    #: batches served before measurement starts (page in the tables,
    #: warm the allocator) — excluded from every reported number
    warmup_batches: int = 2

    def __post_init__(self) -> None:
        if self.n_records <= 0:
            raise ValueError("need at least one record")
        if self.batch_size <= 0:
            raise ValueError("batch size must be positive")


@dataclass
class ReplayReport:
    """What a replay measured (all latencies in host milliseconds)."""

    n_records: int
    n_batches: int
    batch_size: int
    elapsed: float  # host seconds, measurement window only
    records_per_sec: float
    p50_ms: float
    p99_ms: float
    mean_ms: float
    max_ms: float
    target_qps: float
    deadline_misses: int
    alerts: list[HealthAlert] = field(default_factory=list)

    @property
    def healthy(self) -> bool:
        return not self.alerts

    def to_dict(self) -> dict:
        return {
            "n_records": self.n_records,
            "n_batches": self.n_batches,
            "batch_size": self.batch_size,
            "elapsed_seconds": self.elapsed,
            "records_per_sec": self.records_per_sec,
            "latency_ms": {
                "p50": self.p50_ms,
                "p99": self.p99_ms,
                "mean": self.mean_ms,
                "max": self.max_ms,
            },
            "target_qps": self.target_qps,
            "deadline_misses": self.deadline_misses,
            "healthy": self.healthy,
            "alerts": [
                {
                    "indicator": a.indicator,
                    "value": a.value,
                    "threshold": a.threshold,
                    "message": a.message,
                }
                for a in self.alerts
            ],
        }

    def render(self) -> str:
        lines = [
            f"served {self.n_records:,} records in {self.n_batches:,} "
            f"batches of {self.batch_size:,}",
            f"throughput {self.records_per_sec:,.0f} records/sec"
            + (
                f" (target {self.target_qps:,.0f}, "
                f"{self.deadline_misses} deadline misses)"
                if self.target_qps
                else " (unthrottled)"
            ),
            f"batch latency p50 {self.p50_ms:.3f} ms, p99 {self.p99_ms:.3f} ms, "
            f"mean {self.mean_ms:.3f} ms, max {self.max_ms:.3f} ms",
        ]
        for a in self.alerts:
            lines.append(f"ALERT [{a.indicator}] {a.message}")
        if not self.alerts:
            lines.append("healthy: all serve indicators within thresholds")
        return "\n".join(lines)


def request_batches(
    config: ReplayConfig,
) -> tuple[list[dict[str, np.ndarray]], np.ndarray]:
    """The replay's request stream: Quest records sliced into
    ``batch_size`` views (no copies) plus the ground-truth labels."""
    columns, labels = generate_quest(
        config.n_records,
        function=config.function,
        seed=config.seed,
        noise=config.noise,
    )
    batches = [
        {k: v[i : i + config.batch_size] for k, v in columns.items()}
        for i in range(0, config.n_records, config.batch_size)
    ]
    return batches, labels


def _serve_alerts(
    report: ReplayReport, thresholds: HealthThresholds
) -> list[HealthAlert]:
    """Serving-path health indicators (same alert structure the training
    HealthMonitor emits, level pinned to the outside-loop sentinel)."""
    alerts: list[HealthAlert] = []
    p99_s = report.p99_ms / 1e3
    if p99_s > thresholds.serve_p99_seconds:
        alerts.append(
            HealthAlert(
                "serve_latency", OUTSIDE_LEVEL, None, p99_s,
                thresholds.serve_p99_seconds,
                f"serve p99 batch latency {report.p99_ms:.3f} ms exceeds "
                f"{thresholds.serve_p99_seconds * 1e3:.3f} ms",
            )
        )
    if report.target_qps > 0:
        ratio = report.records_per_sec / report.target_qps
        if ratio < thresholds.serve_min_qps_ratio:
            alerts.append(
                HealthAlert(
                    "serve_throughput", OUTSIDE_LEVEL, None, ratio,
                    thresholds.serve_min_qps_ratio,
                    f"achieved {report.records_per_sec:,.0f} records/sec is "
                    f"{ratio:.1%} of the {report.target_qps:,.0f} target "
                    f"(floor {thresholds.serve_min_qps_ratio:.0%})",
                )
            )
    return alerts


def replay(
    engine: ServeEngine,
    config: ReplayConfig,
    thresholds: HealthThresholds | None = None,
    clock: Callable[[], float] | None = None,
    sleep: Callable[[float], None] = time.sleep,
) -> ReplayReport:
    """Drive ``config``'s request stream through ``engine``.

    Pacing uses absolute deadlines so a slow batch borrows from the
    following gap instead of shifting the whole schedule (open-loop load
    generation — the honest way to measure a target-QPS SLO). Returns
    the measured report; the engine's gauges are finalized as a side
    effect so Prometheus/JSON exports carry the same numbers.
    """
    clock = clock or engine.clock
    thresholds = thresholds or HealthThresholds()
    batches, _ = request_batches(config)

    for batch in batches[: config.warmup_batches]:
        engine.predict_batch(batch)
    # warmup excluded from every roll-up
    engine.latencies.clear()
    engine.n_records = 0
    engine.n_requests = 0

    interval = (
        config.batch_size / config.target_qps if config.target_qps > 0 else 0.0
    )
    deadline_misses = 0
    start = clock()
    for i, batch in enumerate(batches):
        if interval:
            deadline = start + i * interval
            now = clock()
            if now < deadline:
                sleep(deadline - now)
            elif i:  # the first batch starts exactly on schedule
                deadline_misses += 1
                engine.record_deadline_miss()
        engine.predict_batch(batch)
    elapsed = clock() - start

    lat = np.asarray(engine.latencies)
    report = ReplayReport(
        n_records=engine.n_records,
        n_batches=engine.n_requests,
        batch_size=config.batch_size,
        elapsed=elapsed,
        records_per_sec=engine.n_records / elapsed if elapsed > 0 else 0.0,
        p50_ms=float(np.percentile(lat, 50)) * 1e3 if lat.size else 0.0,
        p99_ms=float(np.percentile(lat, 99)) * 1e3 if lat.size else 0.0,
        mean_ms=float(lat.mean()) * 1e3 if lat.size else 0.0,
        max_ms=float(lat.max()) * 1e3 if lat.size else 0.0,
        target_qps=config.target_qps,
        deadline_misses=deadline_misses,
    )
    report.alerts = _serve_alerts(report, thresholds)
    engine.finalize(elapsed)
    return report
