"""Per-rank resource counters.

Every simulated cost charged to a rank's clock is also recorded here, so
benchmarks and tests can assert on *volumes* (bytes read, messages sent)
independently of the time model. pCLOUDS' load-balance claims are checked
against these counters.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class RankStats:
    """Counters for one rank of one SPMD run."""

    compute_time: float = 0.0
    io_time: float = 0.0
    comm_time: float = 0.0
    idle_time: float = 0.0  # waiting at synchronisation points

    bytes_read: int = 0
    bytes_written: int = 0
    io_calls: int = 0
    io_retries: int = 0  # transient-disk-error retries (backoff charged)
    crc_failures: int = 0  # chunk CRC mismatches detected on fetch
    io_overlap_saved: float = 0.0  # disk seconds hidden behind compute by prefetch

    bytes_sent: int = 0
    bytes_received: int = 0
    messages_sent: int = 0
    collectives: int = 0

    def merge(self, other: "RankStats") -> "RankStats":
        """Elementwise sum (used to aggregate across ranks)."""
        out = RankStats()
        for f in self.__dataclass_fields__:
            setattr(out, f, getattr(self, f) + getattr(other, f))
        return out

    def busy_time(self) -> float:
        """Simulated time spent doing work rather than waiting."""
        return self.compute_time + self.io_time + self.comm_time

    def as_dict(self) -> dict[str, float]:
        return {f: getattr(self, f) for f in self.__dataclass_fields__}


@dataclass
class RunStats:
    """Aggregated view over all ranks of one SPMD run."""

    per_rank: list[RankStats] = field(default_factory=list)

    @property
    def total(self) -> RankStats:
        agg = RankStats()
        for s in self.per_rank:
            agg = agg.merge(s)
        return agg

    def imbalance(self, attr: str = "busy_time") -> float:
        """max/mean ratio of a counter across ranks (1.0 = perfect balance).

        ``attr`` may name a field or the ``busy_time`` method.
        """
        vals = []
        for s in self.per_rank:
            v = getattr(s, attr)
            vals.append(v() if callable(v) else v)
        mean = sum(vals) / len(vals) if vals else 0.0
        if mean == 0.0:
            return 1.0
        return max(vals) / mean
