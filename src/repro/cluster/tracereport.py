"""Roll-ups and exporters for traced runs.

Turns the per-rank event streams of :mod:`repro.cluster.trace` into the
per-phase breakdowns the paper argues from (Sections 3–6, Table 1):

* :class:`TraceReport` — bytes and time by primitive × phase, per-rank
  totals, and idle/skew analysis across ranks, with a text renderer;
* :func:`to_chrome_trace` / :func:`write_chrome_trace` — Chrome-trace
  JSON (the ``traceEvents`` array format) loadable in Perfetto or
  ``chrome://tracing``, one track per rank, comm/disk slices nested
  inside their phase spans.

Simulated seconds are exported as trace microseconds.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Iterable

from .trace import Tracer

__all__ = [
    "OpRow",
    "RankTotals",
    "LevelRow",
    "ExchangeRow",
    "TraceReport",
    "to_chrome_trace",
    "write_chrome_trace",
]

_NO_PHASE = "(no phase)"

#: PhaseTimer phase the drivers open around every statistics exchange.
_STATS_PHASE = "stats"


@dataclass(frozen=True)
class LevelRow:
    """Aggregate over all ranks for one frontier level (events recorded
    while the driver had that level open; ``level is None`` groups
    everything outside the frontier loop — preprocessing, checkpoints,
    the small-task phase and assembly)."""

    level: int | None
    comm_count: int
    comm_time: float
    comm_sent: int
    comm_received: int
    disk_count: int
    disk_time: float
    disk_read: int
    disk_written: int
    #: simulated seconds of disk transfer this level hid behind compute
    #: via overlapped prefetch (sum of the ``prefetch_wait`` events'
    #: ``saved``); reconciles exactly against ``stats.io_overlap_saved``
    overlap_saved: float = 0.0

    @property
    def name(self) -> str:
        return "outside" if self.level is None else str(self.level)


@dataclass(frozen=True)
class ExchangeRow:
    """Statistics-exchange traffic for one frontier level: every comm
    event recorded inside the driver's ``stats`` phase, which is exactly
    the collectives the exchange strategy issued (ballots, partitioned
    alltoalls, combines, split elections)."""

    level: int | None
    count: int
    time: float
    sent: int
    received: int

    @property
    def name(self) -> str:
        return "outside" if self.level is None else str(self.level)


@dataclass(frozen=True)
class OpRow:
    """Aggregate over all ranks for one (phase, kind, op) cell."""

    phase: str
    kind: str
    op: str
    count: int
    time: float  # sum of event durations over all ranks
    sent: int
    received: int

    @property
    def nbytes(self) -> int:
        return self.sent + self.received


@dataclass(frozen=True)
class RankTotals:
    """Per-rank traffic and activity totals."""

    rank: int
    comm_sent: int
    comm_received: int
    comm_time: float
    disk_read: int
    disk_written: int
    disk_time: float
    n_events: int
    t_end: float  # latest event end on this rank


class TraceReport:
    """Aggregated view over the tracers of one run."""

    def __init__(self, tracers: list[Tracer]) -> None:
        self.tracers = list(tracers)
        self.rows = self._aggregate_ops()
        self.per_rank = self._aggregate_ranks()

    @classmethod
    def from_tracers(cls, tracers: Iterable[Tracer]) -> "TraceReport":
        return cls(list(tracers))

    # -- aggregation ---------------------------------------------------------
    def _aggregate_ops(self) -> list[OpRow]:
        acc: dict[tuple[str, str, str], list] = {}
        for t in self.tracers:
            for e in t.events:
                if e.kind == "phase":
                    continue  # phases are the grouping, not a row
                key = (e.phase or _NO_PHASE, e.kind, e.op)
                cell = acc.setdefault(key, [0, 0.0, 0, 0])
                cell[0] += 1
                cell[1] += e.duration
                cell[2] += e.sent
                cell[3] += e.received
        return [
            OpRow(phase=p, kind=k, op=o, count=c, time=dt, sent=s, received=r)
            for (p, k, o), (c, dt, s, r) in sorted(acc.items())
        ]

    def _aggregate_ranks(self) -> list[RankTotals]:
        out = []
        for t in self.tracers:
            comm = t.comm_events()
            disk = t.disk_events()
            out.append(
                RankTotals(
                    rank=t.rank,
                    comm_sent=sum(e.sent for e in comm),
                    comm_received=sum(e.received for e in comm),
                    comm_time=sum(e.duration for e in comm),
                    disk_read=sum(e.received for e in disk),
                    disk_written=sum(e.sent for e in disk),
                    disk_time=sum(e.duration for e in disk),
                    n_events=len(t.events),
                    t_end=max((e.t_end for e in t.events), default=0.0),
                )
            )
        return out

    # -- totals --------------------------------------------------------------
    @property
    def total_sent(self) -> int:
        return sum(r.comm_sent for r in self.per_rank)

    @property
    def total_received(self) -> int:
        return sum(r.comm_received for r in self.per_rank)

    @property
    def total_disk_read(self) -> int:
        return sum(r.disk_read for r in self.per_rank)

    @property
    def total_disk_written(self) -> int:
        return sum(r.disk_written for r in self.per_rank)

    def phase_comm_bytes(self) -> dict[str, int]:
        """Total comm bytes (sent + received over all ranks) per phase."""
        out: dict[str, int] = {}
        for row in self.rows:
            if row.kind == "comm":
                out[row.phase] = out.get(row.phase, 0) + row.nbytes
        return out

    def phase_skew(self) -> dict[str, tuple[float, float, float]]:
        """Per phase: (max over ranks, mean over ranks, max/mean ratio)
        of the simulated time the ranks spent in it. The ratio is the
        paper's load-balance lens: 1.0 means perfectly even phases."""
        per_rank: list[dict[str, float]] = []
        for t in self.tracers:
            d: dict[str, float] = {}
            for e in t.phase_events():
                d[e.op] = d.get(e.op, 0.0) + e.duration
            per_rank.append(d)
        phases = sorted({k for d in per_rank for k in d})
        out = {}
        n = max(len(per_rank), 1)
        for ph in phases:
            vals = [d.get(ph, 0.0) for d in per_rank]
            mx, mean = max(vals), sum(vals) / n
            out[ph] = (mx, mean, mx / mean if mean > 0 else 1.0)
        return out

    def level_rollup(self) -> list[LevelRow]:
        """Comm and disk activity grouped by frontier level, in level
        order with the outside-the-loop bucket last. Levels are stamped
        on events by the driver's ``begin_level``/``end_level``
        notifications, so runs traced without a level-aware driver
        collapse into the single outside bucket."""
        acc: dict[int | None, list] = {}
        for t in self.tracers:
            for e in t.events:
                if e.kind not in ("comm", "disk"):
                    continue
                cell = acc.setdefault(
                    e.level, [0, 0.0, 0, 0, 0, 0.0, 0, 0, 0.0]
                )
                if e.kind == "comm":
                    cell[0] += 1
                    cell[1] += e.duration
                    cell[2] += e.sent
                    cell[3] += e.received
                else:
                    cell[4] += 1
                    cell[5] += e.duration
                    cell[6] += e.received  # disk events: received = read
                    cell[7] += e.sent  # sent = written
                    cell[8] += e.saved  # prefetch overlap hidden here
        ordered = sorted(acc, key=lambda lv: (lv is None, lv if lv is not None else 0))
        return [
            LevelRow(
                level=lv,
                comm_count=acc[lv][0],
                comm_time=acc[lv][1],
                comm_sent=acc[lv][2],
                comm_received=acc[lv][3],
                disk_count=acc[lv][4],
                disk_time=acc[lv][5],
                disk_read=acc[lv][6],
                disk_written=acc[lv][7],
                overlap_saved=acc[lv][8],
            )
            for lv in ordered
        ]

    @property
    def exchange_strategy(self) -> str | None:
        """The stats-exchange strategy the traced run used (recorded via
        the driver's ``on_stats_exchange`` notification; None when the
        run predates the hook or never exchanged statistics)."""
        for t in self.tracers:
            if t.exchange_strategy is not None:
                return t.exchange_strategy
        return None

    def exchange_rollup(self) -> list[ExchangeRow]:
        """Stats-exchange collective traffic grouped by frontier level:
        per level the number of collectives issued inside the driver's
        ``stats`` phase and the exact bytes they moved (from
        the tracer's :class:`RankStats` snapshots, summed over ranks).
        This is the payload-accounting view behind the voting strategy's
        O(attributes) → O(k) claim — compare the same run under
        ``exchange="attribute"`` and ``exchange="voting"``."""
        acc: dict[int | None, list] = {}
        for t in self.tracers:
            for e in t.events:
                if e.kind != "comm" or e.phase != _STATS_PHASE:
                    continue
                cell = acc.setdefault(e.level, [0, 0.0, 0, 0])
                cell[0] += 1
                cell[1] += e.duration
                cell[2] += e.sent
                cell[3] += e.received
        ordered = sorted(acc, key=lambda lv: (lv is None, lv if lv is not None else 0))
        return [
            ExchangeRow(
                level=lv,
                count=acc[lv][0],
                time=acc[lv][1],
                sent=acc[lv][2],
                received=acc[lv][3],
            )
            for lv in ordered
        ]

    def exchange_bytes(self) -> int:
        """Total bytes sent by stats-exchange collectives over all ranks
        and levels — the single number the voting strategy shrinks."""
        return sum(row.sent for row in self.exchange_rollup())

    def critical_path(self, network=None, *, elapsed: float | None = None):
        """The run's causal critical path
        (:func:`repro.obs.critpath.build_critical_path` over these
        tracers). Pass the run's :class:`NetworkModel` so comm blame
        splits into startup vs. bandwidth with the machine's actual
        alpha/beta ratio, and the run's elapsed time to account trailing
        local work after the last traced event."""
        from repro.obs.critpath import build_critical_path

        return build_critical_path(self.tracers, network, elapsed=elapsed)

    def rank_skew(self) -> float:
        """Spread of the ranks' final event times: (max - min) / max.
        0.0 means all ranks finished together (no trailing idle)."""
        ends = [r.t_end for r in self.per_rank]
        if not ends or max(ends) == 0:
            return 0.0
        return (max(ends) - min(ends)) / max(ends)

    # -- rendering -----------------------------------------------------------
    def render(self) -> str:
        """The run as text: traffic by primitive × phase, per-rank
        totals, and the skew analysis."""
        lines = ["== traffic by primitive × phase (all ranks) =="]
        header = (
            f"{'phase':<14} {'kind':<5} {'op':<16} {'count':>7} "
            f"{'bytes':>14} {'sent':>14} {'received':>14} {'time(s)':>10}"
        )
        lines.append(header)
        lines.append("-" * len(header))
        for row in self.rows:
            lines.append(
                f"{row.phase:<14} {row.kind:<5} {row.op:<16} {row.count:>7} "
                f"{row.nbytes:>14,} {row.sent:>14,} {row.received:>14,} "
                f"{row.time:>10.3f}"
            )
        lines.append(
            f"total comm: sent {self.total_sent:,} B, "
            f"received {self.total_received:,} B; "
            f"disk: read {self.total_disk_read:,} B, "
            f"written {self.total_disk_written:,} B"
        )
        lines.append("")
        lines.append("== per-rank totals ==")
        lines.append(
            f"{'rank':>4} {'comm sent':>14} {'comm recv':>14} "
            f"{'disk read':>14} {'disk write':>14} {'events':>8} {'end(s)':>10}"
        )
        for r in self.per_rank:
            lines.append(
                f"{r.rank:>4} {r.comm_sent:>14,} {r.comm_received:>14,} "
                f"{r.disk_read:>14,} {r.disk_written:>14,} {r.n_events:>8} "
                f"{r.t_end:>10.3f}"
            )
        levels = self.level_rollup()
        if any(row.level is not None for row in levels):
            lines.append("")
            lines.append("== traffic by frontier level (all ranks) ==")
            lines.append(
                f"{'level':<8} {'comm n':>7} {'comm(s)':>10} {'sent':>14} "
                f"{'received':>14} {'disk n':>7} {'disk(s)':>10} "
                f"{'read':>14} {'written':>14} {'hidden(s)':>10}"
            )
            for row in levels:
                lines.append(
                    f"{row.name:<8} {row.comm_count:>7} {row.comm_time:>10.3f} "
                    f"{row.comm_sent:>14,} {row.comm_received:>14,} "
                    f"{row.disk_count:>7} {row.disk_time:>10.3f} "
                    f"{row.disk_read:>14,} {row.disk_written:>14,} "
                    f"{row.overlap_saved:>10.3f}"
                )
        exchange = self.exchange_rollup()
        if exchange:
            strategy = self.exchange_strategy or "unknown"
            lines.append("")
            lines.append(
                f"== stats-exchange payload by level (strategy: {strategy}) =="
            )
            lines.append(
                f"{'level':<8} {'coll n':>7} {'time(s)':>10} {'sent':>14} "
                f"{'received':>14}"
            )
            for row in exchange:
                lines.append(
                    f"{row.name:<8} {row.count:>7} {row.time:>10.3f} "
                    f"{row.sent:>14,} {row.received:>14,}"
                )
            lines.append(
                f"total stats-exchange: {sum(r.count for r in exchange)} "
                f"collectives, {sum(r.sent for r in exchange):,} B sent"
            )
        skew = self.phase_skew()
        if skew:
            lines.append("")
            lines.append("== phase skew across ranks ==")
            lines.append(
                f"{'phase':<14} {'max(s)':>10} {'mean(s)':>10} {'imbalance':>10}"
            )
            for ph, (mx, mean, ratio) in skew.items():
                lines.append(
                    f"{ph:<14} {mx:>10.3f} {mean:>10.3f} {ratio:>10.2f}"
                )
        lines.append(f"finish-time skew across ranks: {self.rank_skew():.1%}")
        try:
            path = self.critical_path()
        except Exception:
            path = None  # partial / foreign event streams: skip section
        if path is not None and path.length > 0:
            lines.append("")
            lines.append(
                "== critical path (default machine model; use "
                "`repro critpath` for the run's model) =="
            )
            cats = path.by_category()
            for cat, secs in cats.items():
                if secs > 0:
                    lines.append(
                        f"{cat:<16} {secs:>10.3f}s {path.share(cat):>7.1%}"
                    )
            lines.append(
                f"length {path.length:.3f}s on {path.n_cross_rank + 1} rank "
                f"visit(s), ends on rank {path.end_rank}"
            )
            blame = path.by_level_category()
            by_level = path.by_level()
            if any(lv is not None for lv in by_level):
                lines.append(f"{'level':<8} {'path(s)':>10}  dominant blame")
                for lv in sorted(
                    by_level, key=lambda x: (x is None, x if x is not None else 0)
                ):
                    cell = blame[lv]
                    dom = max(cell, key=cell.get)
                    share = cell[dom] / by_level[lv] if by_level[lv] else 0.0
                    name = "outside" if lv is None else str(lv)
                    lines.append(
                        f"{name:<8} {by_level[lv]:>10.3f}  {dom} {share:.0%}"
                    )
        return "\n".join(lines)


# -- Chrome trace / Perfetto export ------------------------------------------


def _flow_events(tracers: list[Tracer], critical_path=None) -> list[dict]:
    """Chrome-trace flow arrows ("s"/"f" pairs) making cross-rank
    causality visible in Perfetto: one fan-out per collective from the
    last-arriving participant (whose entry releases everyone) to every
    other participant's exit, one arrow per matched ``send``/``recv``
    pair, and — when a :class:`~repro.obs.critpath.CriticalPath` is
    passed — highlighted arrows at each of the path's rank crossings."""
    from repro.obs.critpath import (
        CritPathError,
        _timeline,
        collective_groups,
        match_p2p,
    )

    try:
        attempt = max(
            (e.attempt for t in tracers for e in t.events), default=0
        )
        timelines = [_timeline(t, attempt) for t in tracers]
        groups = collective_groups(timelines)
        p2p = match_p2p(timelines)
    except CritPathError:
        return []  # foreign / inconsistent streams: no arrows
    flows: list[dict] = []
    next_id = 1

    def arrow(name, src_tid, src_ts, dst_tid, dst_ts, cat="flow"):
        nonlocal next_id
        common = {"cat": cat, "name": name, "id": next_id, "pid": 0}
        flows.append({**common, "ph": "s", "tid": src_tid, "ts": src_ts * 1e6})
        flows.append(
            {**common, "ph": "f", "bp": "e", "tid": dst_tid, "ts": dst_ts * 1e6}
        )
        next_id += 1

    seen: set[int] = set()
    for evs in timelines:
        for e in evs:
            g = groups.get(id(e))
            if g is None or id(g[0][1]) in seen:
                continue
            seen.add(id(g[0][1]))
            if len(g) < 2:
                continue
            t_sync = max(ev.t_start for _, ev in g)
            src = min(rk for rk, ev in g if ev.t_start == t_sync)
            for rk, ev in g:
                if rk != src:
                    arrow(e.op, src, t_sync, rk, ev.t_end)
    for rank, evs in enumerate(timelines):
        for e in evs:
            m = p2p.get(id(e))
            if m is None:
                continue
            src, se = m
            arrow(f"{se.op}->recv", src, se.t_end, rank, e.t_end)
    if critical_path is not None:
        for a, b in critical_path.crossings():
            arrow(
                f"critpath:{b.op}", a.rank, a.t_end, b.rank, b.t_start,
                cat="critpath",
            )
    return flows


def to_chrome_trace(tracers: Iterable[Tracer], critical_path=None) -> dict:
    """The run as a Chrome-trace dict (``{"traceEvents": [...]}``).

    Complete ("X") slices, one trace thread per rank, with phase spans
    enclosing the comm/disk slices they cover, plus flow events tracing
    cross-rank causality (see :func:`_flow_events`). Simulated seconds
    map to trace microseconds; byte counts and communicator labels
    travel in each slice's ``args``.
    """
    tracers = list(tracers)
    events: list[dict] = []
    for t in tracers:
        events.append(
            {
                "ph": "M",
                "name": "thread_name",
                "pid": 0,
                "tid": t.rank,
                "args": {"name": f"rank {t.rank}"},
            }
        )
        slices = []
        for e in t.events:
            args: dict = {"kind": e.kind}
            if e.kind == "comm":
                args.update(
                    {"comm": e.comm, "sent": e.sent, "received": e.received}
                )
                if e.phase:
                    args["phase"] = e.phase
            elif e.kind == "disk":
                args["nbytes"] = e.nbytes
                if e.phase:
                    args["phase"] = e.phase
            if e.level is not None and e.kind in ("comm", "disk"):
                args["level"] = e.level
            slices.append(
                {
                    "name": e.op,
                    "cat": e.kind,
                    "ph": "X",
                    "ts": e.t_start * 1e6,
                    "dur": max(e.duration, 0.0) * 1e6,
                    "pid": 0,
                    "tid": t.rank,
                    "args": args,
                }
            )
        # enclosing spans first at equal start times, so viewers nest
        # phase > primitive correctly
        slices.sort(key=lambda s: (s["ts"], -s["dur"]))
        events.extend(slices)
    events.extend(_flow_events(tracers, critical_path))
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(
    path: str, tracers: Iterable[Tracer], critical_path=None
) -> None:
    """Write :func:`to_chrome_trace` output as JSON, for Perfetto."""
    with open(path, "w") as fh:
        json.dump(to_chrome_trace(tracers, critical_path), fh)
