"""Deterministic fault injection for the simulated machine.

The paper's platform (a 16-node IBM-SP2) loses nodes, drops disk
accesses and runs hot spares slow; the simulated machine models those
hazards so the recovery machinery can be exercised reproducibly. A
:class:`FaultPlan` names a set of faults; a :class:`FaultInjector` armed
with ``(plan, seed)`` replays them bit-for-bit identically on every run:

* :class:`CrashAtCollective` — kill a rank at its Nth collective call;
* :class:`CrashAtPhase` — kill a rank entering a named
  :class:`~repro.cluster.clock.PhaseTimer` phase;
* :class:`TransientDiskFaults` — a window of chunk accesses fails with
  :class:`~repro.ooc.backend.TransientDiskError` (retried by the disk
  with backoff charged to the simulated clock);
* :class:`CorruptChunk` — flip one seeded bit in the Nth chunk a rank
  writes (caught by the per-chunk CRC32 on the next read);
* :class:`SlowRank` — multiply a rank's local-work clock rate
  (straggler simulation).

Crashes and corruptions are **one-shot**: once fired they stay spent
across restart attempts, modelling a node that crashed once and came
back — which is what lets ``PClouds.fit(faults=..., recover=True)``
converge to the fault-free tree. Every firing is appended to
:attr:`FaultInjector.events` and, when tracing is attached, emitted as a
``fault`` trace event (visible in :class:`~repro.cluster.tracereport.TraceReport`).

Attach *after* ``attach_tracers`` so fault events reach the tracer::

    tracers = attach_tracers(contexts)      # optional
    injector = FaultInjector(plan, seed=0)
    injector.attach(contexts)
    injector.begin_attempt()
    cluster.run(program, contexts=contexts)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator

import numpy as np

from .errors import InjectedFault

__all__ = [
    "CrashAtCollective",
    "CrashAtPhase",
    "TransientDiskFaults",
    "CorruptChunk",
    "SlowRank",
    "FaultPlan",
    "FaultInjector",
    "standard_plans",
]

#: communicator calls that count toward a rank's collective index
#: (point-to-point traffic is excluded, matching the tracer's schedules)
_COLLECTIVES = frozenset(
    {
        "barrier",
        "bcast",
        "scatter",
        "gather",
        "allgather",
        "vote",
        "reduce",
        "allreduce",
        "allreduce_minloc",
        "allreduce_minloc_many",
        "scan",
        "alltoall",
        "split",
    }
)


# -- fault specifications -----------------------------------------------------


@dataclass(frozen=True)
class CrashAtCollective:
    """Kill ``rank`` when it reaches its ``nth`` (0-based) collective
    call on the world communicator."""

    rank: int
    nth: int


@dataclass(frozen=True)
class CrashAtPhase:
    """Kill ``rank`` on its ``visit``-th entry (0-based) into the named
    :class:`~repro.cluster.clock.PhaseTimer` phase."""

    rank: int
    phase: str
    visit: int = 0


@dataclass(frozen=True)
class TransientDiskFaults:
    """Fail ``count`` consecutive chunk accesses of kind ``op`` ("get" or
    "put") on ``rank``, starting at access index ``start`` (0-based,
    counted per attempt). Retried in place by the disk's backoff; only a
    window wider than the retry budget crashes the rank."""

    rank: int
    op: str = "get"
    start: int = 0
    count: int = 1


@dataclass(frozen=True)
class CorruptChunk:
    """Silently flip one bit (chosen by the injector seed) in the
    ``nth_put``-th chunk ``rank`` writes. Detection is the CRC's job."""

    rank: int
    nth_put: int


@dataclass(frozen=True)
class SlowRank:
    """Run ``rank``'s local work ``factor``× slower (straggler). Not a
    failure: the run completes, the cost model feels the drag."""

    rank: int
    factor: float = 2.0


@dataclass(frozen=True)
class FaultPlan:
    """A named, ordered set of fault specifications."""

    name: str
    faults: tuple[Any, ...] = ()

    @classmethod
    def of(cls, name: str, *faults: Any) -> "FaultPlan":
        return cls(name=name, faults=tuple(faults))


# -- the injector -------------------------------------------------------------


@dataclass
class FaultInjector:
    """Arms a :class:`FaultPlan` against a set of rank contexts.

    Deterministic from ``(plan, seed)``: collective/phase/disk-access
    indices are counted per rank, and the corrupted bit position comes
    from a seeded generator — two runs with the same plan, seed, and
    program fire byte-identical faults.
    """

    plan: FaultPlan
    seed: int = 0
    #: host-side log of every fired fault:
    #: ``{"rank", "attempt", "fault", "t"}`` dicts in firing order.
    events: list[dict] = field(default_factory=list)
    attempts: int = 0

    def __post_init__(self) -> None:
        if not isinstance(self.plan, FaultPlan):
            self.plan = FaultPlan.of("adhoc", *self.plan)
        self._fired: set[int] = set()  # one-shot fault indices already spent
        self._contexts: list | None = None
        self._collective_count: dict[int, int] = {}
        self._phase_visits: dict[tuple[int, str], int] = {}
        self._disk_count: dict[tuple[int, str], int] = {}

    # -- wiring --------------------------------------------------------------
    def attach(self, contexts: list) -> None:
        """Wrap every context's communicator, phase timer, storage
        backend and clock. Idempotent; call ``attach_tracers`` first if
        fault events should land in the trace."""
        if self._contexts is not None:
            return
        self._contexts = list(contexts)
        for ctx in contexts:
            ctx.comm = _FaultyComm(ctx.comm, self, ctx)
            ctx.timer.on_start = _PhaseHook(self, ctx)
            ctx.disk.backend = _FaultyBackend(ctx.disk.backend, self, ctx)
            for _, f in self._specs(ctx.rank, SlowRank):
                ctx.clock.rate = float(f.factor)
                self._emit(ctx, f"fault:slow-rank×{f.factor:g}")

    def begin_attempt(self) -> None:
        """Reset the per-attempt counters (collective index, phase
        visits, disk-access index). One-shot faults stay spent."""
        self.attempts += 1
        self._collective_count.clear()
        self._phase_visits.clear()
        self._disk_count.clear()

    # -- firing points -------------------------------------------------------
    def before_collective(self, ctx, opname: str) -> None:
        n = self._collective_count.get(ctx.rank, 0)
        self._collective_count[ctx.rank] = n + 1
        for i, f in self._specs(ctx.rank, CrashAtCollective):
            if i not in self._fired and f.nth == n:
                self._fired.add(i)
                self._emit(ctx, f"fault:crash@collective#{n}:{opname}")
                raise InjectedFault(
                    f"rank {ctx.rank}: injected crash at collective "
                    f"#{n} ({opname})"
                )

    def before_phase(self, ctx, phase: str) -> None:
        key = (ctx.rank, phase)
        v = self._phase_visits.get(key, 0)
        self._phase_visits[key] = v + 1
        for i, f in self._specs(ctx.rank, CrashAtPhase):
            if i not in self._fired and f.phase == phase and f.visit == v:
                self._fired.add(i)
                self._emit(ctx, f"fault:crash@phase:{phase}#{v}")
                raise InjectedFault(
                    f"rank {ctx.rank}: injected crash entering phase "
                    f"{phase!r} (visit {v})"
                )

    def before_disk(self, ctx, op: str) -> None:
        from repro.ooc.backend import TransientDiskError

        key = (ctx.rank, op)
        n = self._disk_count.get(key, 0)
        self._disk_count[key] = n + 1
        for _, f in self._specs(ctx.rank, TransientDiskFaults):
            if f.op == op and f.start <= n < f.start + f.count:
                self._emit(ctx, f"fault:transient-{op}#{n}")
                raise TransientDiskError(
                    f"rank {ctx.rank}: injected transient {op} error "
                    f"(access #{n})"
                )

    def after_put(self, ctx, backend, handle) -> None:
        n_put = self._disk_count.get((ctx.rank, "put"), 0) - 1  # just counted
        for i, f in self._specs(ctx.rank, CorruptChunk):
            if i not in self._fired and f.nth_put == n_put:
                self._fired.add(i)
                arr = backend.get(handle)
                if arr.nbytes == 0:
                    return
                rng = np.random.default_rng(
                    np.random.SeedSequence([self.seed, ctx.rank, i])
                )
                raw = bytearray(arr.tobytes())
                byte = int(rng.integers(len(raw)))
                bit = int(rng.integers(8))
                raw[byte] ^= 1 << bit
                backend.overwrite(
                    handle,
                    np.frombuffer(bytes(raw), dtype=arr.dtype).reshape(arr.shape),
                )
                self._emit(
                    ctx, f"fault:corrupt-chunk#{n_put}@byte{byte}.bit{bit}"
                )

    # -- helpers -------------------------------------------------------------
    def _specs(self, rank: int, kind: type) -> Iterator[tuple[int, Any]]:
        for i, f in enumerate(self.plan.faults):
            if isinstance(f, kind) and f.rank == rank:
                yield i, f

    def _emit(self, ctx, label: str) -> None:
        t = ctx.clock.now
        self.events.append(
            {"rank": ctx.rank, "attempt": self.attempts, "fault": label, "t": t}
        )
        tracer = getattr(ctx.disk, "tracer", None)
        if tracer is not None:
            tracer.record_fault(label, t)

    @property
    def n_fired(self) -> int:
        return len(self.events)


class _PhaseHook:
    """Bound ``PhaseTimer.on_start`` callback (picklable-free closure)."""

    def __init__(self, injector: FaultInjector, ctx) -> None:
        self._injector = injector
        self._ctx = ctx

    def __call__(self, phase: str) -> None:
        self._injector.before_phase(self._ctx, phase)


class _FaultyComm:
    """Communicator wrapper that counts collectives and fires crash
    faults before the underlying call. Everything else (including
    ``_world`` and point-to-point traffic) delegates unchanged."""

    def __init__(self, inner, injector: FaultInjector, ctx) -> None:
        self._inner = inner
        self._injector = injector
        self._ctx = ctx

    def __getattr__(self, name: str):
        attr = getattr(self._inner, name)
        if name in _COLLECTIVES:
            injector, ctx = self._injector, self._ctx

            def guarded(*args, **kwargs):
                injector.before_collective(ctx, name)
                return attr(*args, **kwargs)

            return guarded
        return attr


class _FaultyBackend:
    """StorageBackend wrapper: transient errors before the access, bit
    flips after a targeted put. Duck-typed so it wraps any backend."""

    def __init__(self, inner, injector: FaultInjector, ctx) -> None:
        self._inner = inner
        self._injector = injector
        self._ctx = ctx

    def put(self, arr):
        self._injector.before_disk(self._ctx, "put")
        handle = self._inner.put(arr)
        self._injector.after_put(self._ctx, self._inner, handle)
        return handle

    def get(self, handle):
        self._injector.before_disk(self._ctx, "get")
        return self._inner.get(handle)

    def delete(self, handle):
        self._inner.delete(handle)

    def overwrite(self, handle, arr):
        self._inner.overwrite(handle, arr)

    def close(self):
        self._inner.close()

    def __getattr__(self, name: str):
        return getattr(self._inner, name)


# -- a small chaos catalogue --------------------------------------------------


def standard_plans(n_ranks: int) -> list[FaultPlan]:
    """The chaos sweep's built-in fault matrix, scaled to the machine
    size: one plan per fault family, each recoverable by design (crashes
    and corruptions are one-shot; transient windows fit the retry
    budget). Used by ``repro chaos`` and the determinism test matrix."""
    victim = min(1, n_ranks - 1)
    last = n_ranks - 1
    return [
        FaultPlan.of("crash-collective", CrashAtCollective(rank=victim, nth=8)),
        FaultPlan.of("crash-phase", CrashAtPhase(rank=last, phase="partition")),
        FaultPlan.of(
            "disk-transient",
            TransientDiskFaults(rank=0, op="get", start=3, count=2),
        ),
        FaultPlan.of("chunk-corruption", CorruptChunk(rank=last, nth_put=2)),
        FaultPlan.of("straggler", SlowRank(rank=last, factor=4.0)),
    ]
