"""The simulated coarse-grained machine: SPMD launcher and rank contexts.

:class:`Cluster` models the paper's platform (Section 2): p processors,
each with its own memory budget and local disk, connected by a
cut-through-routed network. ``Cluster.run(program)`` launches one thread
per rank; each thread executes ``program(ctx, *args, **kwargs)`` against
its :class:`RankContext`. All cross-rank time relationships flow through
the communicator, so the *simulated* elapsed time (max over the ranks'
final clocks) is deterministic regardless of host thread scheduling.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Callable

from typing import TYPE_CHECKING

import numpy as np

from .clock import PhaseTimer, SimClock
from .comm import Comm, CommWorld
from .compute import ComputeModel
from .diskmodel import DiskModel
from .errors import ClusterAborted, SpmdProgramError
from .network import NetworkModel
from .stats import RankStats, RunStats

if TYPE_CHECKING:  # ooc imports cluster's cost models; keep runtime import lazy
    from repro.ooc.backend import StorageBackend


class RankContext:
    """Everything one simulated processor owns.

    Attributes
    ----------
    rank, size : position in the machine.
    clock : simulated time.
    comm : MPI-like communicator bound to this rank.
    disk : the node's local disk (charges the clock).
    memory : per-node main-memory budget.
    rng : per-rank numpy Generator, seeded from (cluster seed, rank).
    stats : resource counters.
    timer : phase attribution of simulated time.
    observers : attached instrumentation (tracers, metrics recorders);
        driver programs broadcast milestones to them via :meth:`notify`.
    """

    def __init__(
        self,
        rank: int,
        world: CommWorld,
        *,
        compute: ComputeModel,
        disk_model: DiskModel,
        memory_limit: int | None,
        backend: "StorageBackend | None",
        seed: int,
        buffer_pool: str = "off",
        pool_bytes: int | None = None,
    ) -> None:
        from repro.ooc.bufferpool import BufferPool
        from repro.ooc.disk import LocalDisk
        from repro.ooc.memory import MemoryBudget

        self.rank = rank
        self.size = world.size
        self.clock = SimClock()
        self.stats = RankStats()
        self.compute = compute
        self.comm = Comm(world, rank, self)
        self.disk = LocalDisk(disk_model, self.clock, self.stats, backend)
        self.memory = MemoryBudget(limit=memory_limit)
        self.pool_budget: MemoryBudget | None = None
        if buffer_pool != "off":
            # Cache RAM is its own budget: the paper's "memory limit" is
            # the node-processing threshold (open_node), not the node's
            # total RAM — the pool models the rest of that RAM put to
            # work as an I/O cache, sized relative to the limit.
            cap = pool_bytes if pool_bytes is not None else _default_pool_bytes(
                memory_limit
            )
            self.pool_budget = MemoryBudget(limit=cap)
            self.disk.attach_pool(
                BufferPool(
                    self.pool_budget, prefetch=(buffer_pool == "lru+prefetch")
                )
            )
        self.rng = np.random.default_rng(np.random.SeedSequence([seed, rank]))
        self.timer = PhaseTimer(self.clock)
        self.observers: list[Any] = []

    def notify(self, event: str, *args: Any, **kwargs: Any) -> None:
        """Deliver a driver milestone (``begin_level``, ``end_level``,
        ``on_survival``, ...) to every attached observer that implements
        it. Free when nothing is attached; observers must not advance the
        clock or touch the rng, so notified runs stay bit-identical."""
        for obs in self.observers:
            fn = getattr(obs, event, None)
            if fn is not None:
                fn(*args, **kwargs)

    def charge_compute(self, ops: float = 0.0, seconds: float = 0.0) -> None:
        """Charge local CPU work, by op count and/or directly in seconds."""
        dt = seconds + (self.compute.cost(ops) if ops else 0.0)
        if dt:
            self.clock.advance(dt)
            self.stats.compute_time += dt

    def charge_sort(self, n: int) -> None:
        """Charge a comparison sort of n keys."""
        self.charge_compute(seconds=self.compute.sort(n))


class _PrefixedTimer:
    """View of a rank's :class:`PhaseTimer` that namespaces phase names
    (``tree3/stats``): the tree driver keeps its phase vocabulary while
    traces, metrics and the critical path see per-tree attribution."""

    def __init__(self, base: PhaseTimer, prefix: str) -> None:
        self._base = base
        self._prefix = prefix

    def start(self, name: str) -> None:
        self._base.start(self._prefix + name)

    def stop(self) -> None:
        self._base.stop()

    @property
    def current(self) -> str | None:
        return self._base.current

    @property
    def totals(self) -> dict[str, float]:
        return self._base.totals

    def __getattr__(self, name: str) -> Any:
        return getattr(self._base, name)


class GroupContext:
    """A :class:`RankContext` view bound to a sub-communicator.

    Tree-parallel forest regimes split the world into disjoint rank
    groups (``Comm.split``); the per-tree fit program then runs against a
    context whose ``comm``/``rank``/``size`` are the *group's* while disk,
    clock, memory, rng, stats and observers remain the underlying
    physical rank's. An optional ``phase_prefix`` namespaces phase names
    (``tree3/...``) so tracing and metrics attribute time per tree.
    """

    def __init__(
        self, base: RankContext, comm: Comm, *, phase_prefix: str = ""
    ) -> None:
        self._base = base
        self.comm = comm
        self.rank = comm.rank
        self.size = comm.size
        self.timer = (
            _PrefixedTimer(base.timer, phase_prefix) if phase_prefix else base.timer
        )

    def __getattr__(self, name: str) -> Any:
        return getattr(self._base, name)


@dataclass
class SpmdRun:
    """Outcome of one ``Cluster.run``: per-rank return values, the
    simulated elapsed time, and resource statistics."""

    results: list[Any]
    elapsed: float
    stats: RunStats
    phase_times: list[dict[str, float]] = field(default_factory=list)

    @property
    def result(self) -> Any:
        """Rank 0's return value (SPMD programs usually assemble there)."""
        return self.results[0]


#: default buffer-pool capacity relative to the node-processing memory
#: limit — the cache RAM a node has left once the processing working set
#: is carved out (see RankContext); 64 MiB when the machine is unlimited
POOL_LIMIT_RATIO = 4
DEFAULT_POOL_BYTES = 64 * 2**20


def _default_pool_bytes(memory_limit: int | None) -> int:
    if memory_limit is None:
        return DEFAULT_POOL_BYTES
    return POOL_LIMIT_RATIO * int(memory_limit)


class Cluster:
    """A p-processor shared-nothing machine with analytic cost models."""

    BUFFER_POOL_MODES = ("off", "lru", "lru+prefetch")

    def __init__(
        self,
        n_ranks: int,
        *,
        network: NetworkModel | None = None,
        disk: DiskModel | None = None,
        compute: ComputeModel | None = None,
        memory_limit: int | None = None,
        backend_factory: Callable[[], StorageBackend] | None = None,
        seed: int = 0,
        timeout: float = 300.0,
        buffer_pool: str = "off",
        pool_bytes: int | None = None,
    ) -> None:
        if n_ranks < 1:
            raise ValueError(f"need at least one rank, got {n_ranks}")
        if buffer_pool not in self.BUFFER_POOL_MODES:
            raise ValueError(
                f"buffer_pool must be one of {self.BUFFER_POOL_MODES}, "
                f"got {buffer_pool!r}"
            )
        self.n_ranks = n_ranks
        self.network = network or NetworkModel()
        self.disk_model = disk or DiskModel()
        self.compute = compute or ComputeModel()
        self.memory_limit = memory_limit
        self.backend_factory = backend_factory
        self.seed = seed
        self.timeout = timeout
        self.buffer_pool = buffer_pool
        self.pool_bytes = pool_bytes

    def make_contexts(self) -> list[RankContext]:
        """Fresh rank contexts sharing one communication world (exposed so
        callers can pre-load disks and then run several programs against
        the same machine state)."""
        world = CommWorld(self.n_ranks, self.network, self.timeout)
        return [
            RankContext(
                r,
                world,
                compute=self.compute,
                disk_model=self.disk_model,
                memory_limit=self.memory_limit,
                backend=self.backend_factory() if self.backend_factory else None,
                seed=self.seed,
                buffer_pool=self.buffer_pool,
                pool_bytes=self.pool_bytes,
            )
            for r in range(self.n_ranks)
        ]

    def run(
        self,
        program: Callable[..., Any],
        *args: Any,
        contexts: list[RankContext] | None = None,
        reset_clocks: bool = True,
        **kwargs: Any,
    ) -> SpmdRun:
        """Execute ``program(ctx, *args, **kwargs)`` on every rank.

        ``contexts`` reuses machine state from :meth:`make_contexts`
        (disks keep their files); by default clocks restart at zero so the
        run's elapsed time measures only this program.

        Resource ownership: contexts created *by this call* are torn down
        before it returns — storage backends closed, phase timers stopped —
        whether the program succeeded or raised. Caller-provided contexts
        stay open (the caller owns their disks, e.g. a
        :class:`~repro.core.dataset.DistributedDataset` running several
        programs against the same machine state); only their timers are
        stopped. A program whose results must outlive the run (returned
        ``OocArray`` handles, pre-loaded fragments) must therefore pass its
        own contexts.
        """
        owns_contexts = contexts is None
        ctxs = contexts if contexts is not None else self.make_contexts()
        if len(ctxs) != self.n_ranks:
            raise ValueError("context list does not match cluster size")
        if reset_clocks:
            for c in ctxs:
                c.clock.now = 0.0
                c.disk.reset_io_queue()
        world = ctxs[0].comm._world
        if world.aborted:
            # reused contexts whose previous run failed (checkpoint/restart)
            world.reset()
        results: list[Any] = [None] * self.n_ranks
        failures: list[tuple[int, BaseException]] = []
        failure_lock = threading.Lock()

        def runner(ctx: RankContext) -> None:
            try:
                results[ctx.rank] = program(ctx, *args, **kwargs)
            except ClusterAborted:
                pass  # secondary casualty of another rank's failure
            except BaseException as exc:  # noqa: BLE001 - must propagate all
                with failure_lock:
                    failures.append((ctx.rank, exc))
                world.abort()

        try:
            if self.n_ranks == 1:
                runner(ctxs[0])
            else:
                threads = [
                    threading.Thread(
                        target=runner, args=(c,), name=f"rank-{c.rank}", daemon=True
                    )
                    for c in ctxs
                ]
                for t in threads:
                    t.start()
                for t in threads:
                    t.join()

            if failures:
                rank, exc = min(failures, key=lambda f: f[0])
                raise SpmdProgramError(rank, exc) from exc

            for c in ctxs:
                c.timer.stop()
            return SpmdRun(
                results=results,
                elapsed=max(c.clock.now for c in ctxs),
                stats=RunStats(per_rank=[c.stats for c in ctxs]),
                phase_times=[c.timer.snapshot() for c in ctxs],
            )
        finally:
            # failed or not: close any still-open phase so attributed time
            # is complete, and tear down run-owned storage backends
            for c in ctxs:
                c.timer.stop()
            if owns_contexts:
                for c in ctxs:
                    c.disk.close()
