"""Communication cost model for a cut-through routed hypercube.

The paper (Table 1) models a p-processor hypercube with cut-through
routing; sending one message of m units costs ``alpha + beta*m`` where
``alpha`` is the per-message startup (handshake) time and ``beta`` the
inverse bandwidth. The collective formulas below are the standard ones
from Kumar et al., *Introduction to Parallel Computing*, which the paper
cites; the paper notes the analysis is the same for the IBM SP's
permutation network.

All message sizes ``m`` are in **bytes**. Every formula is exposed as a
method so the benchmark for Table 1 can sweep (m, p) and print the modelled
scaling, and so alternative network models can be dropped in.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


def _log2p(p: int) -> float:
    """ceil(log2 p) with log2(1) == 0; collective latency factor."""
    if p < 1:
        raise ValueError(f"need at least one processor, got p={p}")
    return float(math.ceil(math.log2(p))) if p > 1 else 0.0


@dataclass(frozen=True)
class NetworkModel:
    """Cut-through hypercube network with startup ``alpha`` and inverse
    bandwidth ``beta``.

    Defaults are calibrated to a mid-1990s MPP (IBM SP2-class): ~40 us
    message startup and ~35 MB/s point-to-point bandwidth.
    """

    alpha: float = 40e-6
    beta: float = 1.0 / 35e6

    # -- point to point ----------------------------------------------------
    def p2p(self, m: float) -> float:
        """One message of m bytes between any two nodes (cut-through:
        distance-independent to first order)."""
        return self.alpha + self.beta * m

    # -- collectives (Table 1 of the paper) --------------------------------
    def broadcast(self, m: float, p: int) -> float:
        """One-to-all broadcast of m bytes: (alpha + beta*m) * log p."""
        return (self.alpha + self.beta * m) * _log2p(p)

    def all_to_all_broadcast(self, m: float, p: int) -> float:
        """All-to-all broadcast (allgather), m bytes contributed per rank:
        alpha*log p + beta*m*(p-1)."""
        return self.alpha * _log2p(p) + self.beta * m * max(p - 1, 0)

    def gather(self, m: float, p: int) -> float:
        """Gather m bytes from every rank at one root:
        alpha*log p + beta*m*p (Table 1)."""
        return self.alpha * _log2p(p) + self.beta * m * p

    def global_combine(self, m: float, p: int) -> float:
        """Reduction/allreduce of an m-byte vector: alpha*log p + beta*m
        (Table 1; recursive halving/doubling makes the bandwidth term
        independent of p to first order)."""
        return self.alpha * _log2p(p) + self.beta * m

    def prefix_sum(self, m: float, p: int) -> float:
        """Parallel prefix (scan) of an m-byte vector: alpha*log p + beta*m
        (Table 1)."""
        return self.alpha * _log2p(p) + self.beta * m

    def all_to_all_personalized(self, m: float, p: int) -> float:
        """All-to-all personalized exchange, m bytes per (src,dst) pair:
        (alpha + beta*m) * (p-1) for cut-through routed hypercubes using
        pairwise exchange."""
        return (self.alpha + self.beta * m) * max(p - 1, 0)

    def alltoallv(self, total_out: float, total_in: float, p: int) -> float:
        """Irregular all-to-all as seen by one rank.

        Modelled as p-1 startups plus the larger of the bytes this rank
        injects and drains (links are full-duplex; the busiest direction
        bounds the time).
        """
        return self.alpha * max(p - 1, 0) + self.beta * max(total_out, total_in)
