"""Exception types for the simulated coarse-grained machine."""

from __future__ import annotations


class ClusterError(Exception):
    """Base class for all simulated-cluster failures."""


class SpmdProgramError(ClusterError):
    """A rank's program raised; carries the originating rank.

    The cluster aborts every other rank (their next communication call
    raises :class:`ClusterAborted`) and re-raises the first failure wrapped
    in this type so callers see a single, attributable error.
    """

    def __init__(self, rank: int, cause: BaseException):
        self.rank = rank
        self.cause = cause
        super().__init__(f"rank {rank} failed: {cause!r}")


class ClusterAborted(ClusterError):
    """Raised inside surviving ranks when a peer rank has failed."""


class InjectedFault(ClusterError):
    """A deterministic, planned rank kill (:mod:`repro.cluster.faults`).

    Raised inside the victim rank's program; surfaces to the caller as
    the ``cause`` of a :class:`SpmdProgramError`, so recovery drivers can
    distinguish an injected crash from a genuine program bug.
    """


class CommMismatchError(ClusterError):
    """Ranks disagreed on the collective being executed.

    Every rank must reach the same sequence of collective call sites; a
    mismatch means the SPMD program has divergent control flow, which on a
    real machine would deadlock. We fail fast with a diagnostic instead.
    """


class DeadlockError(ClusterError):
    """A blocking communication call timed out.

    On the simulated machine this (almost) always indicates an SPMD
    program whose ranks diverged, e.g. one rank exited a loop early.
    """
