"""CPU cost model for the simulated processors.

Local computation is charged analytically: algorithm code calls
``rank.charge_compute(ops=...)`` with an operation count (record touches,
comparisons, gini evaluations...). Charging by op count instead of host
wall-time keeps simulated runs deterministic and lets a scaled-down data
set stand in for the paper's multi-million-record runs with the same
compute/I-O/communication *ratios*.

The default 7.5 ns/op (~133 MIPS) approximates a POWER2-class node of the
paper's IBM-SP2 era.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class ComputeModel:
    """Linear ops-to-seconds model."""

    seconds_per_op: float = 7.5e-9

    def cost(self, ops: float) -> float:
        """Seconds to execute ``ops`` abstract operations."""
        if ops < 0:
            raise ValueError(f"negative op count {ops}")
        return ops * self.seconds_per_op

    # -- common shapes, so call sites document what they charge ------------
    def scan(self, n: int, width: int = 1) -> float:
        """Touch n records of `width` fields once each."""
        return self.cost(n * width)

    def sort(self, n: int) -> float:
        """Comparison sort of n keys (n log2 n, floor of 1 op)."""
        if n <= 1:
            return self.cost(n)
        return self.cost(n * math.log2(n))
