"""Per-rank simulated clocks.

Each simulated processor owns a :class:`SimClock`. Local work advances the
clock by analytic costs (compute model, disk model); communication calls
synchronise clocks across ranks (the communicator sets every participant's
clock to ``max(participant clocks) + primitive cost``). Wall-clock time of
the host Python process never enters the simulation, which keeps runs
deterministic and independent of thread scheduling.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class SimClock:
    """Monotonic simulated time for one rank, in seconds."""

    now: float = 0.0
    #: local-work time multiplier. 1.0 is nominal speed; the fault
    #: injector raises it to model a straggler node — every locally
    #: charged second then costs ``rate`` simulated seconds, while
    #: synchronisation to absolute times (``advance_to``) is unaffected.
    rate: float = 1.0

    def advance(self, dt: float) -> float:
        """Move the clock forward by ``dt`` seconds and return the new time."""
        if dt < 0:
            raise ValueError(f"cannot advance clock by negative dt={dt}")
        self.now += dt * self.rate
        return self.now

    def advance_to(self, t: float) -> float:
        """Move the clock forward to absolute time ``t`` (no-op if in the past)."""
        if t > self.now:
            self.now = t
        return self.now


@dataclass
class PhaseTimer:
    """Accumulates simulated time per named phase of an algorithm.

    Used by pCLOUDS to attribute elapsed time to e.g. ``"stats"``,
    ``"alive"``, ``"partition"``, ``"small_nodes"`` the way the paper's
    discussion separates phase costs.

    When a tracer is attached (``repro.cluster.trace.attach_tracers``),
    every closed phase is also emitted as a span event, and the tracer
    reads :attr:`current` to tag comm/disk events with the open phase.
    """

    clock: SimClock
    totals: dict[str, float] = field(default_factory=dict)
    _open: str | None = None
    _started_at: float = 0.0
    #: optional event sink with a ``record_phase(name, t0, t1)`` method.
    tracer: object | None = None
    #: optional hook called with the phase name on every :meth:`start` —
    #: the fault injector uses it to kill a rank at a named phase.
    on_start: object | None = None

    @property
    def current(self) -> str | None:
        """The open phase name, or None between phases."""
        return self._open

    def start(self, phase: str) -> None:
        """Begin attributing time to ``phase`` (closing any open phase)."""
        if self.on_start is not None:
            self.on_start(phase)
        if self._open is not None:
            self.stop()
        self._open = phase
        self._started_at = self.clock.now

    def stop(self) -> None:
        """Close the open phase, adding its simulated duration to the total."""
        if self._open is None:
            return
        dt = self.clock.now - self._started_at
        self.totals[self._open] = self.totals.get(self._open, 0.0) + dt
        if self.tracer is not None:
            self.tracer.record_phase(self._open, self._started_at, self.clock.now)
        self._open = None

    def snapshot(self) -> dict[str, float]:
        """Phase totals including any still-open phase, without closing it."""
        out = dict(self.totals)
        if self._open is not None:
            out[self._open] = out.get(self._open, 0.0) + (
                self.clock.now - self._started_at
            )
        return out
