"""Event tracing for the simulated machine.

A :class:`Tracer` attached to a rank context records every communication
event (primitive name, payload bytes, simulated start/end). Two uses:

* debugging SPMD programs — dump a rank's timeline;
* verifying the SPMD contract — all ranks of a correct program execute
  the *same sequence of collectives*; :func:`assert_schedules_match`
  checks it, and the test-suite runs pCLOUDS under it.

Tracing is opt-in (``Cluster.run`` is unaffected); wrap contexts with
:func:`attach_tracers` before running.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from .comm import Comm, payload_nbytes
from .machine import RankContext

__all__ = ["CommEvent", "Tracer", "attach_tracers", "assert_schedules_match"]


@dataclass(frozen=True)
class CommEvent:
    """One traced communication call."""

    op: str  # primitive name ("allgather", "send", ...)
    nbytes: int  # payload size this rank contributed
    t_start: float
    t_end: float

    @property
    def duration(self) -> float:
        return self.t_end - self.t_start


@dataclass
class Tracer:
    """Per-rank event log."""

    rank: int
    events: list[CommEvent] = field(default_factory=list)

    def record(self, op: str, nbytes: int, t_start: float, t_end: float) -> None:
        self.events.append(CommEvent(op, int(nbytes), t_start, t_end))

    def schedule(self) -> list[str]:
        """The ordered collective-op sequence (p2p excluded: sends and
        receives legitimately differ across ranks)."""
        return [e.op for e in self.events if e.op not in ("send", "recv")]

    def timeline(self) -> str:
        """Human-readable dump."""
        lines = [f"rank {self.rank}: {len(self.events)} comm events"]
        for e in self.events:
            lines.append(
                f"  [{e.t_start:10.4f} - {e.t_end:10.4f}] {e.op:<10} {e.nbytes} B"
            )
        return "\n".join(lines)

    def total_comm_bytes(self) -> int:
        return sum(e.nbytes for e in self.events)


class _TracingComm(Comm):
    """Comm wrapper that logs each primitive around the real call."""

    _TRACED = (
        "barrier",
        "bcast",
        "gather",
        "allgather",
        "reduce",
        "allreduce",
        "allreduce_minloc",
        "scan",
        "alltoall",
        "send",
        "recv",
        "split",
    )

    def __init__(self, inner: Comm, tracer: Tracer) -> None:
        self._world = inner._world
        self.rank = inner.rank
        self.size = inner.size
        self._ctx = inner._ctx
        self.parent_ranks = inner.parent_ranks
        self._tracer = tracer

    def __getattribute__(self, name: str):
        if name in _TracingComm._TRACED:
            real = Comm.__dict__[name].__get__(self, Comm)
            tracer = object.__getattribute__(self, "_tracer")
            ctx = object.__getattribute__(self, "_ctx")

            def traced(*args: Any, **kwargs: Any):
                t0 = ctx.clock.now
                nbytes = payload_nbytes(args[0]) if args else 0
                out = real(*args, **kwargs)
                tracer.record(name, nbytes, t0, ctx.clock.now)
                return out

            return traced
        return object.__getattribute__(self, name)


def attach_tracers(contexts: list[RankContext]) -> list[Tracer]:
    """Wrap every context's communicator; returns the tracers (indexed by
    rank) that fill up during subsequent runs."""
    tracers = []
    for ctx in contexts:
        tracer = Tracer(rank=ctx.rank)
        ctx.comm = _TracingComm(ctx.comm, tracer)
        tracers.append(tracer)
    return tracers


def assert_schedules_match(tracers: list[Tracer]) -> None:
    """Every rank must have executed the identical collective sequence —
    the SPMD contract the simulated machine relies on."""
    schedules = [t.schedule() for t in tracers]
    base = schedules[0]
    for rank, sched in enumerate(schedules[1:], start=1):
        if sched != base:
            for i, (a, b) in enumerate(zip(base, sched)):
                if a != b:
                    raise AssertionError(
                        f"rank {rank} diverged from rank 0 at collective "
                        f"#{i}: {a!r} vs {b!r}"
                    )
            raise AssertionError(
                f"rank {rank} executed {len(sched)} collectives, "
                f"rank 0 executed {len(base)}"
            )
