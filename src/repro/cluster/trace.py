"""Event tracing for the simulated machine.

A :class:`Tracer` attached to a rank context records a structured event
stream: every communication call (collectives *and* point-to-point, on
the world communicator and on every sub-communicator created by
``split``), every disk read/write, and every closed :class:`PhaseTimer`
phase. Each event is tagged with the phase that was open when it
happened, so a run can be rolled up as *bytes and time by primitive ×
phase* (see :mod:`repro.cluster.tracereport`). Three uses:

* debugging SPMD programs — dump a rank's timeline, or export the whole
  run as Chrome-trace/Perfetto JSON;
* answering the paper's questions (Sections 3–6, Table 1) — where does
  the time go: collective startups, bandwidth, or local I/O?
* verifying the SPMD contract — all ranks of a correct program execute
  the *same sequence of collectives* per communicator;
  :func:`assert_schedules_match` checks it, and the test-suite runs
  pCLOUDS under it.

Byte accounting is exact by construction: the tracer does not recompute
payload sizes but snapshots the rank's :class:`RankStats` byte counters
around each primitive, so an event's ``sent``/``received`` are precisely
what the communicator charged (a ``recv`` carries the true payload size,
``allreduce_minloc`` includes its payload, and nested primitives — the
``allgather`` inside ``split`` — are never double-counted).

Tracing is opt-in (``Cluster.run`` is unaffected); wrap contexts with
:func:`attach_tracers` before running.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from .comm import Comm
from .machine import RankContext

__all__ = [
    "TraceEvent",
    "CommEvent",
    "Tracer",
    "attach_tracers",
    "assert_schedules_match",
]

#: communicator label given to the communicator present at attach time.
WORLD = "world"

#: point-to-point ops, excluded from schedules (sends and receives
#: legitimately differ across ranks).
_P2P_OPS = ("send", "recv", "isend")


def _p2p_peer_tag(op, args, kwargs):
    """Destination/source rank and tag of a p2p call, read straight from
    the call arguments (never from the payload — no extra walks)."""
    if op == "recv":  # recv(src, tag=0)
        peer = args[0] if args else kwargs.get("src")
        tag = args[1] if len(args) > 1 else kwargs.get("tag", 0)
    else:  # send(obj, dst, tag=0) / isend(obj, dst, tag=0)
        peer = args[1] if len(args) > 1 else kwargs.get("dst")
        tag = args[2] if len(args) > 2 else kwargs.get("tag", 0)
    return (int(peer) if peer is not None else None), int(tag)


@dataclass(frozen=True)
class TraceEvent:
    """One traced event: a communication call, a disk access, or a
    closed phase."""

    op: str  # primitive name ("allgather", "read", ...) or phase name
    nbytes: int  # payload size this rank moved (max of sent/received)
    t_start: float
    t_end: float
    kind: str = "comm"  # "comm" | "disk" | "phase" | "fault"
    phase: str | None = None  # PhaseTimer phase open when the event happened
    comm: str | None = None  # communicator label ("world", "world/0,1", ...)
    sent: int = 0  # bytes this rank sent (comm) / wrote (disk)
    received: int = 0  # bytes this rank received (comm) / read (disk)
    level: int | None = None  # frontier level open when the event happened
    #: simulated seconds this rank spent blocked inside the event waiting
    #: for other ranks (collective sync slack, recv before the matching
    #: send arrived) — taken from the RankStats.idle_time delta, so the
    #: event's duration splits exactly into charged work + blocked.
    blocked: float = 0.0
    #: prefetch_wait only: rated disk seconds hidden behind compute by
    #: the overlapped prefetch (RankStats.io_overlap_saved delta).
    saved: float = 0.0
    peer: int | None = None  # p2p events: the other rank
    tag: int | None = None  # p2p events: message tag
    attempt: int = 0  # fit attempt (restarts increment; 0 = first)

    @property
    def duration(self) -> float:
        return self.t_end - self.t_start


#: backwards-compatible alias — earlier versions only traced comm calls.
CommEvent = TraceEvent


@dataclass
class Tracer:
    """Per-rank event log."""

    rank: int
    events: list[TraceEvent] = field(default_factory=list)
    #: PhaseTimer consulted for the open phase when recording events.
    phase_source: Any = None
    #: frontier level open right now (driver-maintained via the
    #: begin_level/end_level observer notifications); stamps every event.
    level: int | None = None
    #: statistics-exchange strategy the traced run used (recorded from
    #: the driver's ``on_stats_exchange`` notification), so roll-ups can
    #: label stats traffic with the strategy that produced it.
    exchange_strategy: str | None = None
    #: fit attempt currently recording (driver ``begin_attempt``).
    attempt: int = 0
    # bytes already attributed to recorded comm events; lets an outer
    # primitive (split) subtract what its nested calls already logged.
    attributed_sent: int = 0
    attributed_received: int = 0
    # blocked seconds already attributed, same subtraction rule (split's
    # nested allgather records the sync slack; the outer split must not).
    attributed_blocked: float = 0.0

    def record(
        self,
        op: str,
        nbytes: int,
        t_start: float,
        t_end: float,
        *,
        kind: str = "comm",
        comm: str | None = WORLD,
        sent: int = 0,
        received: int = 0,
        phase: str | None = None,
        blocked: float = 0.0,
        saved: float = 0.0,
        peer: int | None = None,
        tag: int | None = None,
    ) -> None:
        if phase is None and self.phase_source is not None:
            phase = self.phase_source.current
        if kind != "comm":
            comm = None
        self.events.append(
            TraceEvent(
                op=op,
                nbytes=int(nbytes),
                t_start=t_start,
                t_end=t_end,
                kind=kind,
                phase=phase,
                comm=comm,
                sent=int(sent),
                received=int(received),
                level=self.level,
                blocked=blocked,
                saved=saved,
                peer=peer,
                tag=tag,
                attempt=self.attempt,
            )
        )
        if kind == "comm":
            self.attributed_sent += int(sent)
            self.attributed_received += int(received)
            self.attributed_blocked += blocked

    def record_disk(
        self, op: str, nbytes: int, t_start: float, t_end: float
    ) -> None:
        self.record(
            op,
            nbytes,
            t_start,
            t_end,
            kind="disk",
            sent=nbytes if op == "write" else 0,
            received=nbytes if op == "read" else 0,
        )

    def record_prefetch_wait(
        self, nbytes: int, t_start: float, t_end: float, saved: float
    ) -> None:
        """Consumption point of one overlapped prefetch: the residual
        wait the rank actually paid (``t_end - t_start``, possibly zero)
        plus the rated disk seconds the overlap hid (``saved``). Emitted
        by :meth:`repro.ooc.disk.LocalDisk.complete_prefetch`; this — not
        the issue-time ``prefetch`` slice, whose end time goes stale when
        demand I/O preempts the queue — is the disk event that can sit on
        the critical path."""
        self.record(
            "prefetch_wait",
            nbytes,
            t_start,
            t_end,
            kind="disk",
            received=nbytes,
            saved=saved,
        )

    def record_phase(self, name: str, t_start: float, t_end: float) -> None:
        self.record(name, 0, t_start, t_end, kind="phase", phase=name)

    def record_fault(self, op: str, t: float) -> None:
        """One injected fault (:mod:`repro.cluster.faults`) firing at
        simulated time ``t`` on this rank."""
        self.record(op, 0, t, t, kind="fault")

    # -- driver observer hooks (ctx.notify) ----------------------------------
    def begin_level(self, level: int, *_args: Any) -> None:
        self.level = level

    def end_level(self) -> None:
        self.level = None

    def begin_attempt(self, attempt: int) -> None:
        # a crashed attempt may leave a level open; the restart closes it
        self.level = None
        self.attempt = attempt

    def on_stats_exchange(self, strategy: str, _n_nodes: int) -> None:
        self.exchange_strategy = strategy

    # -- views ---------------------------------------------------------------
    def comm_events(self) -> list[TraceEvent]:
        return [e for e in self.events if e.kind == "comm"]

    def disk_events(self) -> list[TraceEvent]:
        return [e for e in self.events if e.kind == "disk"]

    def fault_events(self) -> list[TraceEvent]:
        return [e for e in self.events if e.kind == "fault"]

    def phase_events(self) -> list[TraceEvent]:
        return [e for e in self.events if e.kind == "phase"]

    def schedule(self, comm: str | None = None) -> list[str]:
        """The ordered collective-op sequence (p2p excluded). ``comm``
        restricts to one communicator label; default is all of them."""
        return [
            e.op
            for e in self.events
            if e.kind == "comm"
            and e.op not in _P2P_OPS
            and (comm is None or e.comm == comm)
        ]

    def schedules_by_comm(self) -> dict[str, list[str]]:
        """Collective sequences grouped by communicator label. The world
        communicator is always present (possibly empty) so that a rank
        that executed nothing still participates in schedule matching."""
        out: dict[str, list[str]] = {WORLD: []}
        for e in self.events:
            if e.kind == "comm" and e.op not in _P2P_OPS:
                out.setdefault(e.comm or WORLD, []).append(e.op)
        return out

    def timeline(self) -> str:
        """Human-readable dump."""
        lines = [f"rank {self.rank}: {len(self.events)} events"]
        for e in self.events:
            where = f" @{e.phase}" if e.phase else ""
            which = f" [{e.comm}]" if e.comm and e.comm != WORLD else ""
            lines.append(
                f"  [{e.t_start:10.4f} - {e.t_end:10.4f}] {e.kind:<5} "
                f"{e.op:<10} {e.nbytes} B{which}{where}"
            )
        return "\n".join(lines)

    def total_comm_bytes(self) -> int:
        return sum(e.nbytes for e in self.events if e.kind == "comm")

    def total_disk_bytes(self) -> int:
        return sum(e.nbytes for e in self.events if e.kind == "disk")


class _TracingComm(Comm):
    """Comm wrapper that logs each primitive around the real call.

    Byte counts come from :class:`RankStats` deltas, not from re-walking
    the payload — exact per-primitive accounting at zero extra payload
    traversals. ``split`` returns a traced child communicator whose label
    extends the parent's with the subgroup's parent-rank list, so
    subgroup collectives appear in schedules and byte totals.
    """

    _TRACED = (
        "barrier",
        "bcast",
        "scatter",
        "gather",
        "allgather",
        "vote",
        "reduce",
        "allreduce",
        "allreduce_minloc",
        "allreduce_minloc_many",
        "scan",
        "alltoall",
        "send",
        "recv",
        "isend",
        "split",
    )

    def __init__(self, inner: Comm, tracer: Tracer, label: str = WORLD) -> None:
        self._world = inner._world
        self.rank = inner.rank
        self.size = inner.size
        self._ctx = inner._ctx
        self.parent_ranks = inner.parent_ranks
        self._tracer = tracer
        self._label = label

    def __getattribute__(self, name: str):
        if name in _TracingComm._TRACED:
            real = Comm.__dict__[name].__get__(self, Comm)
            tracer = object.__getattribute__(self, "_tracer")
            ctx = object.__getattribute__(self, "_ctx")
            label = object.__getattribute__(self, "_label")

            def traced(*args: Any, **kwargs: Any):
                stats = ctx.stats
                t0 = ctx.clock.now
                s0, r0 = stats.bytes_sent, stats.bytes_received
                i0 = stats.idle_time
                a_s0, a_r0 = tracer.attributed_sent, tracer.attributed_received
                a_b0 = tracer.attributed_blocked
                out = real(*args, **kwargs)
                # stats delta minus whatever nested traced calls already
                # attributed (split's inner allgather records itself)
                sent = (stats.bytes_sent - s0) - (tracer.attributed_sent - a_s0)
                received = (stats.bytes_received - r0) - (
                    tracer.attributed_received - a_r0
                )
                blocked = (stats.idle_time - i0) - (
                    tracer.attributed_blocked - a_b0
                )
                peer = tag = None
                if name in _P2P_OPS:
                    peer, tag = _p2p_peer_tag(name, args, kwargs)
                if name == "split":
                    members = ",".join(str(r) for r in out.parent_ranks)
                    out = _TracingComm(out, tracer, label=f"{label}/{members}")
                tracer.record(
                    name,
                    max(sent, received),
                    t0,
                    ctx.clock.now,
                    comm=label,
                    sent=sent,
                    received=received,
                    blocked=blocked,
                    peer=peer,
                    tag=tag,
                )
                return out

            return traced
        return object.__getattribute__(self, name)


def attach_tracers(contexts: list[RankContext]) -> list[Tracer]:
    """Wrap every context's communicator, disk and phase timer; returns
    the tracers (indexed by rank) that fill up during subsequent runs."""
    tracers = []
    for ctx in contexts:
        tracer = Tracer(rank=ctx.rank, phase_source=ctx.timer)
        ctx.comm = _TracingComm(ctx.comm, tracer)
        ctx.disk.tracer = tracer
        ctx.timer.tracer = tracer
        ctx.observers.append(tracer)  # receives frontier-level milestones
        tracers.append(tracer)
    return tracers


def assert_schedules_match(tracers: list[Tracer]) -> None:
    """Every rank must have executed the identical collective sequence —
    the SPMD contract the simulated machine relies on. Sub-communicator
    schedules are checked among the ranks that used each communicator
    (different subgroups legitimately run different schedules)."""
    if not tracers:
        return
    by_comm: dict[str, dict[int, list[str]]] = {}
    for t in tracers:
        for label, sched in t.schedules_by_comm().items():
            by_comm.setdefault(label, {})[t.rank] = sched
    for label, per_rank in sorted(by_comm.items()):
        ranks = sorted(per_rank)
        base_rank, base = ranks[0], per_rank[ranks[0]]
        where = "" if label == WORLD else f" on communicator {label!r}"
        for rank in ranks[1:]:
            sched = per_rank[rank]
            if sched == base:
                continue
            for i, (a, b) in enumerate(zip(base, sched)):
                if a != b:
                    raise AssertionError(
                        f"rank {rank} diverged from rank {base_rank} at "
                        f"collective #{i}{where}: {a!r} vs {b!r}"
                    )
            raise AssertionError(
                f"rank {rank} executed {len(sched)} collectives{where}, "
                f"rank {base_rank} executed {len(base)}"
            )
