"""Cost model for one local disk of a shared-nothing node.

The paper assumes each processor owns a disk it controls independently
(Section 2). We model each access as one seek plus a bandwidth-limited
transfer; sequential multi-block transfers pay the seek once, which is how
the chunked out-of-core files in :mod:`repro.ooc` access the device.

Defaults approximate a mid-1990s SCSI disk (~10 ms seek, ~8 MB/s sustained),
which keeps I/O the dominant cost for out-of-core nodes exactly as the
paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class DiskModel:
    """Seek + streaming-bandwidth disk."""

    seek: float = 10e-3
    bandwidth: float = 8e6  # bytes / second sustained
    block: int = 64 * 1024  # allocation/transfer granularity in bytes

    def access(self, nbytes: int, *, sequential: bool = True) -> float:
        """Time to read or write ``nbytes`` in one request.

        A sequential request pays one seek; a non-sequential request pays a
        seek per block (scattered access), which penalises algorithms that
        hop around the file the way Vitter's EM model does.
        """
        if nbytes < 0:
            raise ValueError(f"negative I/O size {nbytes}")
        if nbytes == 0:
            return 0.0
        nblocks = max(1, -(-nbytes // self.block))
        seeks = 1 if sequential else nblocks
        return self.seek * seeks + nbytes / self.bandwidth

    def scan_rate(self) -> float:
        """Effective bytes/second for long sequential scans (seek amortised
        away); handy for analytic cross-checks in tests."""
        return self.bandwidth
