"""Hypercube topology helpers.

The cost model (cut-through routing) makes message time distance-
independent to first order, so the algorithms never route explicitly; the
helpers here exist for the Table-1 benchmark, for tests of the model's
structural assumptions, and for users who want to reason about embeddings.
"""

from __future__ import annotations

import math


def hypercube_dimension(p: int) -> int:
    """Smallest d with 2**d >= p."""
    if p < 1:
        raise ValueError(f"need at least one processor, got {p}")
    return max(0, math.ceil(math.log2(p)))


def is_power_of_two(p: int) -> bool:
    return p >= 1 and (p & (p - 1)) == 0


def neighbours(rank: int, p: int) -> list[int]:
    """Hypercube neighbours of ``rank`` among p = 2**d processors."""
    if not is_power_of_two(p):
        raise ValueError(f"hypercube requires power-of-two p, got {p}")
    if not 0 <= rank < p:
        raise ValueError(f"rank {rank} out of range for p={p}")
    return [rank ^ (1 << i) for i in range(hypercube_dimension(p))]


def hamming_distance(a: int, b: int) -> int:
    """Number of hops between nodes a and b of a hypercube."""
    return bin(a ^ b).count("1")


def subcube_partition(p: int, groups: int) -> list[list[int]]:
    """Split p ranks into ``groups`` contiguous subcubes (task parallelism
    assigns subtasks to processor subgroups; contiguous ranges are subcubes
    when both counts are powers of two)."""
    if groups < 1 or groups > p:
        raise ValueError(f"cannot split {p} ranks into {groups} groups")
    base, extra = divmod(p, groups)
    out, start = [], 0
    for g in range(groups):
        size = base + (1 if g < extra else 0)
        out.append(list(range(start, start + size)))
        start += size
    return out
