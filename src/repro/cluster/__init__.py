"""Simulated coarse-grained parallel machine (Section 2 of the paper).

Real SPMD execution over analytic cost models: each rank is a thread with
its own simulated clock, local disk and memory budget; communication goes
through an MPI-like :class:`Comm` whose primitives charge the Table-1
hypercube costs.
"""

from .clock import PhaseTimer, SimClock
from .comm import Comm, Request, payload_nbytes
from .compute import ComputeModel
from .diskmodel import DiskModel
from .errors import (
    ClusterAborted,
    ClusterError,
    CommMismatchError,
    DeadlockError,
    InjectedFault,
    SpmdProgramError,
)
from .faults import (
    CorruptChunk,
    CrashAtCollective,
    CrashAtPhase,
    FaultInjector,
    FaultPlan,
    SlowRank,
    TransientDiskFaults,
    standard_plans,
)
from .machine import Cluster, GroupContext, RankContext, SpmdRun
from .network import NetworkModel
from .stats import RankStats, RunStats
from .trace import TraceEvent, Tracer, assert_schedules_match, attach_tracers
from .tracereport import TraceReport, to_chrome_trace, write_chrome_trace

__all__ = [
    "Cluster",
    "ClusterAborted",
    "ClusterError",
    "Comm",
    "Request",
    "CommMismatchError",
    "ComputeModel",
    "CorruptChunk",
    "CrashAtCollective",
    "CrashAtPhase",
    "DeadlockError",
    "DiskModel",
    "FaultInjector",
    "FaultPlan",
    "GroupContext",
    "InjectedFault",
    "NetworkModel",
    "PhaseTimer",
    "SlowRank",
    "TransientDiskFaults",
    "RankContext",
    "RankStats",
    "RunStats",
    "SimClock",
    "SpmdProgramError",
    "SpmdRun",
    "TraceEvent",
    "TraceReport",
    "Tracer",
    "assert_schedules_match",
    "attach_tracers",
    "payload_nbytes",
    "standard_plans",
    "to_chrome_trace",
    "write_chrome_trace",
]
