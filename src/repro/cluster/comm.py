"""MPI-like communicator for the simulated machine.

One :class:`Comm` facade is bound to each rank. All ranks of an SPMD
program must reach the same sequence of collective call sites (verified at
runtime — divergence raises :class:`CommMismatchError` instead of
deadlocking). Data moves by reference between the rank threads — payloads
are not copied, matching MPI zero-copy semantics; callers must not mutate
a buffer they've sent. Time is charged from :class:`NetworkModel`:

* every collective synchronises the participants' clocks to
  ``max(clocks) + cost(m, p)``;
* a point-to-point receive completes at
  ``max(receiver ready, sender clock + alpha + beta*m)``.
"""

from __future__ import annotations

import pickle
import queue
import threading
from functools import lru_cache
from typing import Any, Callable, Sequence

import numpy as np

from .errors import ClusterAborted, CommMismatchError, DeadlockError
from .network import NetworkModel


@lru_cache(maxsize=8192)
def _str_nbytes(s: str) -> int:
    # dict keys are overwhelmingly a small set of repeated column names;
    # memoizing their encoded length keeps nested-dict sizing O(values)
    return len(s.encode())


def payload_nbytes(obj: Any) -> int:
    """Wire size of a message payload, in bytes.

    numpy arrays are their buffer size; scalars are one word; containers
    are the sum of their items plus a small per-item header. Anything
    opaque falls back to its pickle length. Sizing a column dict
    (str -> ndarray, the dominant ``alltoall`` payload) touches each
    value once and hits a string cache for the keys.
    """
    if obj is None:
        return 0
    if isinstance(obj, np.ndarray):
        return int(obj.nbytes)
    if isinstance(obj, (bytes, bytearray, memoryview)):
        return len(obj)
    if isinstance(obj, (bool, int, float, np.integer, np.floating)):
        return 8
    if isinstance(obj, str):
        return _str_nbytes(obj)
    if isinstance(obj, (list, tuple)):
        return 8 + sum(payload_nbytes(x) for x in obj)
    if isinstance(obj, dict):
        total = 8
        for k, v in obj.items():
            # inline the two hottest entry shapes before recursing
            total += _str_nbytes(k) if type(k) is str else payload_nbytes(k)
            total += int(v.nbytes) if type(v) is np.ndarray else payload_nbytes(v)
        return total
    return len(pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL))


#: sentinel pushed into every pending mailbox on abort, so ranks blocked
#: in ``recv``/``Request.wait`` fail within milliseconds instead of
#: sitting out the full wall-clock timeout.
_ABORT = object()


_REDUCERS: dict[str, Callable[[Any, Any], Any]] = {
    "sum": lambda a, b: a + b,
    "min": lambda a, b: np.minimum(a, b) if isinstance(a, np.ndarray) else min(a, b),
    "max": lambda a, b: np.maximum(a, b) if isinstance(a, np.ndarray) else max(a, b),
}


def _resolve_op(op: str | Callable[[Any, Any], Any]) -> Callable[[Any, Any], Any]:
    if callable(op):
        return op
    try:
        return _REDUCERS[op]
    except KeyError:
        raise ValueError(f"unknown reduction op {op!r}; use sum/min/max or a callable")


class CommWorld:
    """Shared state for one SPMD run: the barrier, the collective slots and
    the point-to-point mailboxes."""

    def __init__(self, size: int, network: NetworkModel, timeout: float):
        self.size = size
        self.network = network
        self.timeout = timeout
        self.barrier = threading.Barrier(size)
        self.slots: list[Any] = [None] * size
        self.opnames: list[str | None] = [None] * size
        self.clocks_in: list[float] = [0.0] * size
        self._mailboxes: dict[tuple[int, int, int], queue.SimpleQueue] = {}
        self._mailbox_lock = threading.Lock()
        self.aborted = False
        self._children: list["CommWorld"] = []
        self._children_lock = threading.Lock()

    def mailbox(self, src: int, dst: int, tag: int) -> queue.SimpleQueue:
        key = (src, dst, tag)
        with self._mailbox_lock:
            q = self._mailboxes.get(key)
            if q is None:
                q = self._mailboxes[key] = queue.SimpleQueue()
                if self.aborted:
                    # a receiver opening a mailbox after the abort must
                    # not block waiting for a message that will never come
                    q.put(_ABORT)
            return q

    def register_child(self, child: "CommWorld") -> None:
        """Track a sub-communicator's world so aborts cascade to ranks
        blocked inside subgroup collectives."""
        with self._children_lock:
            self._children.append(child)

    def reset(self) -> None:
        """Return an aborted world to service so the same contexts can run
        another SPMD program (checkpoint/restart). Only valid between runs
        — no rank thread may be inside a primitive. Pending messages and
        sub-worlds of the failed run are discarded."""
        self.aborted = False
        self.barrier.reset()
        self.slots = [None] * self.size
        self.opnames = [None] * self.size
        self.clocks_in = [0.0] * self.size
        with self._mailbox_lock:
            self._mailboxes.clear()
        with self._children_lock:
            self._children.clear()

    def abort(self) -> None:
        self.aborted = True
        self.barrier.abort()
        # wake ranks blocked in recv/Request.wait: push an abort sentinel
        # into every pending mailbox (queues created later get theirs in
        # :meth:`mailbox`)
        with self._mailbox_lock:
            queues = list(self._mailboxes.values())
        for q in queues:
            q.put(_ABORT)
        with self._children_lock:
            children = list(self._children)
        for child in children:
            child.abort()


class Comm:
    """Per-rank communicator facade.

    Created by :class:`repro.cluster.machine.Cluster`; user programs reach
    it through ``ctx.comm``.
    """

    def __init__(self, world: CommWorld, rank: int, ctx) -> None:
        self._world = world
        self.rank = rank
        self.size = world.size
        self._ctx = ctx  # RankContext (clock + stats)
        self.parent_ranks: list[int] = list(range(world.size))

    # -- internals ----------------------------------------------------------
    def _wait(self) -> None:
        try:
            self._world.barrier.wait(timeout=self._world.timeout)
        except threading.BrokenBarrierError:
            if self._world.aborted:
                raise ClusterAborted(f"rank {self.rank}: peer failure") from None
            raise DeadlockError(
                f"rank {self.rank}: barrier timed out after "
                f"{self._world.timeout}s — SPMD ranks diverged?"
            ) from None

    def _exchange(self, opname: str, contribution: Any) -> list[Any]:
        """Deposit ``contribution``, rendezvous, and return everyone's
        contributions. Verifies all ranks are executing ``opname``."""
        w = self._world
        w.slots[self.rank] = contribution
        w.opnames[self.rank] = opname
        w.clocks_in[self.rank] = self._ctx.clock.now
        self._wait()
        if any(o != opname for o in w.opnames):
            w.abort()
            raise CommMismatchError(
                f"rank {self.rank} called {opname!r} but peers called "
                f"{sorted(set(filter(None, w.opnames)))!r}"
            )
        data = list(w.slots)
        t_max = max(w.clocks_in)
        self._wait()  # everyone has copied; slots may be reused
        # synchronise clocks: idle until the slowest participant arrives
        idle = t_max - self._ctx.clock.now
        if idle > 0:
            self._ctx.stats.idle_time += idle
        self._ctx.clock.advance_to(t_max)
        self._ctx.stats.collectives += 1
        return data

    def _charge(self, seconds: float) -> None:
        self._ctx.clock.advance(seconds)
        self._ctx.stats.comm_time += seconds

    # -- collectives ---------------------------------------------------------
    def barrier(self) -> None:
        """Synchronise all ranks (costs one zero-byte combine)."""
        self._exchange("barrier", None)
        self._charge(self._world.network.global_combine(0, self.size))

    def bcast(self, obj: Any, root: int = 0) -> Any:
        """One-to-all broadcast; every rank returns root's object."""
        data = self._exchange("bcast", obj if self.rank == root else None)
        out = data[root]
        m = payload_nbytes(out)
        self._charge(self._world.network.broadcast(m, self.size))
        self._count_bytes(sent=m if self.rank == root else 0, received=m)
        return out

    def scatter(self, parts: Sequence[Any] | None, root: int = 0) -> Any:
        """Root distributes ``parts[d]`` to rank d; every rank returns its
        part. Modelled as the inverse gather (same Table-1 cost shape)."""
        if self.rank == root:
            if parts is None or len(parts) != self.size:
                raise ValueError(
                    f"root must pass exactly {self.size} parts"
                )
            contribution = list(parts)
        else:
            contribution = None
        data = self._exchange("scatter", contribution)
        mine = data[root][self.rank]
        m = max(payload_nbytes(x) for x in data[root])
        self._charge(self._world.network.gather(m, self.size))
        self._count_bytes(
            sent=(
                sum(payload_nbytes(x) for x in data[root])
                if self.rank == root
                else 0
            ),
            received=payload_nbytes(mine),
        )
        return mine

    def gather(self, obj: Any, root: int = 0) -> list[Any] | None:
        """Gather one object per rank at ``root`` (others return None)."""
        data = self._exchange("gather", obj)
        m = max(payload_nbytes(x) for x in data)
        self._charge(self._world.network.gather(m, self.size))
        self._count_bytes(
            sent=payload_nbytes(obj),
            received=sum(payload_nbytes(x) for x in data) if self.rank == root else 0,
        )
        return data if self.rank == root else None

    def allgather(self, obj: Any) -> list[Any]:
        """All-to-all broadcast; every rank returns the list of all
        contributions, indexed by rank."""
        data = self._exchange("allgather", obj)
        m = max(payload_nbytes(x) for x in data)
        self._charge(self._world.network.all_to_all_broadcast(m, self.size))
        self._count_bytes(
            sent=payload_nbytes(obj) * (self.size - 1),
            received=sum(payload_nbytes(x) for x in data) - payload_nbytes(obj),
        )
        return data

    def vote(self, ballot: Any) -> list[Any]:
        """All-to-all broadcast of per-rank *ballots* — the vote-election
        collective of the top-k voting exchange. Wire semantics and
        Table-1 cost are exactly those of :meth:`allgather` (every rank
        returns the list of all ballots, indexed by rank), but the call
        carries its own op name so election traffic is attributable in
        traces, metrics, fault plans and the health monitor's drift
        accounting, separately from the bulk stats collectives."""
        data = self._exchange("vote", ballot)
        m = max(payload_nbytes(x) for x in data)
        self._charge(self._world.network.all_to_all_broadcast(m, self.size))
        self._count_bytes(
            sent=payload_nbytes(ballot) * (self.size - 1),
            received=sum(payload_nbytes(x) for x in data) - payload_nbytes(ballot),
        )
        return data

    def reduce(self, obj: Any, op: str | Callable = "sum", root: int = 0) -> Any:
        """Reduce to ``root`` (others return None)."""
        out = self._combine("reduce", obj, op)
        return out if self.rank == root else None

    def allreduce(self, obj: Any, op: str | Callable = "sum") -> Any:
        """Global combine; every rank returns the reduction."""
        return self._combine("allreduce", obj, op)

    def _combine(self, name: str, obj: Any, op: str | Callable) -> Any:
        fn = _resolve_op(op)
        data = self._exchange(name, obj)
        acc = data[0]
        for x in data[1:]:
            acc = fn(acc, x)
        m = payload_nbytes(obj)
        self._charge(self._world.network.global_combine(m, self.size))
        self._count_bytes(sent=m, received=m)
        # combining work is real compute: one op per element per log-p stage
        return acc

    def allreduce_minloc(
        self, value: float, payload: Any = None, tiebreak: Any = None
    ) -> tuple[float, Any, int]:
        """Min-reduction that also returns the payload and rank of the
        minimum — the paper's mechanism for electing the global best
        splitter. Equal values resolve by ``tiebreak`` (any sortable the
        caller supplies, e.g. a split's order key) and then by lowest
        rank, so the election is independent of how work was distributed."""
        data = self._exchange(
            "minloc", (float(value), (tiebreak is None, tiebreak), self.rank, payload)
        )
        best = min(data, key=lambda t: (t[0], t[1], t[2]))
        m = 8 + payload_nbytes(best[3])
        self._charge(self._world.network.global_combine(m, self.size))
        self._count_bytes(sent=m, received=m)
        return best[0], best[3], best[2]

    def allreduce_minloc_many(
        self,
        values: Sequence[float],
        payloads: Sequence[Any] | None = None,
        tiebreaks: Sequence[Any] | None = None,
    ) -> list[tuple[float, Any, int]]:
        """Vectorized :meth:`allreduce_minloc`: ``k`` independent min
        elections resolved in a **single** collective.

        Slot ``i`` elects the global minimum of ``values[i]`` across
        ranks, with ties resolved by ``tiebreaks[i]`` and then by lowest
        rank — exactly the per-slot semantics of ``allreduce_minloc``.
        Returns one ``(value, payload, rank)`` triple per slot. The wire
        cost is one ``alpha·log p`` startup for the whole batch plus the
        summed per-slot payloads, which is what makes level-batched
        split elections cheaper than ``k`` separate calls.

        All ranks must pass the same number of slots; a mismatch aborts
        the world like any other SPMD divergence.
        """
        k = len(values)
        payloads = list(payloads) if payloads is not None else [None] * k
        tiebreaks = list(tiebreaks) if tiebreaks is not None else [None] * k
        if len(payloads) != k or len(tiebreaks) != k:
            raise ValueError("values, payloads and tiebreaks must align")
        contribution = [
            (float(v), (tb is None, tb), self.rank, pl)
            for v, tb, pl in zip(values, tiebreaks, payloads)
        ]
        data = self._exchange("minloc_many", contribution)
        if any(len(row) != k for row in data):
            self._world.abort()
            raise CommMismatchError(
                f"rank {self.rank} called allreduce_minloc_many with "
                f"{k} slots but peers passed "
                f"{sorted({len(row) for row in data})!r}"
            )
        out: list[tuple[float, Any, int]] = []
        m = 0
        for slot in range(k):
            best = min(
                (row[slot] for row in data), key=lambda t: (t[0], t[1], t[2])
            )
            m += 8 + payload_nbytes(best[3])
            out.append((best[0], best[3], best[2]))
        self._charge(self._world.network.global_combine(m, self.size))
        self._count_bytes(sent=m, received=m)
        return out

    def scan(self, obj: Any, op: str | Callable = "sum") -> Any:
        """Inclusive prefix reduction across ranks (Table 1 prefix sum)."""
        fn = _resolve_op(op)
        data = self._exchange("scan", obj)
        acc = data[0]
        for r in range(1, self.rank + 1):
            acc = fn(acc, data[r])
        m = payload_nbytes(obj)
        self._charge(self._world.network.prefix_sum(m, self.size))
        self._count_bytes(sent=m, received=m)
        return acc

    def alltoall(self, parts: Sequence[Any]) -> list[Any]:
        """Personalized all-to-all: ``parts[d]`` goes to rank d; returns the
        list of parts addressed to this rank, indexed by source."""
        if len(parts) != self.size:
            raise ValueError(
                f"alltoall needs exactly {self.size} parts, got {len(parts)}"
            )
        matrix = self._exchange("alltoall", list(parts))
        mine = [row[self.rank] for row in matrix]
        out_bytes = sum(payload_nbytes(x) for i, x in enumerate(parts) if i != self.rank)
        in_bytes = sum(payload_nbytes(x) for i, x in enumerate(mine) if i != self.rank)
        self._charge(self._world.network.alltoallv(out_bytes, in_bytes, self.size))
        self._count_bytes(sent=out_bytes, received=in_bytes)
        return mine

    # -- communicator management ------------------------------------------------
    def split(self, color: int) -> "Comm":
        """Partition the communicator into subgroups (MPI_Comm_split).

        Ranks passing the same ``color`` form a new communicator whose
        ranks are ordered by their rank here. Task parallelism assigns
        subtasks to processor subgroups created this way. Collective on
        the current communicator; costs one allgather of the colors.
        """
        colors = self.allgather(int(color))
        members = [r for r, c in enumerate(colors) if c == colors[self.rank]]
        new_rank = members.index(self.rank)
        # build one CommWorld per color, shared via the parent's slots
        if new_rank == 0:
            child = CommWorld(len(members), self._world.network, self._world.timeout)
            self._world.register_child(child)
            proposal = {colors[self.rank]: child}
        else:
            proposal = {}
        worlds = self._exchange("split-worlds", proposal)
        world = None
        for d in worlds:
            if colors[self.rank] in d:
                world = d[colors[self.rank]]
                break
        sub = Comm(world, new_rank, self._ctx)
        sub.parent_ranks = members  # world ranks of each subgroup rank
        return sub

    # -- point to point -------------------------------------------------------
    def isend(self, obj: Any, dst: int, tag: int = 0) -> "Request":
        """Non-blocking send: the sender is charged only the startup now;
        the transfer completes (and the remainder is charged) at
        ``Request.wait``. The message still arrives ordered per channel."""
        if not 0 <= dst < self.size:
            raise ValueError(f"bad destination rank {dst}")
        m = payload_nbytes(obj)
        self._charge(self._world.network.alpha)
        start = self._ctx.clock.now
        self._count_bytes(sent=m)
        self._ctx.stats.messages_sent += 1
        # the message lands when the transfer would finish
        arrival = start + self._world.network.beta * m
        self._world.mailbox(self.rank, dst, tag).put((obj, arrival))
        return Request(self, kind="send", transfer_end=arrival)

    def irecv(self, src: int, tag: int = 0) -> "Request":
        """Non-blocking receive: returns a Request whose ``wait`` yields
        the object (blocking until arrival)."""
        if not 0 <= src < self.size:
            raise ValueError(f"bad source rank {src}")
        return Request(self, kind="recv", src=src, tag=tag)

    def send(self, obj: Any, dst: int, tag: int = 0) -> None:
        """Blocking-standard-mode send: the sender is busy for the full
        transfer time; the message lands at the sender's completion time."""
        if not 0 <= dst < self.size:
            raise ValueError(f"bad destination rank {dst}")
        m = payload_nbytes(obj)
        self._charge(self._world.network.p2p(m))
        self._count_bytes(sent=m)
        self._ctx.stats.messages_sent += 1
        self._world.mailbox(self.rank, dst, tag).put((obj, self._ctx.clock.now))

    def recv(self, src: int, tag: int = 0) -> Any:
        """Blocking receive; completes at max(ready, arrival)."""
        if not 0 <= src < self.size:
            raise ValueError(f"bad source rank {src}")
        q = self._world.mailbox(src, self.rank, tag)
        try:
            item = q.get(timeout=self._world.timeout)
        except queue.Empty:
            if self._world.aborted:
                raise ClusterAborted(f"rank {self.rank}: peer failure") from None
            raise DeadlockError(
                f"rank {self.rank}: recv(src={src}, tag={tag}) timed out"
            ) from None
        if item is _ABORT:
            raise ClusterAborted(f"rank {self.rank}: peer failure") from None
        obj, arrival = item
        if arrival > self._ctx.clock.now:
            self._ctx.stats.idle_time += arrival - self._ctx.clock.now
            self._ctx.clock.advance_to(arrival)
        self._count_bytes(received=payload_nbytes(obj))
        return obj

    def _count_bytes(self, sent: int = 0, received: int = 0) -> None:
        self._ctx.stats.bytes_sent += int(sent)
        self._ctx.stats.bytes_received += int(received)


class Request:
    """Handle for a non-blocking operation (mpi4py-style ``wait``)."""

    def __init__(
        self,
        comm: Comm,
        kind: str,
        src: int = -1,
        tag: int = 0,
        transfer_end: float = 0.0,
    ) -> None:
        self._comm = comm
        self._kind = kind
        self._src = src
        self._tag = tag
        self._transfer_end = transfer_end
        self._done = False
        self._value: Any = None

    def wait(self) -> Any:
        """Complete the operation: a send waits until its transfer has
        drained the link; a receive blocks for (and returns) the message."""
        if self._done:
            return self._value
        ctx = self._comm._ctx
        if self._kind == "send":
            if self._transfer_end > ctx.clock.now:
                dt = self._transfer_end - ctx.clock.now
                ctx.clock.advance_to(self._transfer_end)
                ctx.stats.comm_time += dt
        else:
            self._value = self._comm.recv(self._src, self._tag)
        self._done = True
        return self._value

    def test(self) -> bool:
        """True once the operation is locally complete (send: transfer
        drained; recv: completed via wait)."""
        if self._done:
            return True
        if self._kind == "send":
            return self._comm._ctx.clock.now >= self._transfer_end
        return False
