"""External merge sort over chunked disk files.

The standard external-memory sort the paper's I/O background (Vitter's
survey) assumes: **run formation** — read memory-sized runs, sort each in
core, write them back — followed by **k-way merge** passes until one run
remains. Every byte moved is charged to the owning disk, so the simulated
cost exhibits the textbook ``2·N·(1 + ceil(log_k(runs)))`` transfer
volume.
"""

from __future__ import annotations

import numpy as np

from .disk import LocalDisk
from .file import OocArray

__all__ = ["external_sort", "is_globally_sorted"]


def _form_runs(
    source: OocArray, disk: LocalDisk, run_records: int
) -> list[OocArray]:
    """Phase 1: memory-sized sorted runs."""
    runs: list[OocArray] = []
    buffer: list[np.ndarray] = []
    buffered = 0

    def flush() -> None:
        nonlocal buffered
        if not buffer:
            return
        data = np.sort(np.concatenate(buffer), kind="stable")
        run = OocArray(disk, source.dtype, name=f"{source.name}/run{len(runs)}")
        run.append(data)
        runs.append(run)
        buffer.clear()
        buffered = 0

    for chunk in source.iter_chunks():
        start = 0
        while start < len(chunk):
            take = min(len(chunk) - start, run_records - buffered)
            buffer.append(chunk[start : start + take])
            buffered += take
            start += take
            if buffered >= run_records:
                flush()
    flush()
    return runs


def _merge_group(
    group: list[OocArray], disk: LocalDisk, dtype, name: str, run_records: int
) -> OocArray:
    """K-way merge of sorted runs, streaming one buffer per run.

    The merge itself is performed with numpy on the buffered fronts; the
    charged I/O is the real thing (each run is read once, the output
    written once).
    """
    out = OocArray(disk, dtype, name=name)
    pending: list[np.ndarray] = []
    pending_n = 0

    def emit(piece: np.ndarray) -> None:
        # real merges buffer their output: flush in memory-sized writes so
        # the disk sees few large sequential appends, not one per segment
        nonlocal pending_n
        if len(piece) == 0:
            return
        pending.append(piece)
        pending_n += len(piece)
        if pending_n >= run_records:
            out.append(np.concatenate(pending))
            pending.clear()
            pending_n = 0

    iters = [run.iter_chunks() for run in group]
    fronts: list[np.ndarray] = []
    for it in iters:
        fronts.append(next(it, np.empty(0, dtype=dtype)))
    # k-way merge by repeatedly draining the smallest front-segment: take
    # every element <= the minimum of the other fronts' heads
    while True:
        live = [i for i, f in enumerate(fronts) if len(f)]
        if not live:
            break
        if len(live) == 1:
            i = live[0]
            emit(fronts[i])
            for more in iters[i]:
                emit(more)
            fronts[i] = np.empty(0, dtype=dtype)
            continue
        heads = [(fronts[i][0], i) for i in live]
        _, imin = min(heads)
        other_min = min(fronts[i][0] for i in live if i != imin)
        take = int(np.searchsorted(fronts[imin], other_min, side="right"))
        take = max(take, 1)
        emit(fronts[imin][:take])
        fronts[imin] = fronts[imin][take:]
        if len(fronts[imin]) == 0:
            fronts[imin] = next(iters[imin], np.empty(0, dtype=dtype))
    if pending:
        out.append(np.concatenate(pending))
    for run in group:
        run.delete()
    return out


def external_sort(
    source: OocArray,
    run_records: int,
    fan_in: int = 8,
) -> OocArray:
    """Sort a disk-resident array with ``run_records`` of memory.

    Consumes ``source`` (deleted once the runs are formed). Returns a new
    sorted :class:`OocArray` on the same disk.
    """
    if run_records < 1:
        raise ValueError("need at least one record of memory")
    if fan_in < 2:
        raise ValueError("merge fan-in must be at least 2")
    disk = source.disk
    dtype = source.dtype
    runs = _form_runs(source, disk, run_records)
    source.delete()
    if not runs:
        return OocArray(disk, dtype, name="sorted")
    level = 0
    while len(runs) > 1:
        merged: list[OocArray] = []
        for lo in range(0, len(runs), fan_in):
            group = runs[lo : lo + fan_in]
            if len(group) == 1:
                merged.append(group[0])
            else:
                merged.append(
                    _merge_group(
                        group, disk, dtype,
                        name=f"merge-l{level}-{lo // fan_in}",
                        run_records=run_records,
                    )
                )
        runs = merged
        level += 1
    return runs[0]


def is_globally_sorted(f: OocArray) -> bool:
    """Streaming sortedness check (reads the file once)."""
    prev = None
    for chunk in f.iter_chunks():
        if len(chunk) == 0:
            continue
        if np.any(chunk[:-1] > chunk[1:]):
            return False
        if prev is not None and chunk[0] < prev:
            return False
        prev = chunk[-1]
    return True
