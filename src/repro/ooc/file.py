"""Append-only chunked array files on a simulated local disk.

An :class:`OocArray` is the unit of disk-resident data: one attribute
column (or the label column) of one tree node's local fragment. Writers
append numpy chunks; readers stream chunks back in order. Every access
charges the owning disk.

Integrity: every appended chunk is checksummed (CRC32) at write time and
verified on every read, so silent corruption of a stored chunk surfaces
as :class:`~repro.ooc.backend.ChunkCorruptionError` instead of silently
changing the tree. Transient backend errors are retried by the disk with
backoff charged to the simulated clock.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from .disk import LocalDisk


class OocArray:
    """A 1-D disk-resident array of fixed dtype, stored as ordered chunks."""

    def __init__(self, disk: LocalDisk, dtype: np.dtype | str, name: str = "") -> None:
        self.disk = disk
        self.dtype = np.dtype(dtype)
        self.name = name
        self._handles: list[object] = []
        self._lengths: list[int] = []
        self._crcs: list[int] = []
        self._closed = False

    # -- properties -----------------------------------------------------------
    def __len__(self) -> int:
        return sum(self._lengths)

    @property
    def nbytes(self) -> int:
        return len(self) * self.dtype.itemsize

    @property
    def nchunks(self) -> int:
        return len(self._handles)

    @property
    def chunk_handles(self) -> tuple[object, ...]:
        """Backend handles of the file's chunks (for buffer-pool pinning)."""
        return tuple(self._handles)

    # -- writing ----------------------------------------------------------------
    def append(self, arr: np.ndarray) -> None:
        """Append one chunk (charged as one sequential write)."""
        self._check_open()
        arr = np.ascontiguousarray(arr, dtype=self.dtype)
        if arr.ndim != 1:
            raise ValueError(f"OocArray holds 1-D data, got shape {arr.shape}")
        if arr.size == 0:
            return
        self.disk.charge_write(arr.nbytes)
        handle, crc = self.disk.store_chunk(arr)
        self._handles.append(handle)
        self._lengths.append(arr.size)
        self._crcs.append(crc)

    # -- reading ----------------------------------------------------------------
    def iter_chunks(self) -> Iterator[np.ndarray]:
        """Stream the file's chunks in order (one sequential read each,
        checksum-verified at fetch, or at pool admission when a buffer
        pool is attached — cached chunks come back read-only)."""
        self._check_open()
        pool = self.disk.pool
        if pool is None:
            for handle, length, crc in zip(self._handles, self._lengths, self._crcs):
                nbytes = length * self.dtype.itemsize
                self.disk.charge_read(nbytes)
                yield self.disk.fetch_chunk(handle, nbytes, crc)
            return
        yield from self._iter_chunks_pooled(pool)

    def _iter_chunks_pooled(self, pool) -> Iterator[np.ndarray]:
        itemsize = self.dtype.itemsize
        metas = list(zip(self._handles, self._lengths, self._crcs))
        for i, (handle, length, crc) in enumerate(metas):
            arr = pool.read(handle, length * itemsize, crc)
            if i + 1 < len(metas):
                # issue chunk i+1 before the consumer computes on chunk i,
                # so the transfer overlaps that compute
                nxt_handle, nxt_length, _ = metas[i + 1]
                pool.issue_prefetch(nxt_handle, nxt_length * itemsize)
            yield arr

    def read_all(self) -> np.ndarray:
        """Materialise the whole file in memory (one sequential scan,
        checksum-verified). With a buffer pool, cached chunks are served
        from memory and only the missing bytes are charged — still as a
        single sequential transfer. Bulk reads are single-use, so misses
        are not admitted to the pool."""
        self._check_open()
        if not self._handles:
            return np.empty(0, dtype=self.dtype)
        itemsize = self.dtype.itemsize
        pool = self.disk.pool
        if pool is None:
            self.disk.charge_read(self.nbytes)
            return np.concatenate(
                [
                    self.disk.fetch_chunk(h, n * itemsize, c)
                    for h, n, c in zip(self._handles, self._lengths, self._crcs)
                ]
            )
        parts: list[np.ndarray | None] = []
        missing: list[tuple[int, object, int, int | None]] = []
        for h, n, c in zip(self._handles, self._lengths, self._crcs):
            nbytes = n * itemsize
            arr = pool.peek(h, nbytes, c)
            if arr is None:
                pool.note_miss(nbytes)
                missing.append((len(parts), h, nbytes, c))
            parts.append(arr)
        if missing:
            self.disk.queued_read(sum(m[2] for m in missing))
            for idx, h, nbytes, c in missing:
                parts[idx] = self.disk.fetch_chunk(h, nbytes, c)
        return np.concatenate(parts)

    # -- lifecycle ----------------------------------------------------------------
    def delete(self) -> None:
        """Free the file's chunks (deleting a file costs no data transfer)."""
        for h in self._handles:
            self.disk.backend.delete(h)
        self._handles.clear()
        self._lengths.clear()
        self._crcs.clear()
        self._closed = True

    def _check_open(self) -> None:
        if self._closed:
            raise ValueError(f"OocArray {self.name!r} has been deleted")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"OocArray(name={self.name!r}, dtype={self.dtype}, "
            f"len={len(self)}, chunks={self.nchunks})"
        )
