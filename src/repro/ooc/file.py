"""Append-only chunked array files on a simulated local disk.

An :class:`OocArray` is the unit of disk-resident data: one attribute
column (or the label column) of one tree node's local fragment. Writers
append numpy chunks; readers stream chunks back in order. Every access
charges the owning disk.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from .disk import LocalDisk


class OocArray:
    """A 1-D disk-resident array of fixed dtype, stored as ordered chunks."""

    def __init__(self, disk: LocalDisk, dtype: np.dtype | str, name: str = "") -> None:
        self.disk = disk
        self.dtype = np.dtype(dtype)
        self.name = name
        self._handles: list[object] = []
        self._lengths: list[int] = []
        self._closed = False

    # -- properties -----------------------------------------------------------
    def __len__(self) -> int:
        return sum(self._lengths)

    @property
    def nbytes(self) -> int:
        return len(self) * self.dtype.itemsize

    @property
    def nchunks(self) -> int:
        return len(self._handles)

    # -- writing ----------------------------------------------------------------
    def append(self, arr: np.ndarray) -> None:
        """Append one chunk (charged as one sequential write)."""
        self._check_open()
        arr = np.ascontiguousarray(arr, dtype=self.dtype)
        if arr.ndim != 1:
            raise ValueError(f"OocArray holds 1-D data, got shape {arr.shape}")
        if arr.size == 0:
            return
        self.disk.charge_write(arr.nbytes)
        self._handles.append(self.disk.backend.put(arr))
        self._lengths.append(arr.size)

    # -- reading ----------------------------------------------------------------
    def iter_chunks(self) -> Iterator[np.ndarray]:
        """Stream the file's chunks in order (one sequential read each)."""
        self._check_open()
        for handle, length in zip(self._handles, self._lengths):
            self.disk.charge_read(length * self.dtype.itemsize)
            yield self.disk.backend.get(handle)

    def read_all(self) -> np.ndarray:
        """Materialise the whole file in memory (one sequential scan)."""
        self._check_open()
        if not self._handles:
            return np.empty(0, dtype=self.dtype)
        self.disk.charge_read(self.nbytes)
        return np.concatenate([self.disk.backend.get(h) for h in self._handles])

    # -- lifecycle ----------------------------------------------------------------
    def delete(self) -> None:
        """Free the file's chunks (deleting a file costs no data transfer)."""
        for h in self._handles:
            self.disk.backend.delete(h)
        self._handles.clear()
        self._lengths.clear()
        self._closed = True

    def _check_open(self) -> None:
        if self._closed:
            raise ValueError(f"OocArray {self.name!r} has been deleted")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"OocArray(name={self.name!r}, dtype={self.dtype}, "
            f"len={len(self)}, chunks={self.nchunks})"
        )
