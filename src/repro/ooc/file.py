"""Append-only chunked array files on a simulated local disk.

An :class:`OocArray` is the unit of disk-resident data: one attribute
column (or the label column) of one tree node's local fragment. Writers
append numpy chunks; readers stream chunks back in order. Every access
charges the owning disk.

Integrity: every appended chunk is checksummed (CRC32) at write time and
verified on every read, so silent corruption of a stored chunk surfaces
as :class:`~repro.ooc.backend.ChunkCorruptionError` instead of silently
changing the tree. Transient backend errors are retried by the disk with
backoff charged to the simulated clock.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from .disk import LocalDisk


class OocArray:
    """A 1-D disk-resident array of fixed dtype, stored as ordered chunks."""

    def __init__(self, disk: LocalDisk, dtype: np.dtype | str, name: str = "") -> None:
        self.disk = disk
        self.dtype = np.dtype(dtype)
        self.name = name
        self._handles: list[object] = []
        self._lengths: list[int] = []
        self._crcs: list[int] = []
        self._closed = False

    # -- properties -----------------------------------------------------------
    def __len__(self) -> int:
        return sum(self._lengths)

    @property
    def nbytes(self) -> int:
        return len(self) * self.dtype.itemsize

    @property
    def nchunks(self) -> int:
        return len(self._handles)

    # -- writing ----------------------------------------------------------------
    def append(self, arr: np.ndarray) -> None:
        """Append one chunk (charged as one sequential write)."""
        self._check_open()
        arr = np.ascontiguousarray(arr, dtype=self.dtype)
        if arr.ndim != 1:
            raise ValueError(f"OocArray holds 1-D data, got shape {arr.shape}")
        if arr.size == 0:
            return
        self.disk.charge_write(arr.nbytes)
        handle, crc = self.disk.store_chunk(arr)
        self._handles.append(handle)
        self._lengths.append(arr.size)
        self._crcs.append(crc)

    # -- reading ----------------------------------------------------------------
    def iter_chunks(self) -> Iterator[np.ndarray]:
        """Stream the file's chunks in order (one sequential read each,
        checksum-verified)."""
        self._check_open()
        for handle, length, crc in zip(self._handles, self._lengths, self._crcs):
            nbytes = length * self.dtype.itemsize
            self.disk.charge_read(nbytes)
            yield self.disk.fetch_chunk(handle, nbytes, crc)

    def read_all(self) -> np.ndarray:
        """Materialise the whole file in memory (one sequential scan,
        checksum-verified)."""
        self._check_open()
        if not self._handles:
            return np.empty(0, dtype=self.dtype)
        self.disk.charge_read(self.nbytes)
        return np.concatenate(
            [
                self.disk.fetch_chunk(h, n * self.dtype.itemsize, c)
                for h, n, c in zip(self._handles, self._lengths, self._crcs)
            ]
        )

    # -- lifecycle ----------------------------------------------------------------
    def delete(self) -> None:
        """Free the file's chunks (deleting a file costs no data transfer)."""
        for h in self._handles:
            self.disk.backend.delete(h)
        self._handles.clear()
        self._lengths.clear()
        self._crcs.clear()
        self._closed = True

    def _check_open(self) -> None:
        if self._closed:
            raise ValueError(f"OocArray {self.name!r} has been deleted")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"OocArray(name={self.name!r}, dtype={self.dtype}, "
            f"len={len(self)}, chunks={self.nchunks})"
        )
