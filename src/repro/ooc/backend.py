"""Storage backends for the simulated local disks.

The default :class:`InMemoryBackend` keeps chunk payloads in host RAM —
the *time* of every access is still charged by the disk model, which is
what the paper's results depend on — while :class:`FileBackend` really
spools chunks to ``.npy`` files so integration tests can confirm the
out-of-core code path never assumes residency.
"""

from __future__ import annotations

import os
import shutil
import tempfile
import zlib
from abc import ABC, abstractmethod

import numpy as np


class TransientDiskError(IOError):
    """A chunk access failed transiently (the IBM-SP2's occasional disk
    hiccup). :class:`~repro.ooc.disk.LocalDisk` retries these with
    bounded exponential backoff, charging the wait to the simulated
    clock; only an access that keeps failing propagates."""


class ChunkCorruptionError(IOError):
    """A chunk came back with a CRC32 that does not match what was
    written — silent corruption surfaced as a hard error instead of a
    silently wrong tree. Not retried: the stored payload itself is bad."""


def chunk_crc(arr: np.ndarray) -> int:
    """CRC32 of a chunk's payload bytes (the per-chunk write checksum)."""
    return zlib.crc32(memoryview(np.ascontiguousarray(arr)).cast("B"))


class StorageBackend(ABC):
    """Chunk store: opaque handles in, numpy arrays out."""

    @abstractmethod
    def put(self, arr: np.ndarray) -> object:
        """Persist one chunk; returns a handle."""

    @abstractmethod
    def get(self, handle: object) -> np.ndarray:
        """Load one chunk by handle."""

    @abstractmethod
    def delete(self, handle: object) -> None:
        """Free one chunk."""

    def overwrite(self, handle: object, arr: np.ndarray) -> None:
        """Replace the payload under an existing handle in place.

        Testing / fault-injection hook (bit-flip corruption); handles
        stay valid. Optional — backends that cannot rewrite may raise.
        """
        raise NotImplementedError

    def close(self) -> None:
        """Release all backend resources (idempotent)."""


class InMemoryBackend(StorageBackend):
    """Holds chunk payloads in RAM; copies on put and serves read-only
    views on get, so callers can neither corrupt 'disk' contents nor pay
    a gratuitous copy on the hot read path (the buffer pool caches the
    same immutable view it admits)."""

    def __init__(self) -> None:
        self._chunks: dict[int, np.ndarray] = {}
        self._next = 0

    def put(self, arr: np.ndarray) -> object:
        handle = self._next
        self._next += 1
        self._chunks[handle] = np.array(arr, copy=True)
        return handle

    def get(self, handle: object) -> np.ndarray:
        view = self._chunks[handle][...]
        view.flags.writeable = False
        return view

    def delete(self, handle: object) -> None:
        self._chunks.pop(handle, None)

    def overwrite(self, handle: object, arr: np.ndarray) -> None:
        if handle not in self._chunks:
            raise KeyError(f"no chunk under handle {handle!r}")
        self._chunks[handle] = np.array(arr, copy=True)

    def close(self) -> None:
        self._chunks.clear()

    def resident_bytes(self) -> int:
        """Total payload currently stored (test/diagnostic hook)."""
        return sum(a.nbytes for a in self._chunks.values())


class FileBackend(StorageBackend):
    """Spools each chunk to its own ``.npy`` file under a spool directory."""

    def __init__(self, root: str | None = None) -> None:
        self._owns_root = root is None
        self.root = root or tempfile.mkdtemp(prefix="repro-spool-")
        os.makedirs(self.root, exist_ok=True)
        self._next = 0
        self.chunks_created = 0  # lifetime count (files may be deleted later)

    def put(self, arr: np.ndarray) -> object:
        path = os.path.join(self.root, f"chunk-{self._next:08d}.npy")
        self._next += 1
        self.chunks_created += 1
        np.save(path, arr, allow_pickle=False)
        return path

    def get(self, handle: object) -> np.ndarray:
        return np.load(str(handle), allow_pickle=False)

    def delete(self, handle: object) -> None:
        try:
            os.unlink(str(handle))
        except FileNotFoundError:
            pass

    def overwrite(self, handle: object, arr: np.ndarray) -> None:
        np.save(str(handle), arr, allow_pickle=False)

    def close(self) -> None:
        if self._owns_root:
            shutil.rmtree(self.root, ignore_errors=True)
