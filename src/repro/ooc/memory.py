"""Per-rank main-memory budget.

The paper processes a node out-of-core when it exceeds a pre-specified
memory limit ("we have used a memory limit of 1 MB for 6.0 million
tuples", scaled linearly with data size). :class:`MemoryBudget` makes that
decision and tracks reservations so concatenated-parallelism style
executors — which share the budget across many simultaneously open tasks —
can observe the resulting pressure.
"""

from __future__ import annotations

from dataclasses import dataclass, field


class MemoryExceededError(MemoryError):
    """A hard reservation was requested beyond the configured budget."""


@dataclass
class MemoryBudget:
    """Byte-accounted memory limit. ``limit=None`` means unlimited."""

    limit: int | None = None
    reserved: int = 0
    high_water: int = 0
    _open: list[int] = field(default_factory=list)

    def fits(self, nbytes: int) -> bool:
        """Would ``nbytes`` more fit in core right now?"""
        if self.limit is None:
            return True
        return self.reserved + nbytes <= self.limit

    def reserve(self, nbytes: int) -> "_Reservation":
        """Context manager that holds ``nbytes`` of budget.

        Raises :class:`MemoryExceededError` if it cannot fit — callers are
        expected to check :meth:`fits` first and fall back to the
        out-of-core path.
        """
        if nbytes < 0:
            raise ValueError(f"negative reservation {nbytes}")
        if not self.fits(nbytes):
            raise MemoryExceededError(
                f"reservation of {nbytes} B exceeds budget "
                f"({self.reserved}/{self.limit} B in use)"
            )
        return _Reservation(self, int(nbytes))

    def acquire(self, nbytes: int) -> None:
        """Take ``nbytes`` without a context manager (the buffer pool's
        entries have open-ended lifetimes). Callers check :meth:`fits`
        first; pair with :meth:`release`."""
        self._acquire(int(nbytes))

    def release(self, nbytes: int) -> None:
        self._release(int(nbytes))

    def _acquire(self, nbytes: int) -> None:
        self.reserved += nbytes
        self.high_water = max(self.high_water, self.reserved)

    def _release(self, nbytes: int) -> None:
        self.reserved -= nbytes
        if self.reserved < 0:
            raise RuntimeError("memory budget released more than reserved")


class _Reservation:
    def __init__(self, budget: MemoryBudget, nbytes: int) -> None:
        self._budget = budget
        self.nbytes = nbytes

    def __enter__(self) -> "_Reservation":
        self._budget._acquire(self.nbytes)
        return self

    def __exit__(self, *exc) -> None:
        self._budget._release(self.nbytes)
