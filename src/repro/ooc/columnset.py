"""Column-oriented, disk-resident storage of one node's local fragment.

pCLOUDS (like CLOUDS/SPRINT) stores each attribute in its own file so a
splitting pass can stream exactly the columns it needs. A
:class:`ColumnSet` keeps one :class:`~repro.ooc.file.OocArray` per
attribute plus one for the labels, with chunk boundaries aligned so
batched scans see matching rows.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.data.schema import LABEL_DTYPE, Schema

from .disk import LocalDisk
from .file import OocArray


def default_batch_rows(disk: LocalDisk, schema: Schema) -> int:
    """Chunk granularity when the writer does not pick one.

    A row batch spans a few disk blocks so per-column chunks amortise the
    seek, and is capped to a fraction of the buffer pool (when one is
    attached) so a streaming scan cycles several chunks through the
    cache instead of one monolithic chunk that can never be prefetched
    or partially retained.
    """
    target = 4 * disk.model.block
    pool = disk.pool
    if pool is not None and pool.capacity > 0:
        target = min(target, max(disk.model.block, pool.capacity // 8))
    return max(1, int(target) // max(1, schema.row_nbytes()))


class ColumnSet:
    """Aligned per-attribute files + labels for one node fragment."""

    def __init__(self, disk: LocalDisk, schema: Schema, name: str = "") -> None:
        self.disk = disk
        self.schema = schema
        self.name = name
        self._columns: dict[str, OocArray] = {
            a.name: OocArray(disk, a.dtype, name=f"{name}/{a.name}")
            for a in schema
        }
        self._labels = OocArray(disk, LABEL_DTYPE, name=f"{name}/labels")

    # -- constructors -----------------------------------------------------
    @classmethod
    def from_arrays(
        cls,
        disk: LocalDisk,
        schema: Schema,
        columns: dict[str, np.ndarray],
        labels: np.ndarray,
        name: str = "",
        batch_rows: int | None = None,
    ) -> "ColumnSet":
        """Write in-memory columns to disk (optionally in batches, which
        sets the chunking granularity for later scans)."""
        cs = cls(disk, schema, name=name)
        n = schema.validate_columns(columns, labels)
        step = batch_rows or default_batch_rows(disk, schema)
        for lo in range(0, n, step):
            hi = min(lo + step, n)
            cs.append_batch({k: v[lo:hi] for k, v in columns.items()}, labels[lo:hi])
        return cs

    # -- writing ----------------------------------------------------------
    def append_batch(self, columns: dict[str, np.ndarray], labels: np.ndarray) -> None:
        """Append aligned rows to every column file."""
        n = self.schema.validate_columns(columns, labels)
        if n == 0:
            return
        for a in self.schema:
            self._columns[a.name].append(columns[a.name])
        self._labels.append(labels)

    # -- reading ----------------------------------------------------------
    @property
    def nrows(self) -> int:
        return len(self._labels)

    @property
    def nbytes(self) -> int:
        return self._labels.nbytes + sum(c.nbytes for c in self._columns.values())

    def column(self, name: str) -> OocArray:
        return self._columns[name]

    def files(self) -> Iterator[OocArray]:
        """Every file of the fragment (all columns, then labels)."""
        yield from self._columns.values()
        yield self._labels

    @property
    def labels_file(self) -> OocArray:
        return self._labels

    def read_column(self, name: str) -> np.ndarray:
        return self._columns[name].read_all()

    def read_labels(self) -> np.ndarray:
        return self._labels.read_all()

    def read_all(self) -> tuple[dict[str, np.ndarray], np.ndarray]:
        """Materialise every column (the in-core path for small nodes)."""
        return (
            {name: f.read_all() for name, f in self._columns.items()},
            self._labels.read_all(),
        )

    def iter_batches(self) -> Iterator[tuple[dict[str, np.ndarray], np.ndarray]]:
        """Stream aligned batches of all columns + labels, one disk chunk
        at a time (the out-of-core scan)."""
        col_iters = {name: f.iter_chunks() for name, f in self._columns.items()}
        for label_chunk in self._labels.iter_chunks():
            batch = {name: next(it) for name, it in col_iters.items()}
            for name, arr in batch.items():
                if len(arr) != len(label_chunk):
                    raise RuntimeError(
                        f"misaligned chunks in ColumnSet {self.name!r}: "
                        f"column {name} has {len(arr)} rows vs {len(label_chunk)} labels"
                    )
            yield batch, label_chunk

    def iter_column_with_labels(
        self, name: str
    ) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        """Stream one attribute column alongside labels (the per-attribute
        statistics pass reads only what it needs)."""
        lab_it = self._labels.iter_chunks()
        for values in self._columns[name].iter_chunks():
            yield values, next(lab_it)

    # -- lifecycle ----------------------------------------------------------
    def delete(self) -> None:
        """Free all files (nodes are deleted once both children are written)."""
        for f in self._columns.values():
            f.delete()
        self._labels.delete()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ColumnSet(name={self.name!r}, nrows={self.nrows})"
