"""One simulated local disk per shared-nothing node.

Every read/write of an :class:`repro.ooc.file.OocArray` goes through its
rank's :class:`LocalDisk`, which charges the disk model's seek+transfer
time to the rank's clock and records volumes in the rank's stats. There is
no contention model between ranks — each node owns its disk, which is
exactly the paper's shared-nothing assumption.
"""

from __future__ import annotations

from repro.cluster.clock import SimClock
from repro.cluster.diskmodel import DiskModel
from repro.cluster.stats import RankStats

from .backend import InMemoryBackend, StorageBackend


class LocalDisk:
    """Charges simulated time for chunk traffic and tracks volumes.

    When a tracer is attached (``repro.cluster.trace.attach_tracers``),
    every charged access is also emitted as a ``disk`` trace event.
    """

    def __init__(
        self,
        model: DiskModel,
        clock: SimClock,
        stats: RankStats,
        backend: StorageBackend | None = None,
    ) -> None:
        self.model = model
        self.clock = clock
        self.stats = stats
        self.backend = backend if backend is not None else InMemoryBackend()
        #: optional event sink with a ``record_disk(op, nbytes, t0, t1)`` method.
        self.tracer = None

    def charge_read(self, nbytes: int, *, sequential: bool = True) -> None:
        t0 = self.clock.now
        dt = self.model.access(nbytes, sequential=sequential)
        self.clock.advance(dt)
        self.stats.io_time += dt
        self.stats.bytes_read += int(nbytes)
        self.stats.io_calls += 1
        if self.tracer is not None:
            self.tracer.record_disk("read", int(nbytes), t0, self.clock.now)

    def charge_write(self, nbytes: int, *, sequential: bool = True) -> None:
        t0 = self.clock.now
        dt = self.model.access(nbytes, sequential=sequential)
        self.clock.advance(dt)
        self.stats.io_time += dt
        self.stats.bytes_written += int(nbytes)
        self.stats.io_calls += 1
        if self.tracer is not None:
            self.tracer.record_disk("write", int(nbytes), t0, self.clock.now)

    def close(self) -> None:
        self.backend.close()
