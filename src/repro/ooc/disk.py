"""One simulated local disk per shared-nothing node.

Every read/write of an :class:`repro.ooc.file.OocArray` goes through its
rank's :class:`LocalDisk`, which charges the disk model's seek+transfer
time to the rank's clock and records volumes in the rank's stats. There is
no contention model between ranks — each node owns its disk, which is
exactly the paper's shared-nothing assumption.
"""

from __future__ import annotations

from repro.cluster.clock import SimClock
from repro.cluster.diskmodel import DiskModel
from repro.cluster.stats import RankStats

from .backend import InMemoryBackend, StorageBackend


class LocalDisk:
    """Charges simulated time for chunk traffic and tracks volumes."""

    def __init__(
        self,
        model: DiskModel,
        clock: SimClock,
        stats: RankStats,
        backend: StorageBackend | None = None,
    ) -> None:
        self.model = model
        self.clock = clock
        self.stats = stats
        self.backend = backend if backend is not None else InMemoryBackend()

    def charge_read(self, nbytes: int, *, sequential: bool = True) -> None:
        dt = self.model.access(nbytes, sequential=sequential)
        self.clock.advance(dt)
        self.stats.io_time += dt
        self.stats.bytes_read += int(nbytes)
        self.stats.io_calls += 1

    def charge_write(self, nbytes: int, *, sequential: bool = True) -> None:
        dt = self.model.access(nbytes, sequential=sequential)
        self.clock.advance(dt)
        self.stats.io_time += dt
        self.stats.bytes_written += int(nbytes)
        self.stats.io_calls += 1

    def close(self) -> None:
        self.backend.close()
