"""One simulated local disk per shared-nothing node.

Every read/write of an :class:`repro.ooc.file.OocArray` goes through its
rank's :class:`LocalDisk`, which charges the disk model's seek+transfer
time to the rank's clock and records volumes in the rank's stats. There is
no contention model between ranks — each node owns its disk, which is
exactly the paper's shared-nothing assumption.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.clock import SimClock
from repro.cluster.diskmodel import DiskModel
from repro.cluster.stats import RankStats

from .backend import (
    ChunkCorruptionError,
    InMemoryBackend,
    StorageBackend,
    TransientDiskError,
    chunk_crc,
)


class LocalDisk:
    """Charges simulated time for chunk traffic and tracks volumes.

    When a tracer is attached (``repro.cluster.trace.attach_tracers``),
    every charged access is also emitted as a ``disk`` trace event.

    Storage integrity: :meth:`store_chunk` / :meth:`fetch_chunk` carry a
    per-chunk CRC32 and retry :class:`TransientDiskError` with bounded
    exponential backoff. The backoff wait is *charged to the simulated
    clock* (and counted in ``stats.io_retries``), so a flaky disk shows
    up in the cost model instead of being free.
    """

    #: retry policy for transient chunk-I/O errors
    RETRY_ATTEMPTS = 5
    RETRY_BASE_DELAY = 0.002  # simulated seconds before the first retry
    RETRY_MULTIPLIER = 2.0

    def __init__(
        self,
        model: DiskModel,
        clock: SimClock,
        stats: RankStats,
        backend: StorageBackend | None = None,
    ) -> None:
        self.model = model
        self.clock = clock
        self.stats = stats
        self.backend = backend if backend is not None else InMemoryBackend()
        #: optional event sink with a ``record_disk(op, nbytes, t0, t1)`` method.
        self.tracer = None

    def charge_read(self, nbytes: int, *, sequential: bool = True) -> None:
        t0 = self.clock.now
        dt = self.model.access(nbytes, sequential=sequential)
        self.clock.advance(dt)
        self.stats.io_time += dt
        self.stats.bytes_read += int(nbytes)
        self.stats.io_calls += 1
        if self.tracer is not None:
            self.tracer.record_disk("read", int(nbytes), t0, self.clock.now)

    def charge_write(self, nbytes: int, *, sequential: bool = True) -> None:
        t0 = self.clock.now
        dt = self.model.access(nbytes, sequential=sequential)
        self.clock.advance(dt)
        self.stats.io_time += dt
        self.stats.bytes_written += int(nbytes)
        self.stats.io_calls += 1
        if self.tracer is not None:
            self.tracer.record_disk("write", int(nbytes), t0, self.clock.now)

    # -- integrity-checked chunk access -------------------------------------
    def store_chunk(self, arr: np.ndarray) -> tuple[object, int]:
        """Persist one chunk; returns ``(handle, crc32)``.

        Time for the transfer itself is charged separately by the caller
        (``charge_write``); only retry backoff is charged here, so the
        happy path costs exactly what it did before checksums existed.
        """
        crc = chunk_crc(arr)
        for attempt in range(self.RETRY_ATTEMPTS):
            try:
                return self.backend.put(arr), crc
            except TransientDiskError:
                if attempt == self.RETRY_ATTEMPTS - 1:
                    raise
                self._charge_backoff(attempt, arr.nbytes)
        raise AssertionError("unreachable")  # pragma: no cover

    def fetch_chunk(
        self, handle: object, nbytes: int, crc: int | None = None
    ) -> np.ndarray:
        """Load one chunk, verifying its write-time CRC32.

        Transient errors are retried with charged backoff; a checksum
        mismatch raises :class:`ChunkCorruptionError` immediately (the
        stored payload is bad — retrying cannot help).
        """
        for attempt in range(self.RETRY_ATTEMPTS):
            try:
                arr = self.backend.get(handle)
                break
            except TransientDiskError:
                if attempt == self.RETRY_ATTEMPTS - 1:
                    raise
                self._charge_backoff(attempt, nbytes)
        if crc is not None and chunk_crc(arr) != crc:
            self.stats.crc_failures += 1
            raise ChunkCorruptionError(
                f"chunk {handle!r}: stored CRC {crc:#010x} does not match "
                f"payload CRC {chunk_crc(arr):#010x} ({nbytes} B)"
            )
        return arr

    def _charge_backoff(self, attempt: int, nbytes: int) -> None:
        delay = self.RETRY_BASE_DELAY * (self.RETRY_MULTIPLIER**attempt)
        t0 = self.clock.now
        self.clock.advance(delay)
        self.stats.io_time += delay
        self.stats.io_retries += 1
        if self.tracer is not None:
            self.tracer.record_disk("retry", int(nbytes), t0, self.clock.now)

    def close(self) -> None:
        self.backend.close()
