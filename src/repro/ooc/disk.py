"""One simulated local disk per shared-nothing node.

Every read/write of an :class:`repro.ooc.file.OocArray` goes through its
rank's :class:`LocalDisk`, which charges the disk model's seek+transfer
time to the rank's clock and records volumes in the rank's stats. There is
no contention model between ranks — each node owns its disk, which is
exactly the paper's shared-nothing assumption.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.clock import SimClock
from repro.cluster.diskmodel import DiskModel
from repro.cluster.stats import RankStats

from .backend import (
    ChunkCorruptionError,
    InMemoryBackend,
    StorageBackend,
    TransientDiskError,
    chunk_crc,
)


class LocalDisk:
    """Charges simulated time for chunk traffic and tracks volumes.

    When a tracer is attached (``repro.cluster.trace.attach_tracers``),
    every charged access is also emitted as a ``disk`` trace event.

    Storage integrity: :meth:`store_chunk` / :meth:`fetch_chunk` carry a
    per-chunk CRC32 and retry :class:`TransientDiskError` with bounded
    exponential backoff. The backoff wait is *charged to the simulated
    clock* (and counted in ``stats.io_retries``), so a flaky disk shows
    up in the cost model instead of being free.
    """

    #: retry policy for transient chunk-I/O errors
    RETRY_ATTEMPTS = 5
    RETRY_BASE_DELAY = 0.002  # simulated seconds before the first retry
    RETRY_MULTIPLIER = 2.0

    def __init__(
        self,
        model: DiskModel,
        clock: SimClock,
        stats: RankStats,
        backend: StorageBackend | None = None,
    ) -> None:
        self.model = model
        self.clock = clock
        self.stats = stats
        self.backend = backend if backend is not None else InMemoryBackend()
        #: optional event sink with a ``record_disk(op, nbytes, t0, t1)`` method.
        self.tracer = None
        #: optional :class:`~repro.ooc.bufferpool.BufferPool` (see
        #: :meth:`attach_pool`); ``None`` keeps the legacy direct path.
        self.pool = None
        #: absolute clock time at which the disk finishes its last issued
        #: request — the I/O-completion horizon that overlapped prefetch
        #: reads are sequenced behind (one disk arm per node).
        self.io_front = 0.0

    def attach_pool(self, pool) -> None:
        """Install a buffer pool between callers and the backend.

        The backend is wrapped so ``overwrite``/``delete`` invalidate the
        pool's cached entry first — a fault-injected bit flip lands on
        the stored payload *and* evicts the stale cache line, so the next
        read re-fetches and the CRC check still catches it.
        """
        pool.disk = self
        self.pool = pool
        self.backend = _InvalidatingBackend(self.backend, pool)

    def reset_io_queue(self) -> None:
        """Forget the completion horizon (clocks are being reset between
        runs); un-consumed prefetches die with the old time domain."""
        self.io_front = 0.0
        if self.pool is not None:
            self.pool.drop_inflight()

    def charge_read(self, nbytes: int, *, sequential: bool = True) -> None:
        t0 = self.clock.now
        dt = self.model.access(nbytes, sequential=sequential)
        self.clock.advance(dt)
        self._preempt_prefetch(t0)
        self.stats.io_time += dt
        self.stats.bytes_read += int(nbytes)
        self.stats.io_calls += 1
        if self.tracer is not None:
            self.tracer.record_disk("read", int(nbytes), t0, self.clock.now)

    def charge_write(self, nbytes: int, *, sequential: bool = True) -> None:
        t0 = self.clock.now
        dt = self.model.access(nbytes, sequential=sequential)
        self.clock.advance(dt)
        self._preempt_prefetch(t0)
        self.stats.io_time += dt
        self.stats.bytes_written += int(nbytes)
        self.stats.io_calls += 1
        if self.tracer is not None:
            self.tracer.record_disk("write", int(nbytes), t0, self.clock.now)

    # -- overlapped prefetch (buffer-pool path) ------------------------------
    def queued_read(self, nbytes: int, *, sequential: bool = True) -> None:
        """Charge a synchronous (demand) read on the buffer-pool path.
        Demand I/O preempts background prefetch (see
        :meth:`_preempt_prefetch`), so this costs exactly a
        :meth:`charge_read` and never waits behind a prefetch."""
        self.charge_read(nbytes, sequential=sequential)

    def _preempt_prefetch(self, t0: float) -> None:
        """Slip every unfinished prefetch past a demand access that ran
        ``[t0, now)`` (one disk arm; demand traffic has priority)."""
        if self.pool is None:
            return
        delay = self.clock.now - t0
        if delay <= 0.0:
            return
        latest = self.pool.delay_inflight(t0, delay)
        self.io_front = max(self.clock.now, latest)

    def issue_prefetch_io(self, nbytes: int) -> tuple[float, float]:
        """Queue an asynchronous read of ``nbytes`` on the disk without
        advancing the rank's clock (compute-independent I/O, Section 3).
        Returns ``(completion_time, rated_duration)``; the consumer pays
        only the part of the transfer that compute did not hide."""
        dt = self.model.access(nbytes, sequential=True)
        start = max(self.clock.now, self.io_front)
        completion = start + dt * self.clock.rate
        self.io_front = completion
        if self.tracer is not None:
            self.tracer.record_disk("prefetch", int(nbytes), start, completion)
        return completion, completion - start

    def complete_prefetch(
        self, nbytes: int, completion: float, rated_dt: float
    ) -> float:
        """Account the consumer's arrival at a prefetched chunk: wait for
        whatever is left of the transfer, record the volume once (the
        transfer itself was traced at issue time), and return the time
        the overlap saved versus a synchronous read."""
        t0 = self.clock.now
        wait = max(0.0, completion - self.clock.now)
        if wait:
            self.clock.advance_to(completion)
        saved = max(0.0, rated_dt - wait)
        self.stats.io_time += wait
        self.stats.io_overlap_saved += saved
        self.stats.bytes_read += int(nbytes)
        self.stats.io_calls += 1
        if self.tracer is not None:
            # consumption-time event (the issue-time "prefetch" slice's
            # end goes stale when demand I/O preempts the queue): the
            # residual wait actually paid plus the seconds the overlap
            # hid, so roll-ups can reconcile io_overlap_saved per level
            # and the critical path only ever sees the wait.
            rec = getattr(self.tracer, "record_prefetch_wait", None)
            if rec is not None:
                rec(int(nbytes), t0, self.clock.now, saved)
        return saved

    # -- integrity-checked chunk access -------------------------------------
    def store_chunk(self, arr: np.ndarray) -> tuple[object, int]:
        """Persist one chunk; returns ``(handle, crc32)``.

        Time for the transfer itself is charged separately by the caller
        (``charge_write``); only retry backoff is charged here, so the
        happy path costs exactly what it did before checksums existed.
        """
        crc = chunk_crc(arr)
        for attempt in range(self.RETRY_ATTEMPTS):
            try:
                return self.backend.put(arr), crc
            except TransientDiskError:
                if attempt == self.RETRY_ATTEMPTS - 1:
                    raise
                self._charge_backoff(attempt, arr.nbytes)
        raise AssertionError("unreachable")  # pragma: no cover

    def fetch_chunk(
        self, handle: object, nbytes: int, crc: int | None = None
    ) -> np.ndarray:
        """Load one chunk, verifying its write-time CRC32.

        Transient errors are retried with charged backoff; a checksum
        mismatch raises :class:`ChunkCorruptionError` immediately (the
        stored payload is bad — retrying cannot help).
        """
        for attempt in range(self.RETRY_ATTEMPTS):
            try:
                arr = self.backend.get(handle)
                break
            except TransientDiskError:
                if attempt == self.RETRY_ATTEMPTS - 1:
                    raise
                self._charge_backoff(attempt, nbytes)
        if crc is not None and chunk_crc(arr) != crc:
            self.stats.crc_failures += 1
            raise ChunkCorruptionError(
                f"chunk {handle!r}: stored CRC {crc:#010x} does not match "
                f"payload CRC {chunk_crc(arr):#010x} ({nbytes} B)"
            )
        return arr

    def _charge_backoff(self, attempt: int, nbytes: int) -> None:
        delay = self.RETRY_BASE_DELAY * (self.RETRY_MULTIPLIER**attempt)
        t0 = self.clock.now
        self.clock.advance(delay)
        self.stats.io_time += delay
        self.stats.io_retries += 1
        if self.tracer is not None:
            self.tracer.record_disk("retry", int(nbytes), t0, self.clock.now)

    def close(self) -> None:
        if self.pool is not None:
            self.pool.clear()
        self.backend.close()


class _InvalidatingBackend(StorageBackend):
    """Innermost backend wrapper: keeps the buffer pool coherent with the
    store. It sits *inside* any fault-injection wrapper, so even faults
    that rewrite payloads directly on the inner backend (bit-flip
    corruption) pass through here and drop the stale cache line."""

    def __init__(self, inner: StorageBackend, pool) -> None:
        self._inner = inner
        self._pool = pool

    def put(self, arr):
        return self._inner.put(arr)

    def get(self, handle):
        return self._inner.get(handle)

    def delete(self, handle) -> None:
        self._pool.invalidate(handle)
        self._inner.delete(handle)

    def overwrite(self, handle, arr) -> None:
        self._pool.invalidate(handle)
        self._inner.overwrite(handle, arr)

    def close(self) -> None:
        self._inner.close()

    def __getattr__(self, name):  # resident_bytes, chunks_created, root, ...
        return getattr(self._inner, name)
