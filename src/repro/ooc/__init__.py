"""Out-of-core storage substrate: per-rank simulated disks holding
chunked, column-oriented files, plus the main-memory budget that decides
when a node must be processed out-of-core."""

from .backend import (
    ChunkCorruptionError,
    FileBackend,
    InMemoryBackend,
    StorageBackend,
    TransientDiskError,
    chunk_crc,
)
from .bufferpool import POOL_MODES, BufferPool, PoolStats
from .columnset import ColumnSet, default_batch_rows
from .disk import LocalDisk
from .extsort import external_sort, is_globally_sorted
from .file import OocArray
from .memory import MemoryBudget, MemoryExceededError

__all__ = [
    "BufferPool",
    "ChunkCorruptionError",
    "ColumnSet",
    "POOL_MODES",
    "PoolStats",
    "default_batch_rows",
    "FileBackend",
    "InMemoryBackend",
    "LocalDisk",
    "TransientDiskError",
    "chunk_crc",
    "external_sort",
    "is_globally_sorted",
    "MemoryBudget",
    "MemoryExceededError",
    "OocArray",
    "StorageBackend",
]
