"""Per-rank buffer pool: an LRU chunk cache with overlapped prefetch.

The paper distinguishes compute-dependent from compute-independent
parallel I/O (Section 3): a streaming pass that re-reads a fragment the
machine could have kept in RAM, or that waits for a read it could have
issued ahead of the computation, pays for I/O the algorithm does not
need. The :class:`BufferPool` models both remedies on the simulated
machine:

* **Caching** — chunk payloads read from the local disk are retained in
  an LRU cache accounted against a :class:`~repro.ooc.memory.MemoryBudget`
  (the rank's cache RAM, distinct from the paper's node-processing limit
  that decides in-core vs. streaming). A cache hit serves the payload
  for a small memory-copy charge instead of a seek + transfer, so the
  SSE member pass and the partition pass of a node whose columns fit the
  pool stop re-reading the disk.
* **Overlapped prefetch** — during a streaming scan the read of chunk
  *i+1* is issued while chunk *i* computes. The disk tracks an
  I/O-completion horizon (:attr:`~repro.ooc.disk.LocalDisk.io_front`);
  when the consumer arrives at the prefetched chunk it waits only for
  the *remaining* transfer time, and the time saved is accounted in
  ``RankStats.io_overlap_saved``.

Integrity contract: a miss admits its payload with exactly one CRC
verification (in :meth:`~repro.ooc.disk.LocalDisk.fetch_chunk`); hits
skip the CRC re-walk because cached payloads are returned as read-only
arrays that nothing can have mutated. ``overwrite``/``delete`` on the
backing store invalidate the cached entry, so fault-injected bit flips
are still caught by the CRC on the next (uncached) read.

Determinism: the pool only changes *when* time is charged and which
array object a reader receives — never payload values, RNG draws, or
communication — so fitted trees are bit-identical with the pool on or
off.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable

import numpy as np

from .memory import MemoryBudget

if TYPE_CHECKING:  # pool and disk reference each other; runtime import is lazy
    from .columnset import ColumnSet
    from .disk import LocalDisk

__all__ = ["BufferPool", "PoolStats", "POOL_MODES", "DEFAULT_COPY_RATIO"]

#: accepted values of the ``buffer_pool`` knob
POOL_MODES = ("off", "lru", "lru+prefetch")

#: memory-copy bandwidth of a cache hit, as a multiple of the disk
#: model's transfer bandwidth (a late-90s node moved memory roughly two
#: orders of magnitude faster than its local disk; 50x keeps hits cheap
#: but not free, and scales with the harness's cost scaling for free)
DEFAULT_COPY_RATIO = 50.0


@dataclass
class PoolStats:
    """Counters for one rank's buffer pool."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    bypasses: int = 0  # payloads that could not be admitted (no room)
    invalidations: int = 0  # entries dropped by overwrite/delete
    prefetch_issued: int = 0
    prefetch_useful: int = 0  # consumed by a later read
    prefetch_wasted: int = 0  # invalidated or dropped before consumption
    hit_bytes: int = 0
    miss_bytes: int = 0
    overlap_saved_s: float = 0.0  # disk time hidden behind compute
    copy_s: float = 0.0  # memory-copy seconds charged for hits
    #: hits served from chunks admitted while another tree was the pool's
    #: consumer (``begin_tree``) — the forest's shared-cache payoff
    cross_tree_hits: int = 0
    cross_tree_hit_bytes: int = 0

    def lookups(self) -> int:
        return self.hits + self.misses

    def hit_rate(self) -> float:
        n = self.lookups()
        return self.hits / n if n else 0.0

    def cross_tree_hit_rate(self) -> float:
        """Share of all hits that crossed a tree boundary."""
        return self.cross_tree_hits / self.hits if self.hits else 0.0

    def as_dict(self) -> dict[str, float]:
        return {f: getattr(self, f) for f in self.__dataclass_fields__}


@dataclass
class _Entry:
    """One cached chunk: resident (``array`` set) or in-flight prefetch
    (``array`` is None until the consumer completes the read)."""

    nbytes: int
    array: np.ndarray | None = None
    completion: float = 0.0  # absolute clock time the transfer finishes
    rated_dt: float = 0.0  # full transfer duration in clock-domain seconds
    tree: int | None = None  # forest tree that admitted/issued the chunk


@dataclass
class BufferPool:
    """LRU chunk cache with pinning, drawn from a :class:`MemoryBudget`.

    The pool sits between :class:`~repro.ooc.file.OocArray` and
    :class:`~repro.ooc.disk.LocalDisk` (attach with
    :meth:`LocalDisk.attach_pool`). Admission, eviction and prefetch all
    acquire/release bytes on ``budget``, so ``budget.high_water`` bounds
    the cache's true footprint. Pinned handles (the hot node the driver
    is re-reading) are never evicted.
    """

    budget: MemoryBudget
    prefetch: bool = False
    copy_ratio: float = DEFAULT_COPY_RATIO
    stats: PoolStats = field(default_factory=PoolStats)
    disk: "LocalDisk | None" = None  # set by LocalDisk.attach_pool
    #: forest tree currently consuming the pool (None outside forests);
    #: entries remember the admitting tree so hits that cross trees are
    #: attributed to the shared cache rather than within-tree reuse
    current_tree: int | None = None
    _entries: "OrderedDict[object, _Entry]" = field(default_factory=OrderedDict)
    _pinned: set = field(default_factory=set)

    def __post_init__(self) -> None:
        if self.budget.limit is None:
            raise ValueError("BufferPool needs a bounded MemoryBudget")

    # -- capacity ------------------------------------------------------------
    @property
    def capacity(self) -> int:
        return int(self.budget.limit or 0)

    def begin_tree(self, tree: int | None) -> None:
        """Mark which forest tree is about to consume the pool. Chunks
        already resident keep the tag of the tree that admitted them, so
        subsequent hits register as cross-tree."""
        self.current_tree = tree

    def would_cache(self, nbytes: int) -> bool:
        """Could a working set of ``nbytes`` be wholly resident? Drivers
        use this to decide whether pinning a node is worthwhile."""
        return 0 < nbytes <= self.capacity

    # -- pinning -------------------------------------------------------------
    def pin(self, handles: Iterable[object]) -> None:
        """Protect handles from eviction (they need not be resident yet)."""
        self._pinned.update(handles)

    def unpin(self, handles: Iterable[object]) -> None:
        self._pinned.difference_update(handles)

    def pin_columnset(self, cs: "ColumnSet") -> None:
        """Pin every chunk of a node's fragment across its re-read passes."""
        for f in cs.files():
            self.pin(f.chunk_handles)

    def unpin_columnset(self, cs: "ColumnSet") -> None:
        for f in cs.files():
            self.unpin(f.chunk_handles)

    # -- the read path -------------------------------------------------------
    def read(self, handle: object, nbytes: int, crc: int | None) -> np.ndarray:
        """Serve one chunk: from cache (copy charge only), from an
        in-flight prefetch (wait for the remaining transfer), or from the
        disk (full charge, then admit)."""
        entry = self._entries.get(handle)
        if entry is not None and entry.array is not None:
            self._entries.move_to_end(handle)
            self.stats.hits += 1
            self.stats.hit_bytes += int(nbytes)
            self._note_cross_tree(entry, nbytes)
            self._charge_copy(nbytes)
            return entry.array
        if entry is not None:
            return self._complete_inflight(handle, entry, nbytes, crc)
        self.stats.misses += 1
        self.stats.miss_bytes += int(nbytes)
        self.disk.queued_read(nbytes)
        arr = _read_only(self.disk.fetch_chunk(handle, nbytes, crc))
        self._admit(handle, nbytes, arr)
        return arr

    def peek(self, handle: object, nbytes: int, crc: int | None) -> np.ndarray | None:
        """Serve a chunk only if the pool already holds it (resident or
        in flight), charging as :meth:`read` would; ``None`` on a cold
        miss. Used by bulk reads that charge their misses as one
        sequential transfer and do not admit single-use data."""
        entry = self._entries.get(handle)
        if entry is None:
            return None
        if entry.array is not None:
            self._entries.move_to_end(handle)
            self.stats.hits += 1
            self.stats.hit_bytes += int(nbytes)
            self._note_cross_tree(entry, nbytes)
            self._charge_copy(nbytes)
            return entry.array
        return self._complete_inflight(handle, entry, nbytes, crc)

    def note_miss(self, nbytes: int) -> None:
        """Account a cold miss whose transfer the caller charges itself."""
        self.stats.misses += 1
        self.stats.miss_bytes += int(nbytes)

    def _complete_inflight(
        self, handle: object, entry: _Entry, nbytes: int, crc: int | None
    ) -> np.ndarray:
        saved = self.disk.complete_prefetch(nbytes, entry.completion, entry.rated_dt)
        self.stats.prefetch_useful += 1
        self.stats.misses += 1  # the payload did move over the disk
        self.stats.miss_bytes += int(nbytes)
        self.stats.overlap_saved_s += saved
        arr = _read_only(self.disk.fetch_chunk(handle, nbytes, crc))
        entry.array = arr
        self._entries.move_to_end(handle)
        return arr

    # -- prefetch ------------------------------------------------------------
    def issue_prefetch(self, handle: object, nbytes: int) -> None:
        """Start the read of a chunk the consumer will want next. Only
        the disk's completion horizon moves — the consumer's clock is
        untouched until it actually reads the chunk, so the transfer
        overlaps whatever the rank computes in between."""
        if not self.prefetch or nbytes <= 0:
            return
        if handle in self._entries:  # already resident or in flight
            return
        if not self._make_room(nbytes):
            return
        self.budget.acquire(nbytes)
        completion, rated_dt = self.disk.issue_prefetch_io(nbytes)
        self._entries[handle] = _Entry(
            nbytes=int(nbytes), completion=completion, rated_dt=rated_dt,
            tree=self.current_tree,
        )
        self.stats.prefetch_issued += 1

    def delay_inflight(self, t0: float, delay: float) -> float:
        """Push back every unfinished prefetch that a demand access
        running ``[t0, t0+delay)`` preempted; returns the latest slipped
        completion (0.0 when nothing was in flight)."""
        latest = 0.0
        for entry in self._entries.values():
            if entry.array is None and entry.completion > t0:
                entry.completion += delay
                latest = max(latest, entry.completion)
        return latest

    # -- invalidation --------------------------------------------------------
    def invalidate(self, handle: object) -> None:
        """Drop a cached/in-flight chunk (its backing store changed)."""
        self._pinned.discard(handle)
        entry = self._entries.pop(handle, None)
        if entry is None:
            return
        self.budget.release(entry.nbytes)
        self.stats.invalidations += 1
        if entry.array is None:
            self.stats.prefetch_wasted += 1

    def drop_inflight(self) -> None:
        """Forget un-consumed prefetches (their completion times belong
        to a clock that is being reset between runs)."""
        for handle in [h for h, e in self._entries.items() if e.array is None]:
            entry = self._entries.pop(handle)
            self.budget.release(entry.nbytes)
            self.stats.prefetch_wasted += 1

    def clear(self) -> None:
        """Drop everything (backend closed or machine torn down)."""
        for entry in self._entries.values():
            self.budget.release(entry.nbytes)
            if entry.array is None:
                self.stats.prefetch_wasted += 1
        self._entries.clear()
        self._pinned.clear()

    # -- internals -----------------------------------------------------------
    def _admit(self, handle: object, nbytes: int, arr: np.ndarray) -> None:
        if not self._make_room(nbytes):
            self.stats.bypasses += 1
            return
        self.budget.acquire(nbytes)
        self._entries[handle] = _Entry(
            nbytes=int(nbytes), array=arr, tree=self.current_tree
        )

    def _make_room(self, nbytes: int) -> bool:
        if nbytes > self.capacity:
            return False
        while not self.budget.fits(nbytes):
            if not self._evict_one():
                return False
        return True

    def _evict_one(self) -> bool:
        """Evict the least-recently-used resident, unpinned entry.
        In-flight prefetches are never evicted (their budget is released
        on consumption, invalidation or reset)."""
        victim = None
        for handle, entry in self._entries.items():
            if entry.array is not None and handle not in self._pinned:
                victim = handle
                break
        if victim is None:
            return False
        entry = self._entries.pop(victim)
        self.budget.release(entry.nbytes)
        self.stats.evictions += 1
        return True

    def _note_cross_tree(self, entry: _Entry, nbytes: int) -> None:
        if (
            entry.tree is not None
            and self.current_tree is not None
            and entry.tree != self.current_tree
        ):
            self.stats.cross_tree_hits += 1
            self.stats.cross_tree_hit_bytes += int(nbytes)

    def _charge_copy(self, nbytes: int) -> None:
        disk = self.disk
        dt = nbytes / (self.copy_ratio * disk.model.bandwidth)
        disk.clock.advance(dt)
        disk.stats.compute_time += dt
        self.stats.copy_s += dt


def _read_only(arr: np.ndarray) -> np.ndarray:
    """Mark a fetched payload immutable so every consumer of the shared
    cached array sees exactly the bytes that were CRC-verified."""
    if arr.flags.writeable:
        arr.flags.writeable = False
    return arr
