"""Command-line interface.

The subcommands cover the workflows the paper's users would run::

    repro generate --records 50000 --function 2 --out data.npz
    repro train data.npz --builder pclouds --ranks 8 --tree-out tree.json
    repro forest --records 6000 --ranks 4 --trees 8 --regime auto
    repro evaluate tree.json data.npz
    repro serve --tree tree.json --records 1000000 --qps 500000
    repro speedup --records 18000 --ranks 1 2 4 8
    repro trace --records 4000 --ranks 4 --out trace.json
    repro chaos --records 4000 --ranks 4 --seeds 0 1 2
    repro health --records 8000 --ranks 8 --prom-out metrics.prom

Datasets travel as ``.npz`` archives (one array per attribute column plus
``labels``); trees as the JSON wire format of
:meth:`repro.clouds.DecisionTree.to_dict`; ``repro trace`` writes
Chrome-trace JSON loadable in Perfetto (https://ui.perfetto.dev).
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.bench.harness import ExperimentConfig, run_pclouds, scaled_models
from repro.bench.reporting import format_table
from repro.cluster import Cluster
from repro.clouds import (
    CloudsBuilder,
    CloudsConfig,
    DecisionTree,
    SprintBuilder,
    StoppingRule,
    accuracy,
    fit_direct,
    mdl_prune,
)
from repro.core import (
    EXCHANGE_STRATEGIES,
    DistributedDataset,
    PClouds,
    PCloudsConfig,
    parallel_evaluate,
)
from repro.data import generate_quest, quest_schema
from repro.forest import REGIMES

__all__ = ["main", "build_parser"]


def _load_dataset(path: str) -> tuple[dict[str, np.ndarray], np.ndarray]:
    with np.load(path) as archive:
        labels = archive["labels"]
        columns = {k: archive[k] for k in archive.files if k != "labels"}
    quest_schema().validate_columns(columns, labels)
    return columns, labels


def _save_dataset(path: str, columns: dict[str, np.ndarray], labels: np.ndarray) -> None:
    np.savez_compressed(path, labels=labels, **columns)


# -- subcommands --------------------------------------------------------------


def cmd_generate(args: argparse.Namespace) -> int:
    columns, labels = generate_quest(
        args.records, function=args.function, seed=args.seed, noise=args.noise
    )
    _save_dataset(args.out, columns, labels)
    frac = float(np.mean(labels == 0)) if len(labels) else 0.0
    print(
        f"wrote {args.records:,} records (function {args.function}, "
        f"noise {args.noise:g}, {frac:.1%} Group A) to {args.out}"
    )
    return 0


def cmd_train(args: argparse.Namespace) -> int:
    columns, labels = _load_dataset(args.data)
    schema = quest_schema()
    stopping = dict(min_node=args.min_node, purity=args.purity)

    if args.builder == "pclouds":
        net, disk, compute = scaled_models(args.scale)
        cluster = Cluster(
            args.ranks,
            network=net,
            disk=disk,
            compute=compute,
            memory_limit=args.memory_limit,
            seed=args.seed,
            buffer_pool=args.buffer_pool,
        )
        dataset = DistributedDataset.create(
            cluster, schema, columns, labels, seed=args.seed + 1
        )
        config = PCloudsConfig(
            clouds=CloudsConfig(
                method=args.method,
                q_root=args.q_root,
                sample_size=args.sample_size,
                **stopping,
            ),
            q_switch="auto" if args.q_switch == "auto" else int(args.q_switch),
            exchange=args.exchange,
            vote_top_k=args.vote_top_k,
        )
        result = PClouds(config).fit(dataset, seed=args.seed + 2)
        tree = result.tree
        print(
            f"pCLOUDS on {args.ranks} ranks: {result.elapsed:.1f} simulated s "
            f"({result.n_large_nodes} large nodes, "
            f"{result.n_small_tasks} small tasks)"
        )
    elif args.builder in ("clouds-ss", "clouds-sse"):
        cfg = CloudsConfig(
            method=args.builder.split("-")[1],
            q_root=args.q_root,
            sample_size=args.sample_size,
            **stopping,
        )
        tree = CloudsBuilder(schema, cfg).fit_arrays(columns, labels, seed=args.seed)
    elif args.builder == "sprint":
        tree = SprintBuilder(schema, StoppingRule(**stopping)).fit(columns, labels)
    elif args.builder == "sliq":
        from repro.clouds import SliqBuilder

        tree = SliqBuilder(schema, StoppingRule(**stopping)).fit(columns, labels)
    elif args.builder == "direct":
        tree = fit_direct(schema, columns, labels, StoppingRule(**stopping))
    else:  # pragma: no cover - argparse choices guard this
        raise ValueError(args.builder)

    if args.prune:
        _, removed = mdl_prune(tree)
        print(f"MDL pruning removed {removed} nodes")
    print(
        f"tree: {tree.n_nodes} nodes, {tree.n_leaves} leaves, depth {tree.depth}; "
        f"train accuracy {accuracy(labels, tree.predict(columns)):.4f}"
    )
    if args.tree_out:
        tree.save(args.tree_out)
        print(f"wrote tree to {args.tree_out}")
    return 0


def cmd_evaluate(args: argparse.Namespace) -> int:
    tree = DecisionTree.load(args.tree, quest_schema())
    columns, labels = _load_dataset(args.data)
    if args.ranks > 1:
        cluster = Cluster(args.ranks, seed=args.seed)
        dataset = DistributedDataset.create(
            cluster, quest_schema(), columns, labels, seed=args.seed
        )
        ev = parallel_evaluate(dataset, tree)
        print(
            f"accuracy {ev.accuracy:.4f} over {ev.n_records:,} records "
            f"({ev.elapsed:.2f} simulated s on {args.ranks} ranks)"
        )
        print("confusion matrix (rows true, cols predicted):")
        for row in ev.confusion:
            print("  " + " ".join(f"{v:8d}" for v in row))
    else:
        acc = accuracy(labels, tree.predict(columns))
        print(f"accuracy {acc:.4f} over {len(labels):,} records")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Compile a tree and replay a Quest record stream through the
    batched serving engine at a target QPS, reporting exact p50/p99
    latency and records/sec via the ``repro_serve_*`` metric family."""
    import json

    from repro.obs import HealthThresholds, to_prometheus
    from repro.serve import ReplayConfig, ServeEngine, replay

    schema = quest_schema()
    if args.tree:
        tree = DecisionTree.load(args.tree, schema)
        source = args.tree
    else:
        cols, labels = generate_quest(
            args.train_records, function=args.function, seed=args.seed
        )
        from repro.clouds import StoppingRule

        tree = fit_direct(
            schema, cols, labels, StoppingRule(min_node=args.min_node)
        )
        source = f"direct fit on {args.train_records:,} generated records"
    compiled = tree.compile()
    print(
        f"model: {source} — {compiled.n_nodes:,} nodes "
        f"({compiled.n_leaves:,} leaves, depth {compiled.depth}), "
        f"{compiled.nbytes / 1024:.1f} KiB compiled tables"
    )

    engine = ServeEngine(compiled)
    config = ReplayConfig(
        n_records=args.records,
        batch_size=args.batch_size,
        target_qps=args.qps,
        function=args.function,
        seed=args.seed + 1,
        noise=args.noise,
    )
    thresholds = HealthThresholds(
        serve_p99_seconds=args.p99_ms / 1e3,
        serve_min_qps_ratio=args.min_qps_ratio,
    )
    report = replay(engine, config, thresholds)
    print(report.render())

    # parity spot-check: the compiled engine must match the reference
    # tree on served traffic
    from repro.serve import request_batches

    check_cols, _ = request_batches(
        ReplayConfig(
            n_records=min(args.records, 50_000),
            batch_size=min(args.records, 50_000),
            function=args.function,
            seed=args.seed + 1,
            noise=args.noise,
        )
    )
    ok = bool(
        np.array_equal(
            compiled.predict_batch(check_cols[0]), tree.predict(check_cols[0])
        )
    )
    print(
        f"reference parity on {len(next(iter(check_cols[0].values()))):,} "
        f"records: {'OK' if ok else 'MISMATCH'}"
    )

    if args.json_out:
        payload = {
            "model": {
                "source": source,
                "n_nodes": compiled.n_nodes,
                "n_leaves": compiled.n_leaves,
                "depth": compiled.depth,
                "table_bytes": compiled.nbytes,
            },
            "replay": report.to_dict(),
            "reference_parity": ok,
            "metrics": engine.registry.snapshot(),
        }
        with open(args.json_out, "w") as fh:
            json.dump(payload, fh, indent=2, default=float)
        print(f"wrote serve report JSON to {args.json_out}")
    if args.prom_out:
        with open(args.prom_out, "w") as fh:
            fh.write(to_prometheus(engine.registry))
        print(f"wrote Prometheus text exposition to {args.prom_out}")
    if not ok:
        return 1
    if args.strict and not report.healthy:
        return 1
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    from repro.bench.timeline import render_comm_phase_bars
    from repro.cluster.trace import assert_schedules_match
    from repro.cluster.tracereport import write_chrome_trace

    cfg = ExperimentConfig(
        n_records=args.records, n_ranks=args.ranks, scale=args.scale,
        seed=args.seed, buffer_pool=args.buffer_pool,
        exchange=args.exchange, vote_top_k=args.vote_top_k,
    )
    res = run_pclouds(cfg, trace=True)
    assert_schedules_match(res.tracers)
    report = res.trace_report()
    n_events = sum(len(t.events) for t in res.tracers)
    print(
        f"traced pCLOUDS fit: {args.records:,} records on {args.ranks} ranks, "
        f"{res.elapsed:.2f} simulated s, {n_events:,} events "
        f"(SPMD schedule contract: OK)"
    )
    print()
    print(report.render())
    print()
    print("== comm bytes by phase (max over ranks) ==")
    print(render_comm_phase_bars(res.tracers))
    if args.out:
        write_chrome_trace(args.out, res.tracers)
        print(f"\nwrote Chrome-trace JSON to {args.out} "
              f"(load at https://ui.perfetto.dev)")
    return 0


def cmd_speedup(args: argparse.Namespace) -> int:
    rows = []
    base = None
    for p in args.ranks:
        res = run_pclouds(
            ExperimentConfig(
                n_records=args.records, n_ranks=p, scale=args.scale, seed=args.seed
            )
        )
        if base is None:
            base = res.elapsed
        rows.append([p, res.elapsed, base / res.elapsed,
                     res.n_large_nodes, res.n_small_tasks])
    print(
        format_table(
            ["p", "sim time (s)", "speedup", "large", "small"],
            rows,
            title=f"pCLOUDS speedup, {args.records:,} records "
            f"(1:{args.scale:g} of paper scale)",
        )
    )
    return 0


def cmd_chaos(args: argparse.Namespace) -> int:
    """Sweep the standard fault plans: does every chaos run survive, and
    does the recovered tree match the fault-free one bit for bit?"""
    from repro.cluster import SpmdProgramError, standard_plans
    from repro.data import generate_quest

    def build(seed: int, plan=None):
        net, disk, compute = scaled_models(args.scale)
        cluster = Cluster(
            args.ranks, network=net, disk=disk, compute=compute, seed=seed
        )
        columns, labels = generate_quest(args.records, function=2, seed=seed)
        dataset = DistributedDataset.create(
            cluster, quest_schema(), columns, labels, seed=seed + 1
        )
        return PClouds().fit(
            dataset, seed=seed + 2, faults=plan, recover=plan is not None
        )

    rows = []
    all_ok = True
    for seed in args.seeds:
        baseline = build(seed).tree.to_dict()
        for plan in standard_plans(args.ranks):
            try:
                res = build(seed, plan)
            except SpmdProgramError:
                rows.append([plan.name, seed, "-", "-", "no", "no"])
                all_ok = False
                continue
            recovered = res.tree.to_dict() == baseline
            all_ok &= recovered
            rows.append(
                [
                    plan.name,
                    seed,
                    res.n_restarts,
                    len(res.fault_events),
                    "yes",
                    "yes" if recovered else "NO",
                ]
            )
    print(
        format_table(
            ["plan", "seed", "restarts", "faults", "survived", "recovered"],
            rows,
            title=f"chaos sweep: {args.records:,} records on {args.ranks} ranks",
        )
    )
    print(
        "all plans recovered bit-identical trees"
        if all_ok
        else "FAILURE: some plans did not recover"
    )
    return 0 if all_ok else 1


def cmd_health(args: argparse.Namespace) -> int:
    """Run a metered synthetic fit and render the health report: per-level
    load imbalance, I/O amplification, and collective cost drift against
    the Table-1 model."""
    import json

    from repro.obs.health import HealthThresholds
    from repro.obs.report import render_health_markdown

    thresholds = HealthThresholds(
        imbalance=args.imbalance,
        io_amplification=args.io_amplification,
        drift_low=args.drift_low,
        drift_high=args.drift_high,
    )
    cfg = ExperimentConfig(
        n_records=args.records, n_ranks=args.ranks, scale=args.scale,
        seed=args.seed, frontier_batching=args.frontier_batching,
        buffer_pool=args.buffer_pool,
        exchange=args.exchange, vote_top_k=args.vote_top_k,
    )
    from repro.bench.harness import build_cluster

    schema = quest_schema()
    cols, labels = generate_quest(
        cfg.n_records, cfg.function, seed=cfg.seed, noise=cfg.noise
    )
    cluster = build_cluster(cfg, schema.row_nbytes())
    dataset = DistributedDataset.create(
        cluster, schema, cols, labels, seed=cfg.seed + 1
    )
    pc = PClouds(
        PCloudsConfig(
            clouds=CloudsConfig(
                method=cfg.method,
                q_root=cfg.resolved_q_root(),
                sample_size=cfg.resolved_sample(),
                min_node=cfg.min_node,
                purity=cfg.purity,
            ),
            q_switch=cfg.q_switch,
            exchange=cfg.exchange,
            frontier_batching=cfg.frontier_batching,
            vote_top_k=cfg.vote_top_k,
        )
    )
    pc_result = pc.fit(
        dataset, seed=cfg.seed + 2, metrics=True, health=thresholds
    )
    print(render_health_markdown(
        pc_result.health,
        title=f"Run health: {args.records:,} records on {args.ranks} ranks",
    ))
    if args.json_out:
        with open(args.json_out, "w") as fh:
            json.dump(pc_result.metrics_snapshot(), fh, indent=2, default=float)
        print(f"wrote metrics JSON to {args.json_out}")
    if args.prom_out:
        with open(args.prom_out, "w") as fh:
            fh.write(pc_result.prometheus())
        print(f"wrote Prometheus text exposition to {args.prom_out}")
    if not pc_result.health.healthy and args.strict:
        return 1
    return 0


def cmd_forest(args: argparse.Namespace) -> int:
    """Train a bagged forest over one shared out-of-core spool and report
    the schedule (regime, groups, waves), the cross-tree cache payoff,
    and training accuracy through the compiled serving engine."""
    import json

    from repro.bench.harness import ForestExperimentConfig, forest_payload, run_forest

    cfg = ForestExperimentConfig(
        n_records=args.records, n_ranks=args.ranks, scale=args.scale,
        seed=args.seed, n_trees=args.trees, regime=args.regime,
        n_groups=args.groups, pool_ratio=args.pool_ratio,
        buffer_pool=args.buffer_pool,
        exchange=args.exchange, vote_top_k=args.vote_top_k,
    )
    result = run_forest(cfg, metrics=True)
    ct = result.cross_tree
    print(
        f"forest: {args.trees} trees on {args.ranks} ranks "
        f"(regime={args.regime} -> {result.n_groups} group(s) x "
        f"{result.n_waves} wave(s)): {result.elapsed:.1f} simulated s"
    )
    if result.regime_costs:
        modeled = ", ".join(
            f"G={g}: {c:.1f}s" for g, c in sorted(result.regime_costs.items())
        )
        print(f"  modelled regime costs: {modeled}")
    print(
        f"  cross-tree cache: {ct['cross_tree_hits']:,} of {ct['hits']:,} "
        f"pool hits crossed a tree boundary "
        f"({ct['cross_tree_hit_rate']:.1%}, "
        f"{ct['cross_tree_hit_bytes'] / 1e6:.2f} MB served from "
        f"other trees' reads)"
    )
    print(f"  disk read: {sum(result.disk_read_bytes) / 1e6:.2f} MB total")
    for rec in result.tree_stats:
        print(
            f"  tree {rec['tree']}: {rec['elapsed']:.1f}s "
            f"({rec['n_large']} large nodes, {rec['n_small']} small tasks)"
        )

    # training accuracy through the compiled engine (pinned bit-identical
    # to the reference majority vote, so this also exercises serving)
    columns, labels = generate_quest(
        args.records, function=cfg.function, seed=args.seed, noise=cfg.noise
    )
    predicted = result.forest.compile().predict_batch(columns)
    print(f"  training accuracy (compiled, majority vote): "
          f"{accuracy(labels, predicted):.4f}")

    if args.forest_out:
        result.forest.save(args.forest_out)
        print(f"wrote forest JSON to {args.forest_out}")
    if args.json_out:
        with open(args.json_out, "w") as fh:
            json.dump(forest_payload(result), fh, indent=2, default=float)
        print(f"wrote forest report JSON to {args.json_out}")
    if result.health is not None and not result.health.healthy and args.strict:
        return 1
    return 0


def cmd_critpath(args: argparse.Namespace) -> int:
    """Run a traced+metered fit, extract its causal critical path, and
    report the Table-1 blame decomposition with bounded what-if speedups
    (see docs/observability.md)."""
    import json

    from repro.cluster.tracereport import write_chrome_trace
    from repro.obs.critpath import (
        build_critical_path,
        critpath_alerts,
        record_critpath_metrics,
    )
    from repro.obs.health import HealthThresholds
    from repro.obs.report import render_critpath_markdown
    from repro.obs.whatif import (
        evaluate_all,
        standard_scenarios,
        voting_payload_ratio,
    )

    cfg = ExperimentConfig(
        n_records=args.records, n_ranks=args.ranks, scale=args.scale,
        seed=args.seed, frontier_batching=args.frontier_batching,
        buffer_pool=args.buffer_pool,
        exchange=args.exchange, vote_top_k=args.vote_top_k,
    )
    res = run_pclouds(cfg, trace=True, metrics=True)
    network = scaled_models(cfg.scale)[0]
    path = build_critical_path(res.tracers, network, elapsed=res.elapsed)
    if path.length != res.elapsed:
        print(
            f"INVARIANT VIOLATION: path length {path.length!r} != "
            f"simulated elapsed {res.elapsed!r}",
            file=sys.stderr,
        )
        return 1

    estimates = None
    if args.what_if:
        schema = quest_schema()
        ratio = voting_payload_ratio(
            q=cfg.resolved_q_root(), c=schema.n_classes, f=len(schema),
            p=cfg.n_ranks, top_k=cfg.vote_top_k,
        )
        estimates = evaluate_all(path, standard_scenarios(ratio))

    thresholds = HealthThresholds(critpath_dominant_share=args.max_share)
    alerts = critpath_alerts(path, thresholds)
    if res.metrics is not None:
        record_critpath_metrics(res.metrics, path)
    if res.health is not None:
        res.health.alerts.extend(alerts)

    print(render_critpath_markdown(
        path,
        estimates=estimates,
        alerts=alerts,
        title=f"Critical path: {args.records:,} records on {args.ranks} ranks",
        meta={
            "exchange": cfg.exchange,
            "buffer_pool": cfg.buffer_pool,
            "frontier_batching": cfg.frontier_batching,
            "elapsed_s": f"{res.elapsed:.4f}",
        },
    ))
    if args.json_out:
        payload = {
            "critical_path": path.to_dict(),
            "what_if": [e.to_dict() for e in estimates] if estimates else [],
            "alerts": [
                {
                    "indicator": a.indicator,
                    "op": a.op,
                    "value": a.value,
                    "threshold": a.threshold,
                    "message": a.message,
                }
                for a in alerts
            ],
        }
        with open(args.json_out, "w") as fh:
            json.dump(payload, fh, indent=2, default=float)
        print(f"wrote critical-path JSON to {args.json_out}")
    if args.out:
        write_chrome_trace(args.out, res.tracers, path)
        print(f"wrote Chrome-trace JSON (flow events + critical-path "
              f"overlay) to {args.out} — load at https://ui.perfetto.dev")
    if args.strict and alerts:
        return 1
    return 0


# -- parser ---------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="pCLOUDS: parallel out-of-core decision-tree classification",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    g = sub.add_parser("generate", help="generate a Quest synthetic dataset")
    g.add_argument("--records", type=int, required=True)
    g.add_argument("--function", type=int, default=2, choices=range(1, 11))
    g.add_argument("--noise", type=float, default=0.0)
    g.add_argument("--seed", type=int, default=0)
    g.add_argument("--out", required=True, help="output .npz path")
    g.set_defaults(func=cmd_generate)

    t = sub.add_parser("train", help="fit a classifier")
    t.add_argument("data", help=".npz dataset from `repro generate`")
    t.add_argument(
        "--builder",
        default="pclouds",
        choices=["pclouds", "clouds-ss", "clouds-sse", "sprint", "sliq", "direct"],
    )
    t.add_argument("--ranks", type=int, default=8, help="pclouds: machine size")
    t.add_argument("--method", default="sse", choices=["ss", "sse"])
    t.add_argument("--q-root", type=int, default=500)
    t.add_argument("--q-switch", default="10", help="interval threshold or 'auto'")
    t.add_argument("--sample-size", type=int, default=2000)
    t.add_argument("--min-node", type=int, default=16)
    t.add_argument("--purity", type=float, default=1.0)
    t.add_argument("--memory-limit", type=int, default=None, help="bytes per rank")
    t.add_argument(
        "--buffer-pool", default="lru+prefetch",
        choices=list(Cluster.BUFFER_POOL_MODES),
        help="out-of-core chunk cache mode",
    )
    t.add_argument(
        "--exchange", default="attribute", choices=list(EXCHANGE_STRATEGIES),
        help="pclouds: statistics-exchange strategy",
    )
    t.add_argument(
        "--vote-top-k", type=int, default=8,
        help="voting exchange: attributes each rank nominates",
    )
    t.add_argument("--scale", type=float, default=100.0, help="cost-model scale")
    t.add_argument("--prune", action="store_true", help="MDL-prune after fitting")
    t.add_argument("--seed", type=int, default=0)
    t.add_argument("--tree-out", help="write fitted tree as JSON")
    t.set_defaults(func=cmd_train)

    e = sub.add_parser("evaluate", help="score a fitted tree on a dataset")
    e.add_argument("tree", help="tree JSON from `repro train --tree-out`")
    e.add_argument("data", help=".npz dataset")
    e.add_argument("--ranks", type=int, default=1, help=">1: distributed evaluation")
    e.add_argument("--seed", type=int, default=0)
    e.set_defaults(func=cmd_evaluate)

    sv = sub.add_parser(
        "serve",
        help="compile a tree and replay record batches at a target QPS "
        "(batched inference: p50/p99 latency, records/sec)",
    )
    sv.add_argument("--tree", help="tree JSON from `repro train --tree-out`")
    sv.add_argument(
        "--train-records", type=int, default=20_000,
        help="without --tree: fit a direct tree on this many records",
    )
    sv.add_argument("--min-node", type=int, default=16)
    sv.add_argument("--records", type=int, default=1_000_000)
    sv.add_argument("--batch-size", type=int, default=4096)
    sv.add_argument(
        "--qps", type=float, default=0.0,
        help="target records/sec (0 = unthrottled)",
    )
    sv.add_argument("--function", type=int, default=2, choices=range(1, 11))
    sv.add_argument("--noise", type=float, default=0.0)
    sv.add_argument("--seed", type=int, default=0)
    sv.add_argument(
        "--p99-ms", type=float, default=50.0,
        help="serve-latency health threshold (p99 batch latency, ms)",
    )
    sv.add_argument(
        "--min-qps-ratio", type=float, default=0.9,
        help="alert when achieved/target throughput falls below this",
    )
    sv.add_argument("--json-out", help="write the serve report JSON")
    sv.add_argument("--prom-out", help="write Prometheus text exposition")
    sv.add_argument(
        "--strict", action="store_true", help="exit nonzero on any alert"
    )
    sv.set_defaults(func=cmd_serve)

    tr = sub.add_parser(
        "trace",
        help="run a traced fit: where do bytes and time go, per phase?",
    )
    tr.add_argument("--records", type=int, default=4000)
    tr.add_argument("--ranks", type=int, default=4)
    tr.add_argument("--scale", type=float, default=200.0, help="cost-model scale")
    tr.add_argument("--seed", type=int, default=0)
    tr.add_argument(
        "--buffer-pool", default="lru+prefetch",
        choices=list(Cluster.BUFFER_POOL_MODES),
        help="out-of-core chunk cache mode",
    )
    tr.add_argument(
        "--exchange", default="attribute", choices=list(EXCHANGE_STRATEGIES),
        help="statistics-exchange strategy",
    )
    tr.add_argument(
        "--vote-top-k", type=int, default=8,
        help="voting exchange: attributes each rank nominates",
    )
    tr.add_argument("--out", help="write Chrome-trace/Perfetto JSON here")
    tr.set_defaults(func=cmd_trace)

    s = sub.add_parser("speedup", help="run a quick speedup experiment")
    s.add_argument("--records", type=int, default=18_000)
    s.add_argument("--ranks", type=int, nargs="+", default=[1, 2, 4, 8])
    s.add_argument("--scale", type=float, default=200.0)
    s.add_argument("--seed", type=int, default=0)
    s.set_defaults(func=cmd_speedup)

    c = sub.add_parser(
        "chaos",
        help="fault-injection sweep: crash/corrupt/slow ranks, verify recovery",
    )
    c.add_argument("--records", type=int, default=4000)
    c.add_argument("--ranks", type=int, default=4)
    c.add_argument("--seeds", type=int, nargs="+", default=[0, 1, 2])
    c.add_argument("--scale", type=float, default=200.0, help="cost-model scale")
    c.set_defaults(func=cmd_chaos)

    h = sub.add_parser(
        "health",
        help="metered fit + online health report: load imbalance, "
        "I/O amplification, cost-model drift vs Table 1",
    )
    h.add_argument("--records", type=int, default=8000)
    h.add_argument("--ranks", type=int, default=8)
    h.add_argument("--scale", type=float, default=200.0, help="cost-model scale")
    h.add_argument("--seed", type=int, default=0)
    h.add_argument(
        "--frontier-batching", default="level", choices=["level", "per_node"]
    )
    h.add_argument(
        "--buffer-pool", default="lru+prefetch",
        choices=list(Cluster.BUFFER_POOL_MODES),
        help="out-of-core chunk cache mode",
    )
    h.add_argument(
        "--exchange", default="attribute", choices=list(EXCHANGE_STRATEGIES),
        help="statistics-exchange strategy",
    )
    h.add_argument(
        "--vote-top-k", type=int, default=8,
        help="voting exchange: attributes each rank nominates",
    )
    h.add_argument(
        "--imbalance", type=float, default=2.0,
        help="alert when a level's max/mean busy ratio exceeds this",
    )
    h.add_argument(
        "--io-amplification", type=float, default=8.0,
        help="alert when level I/O bytes exceed this multiple of live bytes",
    )
    h.add_argument(
        "--drift-low", type=float, default=0.9,
        help="alert when observed/predicted collective cost falls below this",
    )
    h.add_argument(
        "--drift-high", type=float, default=1.1,
        help="alert when observed/predicted collective cost exceeds this",
    )
    h.add_argument("--json-out", help="write the merged metrics snapshot JSON")
    h.add_argument("--prom-out", help="write Prometheus text exposition")
    h.add_argument(
        "--strict", action="store_true", help="exit nonzero on any alert"
    )
    h.set_defaults(func=cmd_health)

    f = sub.add_parser(
        "forest",
        help="train a bagged forest over one shared spool: regime "
        "scheduling, cross-tree chunk-cache payoff, compiled voting",
    )
    f.add_argument("--records", type=int, default=6000)
    f.add_argument("--ranks", type=int, default=4)
    f.add_argument("--trees", type=int, default=8, help="ensemble size B")
    f.add_argument(
        "--regime", default="auto", choices=list(REGIMES),
        help="data-parallel, tree-parallel, hybrid, or cost-model auto",
    )
    f.add_argument(
        "--groups", type=int, default=None,
        help="hybrid: explicit concurrent group count (must divide ranks)",
    )
    f.add_argument(
        "--pool-ratio", type=float, default=None,
        help="buffer-pool capacity as a multiple of the memory limit "
        "(default: auto-size the pool to the shared working set)",
    )
    f.add_argument(
        "--buffer-pool", default="lru+prefetch",
        choices=list(Cluster.BUFFER_POOL_MODES),
        help="out-of-core chunk cache mode",
    )
    f.add_argument(
        "--exchange", default="attribute", choices=list(EXCHANGE_STRATEGIES),
        help="statistics-exchange strategy",
    )
    f.add_argument(
        "--vote-top-k", type=int, default=8,
        help="voting exchange: attributes each rank nominates",
    )
    f.add_argument("--scale", type=float, default=100.0, help="cost-model scale")
    f.add_argument("--seed", type=int, default=0)
    f.add_argument("--forest-out", help="write the fitted forest as JSON")
    f.add_argument("--json-out", help="write the forest report JSON")
    f.add_argument(
        "--strict", action="store_true", help="exit nonzero on any alert"
    )
    f.set_defaults(func=cmd_forest)

    cp = sub.add_parser(
        "critpath",
        help="traced fit + causal critical path: which events determined "
        "the elapsed time, and what would relieving them pay?",
    )
    cp.add_argument("--records", type=int, default=4000)
    cp.add_argument("--ranks", type=int, default=4)
    cp.add_argument("--scale", type=float, default=200.0, help="cost-model scale")
    cp.add_argument("--seed", type=int, default=0)
    cp.add_argument(
        "--frontier-batching", default="level", choices=["level", "per_node"]
    )
    cp.add_argument(
        "--buffer-pool", default="lru+prefetch",
        choices=list(Cluster.BUFFER_POOL_MODES),
        help="out-of-core chunk cache mode",
    )
    cp.add_argument(
        "--exchange", default="attribute", choices=list(EXCHANGE_STRATEGIES),
        help="statistics-exchange strategy",
    )
    cp.add_argument(
        "--vote-top-k", type=int, default=8,
        help="voting exchange: attributes each rank nominates",
    )
    cp.add_argument(
        "--what-if", action="store_true",
        help="include bounded counterfactual speedups (Table-1 closed forms)",
    )
    cp.add_argument(
        "--max-share", type=float, default=0.9,
        help="alert when one category exceeds this share of the path",
    )
    cp.add_argument("--json-out", help="write path + what-if JSON here")
    cp.add_argument(
        "--out",
        help="write Chrome-trace JSON with flow events and the "
        "critical-path overlay",
    )
    cp.add_argument(
        "--strict", action="store_true",
        help="exit nonzero on a dominant-category alert or invariant "
        "violation",
    )
    cp.set_defaults(func=cmd_critpath)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
