"""Parallel out-of-core sample sort — a second application of the
paper's techniques.

Sorting is the canonical divide-and-conquer out-of-core problem (the
paper's I/O background builds on it). Sample sort maps directly onto the
machinery built for pCLOUDS:

1. every processor samples its local fragment; the samples are
   all-gathered and p−1 **splitters** selected (the pre-drawn sample of
   CLOUDS, in miniature);
2. one streaming pass partitions the local records into p buckets which
   travel to their owners in a single personalized all-to-all (the
   small-node redistribution pattern);
3. each processor sorts its bucket with the **external merge sort** of
   :mod:`repro.ooc.extsort` under its memory budget.

Bucket sizes obey the Angluin–Valiant bound the paper leans on
(Theorem 1/Lemma 2): with s sample points per processor the expected
imbalance is O(sqrt(...)), measured by the result's ``imbalance``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.machine import Cluster, RankContext, SpmdRun
from repro.ooc.extsort import external_sort, is_globally_sorted
from repro.ooc.file import OocArray

__all__ = ["SampleSortResult", "parallel_sample_sort"]

_DTYPE = np.float64


@dataclass
class SampleSortResult:
    """Outcome of one parallel sort."""

    outputs: list[OocArray]  # rank-ordered sorted buckets
    splitters: np.ndarray
    elapsed: float
    run: SpmdRun
    bucket_sizes: list[int]

    @property
    def n_records(self) -> int:
        return sum(self.bucket_sizes)

    def imbalance(self) -> float:
        """max/mean bucket size (1.0 = perfect)."""
        if not self.bucket_sizes or self.n_records == 0:
            return 1.0
        mean = self.n_records / len(self.bucket_sizes)
        return max(self.bucket_sizes) / mean

    def read_all(self) -> np.ndarray:
        """Materialise the globally sorted sequence (test/diagnostic)."""
        return np.concatenate([f.read_all() for f in self.outputs])

    def verify(self) -> bool:
        """Each bucket sorted, bucket ranges respect the splitters."""
        for rank, f in enumerate(self.outputs):
            if not is_globally_sorted(f):
                return False
        prev_max = -np.inf
        for f in self.outputs:
            data = f.read_all()
            if len(data) == 0:
                continue
            if data[0] < prev_max:
                return False
            prev_max = data[-1]
        return True


def _sort_program(
    ctx: RankContext,
    fragments: list[np.ndarray],
    oversample: int,
    run_records: int,
    batch: int,
    seed: int,
) -> tuple[OocArray, np.ndarray, int]:
    comm = ctx.comm
    p = comm.size
    rng = np.random.default_rng(np.random.SeedSequence([seed, 23, ctx.rank]))

    # load the local fragment onto the disk (time starts afterwards)
    local = OocArray(ctx.disk, _DTYPE, name=f"unsorted@{ctx.rank}")
    payload = fragments[ctx.rank]
    for lo in range(0, len(payload), batch):
        local.append(payload[lo : lo + batch])
    ctx.clock.now = 0.0

    # 1. splitter selection from a replicated sample
    want = min(oversample * p, max(len(payload), 1))
    pick = np.sort(rng.choice(len(payload), size=min(want, len(payload)),
                              replace=False)) if len(payload) else np.empty(0, np.int64)
    sample = payload[pick]
    ctx.disk.charge_read(sample.nbytes)  # the sample rows come off disk
    gathered = comm.allgather(sample)
    pool = np.sort(np.concatenate(gathered))
    ctx.charge_sort(len(pool))
    if p > 1 and len(pool):
        idx = (np.arange(1, p) * len(pool)) // p
        splitters = pool[idx]
    else:
        splitters = np.empty(0, dtype=_DTYPE)

    # 2. one streaming partition pass + one personalized all-to-all
    parts: list[list[np.ndarray]] = [[] for _ in range(p)]
    for chunk in local.iter_chunks():
        dest = np.searchsorted(splitters, chunk, side="right")
        ctx.charge_compute(ops=len(chunk))
        for d in range(p):
            piece = chunk[dest == d]
            if len(piece):
                parts[d].append(piece)
    local.delete()
    outgoing = [
        np.concatenate(parts[d]) if parts[d] else np.empty(0, dtype=_DTYPE)
        for d in range(p)
    ]
    incoming = comm.alltoall(outgoing)

    # 3. external sort of the received bucket under the memory budget
    bucket = OocArray(ctx.disk, _DTYPE, name=f"bucket@{ctx.rank}")
    for piece in incoming:
        for lo in range(0, len(piece), batch):
            bucket.append(piece[lo : lo + batch])
    n_bucket = len(bucket)
    sorted_bucket = external_sort(bucket, run_records=run_records)
    return sorted_bucket, splitters, n_bucket


def parallel_sample_sort(
    cluster: Cluster,
    values: np.ndarray,
    *,
    oversample: int = 32,
    run_records: int | None = None,
    batch: int = 8192,
    seed: int = 0,
) -> SampleSortResult:
    """Sort ``values`` across the cluster; bucket r of the result holds
    the r-th value range, each bucket sorted and disk-resident.

    ``run_records`` bounds the in-core sort unit (default: the rank's
    memory limit, or everything when unlimited).
    """
    values = np.asarray(values, dtype=_DTYPE)
    rng = np.random.default_rng(seed)
    perm = rng.permutation(len(values))
    bounds = np.linspace(0, len(values), cluster.n_ranks + 1).astype(np.int64)
    fragments = [
        values[perm[bounds[r] : bounds[r + 1]]] for r in range(cluster.n_ranks)
    ]
    if run_records is None:
        if cluster.memory_limit:
            run_records = max(cluster.memory_limit // np.dtype(_DTYPE).itemsize, 64)
        else:
            run_records = max(len(values), 1)
    # the sorted buckets stay disk-resident after the run, so the caller
    # must own the contexts (run-owned backends are closed on return)
    contexts = cluster.make_contexts()
    run = cluster.run(
        _sort_program, fragments, oversample, run_records, batch, seed,
        contexts=contexts,
    )
    outputs = [r[0] for r in run.results]
    return SampleSortResult(
        outputs=outputs,
        splitters=run.results[0][1],
        elapsed=run.elapsed,
        run=run,
        bucket_sizes=[r[2] for r in run.results],
    )
