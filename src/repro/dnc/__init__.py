"""Generic parallel out-of-core divide-and-conquer techniques
(Section 3 of the paper)."""

from .cost import DncCostModel, TreeShape, choose_forest_regime, forest_regime_cost
from .driver import STRATEGIES, StrategyResult, make_executor, run_strategy
from .executors import (
    ConcatenatedExecutor,
    DataParallelExecutor,
    MixedExecutor,
    TaskOutcome,
    TaskParallelExecutor,
)
from .problem import DncProblem, SyntheticDnc, synthetic_payload
from .sorting import SampleSortResult, parallel_sample_sort

__all__ = [
    "ConcatenatedExecutor",
    "DataParallelExecutor",
    "DncCostModel",
    "DncProblem",
    "TreeShape",
    "MixedExecutor",
    "STRATEGIES",
    "SampleSortResult",
    "StrategyResult",
    "SyntheticDnc",
    "TaskOutcome",
    "TaskParallelExecutor",
    "choose_forest_regime",
    "forest_regime_cost",
    "make_executor",
    "parallel_sample_sort",
    "run_strategy",
    "synthetic_payload",
]
