"""Runs a divide-and-conquer problem under a chosen strategy on a
simulated cluster and reports cost breakdowns — the apparatus behind the
Section-3 strategy comparison bench."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.machine import Cluster, RankContext, SpmdRun
from repro.data.distribute import shuffle_split
from repro.ooc.file import OocArray

from .executors import (
    ConcatenatedExecutor,
    DataParallelExecutor,
    MixedExecutor,
    TaskOutcome,
    TaskParallelExecutor,
)
from .problem import DncProblem, synthetic_payload

__all__ = ["StrategyResult", "run_strategy", "STRATEGIES", "make_executor"]

STRATEGIES = ("data", "concatenated", "task", "mixed")


def make_executor(name: str, **kwargs):
    """Executor factory by strategy name."""
    if name == "data":
        return DataParallelExecutor()
    if name == "concatenated":
        return ConcatenatedExecutor()
    if name == "task":
        return TaskParallelExecutor()
    if name == "mixed":
        return MixedExecutor(**kwargs)
    raise ValueError(f"unknown strategy {name!r}; choose from {STRATEGIES}")


@dataclass
class StrategyResult:
    """Cost and tree statistics of one strategy run."""

    strategy: str
    elapsed: float
    outcome: TaskOutcome
    run: SpmdRun

    @property
    def bytes_read(self) -> int:
        return self.run.stats.total.bytes_read

    @property
    def bytes_sent(self) -> int:
        return self.run.stats.total.bytes_sent

    @property
    def collectives(self) -> int:
        return self.run.stats.total.collectives

    def row(self) -> list:
        """Table row for the strategy-comparison bench."""
        return [
            self.strategy,
            self.elapsed,
            self.outcome.n_tasks,
            self.outcome.max_depth,
            self.bytes_read,
            self.bytes_sent,
            self.collectives,
        ]


def _program(ctx: RankContext, executor, problem: DncProblem, fragments) -> TaskOutcome:
    root = OocArray(ctx.disk, np.float64, name="dnc-root")
    payload = fragments[ctx.rank]
    # load in chunks so the root file is streamable
    step = 8192
    for lo in range(0, len(payload), step):
        root.append(payload[lo : lo + step])
    ctx.clock.now = 0.0  # timing starts after the initial distribution
    return executor.run(ctx, problem, root)


def run_strategy(
    cluster: Cluster,
    problem: DncProblem,
    n_records: int,
    strategy: str,
    seed: int = 0,
    **executor_kwargs,
) -> StrategyResult:
    """Generate a payload, distribute it at random, and build the
    divide-and-conquer tree under ``strategy``."""
    payload = synthetic_payload(n_records, seed=seed)
    frags = shuffle_split({"x": payload}, np.zeros(n_records, dtype=np.int32),
                          cluster.n_ranks, seed=seed + 1)
    fragments = [cols["x"] for cols, _ in frags]
    executor = make_executor(strategy, **executor_kwargs)
    run = cluster.run(_program, executor, problem, fragments)
    outcome = run.results[0]
    return StrategyResult(
        strategy=strategy, elapsed=run.elapsed, outcome=outcome, run=run
    )
