"""Closed-form cost models for the Section-3 techniques.

The paper reasons about the strategies analytically (redistribution is
"very expensive", concatenated parallelism "may lead to substantial I/O
overhead", startups dominate small tasks...). These formulas make that
reasoning executable: given the machine models and a divide-and-conquer
tree's shape, predict each strategy's cost — including the
**compute-independent parallel I/O** variant of task parallelism
(Section 3.1), which is modelled here rather than executed (its remote
reads would need a disk-service model the executors don't carry).

The `bench_strategies` analytic table cross-checks these predictions
against the simulator's measurements, which validates both.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.cluster.compute import ComputeModel
from repro.cluster.diskmodel import DiskModel
from repro.cluster.network import NetworkModel

__all__ = [
    "DncCostModel",
    "TreeShape",
    "collective_cost",
    "exchange_stats_bytes",
    "exchange_cost",
    "startup_cost",
    "forest_regime_cost",
    "choose_forest_regime",
]


#: ops priced by the reduction row of Table 1 (alpha·log p + beta·m)
_COMBINE_OPS = frozenset(
    {"reduce", "allreduce", "allreduce_minloc", "allreduce_minloc_many"}
)


def collective_cost(
    network: NetworkModel,
    op: str,
    *,
    p: int,
    m: float = 0.0,
    out_bytes: float = 0.0,
    in_bytes: float = 0.0,
) -> float:
    """Table-1 predicted cost of one collective primitive, by name.

    Maps the communicator's op vocabulary onto the paper's collective
    cost rows, exactly as :class:`repro.cluster.comm.Comm` charges them:
    ``m`` is the per-rank message size the row takes (max contribution
    for allgather/gather/scatter, the reduced vector for combines),
    while ``alltoall`` takes the rank's injected/drained byte totals.
    The health monitor (:mod:`repro.obs.health`) divides *observed*
    collective busy time by this prediction to compute cost-model
    drift; :class:`DncCostModel` builds its strategy estimates from the
    same rows, so drift is measured against the exact formulas the
    Section-3 analysis argues from.
    """
    if op == "barrier":
        return network.global_combine(0, p)
    if op == "bcast":
        return network.broadcast(m, p)
    if op in ("gather", "scatter"):
        return network.gather(m, p)
    if op in ("allgather", "vote"):
        return network.all_to_all_broadcast(m, p)
    if op in _COMBINE_OPS:
        return network.global_combine(m, p)
    if op == "scan":
        return network.prefix_sum(m, p)
    if op == "alltoall":
        return network.alltoallv(out_bytes, in_bytes, p)
    raise ValueError(f"no Table-1 cost row for collective {op!r}")


def startup_cost(network: NetworkModel, op: str, *, p: int) -> float:
    """The startup (latency) column of the op's Table-1 row: its cost at
    zero payload. The critical-path profiler uses
    ``startup_cost / collective_cost`` to split an observed collective
    interval into startup vs. bandwidth blame; the ratio is invariant
    under uniform scaling of the machine model."""
    if op == "alltoall":
        return collective_cost(network, op, p=p, out_bytes=0.0, in_bytes=0.0)
    return collective_cost(network, op, p=p, m=0.0)


def exchange_stats_bytes(
    strategy: str,
    *,
    q: int,
    c: int,
    f: int,
    p: int,
    top_k: int | None = None,
    value_nbytes: int = 8,
) -> float:
    """Per-rank bytes one stats exchange injects into the network, by
    strategy, for ``q`` intervals × ``c`` classes × ``f`` attributes on
    ``p`` processors.

    The exact strategies ship the full O(q·c·f) statistics: the
    attribute-partitioned alltoalls keep each rank's own share local (a
    ``(p-1)/p`` factor), the naive allreduce pushes the whole vector
    through the combine. ``"voting"`` ships one (attribute, gini) ballot
    of ``top_k`` rows to every peer plus the alltoall restricted to the
    at most ``min(2·top_k, f)`` elected attributes — the O(f) → O(k)
    reduction the PV-Tree vote buys.
    """
    full = float(q) * c * f * value_nbytes
    frac = (p - 1) / p if p > 0 else 0.0
    if strategy in ("attribute", "distributed"):
        return full * frac
    if strategy == "allreduce":
        return full
    if strategy == "voting":
        if top_k is None:
            raise ValueError("voting needs top_k")
        candidates = min(2 * top_k, f)
        ballots = min(top_k, f) * 2 * value_nbytes * max(p - 1, 0)
        return float(q) * c * candidates * value_nbytes * frac + ballots
    raise ValueError(f"unknown exchange strategy {strategy!r}")


def exchange_cost(
    network: NetworkModel,
    strategy: str,
    *,
    q: int,
    c: int,
    f: int,
    p: int,
    top_k: int | None = None,
    value_nbytes: int = 8,
) -> float:
    """Table-1 predicted time of one stats exchange, by strategy.

    ``"attribute"`` pays one alltoallv of the partitioned statistics
    plus the split election combine; ``"distributed"`` adds the parallel
    prefix sum that recovers block-base cumulative counts;
    ``"allreduce"`` is one global combine of everything; ``"voting"``
    pays the ballot all-to-all broadcast up front and then the
    attribute-partitioned alltoallv over only the elected candidates.
    """
    w = value_nbytes
    frac = (p - 1) / p if p > 0 else 0.0
    election = network.global_combine(8.0, p)
    if strategy == "attribute":
        b = q * c * f * w * frac
        return network.alltoallv(b, b, p) + election
    if strategy == "distributed":
        b = q * c * f * w * frac
        return (
            network.alltoallv(b, b, p)
            + network.prefix_sum(f * c * w, p)
            + election
        )
    if strategy == "allreduce":
        return network.global_combine(q * c * f * w, p) + election
    if strategy == "voting":
        if top_k is None:
            raise ValueError("voting needs top_k")
        candidates = min(2 * top_k, f)
        b = q * c * candidates * w * frac
        return (
            network.all_to_all_broadcast(min(top_k, f) * 2 * w, p)
            + network.alltoallv(b, b, p)
            + election
        )
    raise ValueError(f"unknown exchange strategy {strategy!r}")


@dataclass(frozen=True)
class TreeShape:
    """Shape summary of a binary divide-and-conquer tree over n records:
    at level d there are ~2^d tasks totalling n records (n_l + n_r = n),
    down to tasks of ``leaf_records``."""

    n_records: int
    leaf_records: int
    record_nbytes: int = 8
    split_ratio: float = 0.5

    @property
    def levels(self) -> int:
        """Depth until tasks reach leaf size (balanced-tree estimate for
        ratio 0.5; governed by the heavier side otherwise)."""
        if self.n_records <= self.leaf_records:
            return 0
        shrink = 1.0 / max(self.split_ratio, 1.0 - self.split_ratio)
        return max(1, math.ceil(
            math.log(self.n_records / self.leaf_records) / math.log(shrink)
        ))

    def tasks_at(self, level: int) -> int:
        return min(2**level, max(self.n_records // self.leaf_records, 1))

    @property
    def total_tasks(self) -> int:
        return sum(self.tasks_at(d) for d in range(self.levels + 1))


@dataclass(frozen=True)
class DncCostModel:
    """Predicts strategy costs for one machine + problem shape.

    All estimates assume a memory budget small enough that whole levels
    never fit (the out-of-core regime the paper addresses); per-task
    in-core crossover is handled with the ``in_core_level`` helper.
    """

    network: NetworkModel
    disk: DiskModel
    compute: ComputeModel
    n_ranks: int
    summary_nbytes: int = 24
    ops_per_record: float = 1.0

    # -- building blocks -----------------------------------------------------
    def level_bytes(self, shape: TreeShape) -> float:
        """Bytes per rank per level (all tasks of a level together hold
        the whole data set, randomly spread across ranks)."""
        return shape.n_records * shape.record_nbytes / self.n_ranks

    def pass_time(self, nbytes: float) -> float:
        """One streaming pass over nbytes of local data (read)."""
        return self.disk.access(int(nbytes))

    def level_compute(self, shape: TreeShape) -> float:
        return self.compute.cost(
            self.ops_per_record * shape.n_records / self.n_ranks
        )

    def in_core_level(self, shape: TreeShape, memory_limit: int | None) -> int:
        """First level at which one task's per-rank fragment fits in
        memory (data parallelism stops re-reading there)."""
        if memory_limit is None:
            return 0
        b = self.level_bytes(shape)
        level = 0
        while b > memory_limit and level < shape.levels:
            b /= 2.0
            level += 1
        return level

    # -- strategies ------------------------------------------------------------
    def data_parallel(self, shape: TreeShape, memory_limit: int | None = None) -> float:
        """Per level: summary pass + partition pass (+write), one combine
        per task; tasks that fit memory drop the second read."""
        t = 0.0
        cross = self.in_core_level(shape, memory_limit)
        for d in range(shape.levels):
            nbytes = self.level_bytes(shape)
            reads = 1 if d >= cross else 2
            t += reads * self.pass_time(nbytes) + self.pass_time(nbytes)  # + write
            t += 2 * self.level_compute(shape)
            t += shape.tasks_at(d) * 2 * self.network.global_combine(
                self.summary_nbytes, self.n_ranks
            )
        return t

    def concatenated(self, shape: TreeShape, memory_limit: int | None = None) -> float:
        """Same I/O structure but the level shares memory (aggregate never
        fits: always two reads) and one spooled combine per level."""
        t = 0.0
        for d in range(shape.levels):
            nbytes = self.level_bytes(shape)
            agg_fits = memory_limit is None or nbytes <= memory_limit
            reads = 1 if agg_fits else 2
            t += reads * self.pass_time(nbytes) + self.pass_time(nbytes)
            t += 2 * self.level_compute(shape)
            t += 2 * self.network.global_combine(
                self.summary_nbytes * shape.tasks_at(d), self.n_ranks
            )
        return t

    def task_parallel_compute_dependent(self, shape: TreeShape) -> float:
        """Group halving with redistribution: every level moves the data
        once (read + alltoall + write) until groups reach size one, then
        sequential levels follow."""
        t = 0.0
        split_levels = min(shape.levels, max(1, int(math.log2(self.n_ranks))))
        for d in range(shape.levels):
            nbytes = self.level_bytes(shape)
            t += 2 * self.pass_time(nbytes) + self.pass_time(nbytes)
            t += 2 * self.level_compute(shape)
            if d < split_levels:
                group = max(self.n_ranks >> d, 2)
                # redistribution: read children + ship + write at dest
                t += 2 * self.pass_time(nbytes)
                t += self.network.alltoallv(nbytes, nbytes, group)
                t += 2 * self.network.global_combine(self.summary_nbytes, group)
            # after the groups reach size one there is no communication
        return t

    def task_parallel_compute_independent(self, shape: TreeShape) -> float:
        """No redistribution: the data stays put, so a subgroup of size g
        processing a task must fetch the fraction held outside the group
        ((p-g)/p of the task) over the network every pass — the paper's
        compute-independent parallel I/O."""
        t = 0.0
        for d in range(shape.levels):
            nbytes_rank = self.level_bytes(shape)
            group = max(self.n_ranks >> min(d, 30), 1)
            remote_frac = 1.0 - group / self.n_ranks
            # local passes (2 reads + write) at each of the serving ranks,
            # plus shipping the remote fraction to the computing subgroup
            t += 3 * self.pass_time(nbytes_rank)
            t += 2 * self.level_compute(shape)
            remote_bytes = nbytes_rank * remote_frac * 2  # both passes
            t += self.network.p2p(remote_bytes)
            if group > 1:
                t += 2 * self.network.global_combine(self.summary_nbytes, group)
        return t

    def mixed(
        self,
        shape: TreeShape,
        switch_records: int,
        memory_limit: int | None = None,
    ) -> float:
        """Data parallelism down to ``switch_records``, then one
        redistribution plus balanced sequential building of the rest."""
        if switch_records >= shape.n_records:
            switch_level = 0
        else:
            switch_level = min(
                shape.levels,
                max(0, math.ceil(math.log2(shape.n_records / switch_records))),
            )
        upper = TreeShape(
            n_records=shape.n_records,
            leaf_records=max(switch_records, shape.leaf_records),
            record_nbytes=shape.record_nbytes,
            split_ratio=shape.split_ratio,
        )
        t = self.data_parallel(upper, memory_limit)
        # one batched exchange of everything below the switch
        nbytes = self.level_bytes(shape)
        t += 2 * self.pass_time(nbytes) + self.network.alltoallv(
            nbytes, nbytes, self.n_ranks
        )
        # remaining levels built sequentially but task-balanced across ranks
        remaining = max(shape.levels - switch_level, 0)
        per_level = self.pass_time(nbytes) + self.level_compute(shape)
        t += remaining * per_level
        return t


# -- forest regimes ------------------------------------------------------------


def forest_regime_cost(
    model: DncCostModel,
    shape: TreeShape,
    *,
    n_trees: int,
    n_groups: int,
    memory_limit: int | None = None,
    pool_bytes: int | None = None,
    copy_ratio: float = 50.0,
    stats_nbytes: int | None = None,
) -> float:
    """Predicted elapsed time of training ``n_trees`` bagged trees over
    one p-rank machine with ``n_groups`` disjoint rank groups building
    trees concurrently (the Section-3 trade-off replayed one level up).

    * ``n_groups == 1`` is **data parallelism**: all p ranks per tree,
      trees sequential. Each tree pays the per-level statistics exchange
      over the full machine — ``stats_nbytes`` should be the *actual*
      per-node payload (attributes x intervals x classes), which is what
      dominates and what grouping eliminates.
    * ``n_groups == G > 1`` is **tree/hybrid parallelism**: trees run
      ``G`` at a time on groups of ``p/G`` ranks. Fewer ranks per
      collective makes communication cheaper (none at all for gp=1), but
      each group rank holds a ``G×`` larger share of its tree's bag, so
      the fit streams more. Bags must also be redistributed onto their
      owner group (one alltoallv per tree).

    ``pool_bytes`` is credited on both sides: bag-derivation rescans of a
    pool-resident base fragment become memory copies, and fit levels
    whose fragments fit the pool drop their second read (the pool serves
    the re-read, so for read counting it acts as extra memory).

    The returned figure is a Table-1-style analytic estimate for regime
    *ranking*, not a forecast of the simulator's exact elapsed time.
    """
    p = model.n_ranks
    if n_groups < 1 or p % n_groups != 0:
        raise ValueError(f"n_groups={n_groups} must divide n_ranks={p}")
    if n_trees < 1:
        raise ValueError(f"need at least one tree, got {n_trees}")
    gp = p // n_groups
    waves = math.ceil(n_trees / n_groups)
    base_rank_bytes = shape.n_records * shape.record_nbytes / p

    # bag derivation: every tree scans the base spool once; with a pool
    # large enough to keep the base fragment resident, scans after the
    # first within a wave window are served as memory copies
    scan = model.pass_time(base_rank_bytes)
    copy = base_rank_bytes / (copy_ratio * model.disk.bandwidth)
    pooled = pool_bytes is not None and base_rank_bytes <= pool_bytes
    derive = scan + (n_trees - 1) * (copy if pooled else scan)
    # writing each bag fragment back to local disk (bag size == n)
    derive += n_trees * model.pass_time(base_rank_bytes)
    if n_groups > 1:
        # ship each bag onto its owner group's ranks
        derive += n_trees * model.network.alltoallv(
            base_rank_bytes, base_rank_bytes * n_groups, p
        )

    # fitting: each wave runs G concurrent data-parallel fits over gp
    # ranks; per-group-rank fragments are G× larger than the base share
    group_model = DncCostModel(
        network=model.network,
        disk=model.disk,
        compute=model.compute,
        n_ranks=gp,
        summary_nbytes=(
            model.summary_nbytes if stats_nbytes is None else stats_nbytes
        ),
        ops_per_record=model.ops_per_record,
    )
    # the pool serves re-reads of resident fragments, so it counts as
    # memory for the purpose of dropping a level's second read
    fit_limit = max(memory_limit or 0, pool_bytes or 0) or None
    fit = waves * group_model.data_parallel(shape, fit_limit)
    return derive + fit


def choose_forest_regime(
    model: DncCostModel,
    shape: TreeShape,
    *,
    n_trees: int,
    memory_limit: int | None = None,
    pool_bytes: int | None = None,
    copy_ratio: float = 50.0,
    stats_nbytes: int | None = None,
) -> tuple[int, dict[int, float]]:
    """Pick the cheapest group count for a forest: evaluates
    :func:`forest_regime_cost` at every divisor of p up to
    ``min(n_trees, p)`` and returns ``(best_n_groups, {G: cost})``.
    Ties go to the smaller G (less redistribution machinery)."""
    p = model.n_ranks
    candidates = [g for g in range(1, min(n_trees, p) + 1) if p % g == 0]
    costs = {
        g: forest_regime_cost(
            model, shape, n_trees=n_trees, n_groups=g,
            memory_limit=memory_limit, pool_bytes=pool_bytes,
            copy_ratio=copy_ratio, stats_nbytes=stats_nbytes,
        )
        for g in candidates
    }
    best = min(costs, key=lambda g: (costs[g], g))
    return best, costs
