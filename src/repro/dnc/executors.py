"""The parallelisation techniques of Section 3, as executable strategies.

Every executor builds the same divide-and-conquer tree for a given
problem + payload; they differ in *who* processes each task and *when*
data moves:

* :class:`DataParallelExecutor` — every task processed by all processors
  in sequence; no disk-resident data ever moves (Section 3.2).
* :class:`ConcatenatedExecutor` — all tasks of a tree level processed
  together: communication spooled into one combine per level (saving
  message startups), but the level shares the memory budget, so tasks
  that would fit in core alone are forced out of core (Section 3.3).
* :class:`TaskParallelExecutor` — processor subgroups own subtrees;
  subtask data is redistributed to its subgroup when assigned
  (compute-dependent parallel I/O: read at sources, ship, write at the
  destination — Section 3.1). Idle processors are not regrouped.
* :class:`MixedExecutor` — data parallelism above a task-size threshold,
  delayed single-processor task parallelism below it (Section 3.5 — the
  shape pCLOUDS uses).

Task accounting: a task is *counted* by exactly one rank (rank 0 of the
group that processed it); totals are summed across ranks at the end, so
every executor reports identical, exact tree statistics.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.cluster.comm import Comm
from repro.cluster.machine import RankContext
from repro.ooc.file import OocArray

from .problem import DncProblem

__all__ = [
    "TaskOutcome",
    "DataParallelExecutor",
    "ConcatenatedExecutor",
    "TaskParallelExecutor",
    "MixedExecutor",
]

_PAYLOAD_DTYPE = np.float64


@dataclass
class _Task:
    task_id: int
    depth: int
    n_global: int
    file: OocArray


@dataclass
class TaskOutcome:
    """Tree statistics of one executor run (identical on every rank after
    the final reconciliation)."""

    n_tasks: int = 0
    n_leaves: int = 0
    max_depth: int = 0

    def leaf(self, depth: int, count: bool = True) -> None:
        if count:
            self.n_tasks += 1
            self.n_leaves += 1
            self.max_depth = max(self.max_depth, depth)

    def internal(self, depth: int, count: bool = True) -> None:
        if count:
            self.n_tasks += 1
            self.max_depth = max(self.max_depth, depth)


def _reconcile(comm: Comm, outcome: TaskOutcome) -> TaskOutcome:
    """Sum the disjoint per-rank counts into the global tree statistics."""
    gathered = comm.allgather((outcome.n_tasks, outcome.n_leaves, outcome.max_depth))
    outcome.n_tasks = sum(g[0] for g in gathered)
    outcome.n_leaves = sum(g[1] for g in gathered)
    outcome.max_depth = max(g[2] for g in gathered)
    return outcome


# -- shared helpers -----------------------------------------------------------


def _read_for_summary(ctx: RankContext, problem: DncProblem, f: OocArray, in_core: bool):
    """Return (summary, data-or-None); in-core mode keeps the records."""
    if in_core:
        data = f.read_all()
        ctx.charge_compute(ops=problem.work_ops(len(data)))
        return problem.summarize(data), data
    summary = None
    for chunk in f.iter_chunks():
        ctx.charge_compute(ops=problem.work_ops(len(chunk)))
        s = problem.summarize(chunk)
        summary = s if summary is None else problem.combine(summary, s)
    if summary is None:
        summary = problem.summarize(np.empty(0, dtype=_PAYLOAD_DTYPE))
    return summary, None


def _partition_local(
    ctx: RankContext,
    problem: DncProblem,
    f: OocArray,
    splitter: float,
    data: np.ndarray | None,
    name: str,
) -> tuple[OocArray, OocArray, int]:
    """Write both children on the local disk; returns (left, right,
    local left count). Re-reads from disk unless ``data`` is resident."""
    left = OocArray(ctx.disk, _PAYLOAD_DTYPE, name=f"{name}/L")
    right = OocArray(ctx.disk, _PAYLOAD_DTYPE, name=f"{name}/R")
    n_left = 0
    chunks = [data] if data is not None else f.iter_chunks()
    for chunk in chunks:
        if chunk is None or len(chunk) == 0:
            continue
        mask = problem.goes_left(chunk, splitter)
        ctx.charge_compute(ops=problem.work_ops(len(chunk)))
        left.append(chunk[mask])
        right.append(chunk[~mask])
        n_left += int(mask.sum())
    return left, right, n_left


def _solve_sequential(
    ctx: RankContext,
    problem: DncProblem,
    task: _Task,
    outcome: TaskOutcome,
    count: bool = True,
) -> None:
    """Solve a whole subtree on this rank alone (no communication)."""
    stack = [task]
    while stack:
        t = stack.pop()
        if problem.is_leaf(t.n_global, t.depth):
            outcome.leaf(t.depth, count)
            t.file.delete()
            continue
        in_core = ctx.memory.fits(t.file.nbytes)
        summary, data = _read_for_summary(ctx, problem, t.file, in_core)
        splitter = problem.splitter_from_summary(summary, t.depth)
        left, right, n_left = _partition_local(
            ctx, problem, t.file, splitter, data, name=t.file.name
        )
        t.file.delete()
        if n_left == 0 or n_left == t.n_global:
            # degenerate splitter: the task ends as a leaf
            outcome.leaf(t.depth, count)
            left.delete()
            right.delete()
            continue
        outcome.internal(t.depth, count)
        stack.append(_Task(2 * t.task_id + 2, t.depth + 1, t.n_global - n_left, right))
        stack.append(_Task(2 * t.task_id + 1, t.depth + 1, n_left, left))


def _process_one_data_parallel(
    ctx: RankContext,
    comm: Comm,
    problem: DncProblem,
    t: _Task,
) -> tuple[_Task | None, _Task | None, int]:
    """All group members process one task; returns the child tasks (None
    for degenerate splits) and the global left count."""
    in_core = ctx.memory.fits(t.file.nbytes)
    summary, data = _read_for_summary(ctx, problem, t.file, in_core)
    global_summary = comm.allreduce(summary, op=problem.combine)
    splitter = problem.splitter_from_summary(global_summary, t.depth)
    left, right, n_left_local = _partition_local(
        ctx, problem, t.file, splitter, data, name=t.file.name
    )
    t.file.delete()
    n_left = int(comm.allreduce(n_left_local))
    if n_left == 0 or n_left == t.n_global:
        left.delete()
        right.delete()
        return None, None, n_left
    return (
        _Task(2 * t.task_id + 1, t.depth + 1, n_left, left),
        _Task(2 * t.task_id + 2, t.depth + 1, t.n_global - n_left, right),
        n_left,
    )


# -- data parallelism ----------------------------------------------------------


class DataParallelExecutor:
    """Tasks one after another, all processors on each (Section 3.2)."""

    name = "data"

    def run(self, ctx: RankContext, problem: DncProblem, root: OocArray) -> TaskOutcome:
        outcome = TaskOutcome()
        comm = ctx.comm
        count = comm.rank == 0
        n_root = int(comm.allreduce(len(root)))
        queue: deque[_Task] = deque([_Task(0, 0, n_root, root)])
        while queue:
            t = queue.popleft()
            if problem.is_leaf(t.n_global, t.depth):
                outcome.leaf(t.depth, count)
                t.file.delete()
                continue
            lt, rt, n_left = _process_one_data_parallel(ctx, comm, problem, t)
            if lt is None:
                outcome.leaf(t.depth, count)  # degenerate split: a leaf
                continue
            outcome.internal(t.depth, count)
            queue.append(lt)
            queue.append(rt)
        return _reconcile(comm, outcome)


# -- concatenated parallelism ---------------------------------------------------


class ConcatenatedExecutor:
    """All tasks of a level together: one spooled combine per level, but
    the level shares the memory budget (Section 3.3)."""

    name = "concatenated"

    def run(self, ctx: RankContext, problem: DncProblem, root: OocArray) -> TaskOutcome:
        outcome = TaskOutcome()
        comm = ctx.comm
        count = comm.rank == 0
        n_root = int(comm.allreduce(len(root)))
        level: list[_Task] = [_Task(0, 0, n_root, root)]
        while level:
            active: list[_Task] = []
            for t in level:
                if problem.is_leaf(t.n_global, t.depth):
                    outcome.leaf(t.depth, count)
                    t.file.delete()
                else:
                    active.append(t)
            if not active:
                break
            # the whole level shares main memory: in-core only if the
            # aggregate of the concatenated tasks fits
            level_bytes = sum(t.file.nbytes for t in active)
            in_core = ctx.memory.fits(level_bytes)
            summaries, resident = [], []
            for t in active:
                s, data = _read_for_summary(ctx, problem, t.file, in_core)
                summaries.append(s)
                resident.append(data)
            # communication for the whole level spooled into ONE combine
            global_summaries = comm.allreduce(
                summaries,
                op=lambda a, b: [problem.combine(x, y) for x, y in zip(a, b)],
            )
            left_counts_local = []
            children: list[tuple[_Task, OocArray, OocArray]] = []
            for t, gs, data in zip(active, global_summaries, resident):
                splitter = problem.splitter_from_summary(gs, t.depth)
                left, right, n_left_local = _partition_local(
                    ctx, problem, t.file, splitter, data, name=t.file.name
                )
                t.file.delete()
                left_counts_local.append(n_left_local)
                children.append((t, left, right))
            left_counts = comm.allreduce(
                np.asarray(left_counts_local, dtype=np.int64)
            )
            next_level: list[_Task] = []
            for (t, left, right), n_left in zip(children, np.atleast_1d(left_counts)):
                n_left = int(n_left)
                if n_left == 0 or n_left == t.n_global:
                    outcome.leaf(t.depth, count)  # degenerate split: a leaf
                    left.delete()
                    right.delete()
                    continue
                outcome.internal(t.depth, count)
                next_level.append(_Task(2 * t.task_id + 1, t.depth + 1, n_left, left))
                next_level.append(
                    _Task(2 * t.task_id + 2, t.depth + 1, t.n_global - n_left, right)
                )
            level = next_level
        return _reconcile(comm, outcome)


# -- task parallelism -----------------------------------------------------------


class TaskParallelExecutor:
    """Processor subgroups own subtrees; subtask data moves to its
    subgroup when assigned (compute-dependent parallel I/O, Section 3.1)."""

    name = "task"

    def run(self, ctx: RankContext, problem: DncProblem, root: OocArray) -> TaskOutcome:
        outcome = TaskOutcome()
        n_root = int(ctx.comm.allreduce(len(root)))
        self._solve(ctx, ctx.comm, problem, _Task(0, 0, n_root, root), outcome)
        return _reconcile(ctx.comm, outcome)

    def _solve(
        self,
        ctx: RankContext,
        comm: Comm,
        problem: DncProblem,
        task: _Task,
        outcome: TaskOutcome,
    ) -> None:
        if comm.size == 1:
            _solve_sequential(ctx, problem, task, outcome)
            return
        count = comm.rank == 0
        if problem.is_leaf(task.n_global, task.depth):
            outcome.leaf(task.depth, count)
            task.file.delete()
            return
        lt, rt, n_left = _process_one_data_parallel(ctx, comm, problem, task)
        if lt is None:
            outcome.leaf(task.depth, count)  # degenerate split: a leaf
            return
        outcome.internal(task.depth, count)
        # split the group proportionally to subtask cost (at least 1 each)
        g_left = min(
            max(1, round(comm.size * lt.n_global / task.n_global)), comm.size - 1
        )
        my_side = 0 if comm.rank < g_left else 1
        # redistribute: each child's fragments move to its subgroup
        # (read at the source, ship, write at the destination)
        parts: list[np.ndarray | None] = [None] * comm.size
        for child, g_lo, g_n in ((lt, 0, g_left), (rt, g_left, comm.size - g_left)):
            payload = child.file.read_all()
            child.file.delete()
            bounds = np.linspace(0, len(payload), g_n + 1).astype(np.int64)
            for i in range(g_n):
                parts[g_lo + i] = payload[bounds[i] : bounds[i + 1]]
        incoming = comm.alltoall(parts)
        mine = OocArray(
            ctx.disk, _PAYLOAD_DTYPE, name=f"{task.file.name}/tp{task.depth}"
        )
        for piece in incoming:
            if piece is not None and len(piece):
                mine.append(piece)
        sub = comm.split(my_side)
        my_task = lt if my_side == 0 else rt
        self._solve(
            ctx,
            sub,
            problem,
            _Task(my_task.task_id, my_task.depth, my_task.n_global, mine),
            outcome,
        )


# -- mixed parallelism ------------------------------------------------------------


class MixedExecutor:
    """Data parallelism for large tasks, delayed single-processor task
    parallelism for small ones (Section 3.5)."""

    name = "mixed"

    def __init__(self, switch_records: int | None = None) -> None:
        self.switch_records = switch_records

    def run(self, ctx: RankContext, problem: DncProblem, root: OocArray) -> TaskOutcome:
        outcome = TaskOutcome()
        comm = ctx.comm
        count = comm.rank == 0
        n_root = int(comm.allreduce(len(root)))
        switch = self.switch_records or max(1, n_root // (8 * comm.size))
        queue: deque[_Task] = deque([_Task(0, 0, n_root, root)])
        small: list[_Task] = []
        while queue:
            t = queue.popleft()
            if problem.is_leaf(t.n_global, t.depth):
                outcome.leaf(t.depth, count)
                t.file.delete()
                continue
            if t.n_global <= switch:
                small.append(t)
                continue
            lt, rt, n_left = _process_one_data_parallel(ctx, comm, problem, t)
            if lt is None:
                outcome.leaf(t.depth, count)  # degenerate split: a leaf
                continue
            outcome.internal(t.depth, count)
            queue.append(lt)
            queue.append(rt)

        # delayed task parallelism: LPT assignment, one batched exchange
        small.sort(key=lambda t: t.task_id)
        loads = [0.0] * comm.size
        owner_of: dict[int, int] = {}
        for k in sorted(range(len(small)), key=lambda k: (-small[k].n_global, k)):
            r = min(range(comm.size), key=lambda i: (loads[i], i))
            loads[r] += small[k].n_global
            owner_of[k] = r
        parts: list[dict[int, np.ndarray]] = [dict() for _ in range(comm.size)]
        for k, t in enumerate(small):
            dest = owner_of[k]
            if dest != comm.rank:
                if len(t.file):
                    parts[dest][k] = t.file.read_all()
                t.file.delete()
        incoming = comm.alltoall(parts)
        for k, t in enumerate(small):
            if owner_of[k] != comm.rank:
                continue
            for src in incoming:
                if k in src and len(src[k]):
                    t.file.append(src[k])  # destination write of the I/O
            _solve_sequential(ctx, problem, t, outcome, count=True)
        return _reconcile(comm, outcome)
