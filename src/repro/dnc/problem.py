"""Generic divide-and-conquer problems (Section 3's problem statement).

A problem instance is a payload of records; each internal task derives a
*splitter* from a small additive summary of its data and routes every
record to one of two subtasks. The additive-summary restriction is what
makes every parallelisation technique in Section 3 applicable: local
summaries combine with one global reduction regardless of how the records
are laid out across processors.

:class:`SyntheticDnc` is the workload generator for the strategy
benchmarks: splitter = an approximate quantile (so the left/right ratio —
the *shape* of the divide-and-conquer tree — is a parameter), work cost
linear in the task size as in classification-tree construction.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any

import numpy as np

__all__ = ["DncProblem", "SyntheticDnc", "synthetic_payload"]


class DncProblem(ABC):
    """A binary divide-and-conquer problem over 1-D float payloads."""

    @abstractmethod
    def summarize(self, data: np.ndarray) -> Any:
        """Small local summary of a fragment (combinable)."""

    @abstractmethod
    def combine(self, a: Any, b: Any) -> Any:
        """Merge two summaries (associative, commutative)."""

    @abstractmethod
    def splitter_from_summary(self, summary: Any, depth: int) -> float:
        """Derive the task's splitter from the global summary."""

    def goes_left(self, data: np.ndarray, splitter: float) -> np.ndarray:
        """Route records (default: value <= splitter)."""
        return data <= splitter

    @abstractmethod
    def is_leaf(self, n_global: int, depth: int) -> bool:
        """Stopping criterion, a function of global task size and depth."""

    def work_ops(self, n_local: int) -> float:
        """Abstract CPU operations charged per pass over ``n_local``
        records (default: one op per record)."""
        return float(n_local)

    def summary_nbytes(self) -> int:
        """Wire size of one summary (for communication accounting)."""
        return 64


@dataclass(frozen=True)
class SyntheticDnc(DncProblem):
    """Range-splitting workload with controllable tree shape.

    The summary is ``(count, min, max)``; the splitter cuts each task's
    value range at ``split_ratio`` (0.5 gives a balanced tree — uniform
    payloads split evenly at every depth; 0.9 a skewed 'list-like' tree).
    ``leaf_records`` — tasks at or below this size are leaves;
    ``work_per_record`` — CPU ops per record per pass.
    """

    leaf_records: int = 256
    split_ratio: float = 0.5
    work_per_record: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 < self.split_ratio < 1.0:
            raise ValueError(f"split_ratio must be in (0,1), got {self.split_ratio}")
        if self.leaf_records < 1:
            raise ValueError("leaf_records must be positive")

    def summarize(self, data: np.ndarray) -> tuple[int, float, float]:
        if len(data) == 0:
            return (0, np.inf, -np.inf)
        return (int(len(data)), float(data.min()), float(data.max()))

    def combine(self, a, b):
        return (a[0] + b[0], min(a[1], b[1]), max(a[2], b[2]))

    def splitter_from_summary(self, summary, depth: int) -> float:
        n, lo, hi = summary
        if n == 0 or not np.isfinite(lo):
            return 0.0
        return lo + (hi - lo) * self.split_ratio

    def is_leaf(self, n_global: int, depth: int) -> bool:
        return n_global <= self.leaf_records

    def work_ops(self, n_local: int) -> float:
        return self.work_per_record * n_local

    def summary_nbytes(self) -> int:
        return 24


def synthetic_payload(n: int, seed: int = 0) -> np.ndarray:
    """Uniform payload in [0, 1) for :class:`SyntheticDnc`."""
    return np.random.default_rng(seed).random(n)
