"""repro — reproduction of *Parallel Out-of-Core Divide-and-Conquer
Techniques with Application to Classification Trees* (IPPS 1999).

Public API tour
---------------
* :mod:`repro.cluster` — the simulated shared-nothing machine (MPI-like
  communicator with Table-1 cost models, per-rank disks and clocks).
* :mod:`repro.ooc` — out-of-core column files and the memory budget.
* :mod:`repro.data` — the Quest synthetic generator and record
  distribution.
* :mod:`repro.clouds` — sequential CLOUDS (SS/SSE), the direct method,
  MDL pruning and the SPRINT baseline.
* :mod:`repro.dnc` — the generic parallel out-of-core divide-and-conquer
  strategies of Section 3.
* :mod:`repro.core` — pCLOUDS itself.

Quickstart::

    from repro import Cluster, DistributedDataset, PClouds, PCloudsConfig
    from repro.data import generate_quest, quest_schema

    cols, labels = generate_quest(50_000, function=2, seed=0)
    cluster = Cluster(8, memory_limit=1 << 20, seed=0)
    data = DistributedDataset.create(cluster, quest_schema(), cols, labels)
    result = PClouds(PCloudsConfig()).fit(data)
    print(result.elapsed, result.tree.n_leaves)
"""

from repro.cluster import Cluster, ComputeModel, DiskModel, NetworkModel
from repro.clouds import (
    CloudsBuilder,
    CloudsConfig,
    DecisionTree,
    SprintBuilder,
    StoppingRule,
)
from repro.core import DistributedDataset, PClouds, PCloudsConfig, PCloudsResult

__version__ = "1.0.0"

__all__ = [
    "Cluster",
    "CloudsBuilder",
    "CloudsConfig",
    "ComputeModel",
    "DecisionTree",
    "DiskModel",
    "DistributedDataset",
    "NetworkModel",
    "PClouds",
    "PCloudsConfig",
    "PCloudsResult",
    "SprintBuilder",
    "StoppingRule",
    "__version__",
]
