"""pCLOUDS: the parallel out-of-core decision-tree classifier
(Section 5 of the paper).

The tree is built with **mixed parallelism**:

* **Large nodes** (interval count above the switch threshold) are
  processed with *data parallelism*: every processor keeps its random
  share of the node's records on its own disk, builds local interval
  statistics in one pass, the statistics are combined with the replicated
  attribute-based exchange, alive intervals are evaluated with the
  single-assignment approach, and each processor partitions its local
  share — the I/O stays local and uniform, so load balance is near
  perfect (Lemma 2).
* **Small nodes** are deferred until every large node is done, then
  handled with *delayed task parallelism*: cost-based assignment of whole
  nodes to processors, one batched redistribution, local in-memory exact
  builds.

Every rank executes the same driver loop over the same (globally known)
node metadata, so the SPMD control flow never diverges; only the local
fragments differ.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cluster.errors import SpmdProgramError
from repro.cluster.machine import Cluster, RankContext, SpmdRun
from repro.clouds.builder import node_boundaries
from repro.clouds.gini import gini_from_counts
from repro.clouds.intervals import class_counts, scale_q
from repro.clouds.splits import Split
from repro.clouds.tree import DecisionTree, TreeNode, decode_node
from repro.data.schema import Schema
from repro.ooc.columnset import ColumnSet

from .access import open_node
from .alive import evaluate_alive_level, evaluate_alive_parallel
from .checkpoint import CheckpointStore
from .config import PCloudsConfig
from .dataset import DistributedDataset
from .small_tasks import SmallTask, process_small_tasks
from .stats_exchange import exchange_level_stats, exchange_node_stats
from .switching import auto_q_switch

__all__ = ["PClouds", "PCloudsResult", "apportion_sample", "fit_tree_program"]


@dataclass
class _LargeTask:
    node_id: int
    depth: int
    columnset: ColumnSet
    sample_cols: dict[str, np.ndarray]
    sample_labels: np.ndarray
    counts: np.ndarray  # global class counts (identical on every rank)


@dataclass
class PCloudsResult:
    """Outcome of one parallel fit."""

    tree: DecisionTree
    elapsed: float  # simulated seconds (max over ranks)
    run: SpmdRun
    n_large_nodes: int
    n_small_tasks: int
    survival_ratios: list[float] = field(default_factory=list)
    #: per-rank event streams when the fit ran with ``trace=True``
    tracers: list | None = None
    #: failed attempts replayed from checkpoints (``fit(recover=True)``)
    n_restarts: int = 0
    #: faults fired by the injector, in firing order (``fit(faults=...)``)
    fault_events: list = field(default_factory=list)
    #: merged metrics registry when the fit ran with ``metrics=True``
    metrics: object | None = None
    #: online health roll-up (imbalance / I/O amplification / cost drift)
    health: object | None = None

    def metrics_snapshot(self) -> dict:
        """JSON-ready merged metrics (requires ``fit(..., metrics=True)``);
        includes the health roll-up under ``"health"``."""
        if self.metrics is None:
            raise ValueError("fit was not metered; pass metrics=True to fit()")
        snap = self.metrics.snapshot()
        if self.health is not None:
            snap["health"] = self.health.to_dict()
        return snap

    def prometheus(self) -> str:
        """Prometheus text exposition of the merged metrics."""
        if self.metrics is None:
            raise ValueError("fit was not metered; pass metrics=True to fit()")
        from repro.obs.prometheus import to_prometheus

        return to_prometheus(self.metrics)

    def health_markdown(self) -> str:
        """The ``repro health`` markdown report for this fit."""
        if self.health is None:
            raise ValueError("fit was not metered; pass metrics=True to fit()")
        from repro.obs.report import render_health_markdown

        return render_health_markdown(self.health)

    def trace_report(self):
        """Roll-up of the traced run (requires ``fit(..., trace=True)``)."""
        if self.tracers is None:
            raise ValueError("fit was not traced; pass trace=True to fit()")
        from repro.cluster.tracereport import TraceReport

        return TraceReport.from_tracers(self.tracers)

    def phase_time(self, phase: str) -> float:
        """Max-over-ranks simulated time attributed to one phase."""
        return max((pt.get(phase, 0.0) for pt in self.run.phase_times), default=0.0)

    @property
    def phases(self) -> dict[str, float]:
        keys = {k for pt in self.run.phase_times for k in pt}
        return {k: self.phase_time(k) for k in sorted(keys)}


class PClouds:
    """Parallel CLOUDS classifier over a simulated shared-nothing machine."""

    def __init__(self, config: PCloudsConfig | None = None) -> None:
        self.config = config or PCloudsConfig()

    def fit(
        self,
        dataset: DistributedDataset,
        seed: int = 0,
        *,
        trace: bool = False,
        faults=None,
        recover: bool = False,
        max_restarts: int = 8,
        metrics: bool = False,
        health=None,
    ) -> PCloudsResult:
        """Build the decision tree for a distributed training set.

        Consumes the dataset's disk fragments (children overwrite parents
        exactly as on the real machine); create a fresh
        :class:`DistributedDataset` to fit again.

        ``trace=True`` runs the fit under per-rank event tracing
        (collectives, point-to-point, disk accesses, phases); the event
        streams land on :attr:`PCloudsResult.tracers` and roll up via
        :meth:`PCloudsResult.trace_report`.

        ``faults`` arms deterministic fault injection: a
        :class:`~repro.cluster.faults.FaultPlan` (or pre-built
        :class:`~repro.cluster.faults.FaultInjector`) whose crashes,
        transient disk errors, chunk corruptions and stragglers replay
        identically for a given ``(plan, seed)``. Fired faults land on
        :attr:`PCloudsResult.fault_events` and — when also tracing — in
        the trace as ``fault`` events.

        ``recover=True`` checkpoints the build state to rank-0's disk at
        every frontier level and, when an attempt dies with
        :class:`~repro.cluster.errors.SpmdProgramError`, restarts from
        the latest readable checkpoint (up to ``max_restarts`` times).
        The recovered tree is bit-identical to the fault-free tree; the
        reported ``elapsed`` includes the simulated time lost to the
        failed attempts and to checkpoint traffic.

        ``metrics=True`` runs the fit under the live metrics registry and
        online health monitor (:mod:`repro.obs`): collective/disk/phase
        counters land on :attr:`PCloudsResult.metrics`, the per-level
        imbalance / I/O-amplification / cost-drift indicators on
        :attr:`PCloudsResult.health`. ``health`` overrides the alert
        thresholds (a :class:`~repro.obs.health.HealthThresholds`).
        Metering never advances a simulated clock, so the tree and the
        elapsed time are bit-identical to an unmetered fit.
        """
        tracers = None
        if trace:
            from repro.cluster.trace import attach_tracers

            tracers = attach_tracers(dataset.contexts)
        injector = None
        if faults is not None:
            from repro.cluster.faults import FaultInjector

            injector = (
                faults
                if isinstance(faults, FaultInjector)
                else FaultInjector(faults, seed=seed)
            )
            injector.attach(dataset.contexts)
        registry = None
        recorders: list | None = None
        monitor = None
        if metrics:
            # attached last so the metered wrapper is outermost: its
            # deltas then include tracer/injector effects underneath
            from repro.obs.health import HealthMonitor
            from repro.obs.instrument import attach_metrics

            monitor = HealthMonitor(
                dataset.n_ranks, dataset.cluster.network, thresholds=health
            )
            registry, recorders = attach_metrics(
                dataset.contexts, monitor=monitor
            )
        store = CheckpointStore() if recover else None
        failed_time = 0.0
        restarts = 0
        while True:
            if injector is not None:
                injector.begin_attempt()
            for c in dataset.contexts:
                c.notify("begin_attempt", restarts)
            try:
                run = dataset.cluster.run(
                    _fit_program,
                    dataset.columnsets,
                    dataset.schema,
                    self.config,
                    dataset.n_total,
                    seed,
                    store,
                    restarts > 0,
                    contexts=dataset.contexts,
                    reset_clocks=True,
                )
                break
            except SpmdProgramError:
                # time already burned by the dead attempt counts
                failed_time += max(c.clock.now for c in dataset.contexts)
                restarts += 1
                if not recover or restarts > max_restarts:
                    raise
        payload = run.results[0]
        tree = DecisionTree(
            root=payload["root"],
            schema=dataset.schema,
            meta={"builder": "pclouds", "n_ranks": dataset.n_ranks},
        )
        health_report = None
        if recorders is not None:
            for rec in recorders:
                rec.finalize()
            registry.shard(0).set(
                "repro_run_elapsed_seconds", (), run.elapsed + failed_time
            )
            from repro.obs.health import HealthReport

            health_report = HealthReport.from_monitor(
                monitor,
                meta={
                    "n_ranks": dataset.n_ranks,
                    "seed": seed,
                    "exchange": self.config.exchange,
                    "frontier_batching": self.config.frontier_batching,
                    "q_switch": self.config.q_switch,
                    "restarts": restarts,
                    "elapsed_s": run.elapsed + failed_time,
                },
            )
        return PCloudsResult(
            tree=tree,
            elapsed=run.elapsed + failed_time,
            run=run,
            n_large_nodes=payload["n_large"],
            n_small_tasks=payload["n_small"],
            survival_ratios=payload["survival"],
            tracers=tracers,
            n_restarts=restarts,
            fault_events=list(injector.events) if injector is not None else [],
            metrics=registry,
            health=health_report,
        )


# -- the SPMD program -------------------------------------------------------


def apportion_sample(sample_size: int, counts: list[int]) -> list[int]:
    """Largest-remainder apportionment of the global sample over ranks.

    Returns per-rank draw sizes proportional to the ranks' local row
    counts with ``sum(out) == min(sample_size, sum(counts))`` exactly and
    ``out[r] <= counts[r]`` everywhere. Independent per-rank rounding
    (the old ``int(round(...))``) drifted from the requested sample size
    by up to p/2 records. Ties go to the lowest rank, so every rank
    computes the identical apportionment from the allgathered counts.
    """
    total = sum(counts)
    if total <= 0:
        return [0] * len(counts)
    want = min(int(sample_size), total)
    quotas = [want * c / total for c in counts]
    out = [min(int(q), c) for q, c in zip(quotas, counts)]
    deficit = want - sum(out)
    if deficit > 0:
        # one descending argsort over the fractional remainders replaces
        # the O(p²) repeated-max top-up: no rank is ever topped up twice
        # (remainders are < 1), and the stable sort on the negated
        # remainders keeps ties going to the lowest rank
        remainders = np.array(quotas) - np.array(out, dtype=np.float64)
        for r in np.argsort(-remainders, kind="stable"):
            if deficit == 0:
                break
            r = int(r)
            if out[r] < counts[r]:
                out[r] += 1
                deficit -= 1
    return out


def _root_preprocess(
    ctx: RankContext,
    cs: ColumnSet,
    schema: Schema,
    sample_size: int,
    n_total: int,
    seed: int,
) -> tuple[dict[str, np.ndarray], np.ndarray, np.ndarray]:
    """Preprocessing (Section 5, step 1): draw the random sample and count
    classes in one local pass, then replicate the sample everywhere.

    The replicated sample is partitioned alongside the data at every
    split, so interval boundaries are later derived without communication.
    """
    rng = np.random.default_rng(np.random.SeedSequence([seed, 17, ctx.rank]))
    local_rows = ctx.comm.allgather(int(cs.nrows))
    want_local = apportion_sample(sample_size, local_rows)[ctx.rank]
    n = cs.nrows
    pick = (
        np.sort(rng.choice(n, size=min(want_local, n), replace=False))
        if n
        else np.empty(0, dtype=np.int64)
    )
    counts = np.zeros(schema.n_classes, dtype=np.int64)
    got_cols: dict[str, list] = {a.name: [] for a in schema}
    got_labels: list[np.ndarray] = []
    base = 0
    for batch, labels in cs.iter_batches():
        counts += class_counts(labels, schema.n_classes)
        local = pick[(pick >= base) & (pick < base + len(labels))] - base
        if len(local):
            for name in got_cols:
                got_cols[name].append(batch[name][local])
            got_labels.append(labels[local])
        base += len(labels)
        ctx.charge_compute(ops=len(labels))
    local_sample_cols = {
        name: (
            np.concatenate(chunks)
            if chunks
            else np.empty(0, dtype=schema.attribute(name).dtype)
        )
        for name, chunks in got_cols.items()
    }
    local_sample_labels = (
        np.concatenate(got_labels) if got_labels else np.empty(0, dtype=np.int64)
    )

    total = ctx.comm.allreduce(counts)
    gathered = ctx.comm.allgather((local_sample_cols, local_sample_labels))
    sample_cols = {
        name: np.concatenate([g[0][name] for g in gathered]) for name in got_cols
    }
    sample_labels = np.concatenate([g[1] for g in gathered])
    return sample_cols, sample_labels, total


#: chunk granularity for fragments rebuilt from a checkpoint (only the
#: disk-access pattern depends on it — never the tree)
_RESTORE_BATCH_ROWS = 8192


def _save_checkpoint(
    ctx: RankContext,
    store: CheckpointStore,
    label: str,
    level: int,
    frontier: list[_LargeTask],
    small: list[SmallTask],
    nodes: dict[int, dict],
    survival: list[float],
    n_large: int,
) -> None:
    """Checkpoint the full build state to rank-0's disk (one collective).

    Every rank reads its local fragments back (charged, CRC-verified —
    corruption written in the previous level is caught *here* rather than
    poisoning the checkpoint) and gathers them at rank 0, which persists
    one blob. Replicated state (sample points, class counts, finished
    nodes) is stored once, from rank 0's copy.
    """
    ctx.timer.start("checkpoint")
    local = {
        "frontier": [t.columnset.read_all() for t in frontier],
        "small": [s.columnset.read_all() for s in small],
    }
    gathered = ctx.comm.gather(local, root=0)
    if ctx.rank == 0:
        shared = {
            "level": level,
            "nodes": nodes,
            "survival": list(survival),
            "n_large": n_large,
            "frontier": [
                {
                    "node_id": t.node_id,
                    "depth": t.depth,
                    "counts": t.counts,
                    "sample_cols": t.sample_cols,
                    "sample_labels": t.sample_labels,
                }
                for t in frontier
            ],
            "small": [
                {
                    "node_id": s.node_id,
                    "depth": s.depth,
                    "n_global": s.n_global,
                    "class_counts": s.class_counts,
                }
                for s in small
            ],
        }
        # pickled immediately, so later mutation of nodes/survival on
        # rank 0 cannot leak into the snapshot
        store.save(ctx.disk, label, {"shared": shared, "per_rank": gathered})


def _restore_checkpoint(
    ctx: RankContext, store: CheckpointStore, schema: Schema
) -> tuple[dict, list[_LargeTask], list[SmallTask]] | None:
    """Rebuild the build state from the latest readable checkpoint.

    Collective: rank 0 loads the blob, broadcasts the replicated state
    and scatters each rank its fragments, which are rewritten to the
    local disks as fresh chunks. Returns ``None`` when no checkpoint is
    readable — the caller restarts from scratch (the initial fragments
    are only consumed after the first checkpoint exists, so a from-zero
    restart always finds them intact).
    """
    loaded = store.load_latest(ctx.disk) if ctx.rank == 0 else None
    shared = ctx.comm.bcast(loaded[1]["shared"] if loaded is not None else None, root=0)
    if shared is None:
        return None
    frags = ctx.comm.scatter(
        loaded[1]["per_rank"] if ctx.rank == 0 else None, root=0
    )
    frontier = [
        _LargeTask(
            node_id=meta["node_id"],
            depth=meta["depth"],
            columnset=ColumnSet.from_arrays(
                ctx.disk,
                schema,
                cols,
                labels,
                name=f"r{ctx.rank}/ckpt-node{meta['node_id']}",
                batch_rows=_RESTORE_BATCH_ROWS,
            ),
            sample_cols=meta["sample_cols"],
            sample_labels=meta["sample_labels"],
            counts=meta["counts"],
        )
        for meta, (cols, labels) in zip(shared["frontier"], frags["frontier"])
    ]
    small = [
        SmallTask(
            node_id=meta["node_id"],
            depth=meta["depth"],
            n_global=meta["n_global"],
            class_counts=meta["class_counts"],
            columnset=ColumnSet.from_arrays(
                ctx.disk,
                schema,
                cols,
                labels,
                name=f"r{ctx.rank}/ckpt-small{meta['node_id']}",
                batch_rows=_RESTORE_BATCH_ROWS,
            ),
        )
        for meta, (cols, labels) in zip(shared["small"], frags["small"])
    ]
    return shared, frontier, small


def _fit_program(
    ctx: RankContext,
    columnsets: list[ColumnSet],
    schema: Schema,
    config: PCloudsConfig,
    n_total: int,
    seed: int,
    store: CheckpointStore | None = None,
    resume: bool = False,
) -> dict | None:
    return fit_tree_program(
        ctx, columnsets[ctx.rank], schema, config, n_total, seed,
        store=store, resume=resume,
    )


def fit_tree_program(
    ctx: RankContext,
    cs: ColumnSet,
    schema: Schema,
    config: PCloudsConfig,
    n_total: int,
    seed: int,
    store: CheckpointStore | None = None,
    resume: bool = False,
) -> dict | None:
    """The SPMD body of one pCLOUDS tree build over ``ctx.comm``.

    Everything flows through ``ctx`` — when ``ctx`` is a
    :class:`~repro.cluster.machine.GroupContext` the same program fits a
    tree inside a rank *group* (the forest's tree-parallel regime),
    gathering the assembled tree at the group's rank 0. Consumes ``cs``.
    """
    cfg = config.clouds
    stopping = cfg.stopping()
    q_switch = (
        auto_q_switch(
            schema, cfg, ctx.comm._world.network, ctx.disk.model,
            ctx.compute, ctx.size, n_total, memory_limit=ctx.memory.limit,
        )
        if config.q_switch == "auto"
        else config.q_switch
    )

    nodes: dict[int, dict] = {}
    small: list[SmallTask] = []
    survival: list[float] = []
    n_large = 0
    level = 0
    restored = None
    if resume and store is not None:
        ctx.timer.start("recover")
        restored = _restore_checkpoint(ctx, store, schema)
    if restored is not None:
        shared, frontier, small = restored
        # broadcast passes objects by reference between the rank threads:
        # copy the containers each rank will mutate (their values stay
        # shared and are treated as read-only by the build)
        nodes = dict(shared["nodes"])
        survival = list(shared["survival"])
        n_large = int(shared["n_large"])
        level = int(shared["level"])
    else:
        ctx.timer.start("preprocess")
        sample_cols, sample_labels, root_counts = _root_preprocess(
            ctx, cs, schema, cfg.sample_size, n_total, seed
        )
        frontier = [
            _LargeTask(
                node_id=0,
                depth=0,
                columnset=cs,
                sample_cols=sample_cols,
                sample_labels=sample_labels,
                counts=root_counts,
            )
        ]

    # breadth-first over frontier levels: the same visit order as a FIFO
    # queue, but with a level boundary where the build state is compact
    # enough to checkpoint
    while frontier:
        if store is not None:
            _save_checkpoint(
                ctx, store, f"level-{level}", level,
                frontier, small, nodes, survival, n_large,
            )
        this_level = level
        if ctx.observers:
            # live bytes at level start feed the I/O-amplification
            # indicator; checkpoint traffic (above) stays outside the level
            ctx.notify(
                "begin_level",
                this_level,
                len(frontier),
                sum(t.columnset.nbytes for t in frontier),
            )
        survival_mark = len(survival)
        if config.frontier_batching == "level":
            frontier, n_processed = _process_level(
                ctx, frontier, schema, config, stopping, q_switch,
                n_total, nodes, small, survival,
            )
            n_large += n_processed
            level += 1
            if ctx.observers:
                ctx.notify("on_survival", this_level, survival[survival_mark:])
                ctx.notify("end_level")
            continue
        next_frontier: list[_LargeTask] = []
        for t in frontier:
            n = int(t.counts.sum())

            if stopping.is_leaf(t.counts, t.depth):
                nodes[t.node_id] = {
                    "kind": "leaf", "counts": t.counts, "depth": t.depth
                }
                t.columnset.delete()
                continue

            q = scale_q(cfg.q_root, n, n_total)
            if q <= q_switch:
                nodes[t.node_id] = {
                    "kind": "small", "counts": t.counts, "depth": t.depth
                }
                small.append(
                    SmallTask(
                        node_id=t.node_id,
                        depth=t.depth,
                        n_global=n,
                        class_counts=t.counts,
                        columnset=t.columnset,
                    )
                )
                continue

            n_large += 1
            split, left_counts, ratio, left_cs, right_cs = _process_large_node(
                ctx, t, schema, config, q
            )
            survival.append(ratio)
            if split is None:
                nodes[t.node_id] = {
                    "kind": "leaf", "counts": t.counts, "depth": t.depth
                }
                continue
            nodes[t.node_id] = {
                "kind": "internal",
                "split": split,
                "counts": t.counts,
                "depth": t.depth,
            }
            smask = split.goes_left(t.sample_cols[split.attribute])
            next_frontier.append(
                _LargeTask(
                    node_id=2 * t.node_id + 1,
                    depth=t.depth + 1,
                    columnset=left_cs,
                    sample_cols={k: v[smask] for k, v in t.sample_cols.items()},
                    sample_labels=t.sample_labels[smask],
                    counts=left_counts,
                )
            )
            next_frontier.append(
                _LargeTask(
                    node_id=2 * t.node_id + 2,
                    depth=t.depth + 1,
                    columnset=right_cs,
                    sample_cols={k: v[~smask] for k, v in t.sample_cols.items()},
                    sample_labels=t.sample_labels[~smask],
                    counts=t.counts - left_counts,
                )
            )
        frontier = next_frontier
        level += 1
        if ctx.observers:
            ctx.notify("on_survival", this_level, survival[survival_mark:])
            ctx.notify("end_level")

    # one last checkpoint so a crash in the small-node phase does not
    # rewind into the frontier levels
    if store is not None:
        _save_checkpoint(
            ctx, store, "small", level, [], small, nodes, survival, n_large
        )

    # delayed task parallelism for the accumulated small nodes
    ctx.timer.start("small_nodes")
    subtrees = process_small_tasks(ctx, small, schema, config)
    ctx.timer.stop()

    # assembly at rank 0 (the pruning/serving host)
    gathered = ctx.comm.gather(subtrees, root=0)
    if ctx.rank != 0:
        return None
    merged: dict[int, dict] = {}
    for d in gathered:
        merged.update(d)
    root = _assemble(0, nodes, merged)
    _renumber(root)
    return {
        "root": root,
        "n_large": n_large,
        "n_small": len(small),
        "survival": survival,
    }


def _process_large_node(
    ctx: RankContext,
    t: _LargeTask,
    schema: Schema,
    config: PCloudsConfig,
    q: int,
) -> tuple[Split | None, np.ndarray | None, float, ColumnSet | None, ColumnSet | None]:
    """Steps 1-3 of Section 5 for one large node. Returns ``(split,
    global left counts, survival ratio, left child fragment, right child
    fragment)``; the split is None when the node becomes a leaf."""
    cfg = config.clouds
    n = int(t.counts.sum())

    ctx.timer.start("stats")
    bounds = node_boundaries(schema, t.sample_cols, q)
    access = open_node(ctx, t.columnset, schema)
    local_stats = access.stats_pass(bounds)
    boundary_split, alive = exchange_node_stats(
        ctx, schema, local_stats, t.counts, config
    )

    ctx.timer.start("alive")
    ratio = sum(iv.count for iv in alive) / max(n, 1)
    split = evaluate_alive_parallel(
        ctx, access, alive, t.counts, schema, boundary_split
    )

    parent_gini = float(gini_from_counts(t.counts))
    if split is None or split.gini >= parent_gini:
        ctx.timer.stop()
        t.columnset.delete()
        return None, None, ratio, None, None

    ctx.timer.start("partition")
    left_cs, right_cs, local_left = access.partition(split)
    t.columnset.delete()
    left_counts = ctx.comm.allreduce(local_left)
    ctx.timer.stop()
    right_counts = t.counts - left_counts
    if left_counts.sum() == 0 or right_counts.sum() == 0:
        # globally degenerate split (cannot happen via the gini machinery,
        # but a malformed custom config should not corrupt the tree)
        left_cs.delete()
        right_cs.delete()
        return None, None, ratio, None, None
    return split, left_counts, ratio, left_cs, right_cs


def _process_level(
    ctx: RankContext,
    frontier: list[_LargeTask],
    schema: Schema,
    config: PCloudsConfig,
    stopping,
    q_switch: int,
    n_total: int,
    nodes: dict[int, dict],
    small: list[SmallTask],
    survival: list[float],
) -> tuple[list[_LargeTask], int]:
    """One frontier level under ``frontier_batching="level"``: the same
    stats → alive → partition cycle as :func:`_process_large_node`, but
    fused across every large node of the level, so the collectives per
    level are **one** stats alltoall, **one** k-way boundary election,
    **one** alive allgather, **one** member alltoall, **one** k-way
    interior election and **one** allreduce of the stacked per-node
    left-count matrix — constant in the frontier width. The produced
    tree is bit-identical to the per-node driver's (same combines, same
    tie-break keys, same partitions).

    Mutates ``nodes``/``small``/``survival`` exactly as the per-node
    loop does and returns ``(next_frontier, n_large_processed)``.
    """
    cfg = config.clouds

    # classify the level: leaves and small nodes peel off, large remain
    large: list[_LargeTask] = []
    qs: list[int] = []
    for t in frontier:
        n = int(t.counts.sum())
        if stopping.is_leaf(t.counts, t.depth):
            nodes[t.node_id] = {
                "kind": "leaf", "counts": t.counts, "depth": t.depth
            }
            t.columnset.delete()
            continue
        q = scale_q(cfg.q_root, n, n_total)
        if q <= q_switch:
            nodes[t.node_id] = {
                "kind": "small", "counts": t.counts, "depth": t.depth
            }
            small.append(
                SmallTask(
                    node_id=t.node_id,
                    depth=t.depth,
                    n_global=n,
                    class_counts=t.counts,
                    columnset=t.columnset,
                )
            )
            continue
        large.append(t)
        qs.append(q)
    if not large:
        return [], 0
    counts_list = [t.counts for t in large]

    # (1) every node's local stats pass back-to-back, then one batched
    # exchange for the whole level
    ctx.timer.start("stats")
    accesses = []
    locals_list = []
    for t, q in zip(large, qs):
        bounds = node_boundaries(schema, t.sample_cols, q)
        access = open_node(ctx, t.columnset, schema)
        locals_list.append(access.stats_pass(bounds))
        accesses.append(access)
    exchanged = exchange_level_stats(
        ctx, schema, locals_list, counts_list, config
    )
    boundary_splits = [s for s, _ in exchanged]
    alive_lists = [a for _, a in exchanged]

    # (2) alive evaluation over the global (node, interval) pool
    ctx.timer.start("alive")
    for t, alive in zip(large, alive_lists):
        survival.append(sum(iv.count for iv in alive) / max(int(t.counts.sum()), 1))
    splits = evaluate_alive_level(
        ctx, accesses, alive_lists, counts_list, schema, boundary_splits
    )
    for idx, t in enumerate(large):
        if splits[idx] is not None and splits[idx].gini >= float(
            gini_from_counts(t.counts)
        ):
            splits[idx] = None
    splitting = [idx for idx in range(len(large)) if splits[idx] is not None]

    # (3) all partition passes locally, closed by one allreduce of the
    # stacked per-node left-count matrix (skipped when the whole level
    # went leaf — every rank agrees, the splits are replicated)
    children: dict[int, tuple[ColumnSet, ColumnSet]] = {}
    left_matrix = None
    if splitting:
        ctx.timer.start("partition")
        locals_left = []
        for idx in splitting:
            left_cs, right_cs, local_left = accesses[idx].partition(splits[idx])
            large[idx].columnset.delete()
            children[idx] = (left_cs, right_cs)
            locals_left.append(local_left)
        left_matrix = ctx.comm.allreduce(np.stack(locals_left))
    ctx.timer.stop()
    for access in accesses:
        access.release()

    # bookkeeping in frontier order, as the per-node loop emits it
    row = {idx: r for r, idx in enumerate(splitting)}
    next_frontier: list[_LargeTask] = []
    for idx, t in enumerate(large):
        split = splits[idx]
        if split is not None:
            left_counts = left_matrix[row[idx]]
            right_counts = t.counts - left_counts
            if left_counts.sum() == 0 or right_counts.sum() == 0:
                children[idx][0].delete()
                children[idx][1].delete()
                split = None
        if split is None:
            nodes[t.node_id] = {
                "kind": "leaf", "counts": t.counts, "depth": t.depth
            }
            if idx not in children:
                t.columnset.delete()
            continue
        nodes[t.node_id] = {
            "kind": "internal",
            "split": split,
            "counts": t.counts,
            "depth": t.depth,
        }
        smask = split.goes_left(t.sample_cols[split.attribute])
        next_frontier.append(
            _LargeTask(
                node_id=2 * t.node_id + 1,
                depth=t.depth + 1,
                columnset=children[idx][0],
                sample_cols={k: v[smask] for k, v in t.sample_cols.items()},
                sample_labels=t.sample_labels[smask],
                counts=left_counts,
            )
        )
        next_frontier.append(
            _LargeTask(
                node_id=2 * t.node_id + 2,
                depth=t.depth + 1,
                columnset=children[idx][1],
                sample_cols={k: v[~smask] for k, v in t.sample_cols.items()},
                sample_labels=t.sample_labels[~smask],
                counts=t.counts - left_counts,
            )
        )
    return next_frontier, len(large)


# -- tree assembly -------------------------------------------------------------


def _assemble(node_id: int, nodes: dict[int, dict], subtrees: dict[int, dict]) -> TreeNode:
    rec = nodes[node_id]
    if rec["kind"] == "small":
        if node_id in subtrees:
            return decode_node(subtrees[node_id])
        # a small task with no surviving records anywhere: emit a leaf
        return TreeNode(
            node_id=node_id, depth=rec["depth"], class_counts=rec["counts"]
        )
    node = TreeNode(
        node_id=node_id, depth=rec["depth"], class_counts=rec["counts"]
    )
    if rec["kind"] == "internal":
        node.split = rec["split"]
        node.left = _assemble(2 * node_id + 1, nodes, subtrees)
        node.right = _assemble(2 * node_id + 2, nodes, subtrees)
    return node


def _renumber(root: TreeNode) -> None:
    """Depth-first sequential node ids over the assembled tree."""
    counter = 0
    stack = [root]
    while stack:
        node = stack.pop()
        node.node_id = counter
        counter += 1
        if not node.is_leaf:
            stack.append(node.right)
            stack.append(node.left)
