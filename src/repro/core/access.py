"""Per-node data access: in-core vs out-of-core.

The paper processes a large node out-of-core only when it exceeds the
pre-specified memory limit (Section 6). Both access modes expose the same
three operations — the statistics pass, alive-interval member extraction,
and the partitioning pass — so the driver is oblivious to residency. The
I/O difference is what the memory limit buys:

* in-core: one sequential read of the fragment, then no further reads;
* streaming: the statistics pass, the SSE member pass and the partition
  pass each re-read from disk.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.machine import RankContext
from repro.clouds.intervals import class_counts
from repro.clouds.nodestats import NodeStats, accumulate_batch, empty_stats
from repro.clouds.splits import Split
from repro.clouds.sse import AliveInterval, member_mask, stacked_member_masks
from repro.data.schema import Schema
from repro.ooc.columnset import ColumnSet

__all__ = ["NodeAccess", "InCoreAccess", "StreamingAccess", "open_node"]


class NodeAccess:
    """Common interface over one rank's local fragment of one node."""

    def __init__(self, ctx: RankContext, cs: ColumnSet, schema: Schema) -> None:
        self.ctx = ctx
        self.cs = cs
        self.schema = schema

    @property
    def local_rows(self) -> int:
        return self.cs.nrows

    def stats_pass(self, boundaries: dict[str, np.ndarray]) -> NodeStats:
        raise NotImplementedError

    def alive_members(
        self, alive: list[AliveInterval]
    ) -> list[tuple[np.ndarray, np.ndarray]]:
        """Local (values, labels) of each alive interval, by alive index."""
        raise NotImplementedError

    def partition(
        self, split: Split
    ) -> tuple[ColumnSet, ColumnSet, np.ndarray]:
        """Write both children to the local disk; returns
        (left, right, local left class counts)."""
        raise NotImplementedError

    def release(self) -> None:
        """Drop any memory-resident copy of the fragment. The
        level-batched driver keeps every node of a frontier level open
        at once; releasing each access after its last pass caps the
        resident footprint at one node's columns instead of a level's."""


class InCoreAccess(NodeAccess):
    """Fragment fits the memory budget: one read, then memory-resident."""

    def __init__(self, ctx: RankContext, cs: ColumnSet, schema: Schema) -> None:
        super().__init__(ctx, cs, schema)
        self.columns, self.labels = cs.read_all()

    def stats_pass(self, boundaries: dict[str, np.ndarray]) -> NodeStats:
        stats = empty_stats(self.schema, boundaries)
        accumulate_batch(stats, self.schema, self.columns, self.labels)
        self.ctx.charge_compute(ops=len(self.labels) * len(self.schema))
        return stats

    def alive_members(self, alive):
        out = []
        for iv in alive:
            mask = member_mask(self.columns[iv.attribute], iv)
            self.ctx.charge_compute(ops=len(self.labels))
            out.append((self.columns[iv.attribute][mask], self.labels[mask]))
        return out

    def partition(self, split):
        mask = split.goes_left(self.columns[split.attribute])
        self.ctx.charge_compute(ops=len(self.labels) * len(self.schema))
        left = ColumnSet.from_arrays(
            self.ctx.disk,
            self.schema,
            {k: v[mask] for k, v in self.columns.items()},
            self.labels[mask],
            name=f"{self.cs.name}/L",
        )
        right = ColumnSet.from_arrays(
            self.ctx.disk,
            self.schema,
            {k: v[~mask] for k, v in self.columns.items()},
            self.labels[~mask],
            name=f"{self.cs.name}/R",
        )
        return left, right, class_counts(self.labels[mask], self.schema.n_classes)

    def release(self) -> None:
        self.columns = {}
        self.labels = np.empty(0, dtype=np.int64)


class StreamingAccess(NodeAccess):
    """Fragment exceeds the memory budget: every pass streams from disk.

    When the rank has a buffer pool large enough for the fragment, the
    node's chunks are pinned for the duration of the access: the stats
    pass populates the cache and the member/partition passes re-read
    from memory instead of disk (released with the access)."""

    def __init__(self, ctx: RankContext, cs: ColumnSet, schema: Schema) -> None:
        super().__init__(ctx, cs, schema)
        self._pinned = False
        pool = ctx.disk.pool
        if pool is not None and pool.would_cache(cs.nbytes):
            pool.pin_columnset(cs)
            self._pinned = True

    def stats_pass(self, boundaries: dict[str, np.ndarray]) -> NodeStats:
        stats = empty_stats(self.schema, boundaries)
        for batch, labels in self.cs.iter_batches():
            accumulate_batch(stats, self.schema, batch, labels)
            self.ctx.charge_compute(ops=len(labels) * len(self.schema))
        return stats

    def alive_members(self, alive):
        collected: list[tuple[list, list]] = [([], []) for _ in alive]
        by_attr: dict[str, list[int]] = {}
        for k, iv in enumerate(alive):
            by_attr.setdefault(iv.attribute, []).append(k)
        for name, ks in sorted(by_attr.items()):
            ivs = [alive[k] for k in ks]
            for values, labels in self.cs.iter_column_with_labels(name):
                self.ctx.charge_compute(ops=len(values) * len(ks))
                for k, m in zip(ks, stacked_member_masks(values, ivs)):
                    if m.any():
                        collected[k][0].append(values[m])
                        collected[k][1].append(labels[m])
        out = []
        for vals_list, labs_list in collected:
            if vals_list:
                out.append((np.concatenate(vals_list), np.concatenate(labs_list)))
            else:
                out.append(
                    (np.empty(0), np.empty(0, dtype=np.int64))
                )
        return out

    def partition(self, split):
        left = ColumnSet(self.ctx.disk, self.schema, name=f"{self.cs.name}/L")
        right = ColumnSet(self.ctx.disk, self.schema, name=f"{self.cs.name}/R")
        left_counts = np.zeros(self.schema.n_classes, dtype=np.int64)
        for batch, labels in self.cs.iter_batches():
            mask = split.goes_left(batch[split.attribute])
            self.ctx.charge_compute(ops=len(labels) * len(self.schema))
            left.append_batch({k: v[mask] for k, v in batch.items()}, labels[mask])
            right.append_batch({k: v[~mask] for k, v in batch.items()}, labels[~mask])
            left_counts += class_counts(labels[mask], self.schema.n_classes)
        return left, right, left_counts

    def release(self) -> None:
        if self._pinned:
            self.ctx.disk.pool.unpin_columnset(self.cs)
            self._pinned = False


def open_node(ctx: RankContext, cs: ColumnSet, schema: Schema) -> NodeAccess:
    """Pick the access mode by the per-processor memory limit (Section 6:
    "large nodes are processed out-of-core if the size of those nodes
    exceed a pre-specified memory limit")."""
    if ctx.memory.fits(cs.nbytes):
        return InCoreAccess(ctx, cs, schema)
    return StreamingAccess(ctx, cs, schema)
