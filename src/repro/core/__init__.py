"""pCLOUDS — the paper's contribution: a parallel out-of-core decision
tree classifier built with mixed parallelism."""

from .access import InCoreAccess, NodeAccess, StreamingAccess, open_node
from .alive import assign_by_cost, evaluate_alive_parallel
from .checkpoint import CheckpointStore
from .config import EXCHANGE_STRATEGIES, PCloudsConfig
from .dataset import DistributedDataset
from .evaluate import ParallelEvaluation, parallel_evaluate
from .pclouds import PClouds, PCloudsResult, fit_tree_program
from .small_tasks import SmallTask, process_small_tasks
from .stats_exchange import attribute_owner, exchange_node_stats
from .switching import auto_q_switch, break_even_node_size

__all__ = [
    "CheckpointStore",
    "EXCHANGE_STRATEGIES",
    "DistributedDataset",
    "InCoreAccess",
    "NodeAccess",
    "PClouds",
    "PCloudsConfig",
    "PCloudsResult",
    "ParallelEvaluation",
    "SmallTask",
    "StreamingAccess",
    "assign_by_cost",
    "attribute_owner",
    "auto_q_switch",
    "break_even_node_size",
    "evaluate_alive_parallel",
    "exchange_node_stats",
    "fit_tree_program",
    "open_node",
    "parallel_evaluate",
    "process_small_tasks",
]
