"""Analytic switching criterion for mixed parallelism.

The paper leaves the data-parallel → task-parallel switch as an open
question ("We have not presented any concrete criteria for switching...
This analytical characterization is currently under investigation") and
uses a fixed threshold of ten intervals. This module implements the
characterisation the cost models make possible — an **extension** beyond
the paper, benchmarked against fixed thresholds in
``benchmarks/bench_ablations.py``.

Derivation. Processing one large node of global size n data-parallel
costs each processor roughly

    T_dp(n) = passes · (n/p) · c_rec  +  K · alpha · ceil(log2 p)

where ``c_rec`` is the per-record cost of one pass (dominated by disk
bandwidth over the node's row bytes, plus the scan compute), ``passes``
the stats/alive/partition passes, and ``K`` the node's collective count.
The first term shrinks with n; the fixed second term does not — exactly
the paper's observation that "communication time is expected to dominate
the overall processing time when the node size becomes small". Deferring
the node instead costs its whole subtree built sequentially, but that
work is amortised over p processors by the LPT assignment, so the
*marginal* wall-clock of deferring stays near ``subtree_work(n)/p``,
while staying data-parallel pays ``K·alpha·log2 p`` per descendant node.
Equating the parallelisable work of one node with its fixed
synchronisation overhead gives the break-even size

    n* = K · alpha · ceil(log2 p) · p / (passes · c_rec)

below which a node synchronises more than it computes. We convert n* to
the paper's units (intervals) through the q(n) scaling.
"""

from __future__ import annotations

import math

from repro.cluster.compute import ComputeModel
from repro.cluster.diskmodel import DiskModel
from repro.cluster.network import NetworkModel
from repro.clouds.builder import CloudsConfig
from repro.data.schema import Schema

__all__ = ["break_even_node_size", "auto_q_switch", "COLLECTIVES_PER_LARGE_NODE"]

#: collectives one large node executes (stats alltoall, minloc, alive
#: allgather, member alltoall, interior minloc, left-count allreduce)
COLLECTIVES_PER_LARGE_NODE = 6

#: streaming passes over a large node (stats read, alive read, partition
#: read+write)
PASSES_PER_LARGE_NODE = 4


def break_even_node_size(
    schema: Schema,
    network: NetworkModel,
    disk: DiskModel,
    compute: ComputeModel,
    n_ranks: int,
) -> float:
    """Global node size n* at which a large node's fixed synchronisation
    cost equals its parallelisable per-pass work."""
    if n_ranks <= 1:
        return 0.0  # no synchronisation: stay data-parallel throughout
    row = schema.row_nbytes()
    c_rec = row / disk.bandwidth + compute.cost(len(schema))
    overhead = (
        COLLECTIVES_PER_LARGE_NODE * network.alpha * math.ceil(math.log2(n_ranks))
    )
    return overhead * n_ranks / (PASSES_PER_LARGE_NODE * c_rec)


def auto_q_switch(
    schema: Schema,
    clouds: CloudsConfig,
    network: NetworkModel,
    disk: DiskModel,
    compute: ComputeModel,
    n_ranks: int,
    n_total: int,
    memory_limit: int | None = None,
    balance_factor: float = 2.0,
) -> int:
    """Pick the switch threshold from the machine's cost models.

    Two forces bound the switch size n_switch:

    * **latency floor** — nodes below :func:`break_even_node_size`
      synchronise more than they compute; never process them data-parallel;
    * **load balance** — deferring at n_total/(balance_factor·p) yields at
      least ~balance_factor·p deferred subtrees by volume, enough for LPT
      to balance ("the load balance can be improved with the presence of a
      large number of such nodes"), while deferring as early as balance
      allows maximises the work done without per-node synchronisation.

    A deferred task larger than the owner's memory is charged the
    streaming I/O of an out-of-core sequential build; that penalty is
    bounded (2 transfers per record per subtree level, fewer passes than
    the data-parallel path), so memory does not cap the threshold — it
    merely dampens the benefit, which the balance factor's conservatism
    absorbs. ``memory_limit`` is accepted for forward compatibility with
    machine models where residency dominates.

    n_switch = max(floor, n_total/(balance_factor·p)); returned in the
    paper's units (intervals), clamped to [1, q_root/2] so the root always
    runs at least one data-parallel level.
    """
    del memory_limit  # see docstring: informative but not binding here
    if n_total <= 0:
        return 1
    floor = break_even_node_size(schema, network, disk, compute, n_ranks)
    balance = n_total / (balance_factor * max(n_ranks, 1))
    n_switch = max(floor, balance)
    q_star = int(round(clouds.q_root * n_switch / n_total))
    return max(1, min(q_star, clouds.q_root // 2))
