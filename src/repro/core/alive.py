"""Parallel evaluation of alive intervals (Section 5.1.3).

The paper's **single-assignment approach**: each alive interval is owned
by exactly one processor, chosen by the cost of processing it (the sort
dominates). Every processor extracts its local members of every alive
interval and ships them to the owners in one personalized all-to-all;
owners sort, evaluate the gini at every distinct point, and the global
best interior splitter is elected by min-reduction (which also serves as
the broadcast of the winning split point).
"""

from __future__ import annotations

import numpy as np

from repro.cluster.machine import RankContext
from repro.clouds.splits import Split, better
from repro.clouds.sse import AliveInterval, evaluate_alive_interval
from repro.data.schema import Schema

from .access import NodeAccess

__all__ = ["assign_by_cost", "evaluate_alive_parallel", "evaluate_alive_level"]


def assign_by_cost(costs: list[float], n_ranks: int) -> list[int]:
    """Deterministic LPT (longest-processing-time) assignment: items in
    decreasing cost order go to the currently least-loaded rank (ties to
    the lowest rank). Every rank computes the identical mapping from the
    shared cost list."""
    loads = [0.0] * n_ranks
    owner = [0] * len(costs)
    order = sorted(range(len(costs)), key=lambda k: (-costs[k], k))
    for k in order:
        r = min(range(n_ranks), key=lambda i: (loads[i], i))
        owner[k] = r
        loads[r] += costs[k]
    return owner


def evaluate_alive_parallel(
    ctx: RankContext,
    access: NodeAccess,
    alive: list[AliveInterval],
    total_counts: np.ndarray,
    schema: Schema,
    boundary_split: Split | None,
) -> Split | None:
    """SSE's second phase for one large node; returns the node's final
    splitter (the boundary winner unless an interior point beats it).

    Collective: every rank must call with the identical ``alive`` list.
    """
    comm = ctx.comm
    if not alive:
        return boundary_split

    owner = assign_by_cost([iv.sort_cost() for iv in alive], comm.size)

    # extract local members and route them to interval owners
    members = access.alive_members(alive)
    parts: list[dict[int, tuple[np.ndarray, np.ndarray]]] = [
        dict() for _ in range(comm.size)
    ]
    for k, (vals, labs) in enumerate(members):
        if len(vals):
            parts[owner[k]][k] = (vals, labs)
    incoming = comm.alltoall(parts)

    # owner side: assemble each owned interval, sort, evaluate every point
    best_local: Split | None = None
    mine = [k for k in range(len(alive)) if owner[k] == comm.rank]
    for k in mine:
        pieces = [src[k] for src in incoming if k in src]
        if not pieces:
            continue
        vals = np.concatenate([p[0] for p in pieces])
        labs = np.concatenate([p[1] for p in pieces])
        ctx.charge_sort(len(vals))
        ctx.charge_compute(ops=len(vals) * schema.n_classes)
        cand = evaluate_alive_interval(
            alive[k], vals, labs, np.asarray(total_counts, dtype=np.float64),
            schema.n_classes,
        )
        best_local = better(best_local, cand)

    value = best_local.gini if best_local is not None else float("inf")
    _, interior, _ = comm.allreduce_minloc(
        value,
        best_local,
        tiebreak=best_local.order_key() if best_local is not None else None,
    )
    return better(boundary_split, interior)


def evaluate_alive_level(
    ctx: RankContext,
    accesses: list[NodeAccess],
    alive_lists: list[list[AliveInterval]],
    counts_list: list[np.ndarray],
    schema: Schema,
    boundary_splits: list[Split | None],
) -> list[Split | None]:
    """Batched :func:`evaluate_alive_parallel` for one frontier level.

    The LPT cost assignment runs over the *global* pool of (node,
    interval) items, so a level with one hot node and many cold ones
    still balances; all members travel in **one** personalized
    all-to-all and the per-node interior winners are elected in **one**
    k-way min-reduction. The elected split of each node is bit-identical
    to the per-node path: interval evaluation is independent of which
    rank owns it (pieces concatenate in source-rank order and the
    evaluator sorts stably), and the election compares
    ``(gini, order_key)`` exactly as the per-node reduction does.
    """
    comm = ctx.comm
    k = len(alive_lists)
    pool = [(j, i) for j in range(k) for i in range(len(alive_lists[j]))]
    if not pool:
        return list(boundary_splits)

    owner = assign_by_cost(
        [alive_lists[j][i].sort_cost() for j, i in pool], comm.size
    )

    # extract local members node by node (back-to-back disk passes) and
    # route everything to the interval owners in one alltoall
    members = [
        accesses[j].alive_members(alive_lists[j]) if alive_lists[j] else []
        for j in range(k)
    ]
    parts: list[dict[int, tuple[np.ndarray, np.ndarray]]] = [
        dict() for _ in range(comm.size)
    ]
    for idx, (j, i) in enumerate(pool):
        vals, labs = members[j][i]
        if len(vals):
            parts[owner[idx]][idx] = (vals, labs)
    incoming = comm.alltoall(parts)

    # owner side: assemble, sort and evaluate every owned interval
    best_local: list[Split | None] = [None] * k
    for idx in (i for i in range(len(pool)) if owner[i] == comm.rank):
        j, i = pool[idx]
        pieces = [src[idx] for src in incoming if idx in src]
        if not pieces:
            continue
        vals = np.concatenate([p[0] for p in pieces])
        labs = np.concatenate([p[1] for p in pieces])
        ctx.charge_sort(len(vals))
        ctx.charge_compute(ops=len(vals) * schema.n_classes)
        cand = evaluate_alive_interval(
            alive_lists[j][i], vals, labs,
            np.asarray(counts_list[j], dtype=np.float64), schema.n_classes,
        )
        best_local[j] = better(best_local[j], cand)

    elected = comm.allreduce_minloc_many(
        [s.gini if s is not None else float("inf") for s in best_local],
        best_local,
        tiebreaks=[
            s.order_key() if s is not None else None for s in best_local
        ],
    )
    return [better(boundary_splits[j], elected[j][1]) for j in range(k)]
