"""Evaluation of interval boundaries for numeric attributes, in parallel
(Section 5.1.1).

The paper implements the **replication method** with the
**attribute-based approach**: the global class-frequency vectors of each
attribute are assembled at exactly one owner processor; the owner runs the
(purely local) prefix sum over its boundaries, evaluates the gini at each
boundary, and the global minimum gini is elected with a min-reduction.
Categorical count matrices travel to owners the same way. With SSE, each
owner then determines the alive intervals of its attributes locally and
the statuses are broadcast to everyone (one allgather).

The naive variant (``exchange="allreduce"``) replicates *all* global
vectors on every processor via one global combine — simpler, but it moves
O(q·c·f) bytes through the reduction instead of O(q·c·f/p) per processor
and repeats the sweep p times; the ablation bench quantifies the gap.

The **distributed method** (``exchange="distributed"``) is the paper's
other alternative: instead of whole attributes, individual *intervals*
are assigned to owners (the random-access-write pattern of Bae's runtime
the paper cites), so the per-owner storage is O(q·c·f/p) even when
f < p. The cumulative class counts an owner needs for its boundaries are
no longer local — they are recovered with one parallel prefix sum
(Table 1's primitive) over the per-rank partial sums. The paper chose
replication for its simplicity and lower communication; this
implementation makes that trade-off measurable.

The **top-k voting method** (``exchange="voting"``) is the PV-Tree
communication shrink (Meng & Ke et al. 2016) layered on the
attribute-based machinery: every processor sweeps its *own* local
statistics, nominates its top-k attributes by local best gini in one
small ballot collective (:meth:`~repro.cluster.comm.Comm.vote`), and a
deterministic merge election — replicated on every rank from the
identical gathered ballots — picks at most 2k global candidates. Only
the elected attributes' statistics then travel through the
attribute-owner alltoall, cutting the dominant O(q·c·f) payload of the
exact strategies to O(q·c·k). Voting is an **approximation**: a
globally best attribute that no rank nominated cannot win. With
``vote_top_k >= n_attributes`` every attribute is elected and the
result is bit-identical to ``exchange="attribute"``.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.cluster.comm import payload_nbytes
from repro.cluster.machine import RankContext
from repro.clouds.gini import best_categorical_split, boundary_sweep
from repro.clouds.nodestats import NodeStats, NumericStats
from repro.clouds.splits import CATEGORICAL_SPLIT, NUMERIC_SPLIT, Split
from repro.clouds.sse import AliveInterval, determine_alive_intervals
from repro.data.schema import Attribute, Schema

from .config import PCloudsConfig

__all__ = ["attribute_owner", "exchange_node_stats", "exchange_level_stats"]


def attribute_owner(attr_index: int, n_ranks: int) -> int:
    """Round-robin assignment of attributes to owner processors."""
    return attr_index % n_ranks


def _owned_attributes(attrs: Sequence[Attribute], rank: int, size: int) -> list[str]:
    """Names this rank owns among ``attrs`` — ownership is positional
    within the list, so a restricted candidate list (the voting path)
    round-robins its members over the ranks the same way the full
    schema does."""
    return [
        a.name for i, a in enumerate(attrs) if attribute_owner(i, size) == rank
    ]


def _best_boundary_split_of(
    name: str, boundaries: np.ndarray, hist: np.ndarray, total: np.ndarray
) -> Split | None:
    """Owner-side boundary sweep of one numeric attribute's full
    histogram — the whole-attribute form of the shared block sweep
    (``lo = 0``, cumulative counts from the histogram itself)."""
    if boundaries.size == 0:
        return None
    return _best_block_boundary_split(
        name, boundaries, 0, np.cumsum(hist, axis=0)[:-1], total
    )


def _best_block_boundary_split(
    name: str,
    bounds: np.ndarray,
    lo: int,
    cum: np.ndarray,
    total_counts: np.ndarray,
) -> Split | None:
    """The shared owner-side boundary sweep: gini over one block of
    cumulative counts, where interval row ``i`` closes boundary
    ``lo + i``. All three sweep call sites — whole-attribute owners
    (via :func:`_best_boundary_split_of`), the distributed method's
    interval blocks, and the voting path's local nomination scorer —
    reduce to this form. Ties resolve to the smallest row index, i.e.
    the smallest threshold — exactly what a sequential scan with the
    split order-key tiebreak picks, since the boundaries are sorted
    ascending."""
    if cum.shape[0] == 0:
        return None
    total = np.asarray(total_counts, dtype=np.float64)
    n_total = float(total.sum())
    b = lo + np.arange(cum.shape[0])
    sizes = cum.sum(axis=1)
    valid = (b < len(bounds)) & (sizes > 0) & (sizes < n_total)
    if not valid.any():
        return None
    ginis = np.where(valid, boundary_sweep(cum, total), np.inf)
    k = int(np.argmin(ginis))
    return Split(
        attribute=name,
        kind=NUMERIC_SPLIT,
        gini=float(ginis[k]),
        threshold=float(bounds[lo + k]),
    )


def exchange_node_stats(
    ctx: RankContext,
    schema: Schema,
    local: NodeStats,
    total_counts: np.ndarray,
    config: PCloudsConfig,
) -> tuple[Split | None, list[AliveInterval]]:
    """Turn per-processor statistics into the node's gini_min splitter and
    (for SSE) the alive-interval list, replicated on every rank.

    Every rank must call this once per large node with statistics built
    over the *same* interval boundaries.
    """
    ctx.notify("on_stats_exchange", config.exchange, 1)
    if config.exchange == "attribute":
        return _exchange_attribute_based(ctx, schema, local, total_counts, config)
    if config.exchange == "distributed":
        return _exchange_distributed(ctx, schema, local, total_counts, config)
    if config.exchange == "voting":
        return _exchange_voting(ctx, schema, local, total_counts, config)
    return _exchange_allreduce(ctx, schema, local, total_counts, config)


# -- attribute-based approach (the paper's choice) -----------------------


def _exchange_attribute_based(
    ctx: RankContext,
    schema: Schema,
    local: NodeStats,
    total_counts: np.ndarray,
    config: PCloudsConfig,
    attrs: Sequence[Attribute] | None = None,
) -> tuple[Split | None, list[AliveInterval]]:
    """``attrs`` restricts the exchange to a candidate subset (the voting
    path passes its elected attributes, in schema order); ``None`` means
    the full schema, which is the exact attribute-based method."""
    comm = ctx.comm
    size, rank = comm.size, comm.rank
    c = schema.n_classes
    attrs = list(schema.attributes) if attrs is None else list(attrs)

    # ship each attribute's local vectors to its owner (numeric attributes
    # carry their per-interval value ranges alongside the histograms)
    parts: list[dict[str, object]] = [dict() for _ in range(size)]
    for i, a in enumerate(attrs):
        dest = attribute_owner(i, size)
        if a.is_numeric:
            ns = local.numeric[a.name]
            parts[dest][a.name] = (ns.hist, ns.vmin, ns.vmax)
        else:
            parts[dest][a.name] = local.categorical[a.name]
    if ctx.observers:
        ctx.notify(
            "on_exchange_payload",
            config.exchange,
            sum(payload_nbytes(parts[d]) for d in range(size) if d != rank),
        )
    incoming = comm.alltoall(parts)

    # owner: combine, sweep, keep the best candidate per owned attribute
    owned = _owned_attributes(attrs, rank, size)
    global_num: dict[str, NumericStats] = {}
    best_local: Split | None = None
    for name in owned:
        attr = schema.attribute(name)
        if attr.is_numeric:
            combined = incoming[0][name][0].copy()
            vmin = incoming[0][name][1].copy()
            vmax = incoming[0][name][2].copy()
            for piece in incoming[1:]:
                combined += piece[name][0]
                np.minimum(vmin, piece[name][1], out=vmin)
                np.maximum(vmax, piece[name][2], out=vmax)
            ctx.charge_compute(ops=combined.size * size)
            bounds = local.numeric[name].boundaries
            global_num[name] = NumericStats(
                boundaries=bounds, hist=combined, vmin=vmin, vmax=vmax
            )
            ctx.charge_compute(ops=3 * combined.size)  # prefix sum + gini sweep
            cand = _best_boundary_split_of(name, bounds, combined, total_counts)
        else:
            combined = incoming[0][name].copy()
            for piece in incoming[1:]:
                combined += piece[name]
            ctx.charge_compute(ops=combined.size * size)
            res = best_categorical_split(combined, config.clouds.enumerate_limit)
            ctx.charge_compute(ops=combined.size * attr.cardinality)
            cand = (
                Split(
                    attribute=name,
                    kind=CATEGORICAL_SPLIT,
                    gini=res[0],
                    left_codes=res[1],
                )
                if res is not None
                else None
            )
        if cand is not None and (best_local is None or cand.gini < best_local.gini):
            best_local = cand

    # elect gini_min across processors (ties by the split's order key, so
    # the winner matches what a sequential sweep over all attributes picks)
    value = best_local.gini if best_local is not None else float("inf")
    gini_min, split, _ = comm.allreduce_minloc(
        value,
        best_local,
        tiebreak=best_local.order_key() if best_local is not None else None,
    )
    if split is None:
        return None, []

    if config.clouds.method != "sse":
        return split, []

    # owners determine alive intervals among their (global) intervals ...
    my_alive: list[AliveInterval] = []
    for name, ns in global_num.items():
        stats_one = NodeStats(
            total=np.asarray(total_counts, dtype=np.int64),
            numeric={name: ns},
        )
        one_schema = Schema(
            attributes=(schema.attribute(name),), n_classes=c
        )
        my_alive.extend(determine_alive_intervals(stats_one, one_schema, gini_min))
        ctx.charge_compute(ops=ns.hist.shape[0] * c * (2 ** min(c, 16)))
    # ... and the statuses are broadcast to all processors (cost ∝ qc)
    gathered = ctx.comm.allgather(_encode_alive(my_alive))
    alive = [iv for chunk in gathered for iv in _decode_alive(chunk)]
    alive.sort(key=lambda iv: (iv.attribute, iv.index))
    return split, alive


# -- top-k voting method (PV-Tree-style approximation) --------------------


def _nominate(
    ctx: RankContext,
    schema: Schema,
    local: NodeStats,
    config: PCloudsConfig,
) -> np.ndarray:
    """Rank-local scoring pass: sweep this rank's *own* statistics of
    every attribute and build its ballot — a ``(k, 2)`` float64 array of
    ``[attribute index, local best gini]`` rows, the k smallest local
    ginis first (ties by attribute index). Attributes with no valid
    local split score ``inf`` but may still pad the ballot, so every
    rank's ballot has the same deterministic wire size."""
    scores: list[tuple[float, int]] = []
    for i, a in enumerate(schema.attributes):
        if a.is_numeric:
            ns = local.numeric[a.name]
            cand = _best_block_boundary_split(
                a.name,
                ns.boundaries,
                0,
                np.cumsum(ns.hist, axis=0)[:-1],
                ns.hist.sum(axis=0),
            )
            ctx.charge_compute(ops=3 * ns.hist.size)
            gini = float("inf") if cand is None else cand.gini
        else:
            matrix = local.categorical[a.name]
            res = best_categorical_split(matrix, config.clouds.enumerate_limit)
            ctx.charge_compute(ops=matrix.size * a.cardinality)
            gini = float("inf") if res is None else float(res[0])
        scores.append((gini, i))
    scores.sort()
    k = min(config.vote_top_k, len(scores))
    return np.array(
        [[float(i), g] for g, i in scores[:k]], dtype=np.float64
    ).reshape(k, 2)


def _elect_candidates(
    ballots: Sequence[np.ndarray], n_attrs: int, top_k: int
) -> list[int]:
    """Deterministic merge election over the gathered ballots (the
    PV-Tree majority vote): candidates rank by (vote count descending,
    best nominated gini ascending, attribute index ascending) and the
    top ``min(2k, f)`` win. Every rank elects from the identical
    gathered ballots, so the winner set is replicated by construction —
    no further collective is needed. Returns winning attribute indices
    in schema order."""
    votes: dict[int, int] = {}
    best: dict[int, float] = {}
    for ballot in ballots:
        for row in ballot:
            a = int(row[0])
            g = float(row[1])
            votes[a] = votes.get(a, 0) + 1
            if g < best.get(a, float("inf")):
                best[a] = g
    n_win = min(2 * top_k, n_attrs)
    ranked = sorted(
        votes, key=lambda a: (-votes[a], best.get(a, float("inf")), a)
    )
    return sorted(ranked[:n_win])


def _exchange_voting(
    ctx: RankContext,
    schema: Schema,
    local: NodeStats,
    total_counts: np.ndarray,
    config: PCloudsConfig,
) -> tuple[Split | None, list[AliveInterval]]:
    """Nominate → vote → exchange only the elected candidates through
    the attribute-owner machinery."""
    comm = ctx.comm
    ballot = _nominate(ctx, schema, local, config)
    if ctx.observers:
        ctx.notify(
            "on_exchange_payload",
            config.exchange,
            payload_nbytes(ballot) * (comm.size - 1),
        )
    ballots = comm.vote(ballot)
    elected = _elect_candidates(
        ballots, len(schema.attributes), config.vote_top_k
    )
    attrs = [schema.attributes[i] for i in elected]
    if ctx.observers:
        ctx.notify("on_vote_election", (tuple(a.name for a in attrs),))
    return _exchange_attribute_based(
        ctx, schema, local, total_counts, config, attrs=attrs
    )


# -- distributed method (interval-granular RAW ownership) -----------------


def _interval_block(q: int, size: int, rank: int) -> tuple[int, int]:
    """Contiguous block of interval indices owned by ``rank`` (contiguity
    is what lets one prefix sum recover the cumulative counts)."""
    return rank * q // size, (rank + 1) * q // size


def _exchange_distributed(
    ctx: RankContext,
    schema: Schema,
    local: NodeStats,
    total_counts: np.ndarray,
    config: PCloudsConfig,
) -> tuple[Split | None, list[AliveInterval]]:
    comm = ctx.comm
    size, rank = comm.size, comm.rank
    c = schema.n_classes
    num_names = [a.name for a in schema.numeric]

    # route each attribute's interval rows to the interval-block owners;
    # categorical matrices keep attribute-based ownership (they are small)
    parts: list[dict] = [{"num": {}, "cat": {}} for _ in range(size)]
    for ai, a in enumerate(schema.attributes):
        if a.is_numeric:
            ns = local.numeric[a.name]
            q = ns.n_intervals
            for d in range(size):
                lo, hi = _interval_block(q, size, d)
                if lo < hi:
                    parts[d]["num"][a.name] = (
                        lo, ns.hist[lo:hi], ns.vmin[lo:hi], ns.vmax[lo:hi]
                    )
        else:
            parts[attribute_owner(ai, size)]["cat"][a.name] = (
                local.categorical[a.name]
            )
    if ctx.observers:
        ctx.notify(
            "on_exchange_payload",
            config.exchange,
            sum(payload_nbytes(parts[d]) for d in range(size) if d != rank),
        )
    incoming = comm.alltoall(parts)

    # combine this rank's interval block per attribute
    blocks: dict[str, tuple[int, np.ndarray, np.ndarray, np.ndarray]] = {}
    for name in num_names:
        pieces = [src["num"][name] for src in incoming if name in src["num"]]
        if not pieces:
            continue
        lo = pieces[0][0]
        hist = pieces[0][1].copy()
        vmin = pieces[0][2].copy()
        vmax = pieces[0][3].copy()
        for piece in pieces[1:]:
            hist += piece[1]
            np.minimum(vmin, piece[2], out=vmin)
            np.maximum(vmax, piece[3], out=vmax)
        blocks[name] = (lo, hist, vmin, vmax)
        ctx.charge_compute(ops=hist.size * size)

    # one parallel prefix sum recovers each block's base cumulative counts
    totals = np.stack(
        [
            blocks[n][1].sum(axis=0) if n in blocks else np.zeros(c, np.int64)
            for n in num_names
        ]
    ) if num_names else np.zeros((0, c), dtype=np.int64)
    inclusive = comm.scan(totals)
    base = {
        n: inclusive[i] - totals[i] for i, n in enumerate(num_names)
    }

    # boundary sweep over the owned block of every attribute
    best_local: Split | None = None
    for name, (lo, hist, vmin, vmax) in blocks.items():
        bounds = local.numeric[name].boundaries
        cum = base[name][None, :] + np.cumsum(hist, axis=0)
        ctx.charge_compute(ops=3 * hist.size)
        cand = _best_block_boundary_split(name, bounds, lo, cum, total_counts)
        if (
            cand is not None
            and (
                best_local is None
                or cand.gini < best_local.gini
                or (cand.gini == best_local.gini
                    and cand.order_key() < best_local.order_key())
            )
        ):
            best_local = cand

    # categorical candidates at their attribute owners
    for name, matrix_pieces in (
        (n, [src["cat"][n] for src in incoming if n in src["cat"]])
        for n in (a.name for a in schema.categorical)
    ):
        if not matrix_pieces:
            continue
        combined = matrix_pieces[0].copy()
        for piece in matrix_pieces[1:]:
            combined += piece
        ctx.charge_compute(ops=combined.size * size)
        res = best_categorical_split(combined, config.clouds.enumerate_limit)
        if res is not None:
            cand = Split(
                attribute=name, kind=CATEGORICAL_SPLIT, gini=res[0],
                left_codes=res[1],
            )
            if (
                best_local is None
                or cand.gini < best_local.gini
                or (cand.gini == best_local.gini
                    and cand.order_key() < best_local.order_key())
            ):
                best_local = cand

    value = best_local.gini if best_local is not None else float("inf")
    gini_min, split, _ = comm.allreduce_minloc(
        value,
        best_local,
        tiebreak=best_local.order_key() if best_local is not None else None,
    )
    if split is None:
        return None, []
    if config.clouds.method != "sse":
        return split, []

    # alive determination directly at the interval owners
    from repro.clouds.gini import gini_lower_bound

    my_alive: list[AliveInterval] = []
    for name, (lo, hist, vmin, vmax) in blocks.items():
        bounds = local.numeric[name].boundaries
        cum = base[name][None, :] + np.cumsum(hist, axis=0)
        left = cum - hist
        ctx.charge_compute(
            ops=hist.shape[0] * c * (2 ** min(c, 16))
        )
        for i in range(hist.shape[0]):
            count = int(hist[i].sum())
            if count < 2 or not vmin[i] < vmax[i]:
                continue
            est = gini_lower_bound(
                left[i].astype(np.float64),
                hist[i].astype(np.float64),
                np.asarray(total_counts, dtype=np.float64),
            )
            if est < gini_min:
                idx = lo + i
                my_alive.append(
                    AliveInterval(
                        attribute=name,
                        index=idx,
                        lo=float(bounds[idx - 1]) if idx > 0 else -np.inf,
                        hi=float(bounds[idx]) if idx < len(bounds) else np.inf,
                        left_cum=left[i].astype(np.float64),
                        count=count,
                        gini_est=float(est),
                    )
                )
    gathered = comm.allgather(_encode_alive(my_alive))
    alive = [iv for chunk in gathered for iv in _decode_alive(chunk)]
    alive.sort(key=lambda iv: (iv.attribute, iv.index))
    return split, alive


# -- naive full replication (ablation) ------------------------------------


def _merge_stat_dicts(a: dict, b: dict) -> dict:
    """Elementwise combine: histograms/count matrices add; the numeric
    (hist, vmin, vmax) triples add/min/max."""
    out = {}
    for k in a:
        if isinstance(a[k], tuple):
            out[k] = (
                a[k][0] + b[k][0],
                np.minimum(a[k][1], b[k][1]),
                np.maximum(a[k][2], b[k][2]),
            )
        else:
            out[k] = a[k] + b[k]
    return out


def _exchange_allreduce(
    ctx: RankContext,
    schema: Schema,
    local: NodeStats,
    total_counts: np.ndarray,
    config: PCloudsConfig,
) -> tuple[Split | None, list[AliveInterval]]:
    from repro.clouds.ss import find_split_ss

    payload = {}
    for a in schema.attributes:
        if a.is_numeric:
            ns = local.numeric[a.name]
            payload[a.name] = (ns.hist, ns.vmin, ns.vmax)
        else:
            payload[a.name] = local.categorical[a.name]
    if ctx.observers:
        ctx.notify("on_exchange_payload", config.exchange, payload_nbytes(payload))
    combined = ctx.comm.allreduce(payload, op=_merge_stat_dicts)
    ctx.charge_compute(
        ops=sum(
            (v[0].size if isinstance(v, tuple) else v.size)
            for v in combined.values()
        )
        * np.log2(max(ctx.comm.size, 2))
    )
    stats = NodeStats(total=np.asarray(total_counts, dtype=np.int64))
    for a in schema.attributes:
        if a.is_numeric:
            hist, vmin, vmax = combined[a.name]
            stats.numeric[a.name] = NumericStats(
                boundaries=local.numeric[a.name].boundaries,
                hist=hist,
                vmin=vmin,
                vmax=vmax,
            )
        else:
            stats.categorical[a.name] = combined[a.name]
    split = find_split_ss(stats, schema, config.clouds.enumerate_limit)
    q_total = sum(ns.n_intervals for ns in stats.numeric.values())
    ctx.charge_compute(ops=3 * q_total * schema.n_classes)
    if split is None:
        return None, []
    if config.clouds.method != "sse":
        return split, []
    alive = determine_alive_intervals(stats, schema, split.gini)
    ctx.charge_compute(
        ops=q_total * schema.n_classes * (2 ** min(schema.n_classes, 16))
    )
    alive.sort(key=lambda iv: (iv.attribute, iv.index))  # same order as the
    return split, alive  # attribute-based path, so downstream LPT agrees


# -- level-batched exchange (frontier_batching="level") -----------------------


def exchange_level_stats(
    ctx: RankContext,
    schema: Schema,
    locals_list: list[NodeStats],
    counts_list: list[np.ndarray],
    config: PCloudsConfig,
) -> list[tuple[Split | None, list[AliveInterval]]]:
    """Batched :func:`exchange_node_stats` for every large node of one
    frontier level: the same combines and sweeps, but all nodes'
    statistics travel in **one** alltoall, the per-node minima are
    elected in **one** k-way min-reduction, and (for SSE) all nodes'
    alive statuses replicate in **one** allgather — so the collective
    count per level is constant in the frontier width.

    Returns one ``(split, alive)`` pair per node, in frontier order,
    each bit-identical to what the per-node exchange produces.
    """
    if not locals_list:
        return []
    ctx.notify("on_stats_exchange", config.exchange, len(locals_list))
    if config.exchange == "attribute":
        return _exchange_attribute_level(
            ctx, schema, locals_list, counts_list, config
        )
    if config.exchange == "distributed":
        return _exchange_distributed_level(
            ctx, schema, locals_list, counts_list, config
        )
    if config.exchange == "voting":
        return _exchange_voting_level(
            ctx, schema, locals_list, counts_list, config
        )
    return _exchange_allreduce_level(ctx, schema, locals_list, counts_list, config)


def _exchange_attribute_level(
    ctx: RankContext,
    schema: Schema,
    locals_list: list[NodeStats],
    counts_list: list[np.ndarray],
    config: PCloudsConfig,
    attrs_list: list[Sequence[Attribute]] | None = None,
) -> list[tuple[Split | None, list[AliveInterval]]]:
    """``attrs_list`` restricts each node's exchange to its own elected
    candidate subset (the voting path); ``None`` exchanges the full
    schema for every node — the exact attribute-based method."""
    comm = ctx.comm
    size, rank = comm.size, comm.rank
    c = schema.n_classes
    k = len(locals_list)
    if attrs_list is None:
        attrs_list = [list(schema.attributes)] * k

    # one alltoall ships every node's local vectors, keyed (node, attr)
    parts: list[dict[tuple[int, str], object]] = [dict() for _ in range(size)]
    for j, local in enumerate(locals_list):
        for i, a in enumerate(attrs_list[j]):
            dest = attribute_owner(i, size)
            if a.is_numeric:
                ns = local.numeric[a.name]
                parts[dest][(j, a.name)] = (ns.hist, ns.vmin, ns.vmax)
            else:
                parts[dest][(j, a.name)] = local.categorical[a.name]
    if ctx.observers:
        ctx.notify(
            "on_exchange_payload",
            config.exchange,
            sum(payload_nbytes(parts[d]) for d in range(size) if d != rank),
        )
    incoming = comm.alltoall(parts)

    # owner: combine and sweep per (node, owned attribute) — identical
    # arithmetic and tie behavior to the per-node exchange
    global_num: list[dict[str, NumericStats]] = [dict() for _ in range(k)]
    best_local: list[Split | None] = [None] * k
    for j in range(k):
        local = locals_list[j]
        for name in _owned_attributes(attrs_list[j], rank, size):
            attr = schema.attribute(name)
            if attr.is_numeric:
                combined = incoming[0][(j, name)][0].copy()
                vmin = incoming[0][(j, name)][1].copy()
                vmax = incoming[0][(j, name)][2].copy()
                for piece in incoming[1:]:
                    combined += piece[(j, name)][0]
                    np.minimum(vmin, piece[(j, name)][1], out=vmin)
                    np.maximum(vmax, piece[(j, name)][2], out=vmax)
                ctx.charge_compute(ops=combined.size * size)
                bounds = local.numeric[name].boundaries
                global_num[j][name] = NumericStats(
                    boundaries=bounds, hist=combined, vmin=vmin, vmax=vmax
                )
                ctx.charge_compute(ops=3 * combined.size)
                cand = _best_boundary_split_of(
                    name, bounds, combined, counts_list[j]
                )
            else:
                combined = incoming[0][(j, name)].copy()
                for piece in incoming[1:]:
                    combined += piece[(j, name)]
                ctx.charge_compute(ops=combined.size * size)
                res = best_categorical_split(
                    combined, config.clouds.enumerate_limit
                )
                ctx.charge_compute(ops=combined.size * attr.cardinality)
                cand = (
                    Split(
                        attribute=name,
                        kind=CATEGORICAL_SPLIT,
                        gini=res[0],
                        left_codes=res[1],
                    )
                    if res is not None
                    else None
                )
            if cand is not None and (
                best_local[j] is None or cand.gini < best_local[j].gini
            ):
                best_local[j] = cand

    # one batched min-election over all k nodes
    elected = comm.allreduce_minloc_many(
        [s.gini if s is not None else float("inf") for s in best_local],
        best_local,
        tiebreaks=[
            s.order_key() if s is not None else None for s in best_local
        ],
    )
    splits = [e[1] for e in elected]
    if config.clouds.method != "sse":
        return [(s, []) for s in splits]

    # owners determine alive intervals for every node whose split exists;
    # one allgather replicates all statuses, tagged by node index
    active = [j for j in range(k) if splits[j] is not None]
    if not active:
        return [(s, []) for s in splits]
    my_alive: list[tuple[int, tuple]] = []
    for j in active:
        gini_min = elected[j][0]
        for name, ns in global_num[j].items():
            stats_one = NodeStats(
                total=np.asarray(counts_list[j], dtype=np.int64),
                numeric={name: ns},
            )
            one_schema = Schema(
                attributes=(schema.attribute(name),), n_classes=c
            )
            found = determine_alive_intervals(stats_one, one_schema, gini_min)
            ctx.charge_compute(ops=ns.hist.shape[0] * c * (2 ** min(c, 16)))
            my_alive.extend((j, enc) for enc in _encode_alive(found))
    gathered = ctx.comm.allgather(my_alive)
    alive_by_node: list[list[AliveInterval]] = [[] for _ in range(k)]
    for chunk in gathered:
        for j, enc in chunk:
            alive_by_node[j].extend(_decode_alive([enc]))
    for lst in alive_by_node:
        lst.sort(key=lambda iv: (iv.attribute, iv.index))
    return [(splits[j], alive_by_node[j]) for j in range(k)]


def _exchange_voting_level(
    ctx: RankContext,
    schema: Schema,
    locals_list: list[NodeStats],
    counts_list: list[np.ndarray],
    config: PCloudsConfig,
) -> list[tuple[Split | None, list[AliveInterval]]]:
    """Batched voting: all frontier nodes' ballots travel in **one**
    vote collective, each node's candidates are elected independently,
    and one restricted batched attribute exchange follows — the
    collective count per level stays constant in the frontier width."""
    comm = ctx.comm
    my_ballots = [
        _nominate(ctx, schema, local, config) for local in locals_list
    ]
    if ctx.observers:
        ctx.notify(
            "on_exchange_payload",
            config.exchange,
            payload_nbytes(my_ballots) * (comm.size - 1),
        )
    gathered = comm.vote(my_ballots)
    attrs_list: list[Sequence[Attribute]] = []
    names_list: list[tuple[str, ...]] = []
    for j in range(len(locals_list)):
        elected = _elect_candidates(
            [rank_ballots[j] for rank_ballots in gathered],
            len(schema.attributes),
            config.vote_top_k,
        )
        attrs = [schema.attributes[i] for i in elected]
        attrs_list.append(attrs)
        names_list.append(tuple(a.name for a in attrs))
    if ctx.observers:
        ctx.notify("on_vote_election", tuple(names_list))
    return _exchange_attribute_level(
        ctx, schema, locals_list, counts_list, config, attrs_list=attrs_list
    )


def _exchange_distributed_level(
    ctx: RankContext,
    schema: Schema,
    locals_list: list[NodeStats],
    counts_list: list[np.ndarray],
    config: PCloudsConfig,
) -> list[tuple[Split | None, list[AliveInterval]]]:
    comm = ctx.comm
    size, rank = comm.size, comm.rank
    c = schema.n_classes
    k = len(locals_list)
    num_names = [a.name for a in schema.numeric]

    # one alltoall routes every node's interval rows to the block owners
    parts: list[dict] = [{"num": {}, "cat": {}} for _ in range(size)]
    for j, local in enumerate(locals_list):
        for ai, a in enumerate(schema.attributes):
            if a.is_numeric:
                ns = local.numeric[a.name]
                q = ns.n_intervals
                for d in range(size):
                    lo, hi = _interval_block(q, size, d)
                    if lo < hi:
                        parts[d]["num"][(j, a.name)] = (
                            lo, ns.hist[lo:hi], ns.vmin[lo:hi], ns.vmax[lo:hi]
                        )
            else:
                parts[attribute_owner(ai, size)]["cat"][(j, a.name)] = (
                    local.categorical[a.name]
                )
    if ctx.observers:
        ctx.notify(
            "on_exchange_payload",
            config.exchange,
            sum(payload_nbytes(parts[d]) for d in range(size) if d != rank),
        )
    incoming = comm.alltoall(parts)

    # combine this rank's interval block per (node, attribute)
    blocks: dict[tuple[int, str], tuple[int, np.ndarray, np.ndarray, np.ndarray]] = {}
    for j in range(k):
        for name in num_names:
            key = (j, name)
            pieces = [src["num"][key] for src in incoming if key in src["num"]]
            if not pieces:
                continue
            lo = pieces[0][0]
            hist = pieces[0][1].copy()
            vmin = pieces[0][2].copy()
            vmax = pieces[0][3].copy()
            for piece in pieces[1:]:
                hist += piece[1]
                np.minimum(vmin, piece[2], out=vmin)
                np.maximum(vmax, piece[3], out=vmax)
            blocks[key] = (lo, hist, vmin, vmax)
            ctx.charge_compute(ops=hist.size * size)

    # one prefix sum over all nodes' stacked per-attribute block totals
    keys = [(j, n) for j in range(k) for n in num_names]
    totals = np.stack(
        [
            blocks[key][1].sum(axis=0) if key in blocks else np.zeros(c, np.int64)
            for key in keys
        ]
    ) if keys else np.zeros((0, c), dtype=np.int64)
    inclusive = comm.scan(totals)
    base = {key: inclusive[i] - totals[i] for i, key in enumerate(keys)}

    # per-node boundary sweeps and categorical candidates
    best_local: list[Split | None] = [None] * k
    for (j, name), (lo, hist, vmin, vmax) in blocks.items():
        bounds = locals_list[j].numeric[name].boundaries
        cum = base[(j, name)][None, :] + np.cumsum(hist, axis=0)
        ctx.charge_compute(ops=3 * hist.size)
        cand = _best_block_boundary_split(name, bounds, lo, cum, counts_list[j])
        if (
            cand is not None
            and (
                best_local[j] is None
                or cand.gini < best_local[j].gini
                or (cand.gini == best_local[j].gini
                    and cand.order_key() < best_local[j].order_key())
            )
        ):
            best_local[j] = cand
    for j in range(k):
        for name in (a.name for a in schema.categorical):
            key = (j, name)
            matrix_pieces = [
                src["cat"][key] for src in incoming if key in src["cat"]
            ]
            if not matrix_pieces:
                continue
            combined = matrix_pieces[0].copy()
            for piece in matrix_pieces[1:]:
                combined += piece
            ctx.charge_compute(ops=combined.size * size)
            res = best_categorical_split(combined, config.clouds.enumerate_limit)
            if res is not None:
                cand = Split(
                    attribute=name, kind=CATEGORICAL_SPLIT, gini=res[0],
                    left_codes=res[1],
                )
                if (
                    best_local[j] is None
                    or cand.gini < best_local[j].gini
                    or (cand.gini == best_local[j].gini
                        and cand.order_key() < best_local[j].order_key())
                ):
                    best_local[j] = cand

    # one batched min-election over all k nodes
    elected = comm.allreduce_minloc_many(
        [s.gini if s is not None else float("inf") for s in best_local],
        best_local,
        tiebreaks=[
            s.order_key() if s is not None else None for s in best_local
        ],
    )
    splits = [e[1] for e in elected]
    if config.clouds.method != "sse":
        return [(s, []) for s in splits]

    # alive determination directly at the interval owners, one allgather
    from repro.clouds.gini import gini_lower_bound

    active = [j for j in range(k) if splits[j] is not None]
    if not active:
        return [(s, []) for s in splits]
    my_alive: list[tuple[int, tuple]] = []
    for j in active:
        gini_min = elected[j][0]
        total = np.asarray(counts_list[j], dtype=np.float64)
        for (jj, name), (lo, hist, vmin, vmax) in blocks.items():
            if jj != j:
                continue
            bounds = locals_list[j].numeric[name].boundaries
            cum = base[(j, name)][None, :] + np.cumsum(hist, axis=0)
            left = cum - hist
            ctx.charge_compute(ops=hist.shape[0] * c * (2 ** min(c, 16)))
            for i in range(hist.shape[0]):
                count = int(hist[i].sum())
                if count < 2 or not vmin[i] < vmax[i]:
                    continue
                est = gini_lower_bound(
                    left[i].astype(np.float64),
                    hist[i].astype(np.float64),
                    total,
                )
                if est < gini_min:
                    idx = lo + i
                    my_alive.append(
                        (
                            j,
                            (
                                name,
                                idx,
                                float(bounds[idx - 1]) if idx > 0 else -np.inf,
                                float(bounds[idx]) if idx < len(bounds) else np.inf,
                                left[i].astype(np.float64),
                                count,
                                float(est),
                            ),
                        )
                    )
    gathered = comm.allgather(my_alive)
    alive_by_node: list[list[AliveInterval]] = [[] for _ in range(k)]
    for chunk in gathered:
        for j, enc in chunk:
            alive_by_node[j].extend(_decode_alive([enc]))
    for lst in alive_by_node:
        lst.sort(key=lambda iv: (iv.attribute, iv.index))
    return [(splits[j], alive_by_node[j]) for j in range(k)]


def _exchange_allreduce_level(
    ctx: RankContext,
    schema: Schema,
    locals_list: list[NodeStats],
    counts_list: list[np.ndarray],
    config: PCloudsConfig,
) -> list[tuple[Split | None, list[AliveInterval]]]:
    from repro.clouds.ss import find_split_ss

    k = len(locals_list)
    payload: dict[tuple[int, str], object] = {}
    for j, local in enumerate(locals_list):
        for a in schema.attributes:
            if a.is_numeric:
                ns = local.numeric[a.name]
                payload[(j, a.name)] = (ns.hist, ns.vmin, ns.vmax)
            else:
                payload[(j, a.name)] = local.categorical[a.name]
    if ctx.observers:
        ctx.notify("on_exchange_payload", config.exchange, payload_nbytes(payload))
    combined = ctx.comm.allreduce(payload, op=_merge_stat_dicts)
    ctx.charge_compute(
        ops=sum(
            (v[0].size if isinstance(v, tuple) else v.size)
            for v in combined.values()
        )
        * np.log2(max(ctx.comm.size, 2))
    )
    out: list[tuple[Split | None, list[AliveInterval]]] = []
    for j in range(k):
        stats = NodeStats(total=np.asarray(counts_list[j], dtype=np.int64))
        for a in schema.attributes:
            if a.is_numeric:
                hist, vmin, vmax = combined[(j, a.name)]
                stats.numeric[a.name] = NumericStats(
                    boundaries=locals_list[j].numeric[a.name].boundaries,
                    hist=hist,
                    vmin=vmin,
                    vmax=vmax,
                )
            else:
                stats.categorical[a.name] = combined[(j, a.name)]
        split = find_split_ss(stats, schema, config.clouds.enumerate_limit)
        q_total = sum(ns.n_intervals for ns in stats.numeric.values())
        ctx.charge_compute(ops=3 * q_total * schema.n_classes)
        if split is None or config.clouds.method != "sse":
            out.append((split, []))
            continue
        alive = determine_alive_intervals(stats, schema, split.gini)
        ctx.charge_compute(
            ops=q_total * schema.n_classes * (2 ** min(schema.n_classes, 16))
        )
        alive.sort(key=lambda iv: (iv.attribute, iv.index))
        out.append((split, alive))
    return out


# -- alive-interval wire format ---------------------------------------------


def _encode_alive(alive: list[AliveInterval]) -> list[tuple]:
    return [
        (iv.attribute, iv.index, iv.lo, iv.hi, iv.left_cum, iv.count, iv.gini_est)
        for iv in alive
    ]


def _decode_alive(chunk: list[tuple]) -> list[AliveInterval]:
    return [
        AliveInterval(
            attribute=t[0],
            index=t[1],
            lo=t[2],
            hi=t[3],
            left_cum=t[4],
            count=t[5],
            gini_est=t[6],
        )
        for t in chunk
    ]
