"""Distributed training sets: the random initial placement of records
across the machine's local disks (Section 3's problem statement — "the
data is initially distributed at random among the p processors")."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.machine import Cluster, RankContext
from repro.data.distribute import _take, load_fragment, split_indices
from repro.data.schema import Schema
from repro.ooc.columnset import ColumnSet


@dataclass
class DistributedDataset:
    """A training set spread over one cluster's disks.

    Holds the rank contexts (whose disks contain the fragments) so a
    subsequent ``Cluster.run(..., contexts=...)`` operates on the loaded
    data. Loading happens at simulated time zero and clocks are reset
    afterwards — the paper's timings start after the initial
    distribution.
    """

    cluster: Cluster
    schema: Schema
    contexts: list[RankContext]
    columnsets: list[ColumnSet]
    n_total: int
    #: per-rank original-row indices of each rank's fragment (None when
    #: the dataset was assembled outside :meth:`create`); the forest
    #: layer uses these to express bagging masks over *global* row ids so
    #: bags are invariant to the machine layout
    row_ids: list[np.ndarray] | None = None

    @classmethod
    def create(
        cls,
        cluster: Cluster,
        schema: Schema,
        columns: dict[str, np.ndarray],
        labels: np.ndarray,
        *,
        seed: int = 0,
        batch_rows: int | None = None,
        policy: str = "shuffle",
    ) -> "DistributedDataset":
        """Distribute in-memory columns onto the cluster's disks.

        ``batch_rows`` sets the on-disk chunk granularity; ``None`` lets
        each rank derive it from its disk model and buffer pool
        (:func:`repro.ooc.columnset.default_batch_rows`).

        ``policy`` is ``"shuffle"`` (equal shares of a random permutation,
        the experimental setup) or ``"multinomial"`` (independent uniform
        placement, the Theorem-1 model).
        """
        ids = split_indices(len(labels), cluster.n_ranks, seed=seed, policy=policy)
        frags = [_take(columns, labels, idx) for idx in ids]
        contexts = cluster.make_contexts()
        run = cluster.run(
            load_fragment,
            schema,
            frags,
            batch_rows,
            contexts=contexts,
            reset_clocks=True,
        )
        for ctx in contexts:  # timings start after the initial distribution
            ctx.clock.now = 0.0
            ctx.timer.totals.clear()
        return cls(
            cluster=cluster,
            schema=schema,
            contexts=contexts,
            columnsets=list(run.results),
            n_total=int(len(labels)),
            row_ids=ids,
        )

    @property
    def n_ranks(self) -> int:
        return self.cluster.n_ranks

    def local_rows(self) -> list[int]:
        return [cs.nrows for cs in self.columnsets]
