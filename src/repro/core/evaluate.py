"""Distributed evaluation of a fitted classifier.

The paper's accuracy methodology (Section 1): a held-out test set
measures the classifier's generalisation. At pCLOUDS scale the test set
is itself disk-resident and distributed, so evaluation is an SPMD
program: every rank streams its local test fragment through the
(replicated, small) tree and the per-class confusion counts are combined
with one global reduction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.machine import RankContext
from repro.clouds.tree import DecisionTree

from .dataset import DistributedDataset

__all__ = ["ParallelEvaluation", "parallel_evaluate"]


@dataclass(frozen=True)
class ParallelEvaluation:
    """Outcome of one distributed evaluation."""

    confusion: np.ndarray  # (c, c): rows true, cols predicted
    n_records: int
    elapsed: float  # simulated seconds

    @property
    def accuracy(self) -> float:
        if self.n_records == 0:
            return 1.0
        return float(np.trace(self.confusion)) / self.n_records

    @property
    def error_rate(self) -> float:
        return 1.0 - self.accuracy

    def per_class_recall(self) -> np.ndarray:
        totals = self.confusion.sum(axis=1)
        with np.errstate(divide="ignore", invalid="ignore"):
            return np.where(
                totals > 0, np.diag(self.confusion) / np.maximum(totals, 1), 1.0
            )


def _evaluate_program(
    ctx: RankContext, columnsets, tree_wire: dict, schema
) -> np.ndarray:
    from repro.clouds.tree import DecisionTree as _DT

    tree = _DT.from_dict(tree_wire, schema)
    cs = columnsets[ctx.rank]
    c = schema.n_classes
    confusion = np.zeros((c, c), dtype=np.int64)
    for batch, labels in cs.iter_batches():
        preds = tree.predict(batch)
        # one comparison per record per tree level, roughly
        ctx.charge_compute(ops=len(labels) * max(tree.depth, 1))
        confusion += np.bincount(
            labels.astype(np.int64) * c + preds.astype(np.int64),
            minlength=c * c,
        ).reshape(c, c)
    return ctx.comm.allreduce(confusion)


def parallel_evaluate(
    dataset: DistributedDataset, tree: DecisionTree
) -> ParallelEvaluation:
    """Stream every rank's local fragment through ``tree`` and combine the
    confusion matrices. Does not consume the dataset (read-only)."""
    run = dataset.cluster.run(
        _evaluate_program,
        dataset.columnsets,
        tree.to_dict(),
        dataset.schema,
        contexts=dataset.contexts,
        reset_clocks=True,
    )
    confusion = run.results[0]
    return ParallelEvaluation(
        confusion=confusion,
        n_records=int(confusion.sum()),
        elapsed=run.elapsed,
    )
