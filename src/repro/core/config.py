"""Configuration of the parallel classifier."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.clouds.builder import CloudsConfig

#: the statistics-exchange strategies :mod:`repro.core.stats_exchange`
#: implements, in documentation order. The first three are *exact* (they
#: produce the identical classifier); ``"voting"`` is the PV-Tree-style
#: approximation that only exchanges the elected top attributes.
EXCHANGE_STRATEGIES = ("attribute", "distributed", "allreduce", "voting")


@dataclass(frozen=True)
class PCloudsConfig:
    """pCLOUDS knobs (Section 5 / Section 6 of the paper).

    ``clouds`` — the underlying sequential-method parameters (q_root,
    sample size, stopping criteria; the paper used q_root = 10,000 at the
    root for 3.6–7.2M records — scale it with your data).

    ``q_switch`` — the mixed-parallelism threshold: a node whose interval
    count q(node) drops to this value or below becomes a *small node* and
    is deferred to the delayed task-parallelism phase ("we used a value of
    ten (in terms of the number of intervals) for the threshold"). Pass
    the string ``"auto"`` to derive the threshold from the machine's cost
    models (:mod:`repro.core.switching` — the analytic criterion the paper
    leaves as an open question).

    ``exchange`` — how interval statistics become global:
    ``"attribute"`` is the paper's replication method with the
    attribute-based approach (each attribute's global vectors are reduced
    to one owner processor); ``"distributed"`` is the paper's alternative
    distributed method (interval-granular RAW ownership plus a parallel
    prefix sum, which the paper discussed but did not implement);
    ``"allreduce"`` is the naive variant that replicates *all* global
    vectors on every processor. Those three produce the identical
    classifier; the ablation benchmark measures their costs.
    ``"voting"`` is the PV-Tree-style top-k voting strategy (Meng & Ke
    et al. 2016): each rank nominates its ``vote_top_k`` locally best
    attributes, a global vote elects at most ``2·vote_top_k``
    candidates, and only the elected attributes' statistics are
    exchanged — shrinking the per-level stats payload from
    O(attributes) to O(k). Voting is an **approximation**: the elected
    set can miss the true global-best attribute, so it is opt-in; with
    ``vote_top_k >= n_attributes`` every attribute is elected and the
    tree is bit-identical to ``"attribute"``.

    ``vote_top_k`` — nominations per rank for ``exchange="voting"``
    (ignored by the exact strategies).

    ``frontier_batching`` — how the breadth-first large-node frontier is
    driven. ``"level"`` (the default) fuses the per-node collectives of
    every node on one frontier level into single batched exchanges — one
    stats alltoall, one k-way split election, one alive allgather, one
    member-routing alltoall, one interior election and one stacked
    left-count allreduce per level — so the collective count per level
    is constant in the frontier width (the communication-batching idea
    of Meng et al. 2016). ``"per_node"`` is the paper's original
    one-node-at-a-time driver, kept as an ablation baseline; both modes
    produce bit-identical trees.
    """

    clouds: CloudsConfig = field(default_factory=CloudsConfig)
    q_switch: int | str = 10
    exchange: str = "attribute"
    frontier_batching: str = "level"
    vote_top_k: int = 8

    def __post_init__(self) -> None:
        if isinstance(self.q_switch, str):
            if self.q_switch != "auto":
                raise ValueError(
                    f"q_switch must be an int or 'auto', got {self.q_switch!r}"
                )
        elif self.q_switch < 1:
            raise ValueError("q_switch must be at least 1")
        if self.exchange not in EXCHANGE_STRATEGIES:
            options = ", ".join(repr(s) for s in EXCHANGE_STRATEGIES)
            raise ValueError(
                f"exchange must be one of {options}, got {self.exchange!r}"
            )
        if self.vote_top_k < 1:
            raise ValueError(
                f"vote_top_k must be at least 1, got {self.vote_top_k!r}"
            )
        if self.frontier_batching not in ("level", "per_node"):
            raise ValueError(
                "frontier_batching must be 'level' or 'per_node', got "
                f"{self.frontier_batching!r}"
            )
