"""Checkpointing of pCLOUDS build state to rank-0's simulated disk.

The recovery unit is one frontier level: after every level of the
breadth-first build (and once more before the deferred small-task
phase), rank 0 serialises the full build state — open nodes, class
counts, sample points, and every rank's partition fragments — into a
single blob written through its :class:`~repro.ooc.disk.LocalDisk`, so
the checkpoint traffic is charged to the simulated clock like any other
disk access and rides the same CRC32/retry integrity layer as data
chunks.

A :class:`CheckpointStore` keeps the handle list host-side (the
simulated machine has no filesystem metadata model) and restores the
*latest readable* checkpoint: a corrupted blob is skipped and the next
older one used, so corruption of the checkpoint itself degrades recovery
granularity instead of killing it.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field

import numpy as np

from repro.ooc.backend import ChunkCorruptionError


@dataclass
class _Entry:
    label: str
    handle: object
    nbytes: int
    crc: int


@dataclass
class CheckpointStore:
    """Ordered log of build-state checkpoints on one rank's disk."""

    _entries: list[_Entry] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def labels(self) -> list[str]:
        return [e.label for e in self._entries]

    def save(self, disk, label: str, state: object) -> int:
        """Serialise ``state`` and write it as one chunk on ``disk``.

        Returns the blob size in bytes. The write is charged to the
        simulated clock; a transient backend error is retried by the
        disk with charged backoff.
        """
        blob = pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL)
        arr = np.frombuffer(blob, dtype=np.uint8)
        disk.charge_write(arr.nbytes)
        handle, crc = disk.store_chunk(arr)
        self._entries.append(_Entry(label, handle, arr.nbytes, crc))
        return arr.nbytes

    def load_latest(self, disk) -> tuple[str, object] | None:
        """Read back the newest checkpoint that passes its CRC.

        Returns ``(label, state)``, or ``None`` when no checkpoint is
        readable (the caller restarts from scratch). Corrupted entries
        are dropped from the log so they are not re-tried next time.
        """
        while self._entries:
            entry = self._entries[-1]
            disk.charge_read(entry.nbytes)
            try:
                arr = disk.fetch_chunk(entry.handle, entry.nbytes, entry.crc)
            except ChunkCorruptionError:
                self._entries.pop()
                continue
            return entry.label, pickle.loads(arr.tobytes())
        return None

    def clear(self) -> None:
        self._entries.clear()
