"""Delayed task parallelism for small nodes (Sections 3.5 and 5).

Once every large node has been processed, the accumulated small nodes are
assigned whole to single processors (cost-based LPT on the n·log n direct
build), their data is redistributed in **one** batched personalized
all-to-all (compute-dependent parallel I/O: read at the sources, ship,
write at the destination), and each owner then builds its subtrees
locally, in memory, with the exact direct method. Delaying and batching
is what saves the message startups; processors are *not* regrouped as
they go idle, matching the paper's implementation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.cluster.machine import RankContext
from repro.clouds.direct import StoppingRule, build_subtree_direct
from repro.clouds.tree import encode_node
from repro.data.schema import Schema
from repro.ooc.columnset import ColumnSet
from repro.ooc.memory import MemoryExceededError

from .alive import assign_by_cost
from .config import PCloudsConfig

__all__ = ["SmallTask", "process_small_tasks"]


@dataclass
class SmallTask:
    """One deferred node: its tree position, global size, global class
    counts, and this rank's local fragment."""

    node_id: int
    depth: int
    n_global: int
    class_counts: np.ndarray
    columnset: ColumnSet

    def build_cost(self) -> float:
        """Estimated direct-build cost (sorting every numeric attribute
        dominates)."""
        n = max(self.n_global, 2)
        return float(n * math.log2(n))


def process_small_tasks(
    ctx: RankContext,
    tasks: list[SmallTask],
    schema: Schema,
    config: PCloudsConfig,
) -> dict[int, dict]:
    """Run the delayed task-parallel phase; returns this rank's built
    subtrees as ``{node_id: encoded subtree}``.

    Collective: every rank calls with the same task list (same node ids
    and global sizes; local fragments differ).
    """
    comm = ctx.comm
    stopping = config.clouds.stopping()
    tasks = sorted(tasks, key=lambda t: t.node_id)
    owner = assign_by_cost([t.build_cost() for t in tasks], comm.size)
    loads = [0.0] * comm.size
    for k, t in enumerate(tasks):
        loads[owner[k]] += t.build_cost()
    # pass this rank's own load (not the whole vector): observers sit on
    # the base context, whose world rank need not index a group-sized
    # list when the builder runs inside a sub-communicator
    ctx.notify(
        "on_small_assignment",
        loads[comm.rank],
        sum(1 for o in owner if o == comm.rank),
    )

    # one batched all-to-all: every rank reads its local fragment of each
    # task it does not own and ships it to the owner
    parts: list[dict[int, tuple[dict, np.ndarray]]] = [dict() for _ in range(comm.size)]
    for k, t in enumerate(tasks):
        if owner[k] != comm.rank and t.columnset.nrows > 0:
            parts[owner[k]][k] = t.columnset.read_all()  # charges the read
        if owner[k] != comm.rank:
            t.columnset.delete()
    incoming = comm.alltoall(parts)

    # destination side of compute-dependent parallel I/O: spool the
    # received fragments to the local disk (all tasks arrive before any is
    # processed; memory cannot hold them all at once)
    spooled: dict[int, ColumnSet] = {}
    for src in incoming:
        for k, (cols, labels) in src.items():
            spool = spooled.get(k)
            if spool is None:
                spool = spooled[k] = ColumnSet(
                    ctx.disk, schema, name=f"small-{tasks[k].node_id}@{ctx.rank}"
                )
            spool.append_batch(cols, labels)  # charges the write

    # build owned subtrees one at a time, in memory
    subtrees: dict[int, dict] = {}
    for k, t in enumerate(tasks):
        if owner[k] != comm.rank:
            continue
        pieces_cols: list[dict] = []
        pieces_labels: list[np.ndarray] = []
        if t.columnset.nrows > 0:
            cols, labels = t.columnset.read_all()
            pieces_cols.append(cols)
            pieces_labels.append(labels)
        t.columnset.delete()
        if k in spooled:
            cols, labels = spooled[k].read_all()
            spooled[k].delete()
            pieces_cols.append(cols)
            pieces_labels.append(labels)
        if not pieces_labels:
            # every record of this task lived elsewhere and nothing came in
            # (cannot happen when n_global > 0, but stay defensive)
            continue
        columns = {
            name: np.concatenate([p[name] for p in pieces_cols])
            for name in schema.names
        }
        labels = np.concatenate(pieces_labels)
        row = schema.row_nbytes()

        def charge_node(n: int) -> None:
            # the direct method sorts every numeric attribute of the node;
            # a node that does not fit the memory budget runs out-of-core
            # instead and additionally streams its fragment (read) and
            # rewrites the two children (write)
            try:
                reservation = ctx.memory.reserve(n * row)
            except MemoryExceededError:
                ctx.charge_sort(n * max(len(schema.numeric), 1))
                ctx.disk.charge_read(n * row)
                ctx.disk.charge_write(n * row)
            else:
                with reservation:
                    ctx.charge_sort(n * max(len(schema.numeric), 1))

        root = build_subtree_direct(
            schema,
            columns,
            labels,
            stopping,
            depth=t.depth,
            next_id=0,
            enumerate_limit=config.clouds.enumerate_limit,
            on_node=charge_node,
        )
        subtrees[t.node_id] = encode_node(root)
    return subtrees
