"""Metrics registry: counters, gauges and fixed-bucket histograms.

Design constraints, in order:

1. **Determinism.** Every recorded value must be a function of the
   simulated execution only, never of host timing. The registry is
   therefore *sharded per rank*: each rank thread writes exclusively to
   its own :class:`RankShard`, so no ordering between threads is ever
   observable. Merging happens after the run (or at a level barrier,
   where happens-before is established by the communicator) by summing
   counters and histograms in rank order.
2. **Low overhead.** Recording is a dict update on a pre-built
   ``(name, label-values)`` tuple key — no locks, no string formatting,
   no timestamping beyond the simulated clock values callers already
   hold. Histograms use exemplar-free fixed bucket arrays.
3. **Prometheus compatibility.** Metric and label naming follow the
   Prometheus data model so :func:`repro.obs.prometheus.to_prometheus`
   is a straight serialization.

Label schema used by the pCLOUDS instrumentation (see
``docs/observability.md``): ``rank`` (decimal string), ``level``
(frontier level, ``"-"`` outside the level loop), ``phase`` (one of
``stats_exchange | alive_eval | partition | small_task | io |
collective | preprocess | checkpoint | recover | -``) and ``op`` (the
primitive name).
"""

from __future__ import annotations

import math
from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Iterable

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricSpec",
    "MetricsRegistry",
    "RankShard",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_BYTES_BUCKETS",
]

#: simulated-seconds buckets for primitive latencies (log-spaced; the
#: Table-1 startups sit around 1e-5..1e-4 s, full passes around seconds)
DEFAULT_LATENCY_BUCKETS = (
    1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0, 100.0, math.inf
)

#: payload-size buckets (power-of-16 spacing from one cache line up)
DEFAULT_BYTES_BUCKETS = (
    64.0, 1024.0, 16384.0, 262144.0, 4194304.0, 67108864.0, math.inf
)

_KINDS = ("counter", "gauge", "histogram")


@dataclass(frozen=True)
class MetricSpec:
    """Declaration of one metric family."""

    name: str
    kind: str  # "counter" | "gauge" | "histogram"
    help: str = ""
    labelnames: tuple[str, ...] = ()
    buckets: tuple[float, ...] = ()  # histograms only; must end with +inf

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"unknown metric kind {self.kind!r}")
        if self.kind == "histogram":
            if not self.buckets or self.buckets[-1] != math.inf:
                raise ValueError(
                    f"histogram {self.name!r} needs buckets ending in +inf"
                )
            if list(self.buckets) != sorted(self.buckets):
                raise ValueError(f"histogram {self.name!r} buckets not sorted")


# convenience aliases so callers can declare intent
def Counter(name: str, help: str = "", labelnames: Iterable[str] = ()) -> MetricSpec:
    """Monotonically increasing value (bytes moved, calls made)."""
    return MetricSpec(name, "counter", help, tuple(labelnames))


def Gauge(name: str, help: str = "", labelnames: Iterable[str] = ()) -> MetricSpec:
    """Point-in-time value (frontier width, live bytes)."""
    return MetricSpec(name, "gauge", help, tuple(labelnames))


def Histogram(
    name: str,
    help: str = "",
    labelnames: Iterable[str] = (),
    buckets: Iterable[float] = DEFAULT_LATENCY_BUCKETS,
) -> MetricSpec:
    """Fixed-bucket distribution (latencies, payload sizes)."""
    return MetricSpec(name, "histogram", help, tuple(labelnames), tuple(buckets))


class RankShard:
    """One rank's private slice of the registry.

    Only the owning rank thread may write; the merge reads after a
    happens-before edge (run join or a collective barrier), so no locks
    are needed anywhere on the hot path.
    """

    __slots__ = ("registry", "rank", "counters", "gauges", "histograms", "_buckets")

    def __init__(self, registry: "MetricsRegistry", rank: int) -> None:
        self.registry = registry
        self.rank = rank
        self.counters: dict[tuple[str, tuple[str, ...]], float] = {}
        self.gauges: dict[tuple[str, tuple[str, ...]], float] = {}
        # histogram cell: [bucket counts..., sum, count]
        self.histograms: dict[tuple[str, tuple[str, ...]], list[float]] = {}
        self._buckets: dict[str, tuple[float, ...]] = {}

    def inc(self, name: str, labels: tuple[str, ...] = (), value: float = 1.0) -> None:
        key = (name, labels)
        self.counters[key] = self.counters.get(key, 0.0) + value

    def set(self, name: str, labels: tuple[str, ...] = (), value: float = 0.0) -> None:
        self.gauges[(name, labels)] = float(value)

    def observe(self, name: str, labels: tuple[str, ...] = (), value: float = 0.0) -> None:
        buckets = self._buckets.get(name)
        if buckets is None:
            buckets = self._buckets[name] = self.registry.spec(name).buckets
        key = (name, labels)
        cell = self.histograms.get(key)
        if cell is None:
            cell = self.histograms[key] = [0.0] * (len(buckets) + 2)
        # first edge with value <= edge; the +inf sentinel guarantees a hit
        cell[bisect_left(buckets, value)] += 1.0
        cell[-2] += value
        cell[-1] += 1.0


@dataclass
class _Sample:
    """One merged series: label values + value (scalar or histogram cell)."""

    labels: tuple[str, ...]
    value: float | list[float]


class MetricsRegistry:
    """Spec table plus per-rank shards.

    Typical life cycle::

        registry = MetricsRegistry()
        registry.register(Counter("repro_disk_bytes_total", ..., ("rank", "op")))
        shard = registry.shard(rank)      # one per rank thread
        shard.inc("repro_disk_bytes_total", (str(rank), "read"), 4096)
        ...
        snap = registry.snapshot()        # deterministic merged view
    """

    def __init__(self) -> None:
        self._specs: dict[str, MetricSpec] = {}
        self._shards: dict[int, RankShard] = {}

    # -- declaration ---------------------------------------------------------
    def register(self, *specs: MetricSpec) -> None:
        for spec in specs:
            existing = self._specs.get(spec.name)
            if existing is not None and existing != spec:
                raise ValueError(
                    f"metric {spec.name!r} already registered with a "
                    "different spec"
                )
            self._specs[spec.name] = spec

    def spec(self, name: str) -> MetricSpec:
        return self._specs[name]

    @property
    def specs(self) -> list[MetricSpec]:
        return [self._specs[k] for k in sorted(self._specs)]

    # -- shards --------------------------------------------------------------
    def shard(self, rank: int) -> RankShard:
        got = self._shards.get(rank)
        if got is None:
            got = self._shards[rank] = RankShard(self, rank)
        return got

    @property
    def shards(self) -> list[RankShard]:
        return [self._shards[r] for r in sorted(self._shards)]

    # -- merging -------------------------------------------------------------
    def merged(self) -> dict[str, list[_Sample]]:
        """Deterministic merge of all shards: counters and histograms sum
        elementwise per (name, labels); gauges are written in rank order
        (later ranks win — instrumentation always includes a ``rank``
        label or records replicated values on rank 0 only, so this rule
        never loses information). Series are sorted by label values."""
        counters: dict[tuple[str, tuple[str, ...]], float] = {}
        gauges: dict[tuple[str, tuple[str, ...]], float] = {}
        hists: dict[tuple[str, tuple[str, ...]], list[float]] = {}
        for shard in self.shards:  # ascending rank order
            for key, v in shard.counters.items():
                counters[key] = counters.get(key, 0.0) + v
            for key, v in shard.gauges.items():
                gauges[key] = v
            for key, cell in shard.histograms.items():
                acc = hists.get(key)
                if acc is None:
                    hists[key] = list(cell)
                else:
                    for i, v in enumerate(cell):
                        acc[i] += v
        out: dict[str, list[_Sample]] = {name: [] for name in sorted(self._specs)}
        for store in (counters, gauges):
            for (name, labels), v in store.items():
                out.setdefault(name, []).append(_Sample(labels, v))
        for (name, labels), cell in hists.items():
            out.setdefault(name, []).append(_Sample(labels, cell))
        for name in out:
            out[name].sort(key=lambda s: s.labels)
        return out

    # -- snapshots -----------------------------------------------------------
    def snapshot(self) -> dict:
        """JSON-ready merged snapshot (the shape embedded in BENCH_*.json
        payloads and written by ``repro health --json-out``)."""
        merged = self.merged()
        families = []
        for spec in self.specs:
            samples = []
            for s in merged.get(spec.name, []):
                entry: dict = {
                    "labels": dict(zip(spec.labelnames, s.labels)),
                }
                if spec.kind == "histogram":
                    cell = s.value
                    entry["buckets"] = {
                        ("+Inf" if edge == math.inf else repr(edge)): cell[i]
                        for i, edge in enumerate(spec.buckets)
                    }
                    entry["sum"] = cell[-2]
                    entry["count"] = cell[-1]
                else:
                    entry["value"] = s.value
                samples.append(entry)
            families.append(
                {
                    "name": spec.name,
                    "kind": spec.kind,
                    "help": spec.help,
                    "samples": samples,
                }
            )
        return {"metrics": families}
