"""What-if engine: re-time the critical path under counterfactuals.

Given the extracted :class:`~repro.obs.critpath.CriticalPath`, each
:class:`Scenario` rescales the path's per-category seconds with the same
Table-1 closed forms (:mod:`repro.dnc.cost`) the profiler used to split
them — infinite disk bandwidth zeroes the disk categories, zero
collective startup zeroes the alpha terms, voting payloads shrink
stats-phase bandwidth by the exact :func:`~repro.dnc.cost.exchange_stats_bytes`
ratio, and perfect balance removes the slowest rank's sync-slack surplus.

Every estimate is a **bound**, not a prediction: the counterfactual run
would route its critical path differently (work currently hidden off the
path can surface once the dominant category shrinks), so the true
counterfactual elapsed lies in ``[estimate, baseline]`` and the reported
``speedup = baseline / estimate`` is an upper bound on the payoff. That
is exactly the decision-support number the scheduler roadmap items need:
if the *bound* is small, the optimisation cannot help; if it is large,
it might.

Tolerance note (pinned by ``tests/test_critpath.py``): on fault-free
runs the communicator charges collectives exactly their Table-1 cost
(cost-model drift == 1.0), so the ``disk_free`` estimate equals the
path's non-disk seconds *exactly*, and agrees with a
:class:`~repro.dnc.cost.DncCostModel` rebuilt on a zero-cost
:class:`~repro.cluster.diskmodel.DiskModel` to the same fidelity the
model has for the real run (the closed forms idealise frontier shape, so
we document and test agreement of the *ratio* within 15%).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dnc.cost import exchange_stats_bytes

from .critpath import CriticalPath

__all__ = [
    "Scenario",
    "WhatIfEstimate",
    "evaluate",
    "evaluate_all",
    "standard_scenarios",
    "voting_payload_ratio",
]


@dataclass(frozen=True)
class Scenario:
    """One counterfactual machine. Scales multiply the matching
    path-category seconds (0.0 = the resource becomes free); ``balanced``
    instead removes the end rank's busy-time surplus over the mean."""

    name: str
    description: str = ""
    disk_scale: float = 1.0  # disk_read + disk_write
    startup_scale: float = 1.0  # comm_startup
    bandwidth_scale: float = 1.0  # comm_bandwidth
    #: when set, overrides ``bandwidth_scale`` for segments of the stats
    #: exchange phase only (the voting-payload counterfactual)
    stats_bandwidth_scale: float | None = None
    balanced: bool = False


@dataclass(frozen=True)
class WhatIfEstimate:
    scenario: Scenario
    baseline: float  # measured critical-path seconds
    estimate: float  # lower bound on the counterfactual elapsed
    removed: dict[str, float] = field(default_factory=dict)

    @property
    def saved(self) -> float:
        return self.baseline - self.estimate

    @property
    def speedup(self) -> float:
        """Upper bound on the counterfactual speedup (path not
        re-routed; see module docstring)."""
        if self.estimate <= 0.0:
            return float("inf")
        return self.baseline / self.estimate

    def to_dict(self) -> dict:
        return {
            "scenario": self.scenario.name,
            "description": self.scenario.description,
            "baseline_seconds": self.baseline,
            "estimate_seconds": self.estimate,
            "saved_seconds": self.saved,
            "speedup_bound": self.speedup,
            "removed": dict(self.removed),
        }


def evaluate(path: CriticalPath, scenario: Scenario) -> WhatIfEstimate:
    """Re-time ``path`` under ``scenario``."""
    baseline = path.length
    removed: dict[str, float] = {}
    if scenario.balanced:
        # busy time = wall time minus slack spent waiting at sync points;
        # balance can at best level every rank down to the mean busy time
        busy = [e - b for e, b in zip(path.rank_end, path.rank_blocked)]
        if busy:
            surplus = max(0.0, max(busy) - sum(busy) / len(busy))
        else:  # pragma: no cover - empty run
            surplus = 0.0
        surplus = min(surplus, baseline)
        if surplus:
            removed["imbalance_surplus"] = surplus
        return WhatIfEstimate(scenario, baseline, baseline - surplus, removed)

    def scale_for(seg) -> float:
        if seg.category in ("disk_read", "disk_write"):
            return scenario.disk_scale
        if seg.category == "comm_startup":
            return scenario.startup_scale
        if seg.category == "comm_bandwidth":
            if (
                scenario.stats_bandwidth_scale is not None
                and seg.phase == "stats"
            ):
                return scenario.stats_bandwidth_scale
            return scenario.bandwidth_scale
        return 1.0  # compute, blocked_wait, fault_retry: untouched

    estimate = 0.0
    for seg in path.segments:
        k = scale_for(seg)
        estimate += seg.duration * k
        if k != 1.0:
            cut = seg.duration * (1.0 - k)
            removed[seg.category] = removed.get(seg.category, 0.0) + cut
    return WhatIfEstimate(scenario, baseline, estimate, removed)


def evaluate_all(
    path: CriticalPath, scenarios: list[Scenario]
) -> list[WhatIfEstimate]:
    return [evaluate(path, s) for s in scenarios]


def voting_payload_ratio(
    *,
    q: int,
    c: int,
    f: int,
    p: int,
    top_k: int,
    strategy: str = "attribute",
    value_nbytes: int = 8,
) -> float:
    """Stats-exchange payload of ``exchange='voting'`` relative to
    ``strategy``, from the closed forms — the bandwidth scale for the
    voting counterfactual."""
    base = exchange_stats_bytes(
        strategy, q=q, c=c, f=f, p=p, value_nbytes=value_nbytes
    )
    vote = exchange_stats_bytes(
        "voting", q=q, c=c, f=f, p=p, top_k=top_k, value_nbytes=value_nbytes
    )
    if base <= 0.0:
        return 1.0
    return min(1.0, vote / base)


def standard_scenarios(stats_ratio: float | None = None) -> list[Scenario]:
    """The Table-1 counterfactual suite the CLI reports. Pass
    ``stats_ratio`` (from :func:`voting_payload_ratio`) to include the
    voting-payload scenario."""
    out = [
        Scenario(
            "disk_free",
            "infinite disk bandwidth: all path disk time vanishes",
            disk_scale=0.0,
        ),
        Scenario(
            "zero_startup",
            "zero collective/message startup (alpha = 0)",
            startup_scale=0.0,
        ),
        Scenario(
            "balanced",
            "perfectly balanced partitions: slowest rank busy time "
            "levelled to the mean",
            balanced=True,
        ),
    ]
    if stats_ratio is not None:
        out.append(
            Scenario(
                "voting_payload",
                "stats exchange shrunk to top-k voting payload "
                f"({stats_ratio:.3g}x of current bytes)",
                stats_bandwidth_scale=stats_ratio,
            )
        )
    return out
