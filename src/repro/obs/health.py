"""Online health monitoring: imbalance, I/O amplification, cost drift.

The paper's aggregate invariants, checked while a run is in flight:

* **Load imbalance** (Lemma 2): per frontier level, the max/mean ratio
  of the ranks' busy time. Data parallelism over random shares should
  keep this near 1.0.
* **I/O amplification**: bytes moved through the local disks during a
  level divided by the live dataset bytes at that level. Data
  parallelism bounds this by the per-level pass count (stats read +
  member extraction + partition read/write ≈ 4×); an exploding ratio
  means the out-of-core machinery is re-reading.
* **Cost-model drift**: observed collective busy time divided by the
  Table-1 prediction (:func:`repro.dnc.cost.collective_cost`) applied
  to the *measured* payload bytes. Drift ≈ 1.0 means the run's
  communication costs exactly what the paper's analysis says it
  should; sustained drift flags either a modelling bug or a primitive
  being used outside its analyzed regime.

The :class:`HealthMonitor` is *online*: each rank publishes a
:class:`LevelSummary` as it leaves a frontier level, and the level is
evaluated the moment the last rank's summary lands. Rank threads only
ever publish summaries of levels they have finished, and the
communicator's barriers order level N's publishes before any rank can
finish level N+1, so evaluation order — and every derived number — is
deterministic. Alerts are structured (:class:`HealthAlert`), never
raised as exceptions: an unhealthy run completes and reports.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import NamedTuple

from repro.cluster.network import NetworkModel
from repro.dnc.cost import collective_cost

__all__ = [
    "CollectiveSample",
    "LevelSummary",
    "LevelHealth",
    "HealthAlert",
    "HealthMonitor",
    "HealthReport",
    "HealthThresholds",
    "drift_by_op",
]

#: pseudo-level for collectives outside the frontier loop (preprocess,
#: checkpointing, the small-task phase, final assembly)
OUTSIDE_LEVEL = -1


class CollectiveSample(NamedTuple):
    """One collective invocation as seen by one rank.

    A ``NamedTuple`` (not a frozen dataclass) because the recorder
    builds one per metered collective call — tuple construction keeps
    that hot path cheap.
    """

    comm: str  # communicator label ("world", "world/0,1", ...)
    seq: int  # invocation index within that communicator on this rank
    op: str
    rank: int
    level: int  # frontier level, OUTSIDE_LEVEL when not in the loop
    sent: int
    received: int
    busy: float  # charged transfer time (duration minus sync idle)
    idle: float  # time spent waiting for slower participants
    duration: float  # wall simulated time of the call
    p: int  # communicator size


@dataclass(frozen=True)
class LevelSummary:
    """One rank's accounting for one frontier level."""

    rank: int
    attempt: int
    level: int
    busy: float  # compute + io + comm seconds during the level
    idle: float
    io_bytes: int  # disk bytes read + written during the level
    live_bytes: int  # local frontier fragment bytes at level start
    n_frontier: int  # frontier width (replicated, same on all ranks)
    samples: tuple[CollectiveSample, ...] = ()
    cache_hits: int = 0  # buffer-pool hits during the level
    cache_misses: int = 0  # buffer-pool misses (0/0 when no pool attached)
    overlap_saved: float = 0.0  # prefetch seconds hidden behind compute


@dataclass(frozen=True)
class HealthThresholds:
    """Alerting thresholds (all configurable; defaults are loose enough
    that a fault-free balanced run stays silent)."""

    imbalance: float = 2.0
    io_amplification: float = 8.0
    drift_low: float = 0.9
    drift_high: float = 1.1
    #: with a buffer pool attached, a level that re-reads (amplification
    #: above ``reread_amplification``) should be getting cache hits; a
    #: hit rate below ``cache_hit_rate`` on such a level means the pool
    #: is thrashing (working set larger than the pool, nothing pinned)
    cache_hit_rate: float = 0.1
    reread_amplification: float = 3.0
    #: levels whose mean busy time is below this are too small for the
    #: ratio indicators to be meaningful and are not alerted on
    min_level_busy: float = 1e-6
    #: serving-path indicators (``repro serve`` / the replay driver):
    #: alert when the replay's exact p99 batch latency exceeds this many
    #: host seconds, or when the achieved record rate falls below this
    #: fraction of the requested target QPS
    serve_p99_seconds: float = 0.05
    serve_min_qps_ratio: float = 0.9
    #: critical-path profile (``repro critpath``): alert when a single
    #: attribution category holds more than this share of the path —
    #: the run is bound by one resource and the what-if bound says how
    #: much relieving it can pay
    critpath_dominant_share: float = 0.9
    #: forest runs with concurrent trees sharing each rank's buffer pool
    #: (``n_groups > 1``): alert when the share of pool hits served
    #: across a tree boundary falls below this — the shared chunk cache
    #: is not being reused between trees (pool too small for the base
    #: spool, or the schedule serialised the trees)
    forest_cross_tree_hit_rate: float = 0.02


@dataclass(frozen=True)
class HealthAlert:
    """One threshold crossing, in evaluation order."""

    indicator: str  # "imbalance" | "io_amplification" | "drift" | "cache_hit_rate"
    level: int  # frontier level (OUTSIDE_LEVEL for run-wide)
    op: str | None  # collective op for drift alerts
    value: float
    threshold: float
    message: str

    @property
    def severity(self) -> float:
        """Relative distance past the threshold (for ranking)."""
        if self.threshold <= 0:
            return abs(self.value)
        return abs(self.value - self.threshold) / self.threshold


@dataclass(frozen=True)
class LevelHealth:
    """Derived indicators for one completed frontier level."""

    attempt: int
    level: int
    n_frontier: int
    busy_max: float
    busy_mean: float
    imbalance: float  # max/mean busy (1.0 = perfect)
    io_bytes: int
    live_bytes: int
    io_amplification: float  # io_bytes / live_bytes
    drift: float  # observed/predicted over the level's collectives
    drift_ops: dict[str, tuple[float, float]]  # op -> (observed, predicted)
    cache_hits: int = 0
    cache_misses: int = 0
    cache_hit_rate: float = 0.0  # hits / lookups (0.0 when no pool traffic)
    overlap_saved: float = 0.0  # prefetch seconds hidden behind compute
    alerts: tuple[HealthAlert, ...] = ()


def _predict_group(
    network: NetworkModel, op: str, group: list[CollectiveSample]
) -> float:
    """Table-1 predicted cost, summed over the participating ranks, for
    one collective invocation. The per-rank byte counters are inverted
    back to the formula's ``m`` exactly as the communicator derived them
    (max contribution for gather/scatter/allgather, per-rank totals for
    the irregular alltoall)."""
    p = group[0].p
    if op == "alltoall":
        return sum(
            collective_cost(
                network, op, p=p, out_bytes=s.sent, in_bytes=s.received
            )
            for s in group
        )
    if op == "bcast":
        m = max(s.received for s in group)
    elif op == "gather":
        m = max(s.sent for s in group)
    elif op == "scatter":
        m = max(s.received for s in group)
    elif op in ("allgather", "vote"):
        m = max(s.sent for s in group) / (p - 1) if p > 1 else 0.0
    elif op == "barrier":
        m = 0.0
    else:  # combines, scans: every rank contributes the reduced vector
        return sum(collective_cost(network, op, p=p, m=s.sent) for s in group)
    return len(group) * collective_cost(network, op, p=p, m=m)


def drift_by_op(
    network: NetworkModel, samples: list[CollectiveSample]
) -> dict[str, tuple[float, float]]:
    """Aggregate ``op -> (observed busy, Table-1 predicted)`` seconds.

    Invocations are aligned across ranks by ``(comm, seq)`` — the SPMD
    contract guarantees every rank of a communicator logs the same
    collective sequence — so per-invocation maxima (gather's ``m``) are
    reconstructed exactly."""
    groups: dict[tuple[str, int], list[CollectiveSample]] = {}
    for s in samples:
        groups.setdefault((s.comm, s.seq), []).append(s)
    out: dict[str, tuple[float, float]] = {}
    for (_, _), group in sorted(groups.items()):
        op = group[0].op
        observed = sum(s.busy for s in group)
        predicted = _predict_group(network, op, group)
        if observed == 0.0 and predicted == 0.0:
            continue
        o, pr = out.get(op, (0.0, 0.0))
        out[op] = (o + observed, pr + predicted)
    return out


class HealthMonitor:
    """Collects per-rank level summaries and evaluates indicators the
    moment a level is complete (all ranks reported)."""

    def __init__(
        self,
        n_ranks: int,
        network: NetworkModel,
        thresholds: HealthThresholds | None = None,
    ) -> None:
        self.n_ranks = n_ranks
        self.network = network
        self.thresholds = thresholds or HealthThresholds()
        self.levels: list[LevelHealth] = []
        self.alerts: list[HealthAlert] = []
        self._lock = threading.Lock()
        self._pending: dict[tuple[int, int], dict[int, LevelSummary]] = {}
        self._outside: list[CollectiveSample] = []

    # -- publishing ----------------------------------------------------------
    def publish(self, summary: LevelSummary) -> None:
        """Called by each rank as it finishes a level. Thread-safe; the
        last rank to report triggers the evaluation, so results only
        depend on the summaries, never on host scheduling."""
        with self._lock:
            key = (summary.attempt, summary.level)
            got = self._pending.setdefault(key, {})
            got[summary.rank] = summary
            if len(got) == self.n_ranks:
                del self._pending[key]
                self._evaluate(key[0], key[1], [got[r] for r in sorted(got)])

    def publish_outside(self, samples: list[CollectiveSample]) -> None:
        """Collectives recorded outside the frontier loop (preprocess,
        checkpoints, small tasks, assembly); they join the run-wide
        drift aggregate."""
        with self._lock:
            self._outside.extend(samples)

    # -- evaluation ----------------------------------------------------------
    def _evaluate(
        self, attempt: int, level: int, summaries: list[LevelSummary]
    ) -> None:
        th = self.thresholds
        busys = [s.busy for s in summaries]
        busy_max = max(busys)
        busy_mean = sum(busys) / len(busys)
        imbalance = busy_max / busy_mean if busy_mean > 0 else 1.0
        io_bytes = sum(s.io_bytes for s in summaries)
        live_bytes = sum(s.live_bytes for s in summaries)
        io_amp = io_bytes / live_bytes if live_bytes > 0 else 0.0
        cache_hits = sum(s.cache_hits for s in summaries)
        cache_misses = sum(s.cache_misses for s in summaries)
        lookups = cache_hits + cache_misses
        hit_rate = cache_hits / lookups if lookups else 0.0
        overlap_saved = sum(s.overlap_saved for s in summaries)
        samples = [smp for s in summaries for smp in s.samples]
        ops = drift_by_op(self.network, samples)
        obs = sum(o for o, _ in ops.values())
        pred = sum(p for _, p in ops.values())
        drift = obs / pred if pred > 0 else 1.0

        alerts: list[HealthAlert] = []
        significant = busy_mean >= th.min_level_busy
        if significant and imbalance > th.imbalance:
            alerts.append(
                HealthAlert(
                    "imbalance", level, None, imbalance, th.imbalance,
                    f"level {level}: busy-time imbalance {imbalance:.2f}× "
                    f"exceeds {th.imbalance:.2f}× "
                    f"(max {busy_max:.3f}s vs mean {busy_mean:.3f}s)",
                )
            )
        if significant and live_bytes > 0 and io_amp > th.io_amplification:
            alerts.append(
                HealthAlert(
                    "io_amplification", level, None, io_amp,
                    th.io_amplification,
                    f"level {level}: I/O amplification {io_amp:.2f}× "
                    f"({io_bytes:,} B moved over {live_bytes:,} live B) "
                    f"exceeds {th.io_amplification:.2f}×",
                )
            )
        if (
            significant
            and lookups > 0  # silent when no buffer pool is attached
            and live_bytes > 0
            and io_amp > th.reread_amplification
            and hit_rate < th.cache_hit_rate
        ):
            alerts.append(
                HealthAlert(
                    "cache_hit_rate", level, None, hit_rate, th.cache_hit_rate,
                    f"level {level}: buffer-pool hit rate {hit_rate:.1%} on a "
                    f"re-reading level ({io_amp:.2f}× amplification) is below "
                    f"{th.cache_hit_rate:.0%} — the pool is thrashing",
                )
            )
        for op, (o, p) in sorted(ops.items()):
            if p <= 0:
                continue
            d = o / p
            if d < th.drift_low or d > th.drift_high:
                alerts.append(
                    HealthAlert(
                        "drift", level, op, d,
                        th.drift_high if d > 1.0 else th.drift_low,
                        f"level {level}: {op} cost drift {d:.3f} outside "
                        f"[{th.drift_low:g}, {th.drift_high:g}] "
                        f"(observed {o:.4g}s vs Table-1 {p:.4g}s)",
                    )
                )
        self.levels.append(
            LevelHealth(
                attempt=attempt,
                level=level,
                n_frontier=summaries[0].n_frontier,
                busy_max=busy_max,
                busy_mean=busy_mean,
                imbalance=imbalance,
                io_bytes=io_bytes,
                live_bytes=live_bytes,
                io_amplification=io_amp,
                drift=drift,
                drift_ops=ops,
                cache_hits=cache_hits,
                cache_misses=cache_misses,
                cache_hit_rate=hit_rate,
                overlap_saved=overlap_saved,
                alerts=tuple(alerts),
            )
        )
        self.alerts.extend(alerts)

    def evaluate_critical_path(self, path) -> list[HealthAlert]:
        """Evaluate a run's extracted
        :class:`~repro.obs.critpath.CriticalPath` against the
        ``critpath_dominant_share`` threshold and append any alert to
        this monitor. Called post-run (the path needs the whole trace),
        unlike the per-level indicators above."""
        from .critpath import critpath_alerts

        alerts = critpath_alerts(path, self.thresholds)
        with self._lock:
            self.alerts.extend(alerts)
        return alerts

    def evaluate_forest_cache(
        self, *, n_groups: int, cross_tree_hits: int, hits: int
    ) -> list[HealthAlert]:
        """Post-run forest indicator: with concurrent trees sharing each
        rank's buffer pool (tree-parallel / hybrid regimes), a near-zero
        share of hits crossing a tree boundary means the shared cache is
        not paying for itself. Silent for data-parallel runs (one group)
        and runs without pool traffic. Called post-run by
        :meth:`repro.forest.PForest.fit` — the hit counters are run-wide
        pool deltas, not per-level summaries."""
        if n_groups <= 1 or hits <= 0:
            return []
        th = self.thresholds.forest_cross_tree_hit_rate
        rate = cross_tree_hits / hits
        if rate >= th:
            return []
        alert = HealthAlert(
            "forest_cross_tree_hit_rate", OUTSIDE_LEVEL, None, rate, th,
            f"forest: only {rate:.1%} of buffer-pool hits crossed a tree "
            f"boundary across {n_groups} concurrent groups (below "
            f"{th:.0%}) — the shared chunk cache is not being reused "
            "between trees",
        )
        with self._lock:
            self.alerts.append(alert)
        return [alert]

    # -- aggregates ----------------------------------------------------------
    def overall_drift_by_op(self) -> dict[str, tuple[float, float]]:
        """``op -> (observed, predicted)`` over the whole run: every
        evaluated level plus the outside-loop collectives."""
        with self._lock:
            outside = list(self._outside)
        out = drift_by_op(self.network, outside)
        for lh in self.levels:
            for op, (o, p) in lh.drift_ops.items():
                oo, pp = out.get(op, (0.0, 0.0))
                out[op] = (oo + o, pp + p)
        return out


@dataclass
class HealthReport:
    """Post-run health roll-up (what ``repro health`` renders)."""

    n_ranks: int
    levels: list[LevelHealth] = field(default_factory=list)
    alerts: list[HealthAlert] = field(default_factory=list)
    drift_ops: dict[str, tuple[float, float]] = field(default_factory=dict)
    meta: dict = field(default_factory=dict)

    @classmethod
    def from_monitor(
        cls, monitor: HealthMonitor, meta: dict | None = None
    ) -> "HealthReport":
        return cls(
            n_ranks=monitor.n_ranks,
            levels=list(monitor.levels),
            alerts=list(monitor.alerts),
            drift_ops=monitor.overall_drift_by_op(),
            meta=dict(meta or {}),
        )

    @property
    def overall_drift(self) -> float:
        obs = sum(o for o, _ in self.drift_ops.values())
        pred = sum(p for _, p in self.drift_ops.values())
        return obs / pred if pred > 0 else 1.0

    @property
    def worst_imbalance(self) -> float:
        return max((lh.imbalance for lh in self.levels), default=1.0)

    @property
    def worst_io_amplification(self) -> float:
        return max((lh.io_amplification for lh in self.levels), default=0.0)

    @property
    def cache_hit_rate(self) -> float:
        """Run-wide buffer-pool hit rate (0.0 when no pool traffic)."""
        hits = sum(lh.cache_hits for lh in self.levels)
        lookups = hits + sum(lh.cache_misses for lh in self.levels)
        return hits / lookups if lookups else 0.0

    @property
    def overlap_saved(self) -> float:
        """Run-wide disk seconds hidden behind compute by prefetch."""
        return sum(lh.overlap_saved for lh in self.levels)

    def top_regressions(self, n: int = 5) -> list[HealthAlert]:
        """The most-regressed indicators, worst first."""
        return sorted(self.alerts, key=lambda a: -a.severity)[:n]

    @property
    def healthy(self) -> bool:
        return not self.alerts

    def to_dict(self) -> dict:
        """JSON-ready summary (merged into BENCH payloads)."""
        return {
            "n_ranks": self.n_ranks,
            "healthy": self.healthy,
            "overall_drift": self.overall_drift,
            "worst_imbalance": self.worst_imbalance,
            "worst_io_amplification": self.worst_io_amplification,
            "cache_hit_rate": self.cache_hit_rate,
            "overlap_saved_seconds": self.overlap_saved,
            "levels": [
                {
                    "attempt": lh.attempt,
                    "level": lh.level,
                    "n_frontier": lh.n_frontier,
                    "busy_max": lh.busy_max,
                    "busy_mean": lh.busy_mean,
                    "imbalance": lh.imbalance,
                    "io_bytes": lh.io_bytes,
                    "live_bytes": lh.live_bytes,
                    "io_amplification": lh.io_amplification,
                    "drift": lh.drift,
                    "cache_hits": lh.cache_hits,
                    "cache_misses": lh.cache_misses,
                    "cache_hit_rate": lh.cache_hit_rate,
                    "overlap_saved": lh.overlap_saved,
                }
                for lh in self.levels
            ],
            "drift_by_op": {
                op: {"observed": o, "predicted": p, "drift": o / p if p else 1.0}
                for op, (o, p) in sorted(self.drift_ops.items())
            },
            "alerts": [
                {
                    "indicator": a.indicator,
                    "level": a.level,
                    "op": a.op,
                    "value": a.value,
                    "threshold": a.threshold,
                    "message": a.message,
                }
                for a in self.alerts
            ],
            "meta": self.meta,
        }
