"""Live observability for the simulated machine (metrics + health).

Three layers, each usable on its own:

* :mod:`repro.obs.registry` — a low-overhead metrics registry (counters,
  gauges, fixed-bucket histograms) sharded per rank so recording never
  takes a lock; shards merge deterministically because every value is a
  function of the simulated execution alone.
* :mod:`repro.obs.instrument` — :func:`attach_metrics` wires the
  registry into a run's rank contexts: every collective (bytes, latency,
  sync idle), every disk access (bytes, time, retries), every phase and
  every frontier level are recorded with ``{rank, op, phase, level}``
  labels.
* :mod:`repro.obs.health` — an online :class:`HealthMonitor` that, as
  each frontier level completes, derives load-imbalance ratio, I/O
  amplification and cost-model drift against the Table-1 predictions of
  :mod:`repro.dnc.cost`, raising structured alerts past configurable
  thresholds.

Exports: :func:`repro.obs.prometheus.to_prometheus` (text exposition
format), JSON snapshots (``MetricsRegistry.snapshot``), and the
``repro health`` CLI's markdown report (:mod:`repro.obs.report`).
"""

from .health import (
    HealthAlert,
    HealthMonitor,
    HealthReport,
    HealthThresholds,
    LevelHealth,
)
from .instrument import MetricsRecorder, attach_metrics
from .prometheus import to_prometheus
from .registry import Counter, Gauge, Histogram, MetricsRegistry, RankShard
from .report import render_health_markdown

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "HealthAlert",
    "HealthMonitor",
    "HealthReport",
    "HealthThresholds",
    "LevelHealth",
    "MetricsRecorder",
    "MetricsRegistry",
    "RankShard",
    "attach_metrics",
    "render_health_markdown",
    "to_prometheus",
]
