"""Live observability for the simulated machine (metrics + health).

Three layers, each usable on its own:

* :mod:`repro.obs.registry` — a low-overhead metrics registry (counters,
  gauges, fixed-bucket histograms) sharded per rank so recording never
  takes a lock; shards merge deterministically because every value is a
  function of the simulated execution alone.
* :mod:`repro.obs.instrument` — :func:`attach_metrics` wires the
  registry into a run's rank contexts: every collective (bytes, latency,
  sync idle), every disk access (bytes, time, retries), every phase and
  every frontier level are recorded with ``{rank, op, phase, level}``
  labels.
* :mod:`repro.obs.health` — an online :class:`HealthMonitor` that, as
  each frontier level completes, derives load-imbalance ratio, I/O
  amplification and cost-model drift against the Table-1 predictions of
  :mod:`repro.dnc.cost`, raising structured alerts past configurable
  thresholds.

A fourth, post-run layer answers *where the time went*:
:mod:`repro.obs.critpath` extracts the causal critical path of a traced
run and attributes it to compute / disk / collective startup vs.
bandwidth / blocked-wait / fault-retry, and :mod:`repro.obs.whatif`
bounds the payoff of counterfactual machines (infinite disk, zero
startup, balanced partitions, voting payloads) with the Table-1 closed
forms.

Exports: :func:`repro.obs.prometheus.to_prometheus` (text exposition
format), JSON snapshots (``MetricsRegistry.snapshot``), and the
``repro health`` / ``repro critpath`` CLIs' markdown reports
(:mod:`repro.obs.report`).
"""

from .critpath import (
    CATEGORIES,
    CriticalPath,
    CritPathError,
    PathSegment,
    build_critical_path,
    critpath_alerts,
    record_critpath_metrics,
)
from .health import (
    HealthAlert,
    HealthMonitor,
    HealthReport,
    HealthThresholds,
    LevelHealth,
)
from .instrument import MetricsRecorder, attach_metrics
from .prometheus import to_prometheus
from .registry import Counter, Gauge, Histogram, MetricsRegistry, RankShard
from .report import render_critpath_markdown, render_health_markdown
from .whatif import (
    Scenario,
    WhatIfEstimate,
    evaluate,
    evaluate_all,
    standard_scenarios,
    voting_payload_ratio,
)

__all__ = [
    "CATEGORIES",
    "Counter",
    "CritPathError",
    "CriticalPath",
    "Gauge",
    "Histogram",
    "HealthAlert",
    "HealthMonitor",
    "HealthReport",
    "HealthThresholds",
    "LevelHealth",
    "MetricsRecorder",
    "MetricsRegistry",
    "PathSegment",
    "RankShard",
    "Scenario",
    "WhatIfEstimate",
    "attach_metrics",
    "build_critical_path",
    "critpath_alerts",
    "evaluate",
    "evaluate_all",
    "record_critpath_metrics",
    "render_critpath_markdown",
    "render_health_markdown",
    "standard_scenarios",
    "to_prometheus",
    "voting_payload_ratio",
]
