"""Markdown rendering of a :class:`~repro.obs.health.HealthReport`
(the body of ``repro health``) and of a
:class:`~repro.obs.critpath.CriticalPath` (the body of
``repro critpath``)."""

from __future__ import annotations

from .health import OUTSIDE_LEVEL, HealthReport

__all__ = ["render_critpath_markdown", "render_health_markdown"]


def _fmt_bytes(n: float) -> str:
    n = float(n)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if abs(n) < 1024.0 or unit == "GiB":
            return f"{n:.1f} {unit}" if unit != "B" else f"{int(n)} B"
        n /= 1024.0
    raise AssertionError("unreachable")  # pragma: no cover


def _level_name(level: int) -> str:
    return "outside" if level == OUTSIDE_LEVEL else str(level)


def render_health_markdown(report: HealthReport, title: str = "Run health") -> str:
    """Per-run health report: verdict, per-level indicator table, per-op
    drift vs the Table-1 model, and the alert list (worst first)."""
    lines: list[str] = [f"# {title}", ""]
    verdict = "HEALTHY" if report.healthy else f"{len(report.alerts)} alert(s)"
    summary = (
        f"**{verdict}** — {report.n_ranks} ranks, "
        f"{len(report.levels)} frontier level(s); "
        f"worst imbalance {report.worst_imbalance:.2f}x, "
        f"worst I/O amplification {report.worst_io_amplification:.2f}x, "
        f"overall cost drift {report.overall_drift:.3f}"
    )
    pool_lookups = sum(lh.cache_hits + lh.cache_misses for lh in report.levels)
    if pool_lookups:
        summary += (
            f", cache hit rate {report.cache_hit_rate:.1%}, "
            f"prefetch overlap saved {report.overlap_saved:.3f} s"
        )
    lines.append(summary)
    lines.append("")
    for key in sorted(report.meta):
        lines.append(f"- {key}: {report.meta[key]}")
    if report.meta:
        lines.append("")

    if report.levels:
        lines.append("## Frontier levels")
        lines.append("")
        lines.append(
            "| level | nodes | busy max (s) | busy mean (s) | imbalance "
            "| live bytes | I/O bytes | I/O amp | drift |"
        )
        lines.append("|---|---|---|---|---|---|---|---|---|")
        for lh in report.levels:
            name = _level_name(lh.level)
            if lh.attempt:
                name = f"{name} (attempt {lh.attempt})"
            lines.append(
                f"| {name} | {lh.n_frontier} | {lh.busy_max:.4f} "
                f"| {lh.busy_mean:.4f} | {lh.imbalance:.2f}x "
                f"| {_fmt_bytes(lh.live_bytes)} | {_fmt_bytes(lh.io_bytes)} "
                f"| {lh.io_amplification:.2f}x | {lh.drift:.3f} |"
            )
        lines.append("")

    if report.drift_ops:
        lines.append("## Collective cost drift (observed vs Table 1)")
        lines.append("")
        lines.append("| collective | observed (s) | predicted (s) | drift |")
        lines.append("|---|---|---|---|")
        for op, (obs, pred) in sorted(report.drift_ops.items()):
            drift = obs / pred if pred > 0 else 1.0
            lines.append(
                f"| {op} | {obs:.6f} | {pred:.6f} | {drift:.3f} |"
            )
        lines.append("")

    lines.append("## Alerts")
    lines.append("")
    if report.healthy:
        lines.append("No thresholds crossed.")
    else:
        for a in report.top_regressions(len(report.alerts)):
            lines.append(f"- **{a.indicator}**: {a.message}")
    lines.append("")
    return "\n".join(lines)


def render_critpath_markdown(
    path,
    estimates=None,
    alerts=None,
    title: str = "Critical path",
    meta: dict | None = None,
) -> str:
    """Per-run critical-path report: the Table-1 blame decomposition,
    per-level attribution, rank occupancy, and — when what-if estimates
    are passed — the bounded counterfactual speedups."""
    from .critpath import CATEGORIES

    cats = path.by_category()
    dom_cat, dom_share = path.dominant()
    lines: list[str] = [f"# {title}", ""]
    lines.append(
        f"**{dom_cat}-bound** ({dom_share:.1%} of the path) — "
        f"length {path.length:.4f} s (== slowest rank's elapsed), "
        f"{len(path.segments)} segment(s), "
        f"{path.n_cross_rank} rank crossing(s), ends on rank {path.end_rank}"
    )
    lines.append("")
    for key in sorted(meta or {}):
        lines.append(f"- {key}: {meta[key]}")
    if meta:
        lines.append("")

    lines.append("## Where the time went")
    lines.append("")
    lines.append("| category | seconds | share |")
    lines.append("|---|---|---|")
    for cat in CATEGORIES:
        secs = cats.get(cat, 0.0)
        if secs > 0.0:
            lines.append(f"| {cat} | {secs:.4f} | {path.share(cat):.1%} |")
    lines.append("")

    blame = path.by_level_category()
    by_level = path.by_level()
    if any(lv is not None for lv in by_level):
        lines.append("## Per-level blame")
        lines.append("")
        lines.append("| level | path (s) | dominant category | share |")
        lines.append("|---|---|---|---|")
        for lv in sorted(
            by_level, key=lambda x: (x is None, x if x is not None else 0)
        ):
            cell = blame[lv]
            dom = max(cell, key=cell.get)
            share = cell[dom] / by_level[lv] if by_level[lv] else 0.0
            name = "outside" if lv is None else str(lv)
            lines.append(
                f"| {name} | {by_level[lv]:.4f} | {dom} | {share:.0%} |"
            )
        lines.append("")

    shares = path.rank_share()
    if shares:
        lines.append("## Rank occupancy")
        lines.append("")
        lines.append("| rank | path (s) | share |")
        lines.append("|---|---|---|")
        for r, secs in sorted(shares.items()):
            lines.append(
                f"| {r} | {secs:.4f} | {secs / path.length:.1%} |"
            )
        lines.append("")

    if estimates:
        lines.append("## What-if (bounded speedups)")
        lines.append("")
        lines.append(
            "Estimates are lower bounds on the counterfactual elapsed "
            "(the path is re-timed, not re-routed), so each speedup is "
            "an **upper bound** on the payoff."
        )
        lines.append("")
        lines.append("| scenario | estimate (s) | saved (s) | speedup ≤ |")
        lines.append("|---|---|---|---|")
        for est in estimates:
            lines.append(
                f"| {est.scenario.name} | {est.estimate:.4f} "
                f"| {est.saved:.4f} | {est.speedup:.2f}x |"
            )
        lines.append("")

    lines.append("## Alerts")
    lines.append("")
    if not alerts:
        lines.append("No thresholds crossed.")
    else:
        for a in alerts:
            lines.append(f"- **{a.indicator}**: {a.message}")
    lines.append("")
    return "\n".join(lines)
